//! Ingest an external memory trace and compare every lookup scheme on it.
//!
//! This example writes a small CSV-format trace to a temp file (standing
//! in for a real capture — e.g. valgrind lackey output piped through a
//! converter, or your own tool's log), parses it with `waymem-ingest`,
//! and runs it through conventional lookup and the paper's way
//! memoization via the `Experiment` builder.
//!
//! Run with: `cargo run --example ingest_trace`

use waymem::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A toy workload: a tight loop streaming over a small hot buffer.
    // `op,addr[,size]` per line; `#` comments; hex or decimal addresses.
    let mut log = String::from("# example capture: 8-line hot loop over a 256-B buffer\n");
    for i in 0u32..4000 {
        let pc = 0x1000 + 4 * (i % 8);
        log.push_str(&format!("fetch,0x{pc:x},4\n"));
        if i % 2 == 0 {
            log.push_str(&format!("load,0x{:x},4\n", 0x8000 + 4 * (i % 64)));
        }
        if i % 8 == 7 {
            log.push_str(&format!("store,0x{:x},4\n", 0x9000 + 4 * (i % 16)));
        }
    }
    let path = std::env::temp_dir().join("waymem_ingest_example.csv");
    std::fs::write(&path, &log)?;

    // Parse: the returned `Ingested` carries the reconstructed trace and
    // the log's FNV-1a64 content hash (its workload identity).
    let ingested = parse_path(&path)?;
    println!(
        "parsed {} lines -> {} fetches + {} loads/stores (hash {:016x})",
        ingested.lines,
        ingested.trace.fetch_events.len(),
        ingested.trace.data_events.len(),
        ingested.source_hash,
    );

    // Evaluate every scheme on the ingested trace — same engine, same
    // accounting as the paper's benchmarks. (`Experiment::ingest(&path)`
    // would parse for us; handing over the parsed trace shows the
    // recorded-workload route.)
    let result = Experiment::recorded(ingested.workload_id(), ingested.trace.clone())
        .dschemes([DScheme::Original, DScheme::paper_way_memo()])
        .ischemes([IScheme::Original, IScheme::paper_way_memo()])
        .run()?;
    for (side, schemes) in [("D", &result.dcache), ("I", &result.icache)] {
        for s in schemes {
            println!(
                "{side}-cache {:<14} {:>6.3} tags/access  {:>6.3} ways/access  {:>8.3} mW",
                s.name,
                s.stats.tags_per_access(),
                s.stats.ways_per_access(),
                s.power.total_mw(),
            );
        }
    }

    // The ingest workload through a store caches the parsed trace: the
    // file is hashed first, so a second run (here; or a second process,
    // with a persistent cache dir) skips parsing entirely — and the
    // content hash guards against replaying a stale file if the log
    // changes.
    let store = TraceStore::new();
    for _ in 0..2 {
        let again = Experiment::ingest(&path)
            .dschemes([DScheme::Original])
            .ischemes([IScheme::Original])
            .store(&store)
            .run()?;
        assert_eq!(again.cycles, result.cycles);
    }
    println!("store: {:?} lookups -> {} records", store.stats().lookups, store.stats().records);

    std::fs::remove_file(&path).ok();
    Ok(())
}
