//! I-MAB sizing sweep: how much instruction-cache power each MAB geometry
//! saves relative to intra-line memoization (approach [4]), and where the
//! returns flatten — the trade-off behind the paper's choice of 2x16 over
//! 2x32 (7.5% vs 27.5% area).
//!
//! ```sh
//! cargo run --release --example icache_sweep
//! ```

use waymem::hwmodel::{cache_area_mm2, mab_area_mm2, CacheShape, MabShape};
use waymem::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = SimConfig::default();
    let sizes: [(usize, usize); 4] = [(2, 8), (2, 16), (2, 32), (4, 16)];

    let mut schemes = vec![IScheme::IntraLine];
    schemes.extend(sizes.iter().map(|&(t, s)| IScheme::WayMemo {
        tag_entries: t,
        set_entries: s,
    }));

    println!(
        "{:<12} {:>14} {}",
        "benchmark",
        "[4] mW",
        sizes
            .iter()
            .map(|(t, s)| format!("{:>12}", format!("{t}x{s} mW")))
            .collect::<String>()
    );
    let mut totals = vec![0.0f64; schemes.len()];
    for &bench in &Benchmark::ALL {
        let r = Experiment::kernel(bench).ischemes(schemes.clone()).run()?;
        print!("{:<12}", r.workload.name());
        for (i, s) in r.icache.iter().enumerate() {
            totals[i] += s.power.total_mw();
            if i == 0 {
                print!(" {:>14.2}", s.power.total_mw());
            } else {
                print!(" {:>12.2}", s.power.total_mw());
            }
        }
        println!();
    }
    println!();

    // Pair the power column sums with the silicon each geometry costs.
    let cache_area = cache_area_mm2(CacheShape::frv(), cfg.technology);
    println!("geometry   sum power (7 benchmarks)   area overhead");
    println!("[4]        {:>10.2} mW                (none)", totals[0]);
    for (i, &(t, s)) in sizes.iter().enumerate() {
        let area = mab_area_mm2(MabShape::frv(t as u32, s as u32), cfg.technology);
        println!(
            "{t}x{s:<8} {:>10.2} mW               {:>5.2} mm^2 ({:.1}% of cache)",
            totals[i + 1],
            area,
            area / cache_area * 100.0
        );
    }
    println!("\nthe paper picks 2x16: 2x32 saves little more power but costs ~4x the area.");
    Ok(())
}
