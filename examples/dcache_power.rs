//! D-cache scheme shoot-out across all seven benchmarks: conventional,
//! set buffer, way prediction, two-phase, the paper's MAB and the
//! MAB + line-buffer hybrid — power *and* cycle penalties side by side.
//!
//! This is the experiment a designer evaluating the paper would actually
//! run: "which low-power D-cache trick do I take, and what does it cost?"
//!
//! ```sh
//! cargo run --release --example dcache_power
//! ```

use waymem::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let schemes = [
        DScheme::Original,
        DScheme::SetBuffer { entries: 1 },
        DScheme::FilterCache { lines: 4 },
        DScheme::WayPredict,
        DScheme::TwoPhase,
        DScheme::paper_way_memo(),
        DScheme::WayMemoLineBuffer {
            tag_entries: 2,
            set_entries: 8,
            line_entries: 2,
        },
    ];

    println!(
        "{:<12} {:>10} {:>16} {:>15} {:>14} {:>13} {:>13} {:>15}",
        "benchmark", "original", "set_buffer[14]", "filter[6]", "way_pred[9]", "2-phase[8]", "MAB 2x8", "MAB+linebuf"
    );
    for &bench in &Benchmark::ALL {
        let r = Experiment::kernel(bench).dschemes(schemes).run()?;
        print!("{:<12}", r.workload.name());
        for s in &r.dcache {
            let penalty = if s.extra_cycles > 0 {
                format!("+{}c", s.extra_cycles / 1000)
            } else {
                String::new()
            };
            print!(" {:>9.2}{:<5}", s.power.total_mw(), penalty);
        }
        println!();
    }
    println!("\n(power in mW; +Nc = thousands of extra cycles paid by the scheme —");
    println!(" the filter cache, way prediction and two-phase lookup all pay cycles;");
    println!(" the MAB pays none.)");
    Ok(())
}
