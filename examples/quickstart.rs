//! Quickstart: run one benchmark under the paper's configuration and
//! print the Figure 4/5-style numbers for the D-cache.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use waymem::prelude::*;
use waymem::sim::format_power_table;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's setup: 32 kB 2-way caches, 2x8 D-MAB, 2x16 I-MAB —
    // all `Experiment` defaults, so only workload and schemes to pick.
    let result = Experiment::kernel(Benchmark::Dct)
        .dschemes([DScheme::Original, DScheme::paper_way_memo()])
        .ischemes([IScheme::Original, IScheme::paper_way_memo()])
        .run()?;

    println!("benchmark: {} ({} cycles)\n", result.workload, result.cycles);

    println!("D-cache accounting (per access):");
    for s in &result.dcache {
        println!(
            "  {:<16} tags/access {:.3}   ways/access {:.3}   MAB hit rate {:.1}%",
            s.name,
            s.stats.tags_per_access(),
            s.stats.ways_per_access(),
            s.stats.mab_hit_rate() * 100.0,
        );
    }
    println!();

    let entries: Vec<_> = result
        .dcache
        .iter()
        .map(|s| (s.name.clone(), s.power))
        .collect();
    print!("{}", format_power_table("D-cache power via Eq. (1)", &entries));

    let orig = result.dcache[0].power.total_mw();
    let ours = result.dcache[1].power.total_mw();
    println!(
        "\nway memoization saves {:.0}% of D-cache power on {} — with zero extra cycles ({}).",
        (1.0 - ours / orig) * 100.0,
        result.workload,
        result.dcache[1].extra_cycles,
    );
    Ok(())
}
