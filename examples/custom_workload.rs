//! Bring your own workload: write frv-lite assembly, run it through the
//! CPU, and attach any cache front-ends you like. This example implements
//! a pointer-chasing microkernel (a worst case for the set buffer, a good
//! case for the MAB) and compares the two.
//!
//! ```sh
//! cargo run --release --example custom_workload
//! ```

use waymem::isa::{assemble, Cpu, FetchKind, TraceSink};
use waymem::prelude::*;
use waymem::sim::{DFront, IFront};

/// Adapter feeding CPU trace events into hand-picked front-ends.
struct Fronts {
    d: Vec<DFront>,
    i: Vec<IFront>,
}

impl TraceSink for Fronts {
    fn fetch(&mut self, pc: u32, kind: FetchKind) {
        for f in &mut self.i {
            f.fetch(pc, kind);
        }
    }
    fn load(&mut self, base: u32, disp: i32, addr: u32, _size: u8) {
        for f in &mut self.d {
            f.access(false, base, disp, addr);
        }
    }
    fn store(&mut self, base: u32, disp: i32, addr: u32, _size: u8) {
        for f in &mut self.d {
            f.access(true, base, disp, addr);
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A ring of nodes, each 64 bytes apart (every hop changes the cache
    // set). The set buffer gets nothing; the MAB memoizes the ring.
    let program = assemble(
        r#"
        .equ NODES, 8
        .equ HOPS, 4000
        .data
ring:   .space 512              # 8 nodes x 64 bytes, next-pointer at +0
        .text
main:   # build the ring: node[i].next = &node[i+1], last wraps to first
        la   t0, ring
        li   t1, 0
build:  slli t2, t1, 6
        add  t3, t0, t2         # &node[i]
        addi t4, t1, 1
        andi t4, t4, NODES-1
        slli t4, t4, 6
        add  t4, t0, t4         # &node[(i+1) % NODES]
        sw   t4, 0(t3)
        sw   t1, 4(t3)          # payload
        addi t1, t1, 1
        li   t2, NODES
        blt  t1, t2, build

        # chase the ring
        la   t0, ring
        li   t1, 0              # hop counter
        li   s11, 0
chase:  lw   t2, 4(t0)          # payload
        add  s11, s11, t2
        lw   t0, 0(t0)          # follow next
        addi t1, t1, 1
        li   t2, HOPS
        blt  t1, t2, chase
        ori  a0, s11, 1
        halt
        "#,
    )?;

    let geometry = Geometry::frv();
    let mut fronts = Fronts {
        d: vec![
            DScheme::SetBuffer { entries: 1 }.build(geometry),
            DScheme::paper_way_memo().build(geometry),
        ],
        i: vec![IScheme::paper_way_memo().build(geometry)],
    };

    let mut cpu = Cpu::new(&program);
    let outcome = cpu.run(10_000_000, &mut fronts)?;
    assert!(outcome.halted());

    println!(
        "pointer chase finished: checksum {:#x}, {} instructions\n",
        cpu.reg(10),
        cpu.instret()
    );
    for f in &fronts.d {
        let s = f.stats();
        println!(
            "D {:<18} tags/access {:.3}  buffer/MAB hits {:>6}",
            f.scheme().name(),
            s.tags_per_access(),
            s.buffer_hits.max(s.mab_hits),
        );
    }
    let i = &fronts.i[0];
    println!(
        "I {:<18} tags/access {:.3}  intra-line skips {}",
        i.scheme().name(),
        i.stats().tags_per_access(),
        i.stats().intra_line_skips
    );
    println!("\nevery hop lands in a different set: the set buffer only catches the");
    println!("second load within each node (half the accesses), while the MAB's");
    println!("2x8 cross-product memoizes the whole ring and removes nearly all tags.");
    Ok(())
}
