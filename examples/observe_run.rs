//! Observability walkthrough: arm the span tracer, run a store-backed
//! suite, then read back everything the obs layer collected — the
//! metrics registry (counters, gauges, latency histograms), the
//! exclusive per-phase wall-clock breakdown, and the Chrome trace-event
//! profile (open it at <https://ui.perfetto.dev>).
//!
//! ```sh
//! cargo run --release --example observe_run
//! # or capture spans/logs from the environment instead:
//! WAYMEM_SPANS=spans.json WAYMEM_LOG=debug cargo run --release --example observe_run
//! ```

use waymem::obs;
use waymem::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Environment first (WAYMEM_SPANS / WAYMEM_LOG), programmatic
    // fallback second: arm the tracer ourselves if the env didn't.
    obs::init_from_env();
    if !obs::span::armed() {
        obs::span::arm(std::env::temp_dir().join("observe_run_spans.json"));
    }

    // Any instrumented work will do; a store-backed suite exercises
    // every phase — resolve, record, store I/O, and parallel replay.
    let dir = std::env::temp_dir().join("observe_run_cache");
    let store = TraceStore::with_cache_dir(&dir);
    let results = Suite::kernels()
        .dschemes([DScheme::Original, DScheme::paper_way_memo()])
        .ischemes([IScheme::Original, IScheme::paper_way_memo()])
        .store(&store)
        .run()?;
    println!("ran {} workloads\n", results.len());

    // 1. The metrics registry: every counter, gauge, and histogram any
    // layer recorded, by name. Histograms report quantiles to
    // power-of-two bucket resolution.
    let snapshot = obs::registry().snapshot();
    println!("counters:");
    for (name, value) in &snapshot.counters {
        println!("  {name:<24} {value}");
    }
    println!("histograms (ns):");
    for (name, h) in &snapshot.histograms {
        println!(
            "  {name:<24} n={:<8} p50={:<10} p95={:<10} p99={}",
            h.count,
            h.p50(),
            h.p95(),
            h.p99()
        );
    }

    // 2. The phase breakdown: exclusive wall-clock per engine phase —
    // the same numbers `headline` exports as `phases` in
    // BENCH_headline.json (schema v5).
    println!("\nengine phases (exclusive wall-clock):");
    for (name, seconds) in obs::phase::snapshot() {
        println!("  {name:<10} {:.1} ms", seconds * 1e3);
    }

    // 3. The span profile: drain every thread's buffer into one Chrome
    // trace-event JSON file and sanity-check it with the bundled
    // validator.
    if let Some((path, events)) = obs::span::flush()? {
        let summary = obs::chrome::validate_trace(&std::fs::read_to_string(&path)?)
            .map_err(std::io::Error::other)?;
        println!(
            "\nwrote {events} span events ({} distinct names, {} threads) to {}",
            summary.names.len(),
            summary.threads,
            path.display()
        );
        println!("open it at https://ui.perfetto.dev");
    }
    Ok(())
}
