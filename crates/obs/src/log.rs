//! Leveled structured logging (`WAYMEM_LOG=warn|info|debug`).
//!
//! Every line is one event name plus `key=value` fields:
//!
//! ```text
//! waymem[warn] store.quarantine path=/cache/dct-s1.wmtr
//! ```
//!
//! The level gate is a single relaxed atomic load, so a disabled
//! [`debug!`](crate::debug!) in a hot path costs nothing measurable —
//! field values are formatted only for events that pass the gate. The
//! level comes from `WAYMEM_LOG` on first use (default `warn`; `off`
//! silences everything) and can be overridden programmatically with
//! [`set_level`]. Per-level emission counts land in the metrics
//! registry (`log.warn` / `log.info` / `log.debug`), so tests can
//! assert on what was logged without capturing stderr.

use std::fmt::Display;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU8, Ordering};

/// Log severities, ordered: a configured level admits itself and
/// everything more severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Nothing is emitted.
    Off = 0,
    /// Unexpected-but-handled conditions (quarantines, failed workloads).
    Warn = 1,
    /// Routine state changes worth a line (evictions, sweeps).
    Info = 2,
    /// High-volume diagnostics.
    Debug = 3,
}

impl Level {
    fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "silent" | "none" => Some(Level::Off),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            _ => None,
        }
    }

    fn name(self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

/// 255 = not yet initialized from the environment.
static LEVEL: AtomicU8 = AtomicU8::new(255);

fn load_level() -> Level {
    match LEVEL.load(Ordering::Relaxed) {
        255 => {
            let level = std::env::var("WAYMEM_LOG")
                .ok()
                .as_deref()
                .and_then(Level::parse)
                .unwrap_or(Level::Warn);
            // A racing set_level wins over the env default.
            let _ = LEVEL.compare_exchange(
                255,
                level as u8,
                Ordering::Relaxed,
                Ordering::Relaxed,
            );
            load_level()
        }
        0 => Level::Off,
        1 => Level::Warn,
        2 => Level::Info,
        _ => Level::Debug,
    }
}

/// Resolves the level from `WAYMEM_LOG` now (it is otherwise read
/// lazily on the first gate check). Idempotent.
pub fn init_from_env() {
    let _ = load_level();
}

/// Overrides the level for the rest of the process (tests, embedders).
pub fn set_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The currently configured level.
#[must_use]
pub fn level() -> Level {
    load_level()
}

/// `true` when events at `level` are emitted — the macros' gate, one
/// relaxed atomic load after initialization.
#[must_use]
pub fn enabled(level: Level) -> bool {
    level <= load_level() && level != Level::Off
}

/// Formats and writes one event line to stderr and counts it in the
/// metrics registry. Called by the macros *after* the level gate; the
/// fields are already-formatted `(key, value)` pairs.
pub fn emit(level: Level, event: &str, fields: &[(&str, String)]) {
    let mut line = String::with_capacity(48 + event.len());
    let _ = write!(line, "waymem[{}] {event}", level.name());
    for (key, value) in fields {
        let needs_quotes =
            value.is_empty() || value.contains([' ', '"', '=']) || value.contains('\\');
        if needs_quotes {
            let _ = write!(line, " {key}={value:?}");
        } else {
            let _ = write!(line, " {key}={value}");
        }
    }
    eprintln!("{line}");
    crate::flight::record_log(level, event, fields);
    match level {
        Level::Off => {}
        Level::Warn => crate::counter!("log.warn").inc(),
        Level::Info => crate::counter!("log.info").inc(),
        Level::Debug => crate::counter!("log.debug").inc(),
    }
}

/// Emits one structured event if `level` passes the gate:
/// `log!(Level::Warn, "store.quarantine", path = path.display())`.
/// Field values are formatted with `Display`, only when emitting.
/// The [`warn!`](crate::warn!), [`info!`](crate::info!) and
/// [`debug!`](crate::debug!) shorthands cover the common levels.
#[macro_export]
macro_rules! log {
    ($level:expr, $event:expr $(, $key:ident = $value:expr)* $(,)?) => {{
        let level: $crate::log::Level = $level;
        if $crate::log::enabled(level) {
            $crate::log::emit(level, $event, &[$((stringify!($key), $crate::log::field(&$value))),*]);
        }
    }};
}

/// [`log!`](crate::log!) at [`Level::Warn`].
#[macro_export]
macro_rules! warn {
    ($event:expr $(, $key:ident = $value:expr)* $(,)?) => {
        $crate::log!($crate::log::Level::Warn, $event $(, $key = $value)*)
    };
}

/// [`log!`](crate::log!) at [`Level::Info`].
#[macro_export]
macro_rules! info {
    ($event:expr $(, $key:ident = $value:expr)* $(,)?) => {
        $crate::log!($crate::log::Level::Info, $event $(, $key = $value)*)
    };
}

/// [`log!`](crate::log!) at [`Level::Debug`].
#[macro_export]
macro_rules! debug {
    ($event:expr $(, $key:ident = $value:expr)* $(,)?) => {
        $crate::log!($crate::log::Level::Debug, $event $(, $key = $value)*)
    };
}

/// Formats one field value for [`emit`] — the macros' helper.
pub fn field(value: &impl Display) -> String {
    value.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, OnceLock};

    /// The level is process-global; tests that change it must not
    /// overlap.
    fn test_lock() -> &'static Mutex<()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
    }

    #[test]
    fn levels_parse_and_order() {
        assert_eq!(Level::parse("warn"), Some(Level::Warn));
        assert_eq!(Level::parse(" INFO "), Some(Level::Info));
        assert_eq!(Level::parse("debug"), Some(Level::Debug));
        assert_eq!(Level::parse("off"), Some(Level::Off));
        assert_eq!(Level::parse("verbose"), None);
        assert!(Level::Warn < Level::Info && Level::Info < Level::Debug);
    }

    #[test]
    fn level_parse_edge_cases() {
        // Unknown levels are rejected, not coerced.
        assert_eq!(Level::parse("trace"), None);
        assert_eq!(Level::parse("WARN=1"), None);
        assert_eq!(Level::parse("2"), None);
        // Empty and whitespace-only fall through to the caller's default.
        assert_eq!(Level::parse(""), None);
        assert_eq!(Level::parse("   "), None);
        // Mixed case and surrounding whitespace are accepted.
        assert_eq!(Level::parse("Debug"), Some(Level::Debug));
        assert_eq!(Level::parse("WARNING"), Some(Level::Warn));
        assert_eq!(Level::parse("\toff\n"), Some(Level::Off));
        assert_eq!(Level::parse("SiLeNt"), Some(Level::Off));
        assert_eq!(Level::parse("NONE"), Some(Level::Off));
    }

    #[test]
    fn gate_honors_the_configured_level() {
        let _serial = test_lock().lock().unwrap();
        let restore = level();
        set_level(Level::Info);
        assert!(enabled(Level::Warn));
        assert!(enabled(Level::Info));
        assert!(!enabled(Level::Debug));
        set_level(Level::Off);
        assert!(!enabled(Level::Warn));
        set_level(restore);
    }

    #[test]
    fn emitted_events_are_counted() {
        let _serial = test_lock().lock().unwrap();
        let restore = level();
        set_level(Level::Debug);
        let counted = crate::counter!("log.debug");
        let before = counted.get();
        crate::debug!("test.event", answer = 42, label = "two words");
        assert_eq!(counted.get(), before + 1);
        set_level(Level::Off);
        crate::debug!("test.event.suppressed");
        assert_eq!(counted.get(), before + 1, "suppressed events are not counted");
        set_level(restore);
    }
}
