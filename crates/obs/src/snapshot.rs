//! One-call export of the whole observability state.
//!
//! [`take`] freezes every instrument in the [`metrics`](crate::metrics)
//! registry — counters, gauges, and histograms reduced to their summary
//! statistics (count / sum / max / mean / p50 / p95 / p99) — together
//! with the [`phase`] accumulators, into one plain-data
//! [`Snapshot`]. [`Snapshot::to_json`] renders it as a compact JSON
//! object, which is what the bench binaries embed as the `"metrics"`
//! object of `BENCH_*.json`, what every `BENCH_LEDGER.jsonl` record
//! carries, and what the [`flight`](crate::flight) recorder dumps next
//! to its event ring.
//!
//! [`validate_metrics`] is the matching reader-side check (built on the
//! [`chrome`](crate::chrome) JSON parser): histogram percentiles must be
//! monotone (p50 ≤ p95 ≤ p99), counts must agree with finiteness, and
//! phase totals must be non-negative. The `obs_check` binary runs it
//! over exported files; tests run it over freshly rendered snapshots.

use std::fmt::Write as _;

use crate::chrome::Value;
use crate::metrics::{registry, HistogramSnapshot};
use crate::phase;

/// Summary statistics of one histogram, percentiles to bucket
/// resolution — the export-side reduction of a
/// [`HistogramSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramStats {
    /// Total observations.
    pub count: u64,
    /// Sum of every recorded value (wrapping).
    pub sum: u64,
    /// Largest value recorded.
    pub max: u64,
    /// Arithmetic mean (0.0 when empty).
    pub mean: f64,
    /// Median, to bucket resolution.
    pub p50: u64,
    /// 95th percentile, to bucket resolution.
    pub p95: u64,
    /// 99th percentile, to bucket resolution.
    pub p99: u64,
}

impl From<HistogramSnapshot> for HistogramStats {
    fn from(s: HistogramSnapshot) -> Self {
        HistogramStats {
            count: s.count,
            sum: s.sum,
            max: s.max,
            mean: s.mean(),
            p50: s.p50(),
            p95: s.p95(),
            p99: s.p99(),
        }
    }
}

/// A point-in-time freeze of every instrument plus the phase
/// accumulators. Name-sorted within each section (the registry interns
/// by name into sorted maps).
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Every counter's name and count.
    pub counters: Vec<(String, u64)>,
    /// Every gauge's name and value.
    pub gauges: Vec<(String, f64)>,
    /// Every histogram's name and summary statistics.
    pub histograms: Vec<(String, HistogramStats)>,
    /// Exclusive per-phase wall-clock seconds, in
    /// [`Phase`](crate::phase::Phase) declaration order.
    pub phases: Vec<(&'static str, f64)>,
}

/// Freezes the registry and the phase accumulators now.
#[must_use]
pub fn take() -> Snapshot {
    let regs = registry().snapshot();
    Snapshot {
        counters: regs.counters,
        gauges: regs.gauges,
        histograms: regs
            .histograms
            .into_iter()
            .map(|(name, snap)| (name, HistogramStats::from(snap)))
            .collect(),
        phases: phase::snapshot().to_vec(),
    }
}

/// Writes `v` as a JSON number: `{:?}` keeps a decimal point so the
/// value round-trips as a float; non-finite values become `null`.
fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v:?}");
    } else {
        out.push_str("null");
    }
}

fn push_key(out: &mut String, first: &mut bool, key: &str) {
    if !*first {
        out.push(',');
    }
    *first = false;
    out.push('"');
    crate::span::escape_into(out, key);
    out.push_str("\":");
}

impl Snapshot {
    /// Renders the snapshot as one compact JSON object:
    ///
    /// ```json
    /// {"counters":{"replay.data_events":123},
    ///  "gauges":{"store.hits":7.0},
    ///  "histograms":{"store.io.read_ns":{"count":4,"sum":..,"max":..,
    ///                "mean":..,"p50":..,"p95":..,"p99":..}},
    ///  "phases":{"resolve":0.01,"record":1.2,"io":0.3,"replay":2.0}}
    /// ```
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"counters\":{");
        let mut first = true;
        for (name, value) in &self.counters {
            push_key(&mut out, &mut first, name);
            let _ = write!(out, "{value}");
        }
        out.push_str("},\"gauges\":{");
        first = true;
        for (name, value) in &self.gauges {
            push_key(&mut out, &mut first, name);
            push_f64(&mut out, *value);
        }
        out.push_str("},\"histograms\":{");
        first = true;
        for (name, h) in &self.histograms {
            push_key(&mut out, &mut first, name);
            let _ = write!(
                out,
                "{{\"count\":{},\"sum\":{},\"max\":{},\"mean\":",
                h.count, h.sum, h.max
            );
            push_f64(&mut out, h.mean);
            let _ = write!(out, ",\"p50\":{},\"p95\":{},\"p99\":{}}}", h.p50, h.p95, h.p99);
        }
        out.push_str("},\"phases\":{");
        first = true;
        for (name, seconds) in &self.phases {
            push_key(&mut out, &mut first, name);
            push_f64(&mut out, *seconds);
        }
        out.push_str("}}");
        out
    }
}

/// Validates a parsed `"metrics"` object (the shape [`Snapshot::to_json`]
/// emits and the bench binaries embed): the three instrument sections
/// must be objects, every histogram must carry monotone percentiles
/// (p50 ≤ p95 ≤ p99, all ≤ max) and an internally consistent count, and
/// every phase total must be a non-negative finite number.
///
/// # Errors
///
/// A human-readable description of the first violation.
pub fn validate_metrics(metrics: &Value) -> Result<(), String> {
    let section = |key: &str| -> Result<&[(String, Value)], String> {
        match metrics.get(key) {
            Some(Value::Obj(fields)) => Ok(fields),
            Some(_) => Err(format!("metrics.{key} is not an object")),
            None => Err(format!("metrics has no {key} object")),
        }
    };
    for (name, value) in section("counters")? {
        let n = value
            .as_num()
            .ok_or_else(|| format!("counter {name} is not a number"))?;
        if !(n.is_finite() && n >= 0.0) {
            return Err(format!("counter {name} = {n} is not a valid count"));
        }
    }
    for (name, value) in section("gauges")? {
        // Gauges are free-form levels; they only need to be numeric
        // (the writer already turned non-finite values into null).
        if value.as_num().is_none() && *value != Value::Null {
            return Err(format!("gauge {name} is not a number"));
        }
    }
    for (name, hist) in section("histograms")? {
        let field = |key: &str| {
            hist.get(key)
                .and_then(Value::as_num)
                .ok_or_else(|| format!("histogram {name}.{key} missing or non-numeric"))
        };
        let count = field("count")?;
        let (p50, p95, p99, max) = (field("p50")?, field("p95")?, field("p99")?, field("max")?);
        if !(p50 <= p95 && p95 <= p99) {
            return Err(format!(
                "histogram {name}: percentiles not monotone (p50 {p50} / p95 {p95} / p99 {p99})"
            ));
        }
        if count > 0.0 && p99 > max {
            return Err(format!("histogram {name}: p99 {p99} exceeds max {max}"));
        }
        if count < 0.0 || !count.is_finite() {
            return Err(format!("histogram {name}: bad count {count}"));
        }
    }
    for (name, seconds) in section("phases")? {
        let s = seconds
            .as_num()
            .ok_or_else(|| format!("phase {name} is not a number"))?;
        if !(s.is_finite() && s >= 0.0) {
            return Err(format!("phase {name} = {s} is not a valid duration"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chrome::parse;

    #[test]
    fn snapshot_round_trips_through_its_own_validator() {
        crate::counter!("test.snapshot.counter").add(3);
        crate::gauge!("test.snapshot.gauge").set(1.5);
        let h = crate::histogram!("test.snapshot.hist");
        for v in [1u64, 10, 100, 1000] {
            h.record(v);
        }
        let snap = take();
        assert!(snap.counters.iter().any(|(n, v)| n == "test.snapshot.counter" && *v >= 3));
        let text = snap.to_json();
        let parsed = parse(&text).expect("snapshot renders valid JSON");
        validate_metrics(&parsed).expect("snapshot validates");
        let hist = parsed
            .get("histograms")
            .and_then(|h| h.get("test.snapshot.hist"))
            .expect("histogram exported");
        assert!(hist.get("count").and_then(Value::as_num).unwrap() >= 4.0);
    }

    #[test]
    fn histogram_stats_reduce_the_snapshot() {
        let h = crate::metrics::Histogram::default();
        for v in 1..=100u64 {
            h.record(v);
        }
        let stats = HistogramStats::from(h.snapshot());
        assert_eq!(stats.count, 100);
        assert_eq!(stats.max, 100);
        assert!(stats.p50 <= stats.p95 && stats.p95 <= stats.p99);
        assert!((stats.mean - 50.5).abs() < 1e-9);
    }

    #[test]
    fn validator_rejects_broken_shapes() {
        let bad_mono = parse(
            r#"{"counters":{},"gauges":{},"histograms":{"h":{"count":1,"sum":1,"max":9,"mean":1.0,"p50":8,"p95":4,"p99":9}},"phases":{}}"#,
        )
        .unwrap();
        assert!(validate_metrics(&bad_mono).unwrap_err().contains("not monotone"));
        let neg_phase = parse(
            r#"{"counters":{},"gauges":{},"histograms":{},"phases":{"io":-0.5}}"#,
        )
        .unwrap();
        assert!(validate_metrics(&neg_phase).unwrap_err().contains("io"));
        let missing = parse(r#"{"counters":{}}"#).unwrap();
        assert!(validate_metrics(&missing).unwrap_err().contains("gauges"));
    }
}
