//! The global lock-free metrics registry.
//!
//! Instruments are interned by name: the first lookup allocates the
//! instrument and leaks it (`&'static`), every later lookup returns the
//! same handle. The [`counter!`](crate::counter!),
//! [`gauge!`](crate::gauge!) and [`histogram!`](crate::histogram!) macros
//! cache the handle in a per-call-site `OnceLock`, so after the first
//! pass a hot loop never touches the registry lock again — recording is
//! one relaxed atomic RMW.
//!
//! Histograms use power-of-two buckets (bucket *i* holds values in
//! `[2^i, 2^(i+1))`) sharded [`SHARDS`]-way to keep concurrent recorders
//! off each other's cache lines; a [`HistogramSnapshot`] merges the
//! shards and answers p50/p95/p99 to bucket resolution. That is exactly
//! the precision a latency instrument needs: "p99 is in the 2–4 ms
//! bucket" — not a sorted reservoir's exact order statistic — at a cost
//! of one atomic add per observation.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Histogram bucket count: bucket `i` covers `[2^i, 2^(i+1))`, so 64
/// buckets span every representable `u64` (nanoseconds, bytes, counts).
pub const BUCKETS: usize = 64;

/// Concurrent-recorder shards per histogram. Each recording thread is
/// pinned round-robin to one shard, so recorders scale without bouncing
/// a shared cache line.
pub const SHARDS: usize = 8;

/// A monotonically increasing event count. All operations are relaxed
/// atomics: cheap enough for per-batch hot paths, exact under any
/// interleaving.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current count.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-writer-wins floating-point value (stored as bits in one
/// atomic word) — throughput readings, cache occupancy, anything that
/// is a level rather than a count.
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Replaces the value.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value (0.0 until first set).
    #[must_use]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// One histogram shard, cache-line aligned so concurrent recorders on
/// different shards never share a line.
#[derive(Debug)]
#[repr(align(64))]
struct Shard {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
}

impl Shard {
    fn new() -> Self {
        Shard {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }
}

/// The bucket index a value lands in: `floor(log2(v))`, with 0 and 1
/// sharing bucket 0.
fn bucket_of(v: u64) -> usize {
    (63 - v.max(1).leading_zeros()) as usize
}

/// A sharded power-of-two-bucket histogram. [`record`](Self::record) is
/// one relaxed add into the recording thread's shard plus a sum update;
/// [`snapshot`](Self::snapshot) merges shards into a
/// [`HistogramSnapshot`] for percentile queries.
#[derive(Debug)]
pub struct Histogram {
    shards: Vec<Shard>,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            shards: (0..SHARDS).map(|_| Shard::new()).collect(),
            max: AtomicU64::new(0),
        }
    }
}

/// Round-robin shard assignment, fixed per thread for its lifetime.
fn shard_index() -> usize {
    thread_local! {
        static SHARD: usize = {
            static NEXT: AtomicUsize = AtomicUsize::new(0);
            NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS
        };
    }
    SHARD.with(|s| *s)
}

impl Histogram {
    /// Records one observation (a latency in nanoseconds, a size in
    /// bytes — any `u64`).
    pub fn record(&self, v: u64) {
        let shard = &self.shards[shard_index()];
        shard.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        shard.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Total observations recorded so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum::<u64>())
            .sum()
    }

    /// Merges the shards into an immutable view.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        let mut sum = 0u64;
        for shard in &self.shards {
            for (merged, bucket) in buckets.iter_mut().zip(&shard.buckets) {
                *merged += bucket.load(Ordering::Relaxed);
            }
            sum = sum.wrapping_add(shard.sum.load(Ordering::Relaxed));
        }
        HistogramSnapshot {
            buckets,
            sum,
            count: buckets.iter().sum(),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An immutable merged view of a [`Histogram`]: percentile queries to
/// bucket resolution, plus exact count / sum / max.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Merged per-bucket observation counts (bucket `i` =
    /// `[2^i, 2^(i+1))`).
    pub buckets: [u64; BUCKETS],
    /// Sum of every recorded value (wrapping).
    pub sum: u64,
    /// Total observations.
    pub count: u64,
    /// Largest value recorded.
    pub max: u64,
}

impl HistogramSnapshot {
    /// The value at quantile `q` in `[0, 1]`, to bucket resolution: the
    /// upper bound of the bucket the `ceil(q * count)`-th observation
    /// falls in (0 for an empty histogram).
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(i).min(self.max.max(1));
            }
        }
        self.max
    }

    /// Median, to bucket resolution.
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile, to bucket resolution.
    #[must_use]
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile, to bucket resolution.
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Arithmetic mean of the recorded values (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Inclusive upper bound of bucket `i`.
fn bucket_upper(i: usize) -> u64 {
    if i >= 63 {
        u64::MAX
    } else {
        (1u64 << (i + 1)) - 1
    }
}

/// Records its own lifetime, in nanoseconds, into a [`Histogram`] when
/// dropped — the one-liner for timing a scope with early returns:
/// `let _wait = Stopwatch::new(histogram!("store.lock.wait_ns"));`.
#[derive(Debug)]
#[must_use = "a stopwatch times the guard's lifetime — bind it to a scope"]
pub struct Stopwatch {
    histogram: &'static Histogram,
    started: std::time::Instant,
}

impl Stopwatch {
    /// Starts timing into `histogram`.
    pub fn new(histogram: &'static Histogram) -> Self {
        Stopwatch { histogram, started: std::time::Instant::now() }
    }
}

impl Drop for Stopwatch {
    fn drop(&mut self) {
        let ns = u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.histogram.record(ns);
    }
}

/// The process-global instrument registry. Interning takes a mutex;
/// the returned `&'static` handles are lock-free forever after — cache
/// them (the instrument macros do).
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, &'static Counter>>,
    gauges: Mutex<BTreeMap<String, &'static Gauge>>,
    histograms: Mutex<BTreeMap<String, &'static Histogram>>,
}

fn intern<T: Default>(map: &Mutex<BTreeMap<String, &'static T>>, name: &str) -> &'static T {
    let mut map = map.lock().expect("metrics registry poisoned");
    if let Some(handle) = map.get(name) {
        return handle;
    }
    let handle: &'static T = Box::leak(Box::default());
    map.insert(name.to_owned(), handle);
    handle
}

impl Registry {
    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> &'static Counter {
        intern(&self.counters, name)
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> &'static Gauge {
        intern(&self.gauges, name)
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> &'static Histogram {
        intern(&self.histograms, name)
    }

    /// A point-in-time view of every instrument, name-sorted.
    #[must_use]
    pub fn snapshot(&self) -> RegistrySnapshot {
        fn view<T, V>(
            map: &Mutex<BTreeMap<String, &'static T>>,
            read: impl Fn(&T) -> V,
        ) -> Vec<(String, V)> {
            map.lock()
                .expect("metrics registry poisoned")
                .iter()
                .map(|(name, handle)| (name.clone(), read(handle)))
                .collect()
        }
        RegistrySnapshot {
            counters: view(&self.counters, Counter::get),
            gauges: view(&self.gauges, Gauge::get),
            histograms: view(&self.histograms, Histogram::snapshot),
        }
    }
}

/// A point-in-time export of the whole registry (name-sorted vectors).
#[derive(Debug, Clone)]
pub struct RegistrySnapshot {
    /// Every counter's name and count.
    pub counters: Vec<(String, u64)>,
    /// Every gauge's name and value.
    pub gauges: Vec<(String, f64)>,
    /// Every histogram's name and merged view.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

/// The process-global [`Registry`].
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// A `&'static` [`Counter`](crate::metrics::Counter) for `name`, interned once
/// per call site and lock-free thereafter.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static HANDLE: std::sync::OnceLock<&'static $crate::metrics::Counter> =
            std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::metrics::registry().counter($name))
    }};
}

/// A `&'static` [`Gauge`](crate::metrics::Gauge) for `name`, interned once per
/// call site and lock-free thereafter.
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static HANDLE: std::sync::OnceLock<&'static $crate::metrics::Gauge> =
            std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::metrics::registry().gauge($name))
    }};
}

/// A `&'static` [`Histogram`](crate::metrics::Histogram) for `name`, interned
/// once per call site and lock-free thereafter.
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static HANDLE: std::sync::OnceLock<&'static $crate::metrics::Histogram> =
            std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::metrics::registry().histogram($name))
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_intern_to_the_same_handle() {
        let a = registry().counter("test.metrics.counter");
        let b = registry().counter("test.metrics.counter");
        assert!(std::ptr::eq(a, b));
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        let g = registry().gauge("test.metrics.gauge");
        g.set(2.5);
        assert!((registry().gauge("test.metrics.gauge").get() - 2.5).abs() < f64::EPSILON);
    }

    #[test]
    fn macro_handles_are_stable_per_call_site() {
        let c = counter!("test.metrics.macro");
        c.inc();
        counter!("test.metrics.macro").inc();
        assert!(counter!("test.metrics.macro").get() >= 2);
    }

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(1023), 9);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(u64::MAX), 63);
    }

    #[test]
    fn histogram_count_equals_observations_and_quantiles_bound() {
        let h = Histogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 1000);
        assert_eq!(h.count(), 1000);
        assert_eq!(snap.sum, (1..=1000u64).sum::<u64>());
        assert_eq!(snap.max, 1000);
        // Bucket resolution: the quantile answer is an upper bound no
        // smaller than the exact order statistic and no bigger than the
        // next power of two.
        assert!(snap.p50() >= 500 && snap.p50() <= 1000, "p50 {}", snap.p50());
        assert!(snap.p99() >= 990 && snap.p99() <= 1000, "p99 {}", snap.p99());
        assert!((snap.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn histogram_is_exact_under_concurrent_recorders() {
        let h: &'static Histogram = Box::leak(Box::default());
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 10_000;
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                scope.spawn(move || {
                    for i in 0..PER_THREAD {
                        h.record(t * PER_THREAD + i + 1);
                    }
                });
            }
        });
        let snap = h.snapshot();
        assert_eq!(snap.count, THREADS * PER_THREAD);
        assert_eq!(snap.sum, (1..=THREADS * PER_THREAD).sum::<u64>());
    }

    #[test]
    fn empty_histogram_answers_zero() {
        let h = Histogram::default();
        let snap = h.snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.p50(), 0);
        assert_eq!(snap.p99(), 0);
        assert!((snap.mean() - 0.0).abs() < f64::EPSILON);
    }

    #[test]
    fn snapshot_is_name_sorted() {
        registry().counter("test.snap.b");
        registry().counter("test.snap.a");
        let snap = registry().snapshot();
        let names: Vec<_> = snap.counters.iter().map(|(n, _)| n.clone()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }
}
