//! The crash flight recorder — a bounded black box for post-mortems.
//!
//! Every thread owns a small ring buffer retaining its last
//! [`DEFAULT_CAPACITY`] observability events (structured log lines,
//! armed span entries, and explicit [`note`]s). Recording is always on
//! and touches only the recording thread's own ring (the per-ring mutex
//! is contended only while a dump walks the rings), so the steady-state
//! cost is one uncontended lock plus a bounded push.
//!
//! A **dump** freezes the rings, the full metrics
//! [`snapshot`](crate::snapshot), and the phase accounting into one
//! structured JSON file. Dumps fire:
//!
//! * from the panic hook [`install_panic_hook`] installs (binaries get
//!   it via [`init_from_env`](crate::init_from_env)),
//! * from [`dump_on_incident`] at the reliability seams — a suite
//!   worker dying with `RunError::Worker`, a `.wmtr` quarantine, the
//!   first injected fault of an armed `WAYMEM_FAULT_PLAN`.
//!
//! The destination is `WAYMEM_FLIGHT=<path>` (default
//! [`DEFAULT_DUMP_PATH`]; `off` disables the recorder entirely).
//! Incident dumps overwrite: the file always describes the *latest*
//! incident, with the `obs.flight.dumps` counter recording how many
//! fired. [`validate_dump`] is the reader-side contract check the
//! `obs_check` binary and the tests share.

use std::cell::OnceCell;
use std::collections::{BTreeSet, VecDeque};
use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, Once, OnceLock};

use crate::chrome::Value;
use crate::log::Level;

/// Events each thread's ring retains; older events are evicted first.
pub const DEFAULT_CAPACITY: usize = 256;

/// Where dumps land when `WAYMEM_FLIGHT` names no path.
pub const DEFAULT_DUMP_PATH: &str = "waymem-flight.json";

/// Schema tag every dump carries.
pub const SCHEMA: &str = "waymem/flight/v1";

/// What kind of event a ring entry records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A structured log line that passed the level gate.
    Log,
    /// A span entered while the span tracer was armed.
    Span,
    /// An explicit breadcrumb from [`note`].
    Note,
}

impl EventKind {
    /// The kind's export name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Log => "log",
            EventKind::Span => "span",
            EventKind::Note => "note",
        }
    }
}

/// One recorded event: when, what kind, which name, which fields.
#[derive(Debug, Clone)]
struct FlightEvent {
    ts_ns: u64,
    kind: EventKind,
    name: String,
    fields: Vec<(String, String)>,
}

/// One thread's ring, registered globally so a dump can walk every
/// thread's recent history (including exited threads').
#[derive(Debug)]
struct Ring {
    tid: u32,
    events: Mutex<VecDeque<FlightEvent>>,
}

static RECORDING: AtomicBool = AtomicBool::new(true);

fn rings() -> &'static Mutex<Vec<Arc<Ring>>> {
    static RINGS: OnceLock<Mutex<Vec<Arc<Ring>>>> = OnceLock::new();
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

fn dump_path() -> &'static Mutex<Option<PathBuf>> {
    static PATH: OnceLock<Mutex<Option<PathBuf>>> = OnceLock::new();
    PATH.get_or_init(|| Mutex::new(None))
}

/// Locks a mutex, surviving poisoning: the recorder must keep working
/// inside a panic hook, which is exactly when a ring lock may have been
/// poisoned by the unwinding thread.
fn lock_or_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn local_ring<R>(f: impl FnOnce(&Ring) -> R) -> R {
    thread_local! {
        static LOCAL: OnceCell<Arc<Ring>> = const { OnceCell::new() };
    }
    LOCAL.with(|cell| {
        let ring = cell.get_or_init(|| {
            static NEXT_TID: AtomicU32 = AtomicU32::new(1);
            let ring = Arc::new(Ring {
                tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
                events: Mutex::new(VecDeque::with_capacity(DEFAULT_CAPACITY)),
            });
            lock_or_recover(rings()).push(Arc::clone(&ring));
            ring
        });
        f(ring)
    })
}

/// `true` while events are being retained.
#[must_use]
pub fn armed() -> bool {
    RECORDING.load(Ordering::Relaxed)
}

/// Stops retaining events (rings keep what they already hold).
pub fn disarm() {
    RECORDING.store(false, Ordering::Relaxed);
}

/// Resumes retaining events.
pub fn arm() {
    RECORDING.store(true, Ordering::Relaxed);
}

/// Sets (or clears) the dump destination. Incident dumps and panic
/// dumps only write when a destination is configured — via this, or via
/// `WAYMEM_FLIGHT` through [`init_from_env`].
pub fn set_dump_path(path: Option<PathBuf>) {
    *lock_or_recover(dump_path()) = path;
}

/// The currently configured dump destination, if any.
#[must_use]
pub fn configured_dump_path() -> Option<PathBuf> {
    lock_or_recover(dump_path()).clone()
}

/// Arms the recorder from `WAYMEM_FLIGHT` (read once per process) and
/// installs the panic hook: a path names the dump destination, unset
/// means [`DEFAULT_DUMP_PATH`], and `off` / `0` / `none` disables
/// recording and dumping entirely. Binaries get this via
/// [`init_from_env`](crate::init_from_env).
pub fn init_from_env() {
    static READ: OnceLock<Option<PathBuf>> = OnceLock::new();
    let path = READ.get_or_init(|| {
        match std::env::var("WAYMEM_FLIGHT") {
            Ok(v) if matches!(v.trim().to_ascii_lowercase().as_str(), "off" | "0" | "none") => None,
            Ok(v) if !v.trim().is_empty() => Some(PathBuf::from(v)),
            _ => Some(PathBuf::from(DEFAULT_DUMP_PATH)),
        }
    });
    match path {
        Some(path) => {
            set_dump_path(Some(path.clone()));
            install_panic_hook();
        }
        None => {
            disarm();
            set_dump_path(None);
        }
    }
}

/// Records one event into the calling thread's ring (evicting the
/// oldest entry at capacity). `fields` are already-formatted pairs; a
/// no-op while the recorder is disarmed.
pub fn record(kind: EventKind, name: &str, fields: &[(&str, String)]) {
    if !armed() {
        return;
    }
    let event = FlightEvent {
        ts_ns: crate::span::now_ns(),
        kind,
        name: name.to_owned(),
        fields: fields.iter().map(|(k, v)| ((*k).to_owned(), v.clone())).collect(),
    };
    local_ring(|ring| {
        let mut events = lock_or_recover(&ring.events);
        if events.len() >= DEFAULT_CAPACITY {
            events.pop_front();
        }
        events.push_back(event);
    });
}

/// Records an explicit breadcrumb — the hook for incident sites that
/// want context in the black box beyond what they log.
pub fn note(name: &str, fields: &[(&str, String)]) {
    record(EventKind::Note, name, fields);
}

/// [`record`]s a log event — called by the logger for every line that
/// passes the level gate.
pub(crate) fn record_log(level: Level, event: &str, fields: &[(&str, String)]) {
    if !armed() {
        return;
    }
    let mut all = Vec::with_capacity(fields.len() + 1);
    all.push(("level", level_name(level).to_owned()));
    all.extend(fields.iter().map(|(k, v)| (*k, v.clone())));
    record(EventKind::Log, event, &all);
}

fn level_name(level: Level) -> &'static str {
    match level {
        Level::Off => "off",
        Level::Warn => "warn",
        Level::Info => "info",
        Level::Debug => "debug",
    }
}

/// Installs (once) a panic hook that records the panic as a ring event
/// and dumps the black box — to the configured destination, or
/// [`DEFAULT_DUMP_PATH`] if none was set — before delegating to the
/// previous hook.
pub fn install_panic_hook() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let message = info
                .payload()
                .downcast_ref::<&str>()
                .map(ToString::to_string)
                .or_else(|| info.payload().downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_owned());
            let location = info.location().map_or_else(
                || "unknown".to_owned(),
                |l| format!("{}:{}:{}", l.file(), l.line(), l.column()),
            );
            note("panic", &[("message", message), ("location", location)]);
            let path =
                configured_dump_path().unwrap_or_else(|| PathBuf::from(DEFAULT_DUMP_PATH));
            let _ = dump_to(&path, "panic");
            previous(info);
        }));
    });
}

/// Dumps the black box for `reason` to the configured destination.
/// Returns the written path, or `None` when no destination is
/// configured or the write failed — an incident dump is best-effort by
/// design and must never turn an incident into a second failure.
pub fn dump_on_incident(reason: &str) -> Option<PathBuf> {
    let path = configured_dump_path()?;
    match dump_to(&path, reason) {
        Ok(_) => {
            crate::counter!("obs.flight.dumps").inc();
            Some(path)
        }
        Err(e) => {
            eprintln!("waymem[warn] flight.dump_failed path={} error={e}", path.display());
            None
        }
    }
}

/// Writes the black box — schema header, every thread's retained events
/// (timestamp-ordered), the full metrics snapshot, and the phase
/// breakdown — to `path` as one JSON document. Rings are copied, not
/// drained: a later dump still has the history. Returns the number of
/// events written.
///
/// # Errors
///
/// Propagates the file write failure.
pub fn dump_to(path: &Path, reason: &str) -> io::Result<usize> {
    let mut events: Vec<(u32, FlightEvent)> = Vec::new();
    let all: Vec<Arc<Ring>> = lock_or_recover(rings()).clone();
    for ring in all {
        let held = lock_or_recover(&ring.events);
        events.extend(held.iter().map(|e| (ring.tid, e.clone())));
    }
    events.sort_by_key(|(_, e)| e.ts_ns);

    let unix_ts = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let mut out = String::with_capacity(4096);
    let _ = write!(out, "{{\"schema\":\"{SCHEMA}\",\"reason\":\"");
    crate::span::escape_into(&mut out, reason);
    let _ = write!(
        out,
        "\",\"pid\":{},\"unix_ts\":{unix_ts},\"events\":[",
        std::process::id()
    );
    for (i, (tid, e)) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"ts_ns\":{},\"tid\":{tid},\"kind\":\"{}\",\"name\":\"",
            e.ts_ns,
            e.kind.name()
        );
        crate::span::escape_into(&mut out, &e.name);
        out.push_str("\",\"fields\":{");
        for (j, (k, v)) in e.fields.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push('"');
            crate::span::escape_into(&mut out, k);
            out.push_str("\":\"");
            crate::span::escape_into(&mut out, v);
            out.push('"');
        }
        out.push_str("}}");
    }
    out.push_str("],\"metrics\":");
    out.push_str(&crate::snapshot::take().to_json());
    out.push('}');
    std::fs::write(path, out)?;
    Ok(events.len())
}

/// What [`validate_dump`] found in a well-formed dump.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightSummary {
    /// The incident that triggered the dump.
    pub reason: String,
    /// Retained events in the dump.
    pub events: usize,
    /// Every distinct event name seen.
    pub names: BTreeSet<String>,
}

impl FlightSummary {
    /// `true` when some event carries exactly this name.
    #[must_use]
    pub fn has_event(&self, name: &str) -> bool {
        self.names.contains(name)
    }
}

/// Validates `text` as a flight-recorder dump: correct schema, a
/// non-empty reason, well-formed events (numeric `ts_ns`/`tid`, string
/// `kind`/`name`, object `fields`), and an embedded metrics object that
/// passes [`validate_metrics`](crate::snapshot::validate_metrics).
///
/// # Errors
///
/// A human-readable description of the first violation.
pub fn validate_dump(text: &str) -> Result<FlightSummary, String> {
    let root = crate::chrome::parse(text).map_err(|e| e.to_string())?;
    let schema = root
        .get("schema")
        .and_then(Value::as_str)
        .ok_or("dump has no schema string")?;
    if schema != SCHEMA {
        return Err(format!("schema is {schema}, expected {SCHEMA}"));
    }
    let reason = root
        .get("reason")
        .and_then(Value::as_str)
        .ok_or("dump has no reason string")?;
    if reason.is_empty() {
        return Err("dump reason is empty".into());
    }
    root.get("pid").and_then(Value::as_num).ok_or("dump has no numeric pid")?;
    let events = root
        .get("events")
        .and_then(Value::as_arr)
        .ok_or("dump has no events array")?;
    let mut names = BTreeSet::new();
    for (i, event) in events.iter().enumerate() {
        let field = |key: &str| event.get(key).ok_or_else(|| format!("event {i} has no {key}"));
        field("ts_ns")?.as_num().ok_or_else(|| format!("event {i} ts_ns not a number"))?;
        field("tid")?.as_num().ok_or_else(|| format!("event {i} tid not a number"))?;
        let kind =
            field("kind")?.as_str().ok_or_else(|| format!("event {i} kind not a string"))?;
        if !matches!(kind, "log" | "span" | "note") {
            return Err(format!("event {i} has unknown kind {kind}"));
        }
        let name =
            field("name")?.as_str().ok_or_else(|| format!("event {i} name not a string"))?;
        if !matches!(field("fields")?, Value::Obj(_)) {
            return Err(format!("event {i} fields is not an object"));
        }
        names.insert(name.to_owned());
    }
    let metrics = root.get("metrics").ok_or("dump has no metrics object")?;
    crate::snapshot::validate_metrics(metrics)?;
    Ok(FlightSummary { reason: reason.to_owned(), events: events.len(), names })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The recorder is process-global; tests that reconfigure it must
    /// not overlap.
    fn test_lock() -> &'static Mutex<()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
    }

    #[test]
    fn recorded_events_round_trip_through_a_dump() {
        let _serial = test_lock().lock().unwrap();
        arm();
        note("test.flight.breadcrumb", &[("answer", "42".to_owned())]);
        crate::counter!("test.flight.counter").inc();
        let dir = std::env::temp_dir().join(format!("waymem-flight-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dump.json");
        let written = dump_to(&path, "unit-test").expect("dump writes");
        assert!(written >= 1);
        let text = std::fs::read_to_string(&path).unwrap();
        let summary = validate_dump(&text).expect("dump validates");
        assert_eq!(summary.reason, "unit-test");
        assert!(summary.has_event("test.flight.breadcrumb"), "{:?}", summary.names);
        // Rings are copied, not drained: a second dump still sees it.
        dump_to(&path, "again").expect("second dump writes");
        let again = validate_dump(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert!(again.has_event("test.flight.breadcrumb"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rings_are_bounded_and_evict_oldest_first() {
        let _serial = test_lock().lock().unwrap();
        arm();
        // Overfill from a dedicated thread so this test owns the ring.
        std::thread::spawn(|| {
            for i in 0..(DEFAULT_CAPACITY + 10) {
                note("test.flight.fill", &[("i", i.to_string())]);
            }
            local_ring(|ring| {
                let events = ring.events.lock().unwrap();
                assert_eq!(events.len(), DEFAULT_CAPACITY);
                let first = events.front().unwrap();
                assert_eq!(first.fields[0].1, "10", "oldest entries evicted first");
            });
        })
        .join()
        .unwrap();
    }

    #[test]
    fn disarmed_recorder_retains_nothing_and_incident_needs_a_path() {
        let _serial = test_lock().lock().unwrap();
        let restore = configured_dump_path();
        set_dump_path(None);
        assert_eq!(dump_on_incident("test.flight.nowhere"), None);
        disarm();
        std::thread::spawn(|| {
            note("test.flight.ignored", &[]);
            local_ring(|ring| assert!(ring.events.lock().unwrap().is_empty()));
        })
        .join()
        .unwrap();
        arm();
        set_dump_path(restore);
    }

    #[test]
    fn validate_dump_rejects_malformed_documents() {
        assert!(validate_dump("{}").unwrap_err().contains("schema"));
        assert!(validate_dump(r#"{"schema":"nope"}"#).unwrap_err().contains("expected"));
        let no_reason = format!(r#"{{"schema":"{SCHEMA}","reason":""}}"#);
        assert!(validate_dump(&no_reason).unwrap_err().contains("reason"));
        let bad_event = format!(
            r#"{{"schema":"{SCHEMA}","reason":"r","pid":1,"events":[{{"ts_ns":1}}],"metrics":{{}}}}"#
        );
        assert!(validate_dump(&bad_event).unwrap_err().contains("tid"));
    }
}
