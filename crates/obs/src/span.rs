//! RAII span tracing with Chrome trace-event export.
//!
//! A span is a named begin/end pair around a scope:
//!
//! ```
//! let _guard = waymem_obs::span!("replay", workload = "dct");
//! // ... the traced work ...
//! ```
//!
//! When the tracer is unarmed (the default), entering a span is a single
//! relaxed atomic load and the guard's drop is a no-op — cheap enough
//! for per-front hot paths. When armed — by `WAYMEM_SPANS=<path>` via
//! [`init_from_env`], or programmatically via [`arm`] — each guard
//! records a begin and an end event (name, nanosecond timestamp, thread
//! id, optional `key=value` args) into a bounded per-thread buffer.
//! [`flush`] drains every thread's buffer into one Chrome trace-event
//! JSON file (`{"traceEvents": [...]}`) that loads directly in Perfetto
//! or `chrome://tracing`.
//!
//! Buffers are bounded at [`MAX_EVENTS_PER_THREAD`] begin/end events per
//! thread; once a thread's buffer is full, further spans on it are
//! dropped whole (begin and end together, so the exported stream stays
//! balanced) and counted in the `spans.dropped` counter.

use std::cell::OnceCell;
use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Begin/end events a single thread may buffer before its spans start
/// dropping (≈ 512K spans — far beyond any workbench run).
pub const MAX_EVENTS_PER_THREAD: usize = 1 << 20;

/// One recorded begin or end event.
#[derive(Debug)]
struct Event {
    name: &'static str,
    ts_ns: u64,
    begin: bool,
    args: Vec<(&'static str, String)>,
}

/// One thread's bounded event buffer, registered globally so
/// [`flush`] can drain it after the thread is gone.
#[derive(Debug)]
struct ThreadBuf {
    tid: u32,
    events: Mutex<Vec<Event>>,
}

static ARMED: AtomicBool = AtomicBool::new(false);

fn out_path() -> &'static Mutex<Option<PathBuf>> {
    static PATH: OnceLock<Mutex<Option<PathBuf>>> = OnceLock::new();
    PATH.get_or_init(|| Mutex::new(None))
}

fn thread_bufs() -> &'static Mutex<Vec<Arc<ThreadBuf>>> {
    static BUFS: OnceLock<Mutex<Vec<Arc<ThreadBuf>>>> = OnceLock::new();
    BUFS.get_or_init(|| Mutex::new(Vec::new()))
}

/// The instant all span timestamps are measured from.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn local_buf<R>(f: impl FnOnce(&ThreadBuf) -> R) -> R {
    thread_local! {
        static LOCAL: OnceCell<Arc<ThreadBuf>> = const { OnceCell::new() };
    }
    LOCAL.with(|cell| {
        let buf = cell.get_or_init(|| {
            static NEXT_TID: AtomicU32 = AtomicU32::new(1);
            let buf = Arc::new(ThreadBuf {
                tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
                events: Mutex::new(Vec::new()),
            });
            thread_bufs().lock().expect("span registry poisoned").push(Arc::clone(&buf));
            buf
        });
        f(buf)
    })
}

/// `true` when spans are being recorded.
#[must_use]
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Arms the tracer and remembers `path` as the default [`flush`]
/// destination.
pub fn arm(path: impl Into<PathBuf>) {
    *out_path().lock().expect("span path poisoned") = Some(path.into());
    epoch();
    ARMED.store(true, Ordering::Relaxed);
}

/// Stops recording. Already-buffered events stay until the next
/// [`flush`].
pub fn disarm() {
    ARMED.store(false, Ordering::Relaxed);
}

/// Arms the tracer when `WAYMEM_SPANS=<path>` is set (read once per
/// process).
pub fn init_from_env() {
    static READ: OnceLock<Option<PathBuf>> = OnceLock::new();
    let path = READ.get_or_init(|| {
        std::env::var_os("WAYMEM_SPANS").filter(|v| !v.is_empty()).map(PathBuf::from)
    });
    if let Some(path) = path {
        arm(path.clone());
    }
}

/// Ends its span when dropped. Obtained from [`enter`] / the
/// [`span!`](crate::span!) macro; holds no resources when the tracer is
/// unarmed.
#[derive(Debug)]
#[must_use = "a span covers the guard's lifetime — bind it to a scope"]
pub struct SpanGuard {
    /// Set only when the begin event actually landed in a buffer; the
    /// matching end event is recorded iff the begin was.
    name: Option<&'static str>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(name) = self.name {
            let ts_ns = now_ns();
            local_buf(|buf| {
                let mut events = buf.events.lock().expect("span buffer poisoned");
                events.push(Event { name, ts_ns, begin: false, args: Vec::new() });
            });
        }
    }
}

/// Nanoseconds since the process-wide tracing epoch — shared with the
/// [`flight`](crate::flight) recorder so both timelines line up.
pub(crate) fn now_ns() -> u64 {
    u64::try_from(epoch().elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Enters a span named `name`. Prefer the [`span!`](crate::span!)
/// macro, which also takes `key = value` args.
pub fn enter(name: &'static str) -> SpanGuard {
    enter_args(name, Vec::new)
}

/// Enters a span with lazily built `key=value` args — `args` runs only
/// when the tracer is armed.
pub fn enter_args(
    name: &'static str,
    args: impl FnOnce() -> Vec<(&'static str, String)>,
) -> SpanGuard {
    if !armed() {
        return SpanGuard { name: None };
    }
    let ts_ns = now_ns();
    let landed = local_buf(|buf| {
        let mut events = buf.events.lock().expect("span buffer poisoned");
        // Leave room for this span's end event so the stream stays
        // balanced even at the cap.
        if events.len() + 2 > MAX_EVENTS_PER_THREAD {
            return false;
        }
        events.push(Event { name, ts_ns, begin: true, args: args() });
        true
    });
    if !landed {
        crate::counter!("spans.dropped").inc();
        return SpanGuard { name: None };
    }
    crate::flight::record(crate::flight::EventKind::Span, name, &[]);
    SpanGuard { name: Some(name) }
}

/// Records an RAII span over the enclosing scope:
/// `span!("replay")` or `span!("replay", workload = id, fronts = n)`.
/// Arg values are formatted with `Display`, and only when the tracer is
/// armed. Evaluates to a [`SpanGuard`] — bind it (`let _guard = ...`).
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::enter($name)
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        $crate::span::enter_args($name, || {
            vec![$((stringify!($key), $value.to_string())),+]
        })
    };
}

/// Escapes a string for embedding in a JSON string literal. Shared by
/// every hand-rolled JSON writer in the crate.
pub(crate) fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Drains every thread's buffered events and writes them to `path` as
/// Chrome trace-event JSON (overwriting any previous file).
/// Returns the number of events written.
///
/// Call it from a point where no spans are open (end of `main`, after
/// worker scopes have joined): an open span's begin event would be
/// flushed without its end.
///
/// # Errors
///
/// Propagates the file write failure; the drained events are lost.
pub fn flush_to(path: &Path) -> io::Result<usize> {
    let pid = std::process::id();
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut written = 0usize;
    let bufs: Vec<Arc<ThreadBuf>> =
        thread_bufs().lock().expect("span registry poisoned").clone();
    for buf in bufs {
        let events: Vec<Event> =
            std::mem::take(&mut *buf.events.lock().expect("span buffer poisoned"));
        for e in events {
            if written > 0 {
                out.push(',');
            }
            let ph = if e.begin { 'B' } else { 'E' };
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"waymem\",\"ph\":\"{ph}\",\"pid\":{pid},\"tid\":{},\"ts\":{}.{:03}",
                e.name,
                buf.tid,
                e.ts_ns / 1_000,
                e.ts_ns % 1_000
            );
            if !e.args.is_empty() {
                out.push_str(",\"args\":{");
                for (i, (k, v)) in e.args.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "\"{k}\":\"");
                    escape_into(&mut out, v);
                    out.push('"');
                }
                out.push('}');
            }
            out.push('}');
            written += 1;
        }
    }
    out.push_str("]}");
    std::fs::write(path, out)?;
    // Surface the balanced-drop tally: a silent cap hit would make the
    // exported profile look complete when it is not.
    let dropped = crate::counter!("spans.dropped").get();
    crate::gauge!("obs.spans.dropped").set(dropped as f64);
    if dropped > 0 {
        crate::warn!("spans.dropped", count = dropped, cap = MAX_EVENTS_PER_THREAD);
    }
    Ok(written)
}

/// [`flush_to`] the armed `WAYMEM_SPANS` path. Returns `None` when the
/// tracer was never armed with a path, `Some((path, events))` on a
/// successful write.
///
/// # Errors
///
/// Propagates the file write failure.
pub fn flush() -> io::Result<Option<(PathBuf, usize)>> {
    let path = out_path().lock().expect("span path poisoned").clone();
    match path {
        Some(path) => {
            let events = flush_to(&path)?;
            Ok(Some((path, events)))
        }
        None => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The tracer is process-global; tests that arm it must not overlap.
    fn test_lock() -> &'static Mutex<()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
    }

    #[test]
    fn unarmed_spans_record_nothing() {
        let _serial = test_lock().lock().unwrap();
        disarm();
        let before: usize = thread_bufs()
            .lock()
            .unwrap()
            .iter()
            .map(|b| b.events.lock().unwrap().len())
            .sum();
        {
            let _g = crate::span!("test.unarmed", detail = 42);
        }
        let after: usize = thread_bufs()
            .lock()
            .unwrap()
            .iter()
            .map(|b| b.events.lock().unwrap().len())
            .sum();
        assert_eq!(before, after);
    }

    #[test]
    fn armed_spans_flush_balanced_chrome_json() {
        let _serial = test_lock().lock().unwrap();
        let dir = std::env::temp_dir().join(format!("waymem-obs-span-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        arm(&path);
        {
            let _outer = crate::span!("test.outer", workload = "dct", pass = 1);
            let _inner = crate::span!("test.inner");
        }
        std::thread::scope(|s| {
            s.spawn(|| {
                let _g = crate::span!("test.worker", quoted = "a \"b\"\\c");
            });
        });
        disarm();
        let (flushed, events) = flush().unwrap().expect("armed with a path");
        assert_eq!(flushed, path);
        assert_eq!(events, 6);
        let text = std::fs::read_to_string(&path).unwrap();
        let summary = crate::chrome::validate_trace(&text).expect("valid trace");
        assert_eq!(summary.events, 6);
        assert!(summary.names.contains("test.outer"));
        assert!(summary.names.contains("test.worker"));
        // A second flush starts empty.
        assert_eq!(flush_to(&path).unwrap(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
