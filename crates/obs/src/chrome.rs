//! A standalone JSON parser and Chrome trace-event validator.
//!
//! The span tracer *writes* Chrome trace JSON by string assembly; this
//! module is the independent reader that proves the output round-trips:
//! [`parse`] is a small recursive-descent JSON parser (strings, numbers,
//! bools, null, arrays, objects — the whole grammar), and
//! [`validate_trace`] checks the trace-event contract on top of it: a
//! root object with a non-empty `traceEvents` array, every event
//! carrying `name`/`ph`/`ts`/`pid`/`tid`, and begin/end (`B`/`E`) pairs
//! balanced per thread with matching names. CI's span smoke step and
//! the tracer's own tests both run emitted profiles through it.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// The value under `key` when this is an object that has it.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string content when this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value when this is a number.
    #[must_use]
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements when this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Where and why parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError { at: self.pos, message: message.into() })
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected '{}'", b as char))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => self.err(format!("unexpected byte 0x{b:02x}")),
            None => self.err("unexpected end of input"),
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            self.err(format!("expected '{text}'"))
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| ParseError { at: start, message: "non-utf8 number".into() })?;
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Value::Num(n)),
            _ => Err(ParseError { at: start, message: format!("bad number '{text}'") }),
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            match hex.and_then(char::from_u32) {
                                // Surrogate pairs are beyond what the
                                // tracer ever emits; reject them rather
                                // than mis-decode.
                                Some(c) => {
                                    out.push(c);
                                    self.pos += 4;
                                }
                                None => return self.err("bad \\u escape"),
                            }
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences
                    // whole, so `pos` stays on a char boundary).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| ParseError { at: self.pos, message: "non-utf8".into() })?;
                    let c = rest.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }
}

/// Parses `text` as one JSON document (trailing whitespace allowed,
/// trailing garbage not).
///
/// # Errors
///
/// A [`ParseError`] locating the first malformed byte.
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let mut parser = Parser { bytes: text.as_bytes(), pos: 0 };
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return parser.err("trailing garbage after document");
    }
    Ok(value)
}

/// What [`validate_trace`] found in a well-formed profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSummary {
    /// Total events in `traceEvents`.
    pub events: usize,
    /// Every distinct span name seen.
    pub names: BTreeSet<String>,
    /// Distinct `(pid, tid)` threads that recorded events.
    pub threads: usize,
}

impl TraceSummary {
    /// `true` when some span name starts with `prefix` — how callers
    /// check taxonomy coverage (`store.io.read` and `store.io.write`
    /// both satisfy `store.io`).
    #[must_use]
    pub fn has_span_prefix(&self, prefix: &str) -> bool {
        self.names.iter().any(|n| n.starts_with(prefix))
    }
}

/// Validates `text` as a Chrome trace-event profile: well-formed JSON,
/// a root object with a non-empty `traceEvents` array, every event an
/// object carrying string `name`/`ph` and numeric `ts`/`pid`/`tid`, and
/// `B`/`E` events balanced per `(pid, tid)` in order with matching
/// names.
///
/// # Errors
///
/// A human-readable description of the first violation.
pub fn validate_trace(text: &str) -> Result<TraceSummary, String> {
    let root = parse(text).map_err(|e| e.to_string())?;
    let events = root
        .get("traceEvents")
        .ok_or("root object has no traceEvents")?
        .as_arr()
        .ok_or("traceEvents is not an array")?;
    if events.is_empty() {
        return Err("traceEvents is empty".into());
    }
    let mut names = BTreeSet::new();
    let mut stacks: BTreeMap<(u64, u64), Vec<String>> = BTreeMap::new();
    for (i, event) in events.iter().enumerate() {
        let field = |key: &str| {
            event.get(key).ok_or_else(|| format!("event {i} has no {key}"))
        };
        let name =
            field("name")?.as_str().ok_or_else(|| format!("event {i} name not a string"))?;
        let ph = field("ph")?.as_str().ok_or_else(|| format!("event {i} ph not a string"))?;
        field("ts")?.as_num().ok_or_else(|| format!("event {i} ts not a number"))?;
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let pid_tid = |v: &Value| v.as_num().map(|n| n as u64);
        let pid = pid_tid(field("pid")?).ok_or_else(|| format!("event {i} pid not a number"))?;
        let tid = pid_tid(field("tid")?).ok_or_else(|| format!("event {i} tid not a number"))?;
        names.insert(name.to_owned());
        let stack = stacks.entry((pid, tid)).or_default();
        match ph {
            "B" => stack.push(name.to_owned()),
            "E" => {
                let open = stack
                    .pop()
                    .ok_or_else(|| format!("event {i}: E '{name}' with no open span"))?;
                if open != name {
                    return Err(format!(
                        "event {i}: E '{name}' closes open span '{open}'"
                    ));
                }
            }
            // Complete/instant/metadata events need no balancing.
            _ => {}
        }
    }
    let threads = stacks.len();
    for ((pid, tid), stack) in stacks {
        if let Some(open) = stack.last() {
            return Err(format!("thread {pid}/{tid}: span '{open}' never ends"));
        }
    }
    Ok(TraceSummary { events: events.len(), names, threads })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_value_kind() {
        let v = parse(
            r#"{"a": [1, -2.5, 1e3], "b": "x\n\"y\"", "c": true, "d": null, "e": {}}"#,
        )
        .unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert!((v.get("a").unwrap().as_arr().unwrap()[2].as_num().unwrap() - 1000.0).abs() < 1e-9);
        assert_eq!(v.get("b").unwrap().as_str(), Some("x\n\"y\""));
        assert_eq!(v.get("c"), Some(&Value::Bool(true)));
        assert_eq!(v.get("d"), Some(&Value::Null));
        assert_eq!(v.get("e"), Some(&Value::Obj(vec![])));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse(r#"{"a":}"#).is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("123 456").is_err());
        assert!(parse(r#""unterminated"#).is_err());
    }

    fn event(name: &str, ph: &str, ts: u64, tid: u64) -> String {
        format!(r#"{{"name":"{name}","ph":"{ph}","ts":{ts},"pid":1,"tid":{tid}}}"#)
    }

    #[test]
    fn balanced_trace_validates() {
        let text = format!(
            r#"{{"traceEvents":[{},{},{},{},{},{}]}}"#,
            event("a", "B", 0, 1),
            event("b", "B", 1, 1),
            event("b", "E", 2, 1),
            event("a", "E", 3, 1),
            event("c", "B", 0, 2),
            event("c", "E", 9, 2),
        );
        let summary = validate_trace(&text).unwrap();
        assert_eq!(summary.events, 6);
        assert_eq!(summary.threads, 2);
        assert!(summary.has_span_prefix("a"));
        assert!(!summary.has_span_prefix("store.io"));
    }

    #[test]
    fn unbalanced_traces_are_rejected() {
        let dangling = format!(r#"{{"traceEvents":[{}]}}"#, event("a", "B", 0, 1));
        assert!(validate_trace(&dangling).unwrap_err().contains("never ends"));
        let orphan = format!(r#"{{"traceEvents":[{}]}}"#, event("a", "E", 0, 1));
        assert!(validate_trace(&orphan).unwrap_err().contains("no open span"));
        let crossed = format!(
            r#"{{"traceEvents":[{},{},{},{}]}}"#,
            event("a", "B", 0, 1),
            event("b", "B", 1, 1),
            event("a", "E", 2, 1),
            event("b", "E", 3, 1),
        );
        assert!(validate_trace(&crossed).unwrap_err().contains("closes open span"));
        assert!(validate_trace(r#"{"traceEvents":[]}"#).unwrap_err().contains("empty"));
        assert!(validate_trace(r#"{"other":1}"#).unwrap_err().contains("traceEvents"));
    }
}
