//! Exclusive wall-clock accounting for the four run phases.
//!
//! A run's time goes to exactly one of four places: **resolve** (workload
//! identity — hashing, store lookups, cache bookkeeping), **record**
//! (producing a trace — CPU interpretation, log parsing, synthesis),
//! **io** (moving trace bytes to or from disk), and **replay** (driving
//! events through cache fronts). [`enter`] pushes a phase onto a
//! per-thread stack and *pauses* the parent phase, so nested guards
//! yield disjoint self-time: entering `Io` inside `Record` charges the
//! disk wait to `Io`, not both.
//!
//! Accumulators are global relaxed atomics summed across threads; with
//! parallel workers the totals are "thread-seconds" (they can exceed
//! elapsed wall-clock), which is exactly the cost-attribution quantity a
//! breakdown wants. [`snapshot`] reads the totals; the `headline` binary
//! exports them as the `phases` object of `BENCH_headline.json`.

use std::cell::RefCell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// The four places a run's wall-clock can go.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Phase {
    /// Workload identity: hashing, store lookups, cache bookkeeping.
    Resolve = 0,
    /// Trace production: CPU interpretation, log parsing, synthesis.
    Record = 1,
    /// Trace bytes moving to or from disk.
    Io = 2,
    /// Events driven through cache fronts.
    Replay = 3,
}

/// How many phases exist (the length of [`snapshot`]'s array).
pub const COUNT: usize = 4;

impl Phase {
    /// The phase's export name (`resolve` / `record` / `io` / `replay`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Phase::Resolve => "resolve",
            Phase::Record => "record",
            Phase::Io => "io",
            Phase::Replay => "replay",
        }
    }
}

static ACCUM_NS: [AtomicU64; COUNT] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];

thread_local! {
    /// This thread's stack of open phases: `(phase, segment start)`.
    /// The top entry is running; everything beneath is paused.
    static STACK: RefCell<Vec<(Phase, Instant)>> = const { RefCell::new(Vec::new()) };
}

fn charge(phase: Phase, since: Instant, now: Instant) {
    let ns = u64::try_from(now.duration_since(since).as_nanos()).unwrap_or(u64::MAX);
    ACCUM_NS[phase as usize].fetch_add(ns, Ordering::Relaxed);
}

/// Opens `phase` on this thread until the returned guard drops, pausing
/// whichever phase was running (its elapsed segment is charged first).
/// Guards must drop in LIFO order — the natural result of binding them
/// to nested scopes. The guard is not `Send`: a phase segment is a
/// single-thread affair.
pub fn enter(phase: Phase) -> PhaseGuard {
    let now = Instant::now();
    STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        if let Some((parent, since)) = stack.last_mut() {
            charge(*parent, *since, now);
            *since = now;
        }
        stack.push((phase, now));
    });
    PhaseGuard { _not_send: PhantomData }
}

/// Closes its phase when dropped, charging the final segment and
/// resuming the parent phase's clock.
#[derive(Debug)]
#[must_use = "a phase covers the guard's lifetime — bind it to a scope"]
pub struct PhaseGuard {
    /// Keeps the guard off other threads (`*const ()` is `!Send`).
    _not_send: PhantomData<*const ()>,
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        let now = Instant::now();
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            if let Some((phase, since)) = stack.pop() {
                charge(phase, since, now);
            }
            if let Some((_, since)) = stack.last_mut() {
                *since = now;
            }
        });
    }
}

/// Accumulated self-time per phase, in seconds, summed across every
/// thread that ever entered one. Indexed in [`Phase`] declaration
/// order; pair each entry with [`Phase::name`] via the returned tuples.
#[must_use]
pub fn snapshot() -> [(&'static str, f64); COUNT] {
    #[allow(clippy::cast_precision_loss)]
    let secs = |p: Phase| ACCUM_NS[p as usize].load(Ordering::Relaxed) as f64 / 1e9;
    [
        (Phase::Resolve.name(), secs(Phase::Resolve)),
        (Phase::Record.name(), secs(Phase::Record)),
        (Phase::Io.name(), secs(Phase::Io)),
        (Phase::Replay.name(), secs(Phase::Replay)),
    ]
}

/// Zeroes every accumulator (tests and repeated in-process runs).
pub fn reset() {
    for acc in &ACCUM_NS {
        acc.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn nested_phases_account_self_time_exclusively() {
        // Run in a dedicated thread so parallel unit tests cannot share
        // this thread's stack; accumulators are still global, so compare
        // deltas.
        let before: Vec<f64> = snapshot().iter().map(|(_, s)| *s).collect();
        std::thread::spawn(|| {
            let _outer = enter(Phase::Record);
            std::thread::sleep(Duration::from_millis(20));
            {
                let _inner = enter(Phase::Io);
                std::thread::sleep(Duration::from_millis(120));
            }
            std::thread::sleep(Duration::from_millis(10));
        })
        .join()
        .unwrap();
        let after = snapshot();
        let record = after[Phase::Record as usize].1 - before[Phase::Record as usize];
        let io = after[Phase::Io as usize].1 - before[Phase::Io as usize];
        // Sleeps only ever oversleep: self-time lower bounds hold, and
        // the 120 ms Io segment must not also be charged to Record —
        // if it leaked, Record's self-time would be at least 150 ms.
        assert!(record >= 0.030, "record self-time {record}");
        assert!(io >= 0.120, "io self-time {io}");
        assert!(record < 0.110, "io leaked into record: {record}");
    }

    #[test]
    fn names_are_the_export_contract() {
        let names: Vec<_> = snapshot().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, ["resolve", "record", "io", "replay"]);
    }
}
