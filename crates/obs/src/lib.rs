//! # waymem-obs — the workbench's observability layer
//!
//! Everything the rest of the workspace uses to see where cycles and
//! nanojoules go, hand-rolled over `std` (no network dependencies, no
//! background threads):
//!
//! * [`metrics`] — a global lock-free registry of named instruments:
//!   atomic [`Counter`](metrics::Counter)s and
//!   [`Gauge`](metrics::Gauge)s plus sharded power-of-two-bucket
//!   [`Histogram`](metrics::Histogram)s (p50/p95/p99). Handles are
//!   interned once per call site (the [`counter!`], [`gauge!`] and
//!   [`histogram!`] macros cache them in a `OnceLock`), so the hot path
//!   is a single relaxed atomic op.
//! * [`mod@span`] — an RAII span tracer: [`span!`]`("replay", workload = id)`
//!   records begin/end events into bounded per-thread buffers,
//!   [flushed](span::flush) on demand as Chrome trace-event JSON that
//!   loads directly in Perfetto or `chrome://tracing`. Armed by the
//!   `WAYMEM_SPANS=<path>` environment variable (via
//!   [`init_from_env`]); when unarmed, a span is one relaxed atomic
//!   load.
//! * [`mod@log`] — a leveled structured logger (`WAYMEM_LOG=warn|info|debug`,
//!   `key=value` fields on every line) behind the [`warn!`], [`info!`]
//!   and [`debug!`] macros — the replacement for ad-hoc `eprintln!`
//!   diagnostics.
//! * [`phase`] — exclusive wall-clock accounting for the four run phases
//!   (resolve / record / io / replay); the per-run breakdown the
//!   `headline` binary exports into `BENCH_headline.json`.
//! * [`chrome`] — a minimal standalone JSON parser and a Chrome
//!   trace-event validator, so tests and CI can round-trip the profiles
//!   the tracer emits without external tooling.
//! * [`snapshot`] — a one-call JSON freeze of the whole registry plus
//!   the phase accounting, embedded as the `"metrics"` object of every
//!   bench export and ledger record, with a matching reader-side
//!   validator.
//! * [`flight`] — the crash flight recorder: bounded per-thread rings of
//!   recent log/span/note events, dumped as one structured JSON black
//!   box by the panic hook and at the reliability seams (worker death,
//!   quarantine, first injected fault).
//!
//! Binaries call [`init_from_env`] once at startup; library code just
//! uses the macros and stays oblivious to whether anyone is watching.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod chrome;
pub mod flight;
pub mod log;
pub mod metrics;
pub mod phase;
pub mod snapshot;
pub mod span;

pub use metrics::registry;
pub use span::SpanGuard;

/// Arms the whole layer from the process environment, reading each
/// variable once: `WAYMEM_SPANS=<path>` arms the span tracer,
/// `WAYMEM_LOG=warn|info|debug` sets the log level (`warn` when unset),
/// and `WAYMEM_FLIGHT=<path>` points the crash flight recorder's dumps
/// (default `waymem-flight.json`; `off` disables it) and installs its
/// panic hook. Idempotent; binaries call it first thing in `main`.
pub fn init_from_env() {
    span::init_from_env();
    log::init_from_env();
    flight::init_from_env();
}
