//! The composable experiment builder — one entry point for every
//! workload × scheme × store run.
//!
//! The driver layer used to expose one free function per combination of
//! workload source (kernel / recorded trace / external log) and storage
//! (plain / store-backed) — nine overlapping `run_*` variants with
//! copy-pasted positional plumbing. [`Experiment`] replaces them with a
//! typed builder over the one underlying pipeline:
//!
//! 1. **resolve** the workload to a [`WorkloadId`] plus a
//!    [`RecordedTrace`] — interpreting a kernel, parsing a log,
//!    running a synthetic generator, or taking a trace as given;
//! 2. **record-or-load** through an optional [`TraceStore`], so the
//!    expensive production step happens at most once per store lifetime
//!    (zero times, with a warm persistent cache);
//! 3. **replay** the trace across every requested scheme front-end under
//!    an [`ExecPolicy`] — scoped worker threads, a serial loop, or an
//!    adaptive choice between them. All policies are bit-identical;
//!    only wall-clock differs.
//!
//! ```
//! use waymem_sim::{Experiment, DScheme, IScheme};
//! use waymem_workloads::Benchmark;
//!
//! # fn main() -> Result<(), waymem_sim::RunError> {
//! let result = Experiment::kernel(Benchmark::Dct)
//!     .dschemes([DScheme::Original, DScheme::paper_way_memo()])
//!     .ischemes([IScheme::Original, IScheme::paper_way_memo()])
//!     .run()?;
//! assert!(result.dcache[1].power.total_mw() < result.dcache[0].power.total_mw());
//! # Ok(())
//! # }
//! ```
//!
//! [`Suite`] is the multi-workload companion: the same knobs, shared
//! across a list of workloads that fan out over worker threads (the
//! seven paper kernels via [`Suite::kernels`], or any mix of kernels,
//! logs and synthetics via [`Suite::workload`]).

use std::path::{Path, PathBuf};
use std::sync::Arc;

use waymem_cache::Geometry;
use waymem_hwmodel::Technology;
use waymem_ingest::{hash_file, parse, parse_to_wmtr, synth, LogFormat};
use waymem_isa::RecordedTrace;
use waymem_trace::{
    stream, StoreStats, StreamError, StreamingEncoder, StreamingTrace, SynthSpec, TraceStore,
    WorkloadId,
};
use waymem_workloads::Benchmark;

use crate::run::{
    kernel_source_hash, record_trace, record_trace_streaming, replay_source_with_policy,
    run_kernel_fanout, RunError, SimConfig, SimResult, TraceSource,
};
use crate::{DScheme, IScheme};

/// How replay work is scheduled across the host's cores.
///
/// Every policy produces bit-identical results (each front-end consumes
/// the identical event stream in isolation; `tests/experiment.rs` pins
/// the equivalence) — the policy only chooses how the work is laid onto
/// threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecPolicy {
    /// Parallel when it can pay for itself (more than one front-end and
    /// more than one hardware thread), serial otherwise. The default.
    #[default]
    Auto,
    /// Always fan out across scoped worker threads, at most one per
    /// hardware thread.
    Parallel,
    /// Always run inline on the calling thread. For a kernel workload
    /// without a store this additionally skips materializing the trace,
    /// feeding the front-ends per event straight from the interpreter —
    /// the engine the parallel replay is cross-validated against.
    Serial,
}

/// What an [`Experiment`] runs: the workload half of the builder.
///
/// Usually constructed through the [`Experiment`] constructors (or the
/// `From` impls when feeding a [`Suite`]), not spelled out directly.
#[derive(Debug, Clone)]
pub enum WorkloadSpec {
    /// One of the seven built-in paper kernels, at the experiment's
    /// configured scale.
    Kernel(Benchmark),
    /// Any workload by identity: kernels record at the id's own scale,
    /// synthetics generate, and external ids resolve only against a
    /// store that already holds them (a warm persistent cache dir).
    Id(WorkloadId),
    /// An already-recorded trace under a caller-chosen identity. Taken
    /// as given: the store, if any, is bypassed rather than trusted over
    /// the in-memory trace.
    Recorded {
        /// The identity replay results carry.
        id: WorkloadId,
        /// The trace to replay.
        trace: Arc<RecordedTrace>,
    },
    /// A deterministic synthetic access pattern, generated on demand.
    Synthetic(SynthSpec),
    /// An external memory-trace log, parsed on demand — hashed first, so
    /// a store-backed run skips the parse entirely on a warm hit.
    Log {
        /// Path to the log file.
        path: PathBuf,
        /// Grammar override; `None` picks by file extension
        /// ([`LogFormat::for_path`]).
        format: Option<LogFormat>,
    },
}

impl From<Benchmark> for WorkloadSpec {
    fn from(bench: Benchmark) -> Self {
        WorkloadSpec::Kernel(bench)
    }
}

impl From<WorkloadId> for WorkloadSpec {
    fn from(id: WorkloadId) -> Self {
        WorkloadSpec::Id(id)
    }
}

impl From<SynthSpec> for WorkloadSpec {
    fn from(spec: SynthSpec) -> Self {
        WorkloadSpec::Synthetic(spec)
    }
}

impl From<&Path> for WorkloadSpec {
    fn from(path: &Path) -> Self {
        WorkloadSpec::Log { path: path.to_path_buf(), format: None }
    }
}

impl From<PathBuf> for WorkloadSpec {
    fn from(path: PathBuf) -> Self {
        WorkloadSpec::Log { path, format: None }
    }
}

/// The experiment's storage selection: nothing, a caller-shared store,
/// or one the experiment owns.
#[derive(Debug, Default)]
enum StoreSel<'s> {
    #[default]
    None,
    Borrowed(&'s TraceStore),
    Owned(Box<TraceStore>),
}

impl StoreSel<'_> {
    fn get(&self) -> Option<&TraceStore> {
        match self {
            StoreSel::None => None,
            StoreSel::Borrowed(s) => Some(s),
            StoreSel::Owned(s) => Some(s.as_ref()),
        }
    }
}

/// A single workload × scheme-set × store run, assembled builder-style
/// and terminated by [`run`](Experiment::run) (or
/// [`prepare`](Experiment::prepare) when the caller wants the resolved
/// trace and ingestion metadata before replaying).
///
/// See the [module docs](self) for the pipeline and an example; see
/// [`Suite`] for multi-workload fan-out.
#[derive(Debug)]
#[must_use = "an Experiment does nothing until .run() / .prepare()"]
pub struct Experiment<'s> {
    workload: WorkloadSpec,
    cfg: SimConfig,
    dschemes: Vec<DScheme>,
    ischemes: Vec<IScheme>,
    store: StoreSel<'s>,
    policy: ExecPolicy,
    streaming: bool,
}

impl Experiment<'_> {
    /// An experiment over any workload spec (usually via the typed
    /// constructors below).
    pub fn new(workload: impl Into<WorkloadSpec>) -> Self {
        Experiment {
            workload: workload.into(),
            cfg: SimConfig::default(),
            dschemes: Vec::new(),
            ischemes: Vec::new(),
            store: StoreSel::None,
            policy: ExecPolicy::Auto,
            streaming: false,
        }
    }

    /// One of the seven built-in paper kernels, at the configured
    /// [`scale`](Experiment::scale).
    pub fn kernel(bench: Benchmark) -> Self {
        Self::new(WorkloadSpec::Kernel(bench))
    }

    /// Any workload by identity (see [`WorkloadSpec::Id`]).
    pub fn workload(id: WorkloadId) -> Self {
        Self::new(WorkloadSpec::Id(id))
    }

    /// An already-recorded trace under the given identity.
    pub fn recorded(id: WorkloadId, trace: impl Into<Arc<RecordedTrace>>) -> Self {
        Self::new(WorkloadSpec::Recorded { id, trace: trace.into() })
    }

    /// A deterministic synthetic access pattern.
    pub fn synthetic(spec: SynthSpec) -> Self {
        Self::new(WorkloadSpec::Synthetic(spec))
    }

    /// An external memory-trace log, format picked by file extension
    /// unless overridden with [`format`](Experiment::format).
    pub fn ingest(path: impl Into<PathBuf>) -> Self {
        Self::new(WorkloadSpec::Log { path: path.into(), format: None })
    }
}

impl<'s> Experiment<'s> {
    /// Replaces the whole simulation configuration (geometry, scale,
    /// technology) at once.
    pub fn config(mut self, cfg: SimConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Sets the cache geometry for both I- and D-caches.
    pub fn geometry(mut self, geometry: Geometry) -> Self {
        self.cfg.geometry = geometry;
        self
    }

    /// Sets the workload scale factor (1 = default kernel sizes). Only
    /// [`Experiment::kernel`] workloads read it; a workload given as a
    /// bare [`WorkloadId::Kernel`] carries its own scale, which wins.
    pub fn scale(mut self, scale: u32) -> Self {
        self.cfg.scale = scale;
        self
    }

    /// Sets the technology / operating point for the power models.
    pub fn technology(mut self, technology: Technology) -> Self {
        self.cfg.technology = technology;
        self
    }

    /// Sets the D-cache schemes to evaluate, replacing any previous set.
    /// Accepts arrays, vecs, or any iterator — e.g. the named presets
    /// [`fig4_dschemes`](crate::presets::fig4_dschemes) /
    /// [`full_dschemes`](crate::presets::full_dschemes).
    pub fn dschemes(mut self, schemes: impl IntoIterator<Item = DScheme>) -> Self {
        self.dschemes = schemes.into_iter().collect();
        self
    }

    /// Sets the I-cache schemes to evaluate, replacing any previous set.
    /// Accepts arrays, vecs, or any iterator — e.g.
    /// [`fig6_ischemes`](crate::presets::fig6_ischemes) /
    /// [`full_ischemes`](crate::presets::full_ischemes).
    pub fn ischemes(mut self, schemes: impl IntoIterator<Item = IScheme>) -> Self {
        self.ischemes = schemes.into_iter().collect();
        self
    }

    /// Overrides the log grammar for [`ingest`](Experiment::ingest)
    /// workloads (no effect on other workload kinds).
    pub fn format(mut self, format: LogFormat) -> Self {
        if let WorkloadSpec::Log { format: f, .. } = &mut self.workload {
            *f = Some(format);
        }
        self
    }

    /// Threads a shared [`TraceStore`] through the run: the workload is
    /// produced (interpreted / parsed / generated) at most once per
    /// store lifetime; every later run with the same workload — any
    /// geometry, any scheme set, any thread — replays the cached trace.
    pub fn store(mut self, store: &'s TraceStore) -> Self {
        self.store = StoreSel::Borrowed(store);
        self
    }

    /// Like [`store`](Experiment::store), but with a store owned by the
    /// experiment and wired from the environment
    /// ([`TraceStore::from_env`]): `WAYMEM_TRACE_CACHE` enables a
    /// persistent cache dir, `WAYMEM_TRACE_CACHE_MAX_BYTES` caps it.
    pub fn store_from_env(mut self) -> Self {
        self.store = StoreSel::Owned(Box::new(TraceStore::from_env()));
        self
    }

    /// Sets the execution policy (default [`ExecPolicy::Auto`]).
    pub fn policy(mut self, policy: ExecPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Resolves the workload to an on-disk `.wmtr` file and replays it
    /// through a bounded window instead of materializing the event
    /// vector: resident memory is O(batch) regardless of trace length,
    /// so multi-GB captures fit. Results are bit-identical to the
    /// materialized path (pinned by `tests/determinism.rs`); the
    /// production step (interpreting / parsing / generating) streams
    /// straight into the file too. With a store attached, warm `.wmtr`
    /// cache files are opened in place without re-decoding; without one,
    /// the file lives in a scratch temp path removed when the run ends.
    pub fn streaming(mut self, streaming: bool) -> Self {
        self.streaming = streaming;
        self
    }

    /// Runs the experiment: resolve → record-or-load → replay.
    ///
    /// # Errors
    ///
    /// [`RunError`] when the workload cannot be produced — a kernel that
    /// fails to assemble or halt, an unreadable or malformed log, or an
    /// external [`WorkloadId`] no store holds — or when a
    /// [`streaming`](Experiment::streaming) run's trace file fails to
    /// read back. Materialized replay itself is infallible.
    pub fn run(self) -> Result<SimResult, RunError> {
        // A serial kernel run without a store can skip materializing the
        // trace entirely, feeding the front-ends per event straight from
        // the interpreter (bit-identical; pinned by tests/experiment.rs).
        if let (WorkloadSpec::Kernel(bench), StoreSel::None, false) =
            (&self.workload, &self.store, self.streaming)
        {
            let serial = match self.policy {
                ExecPolicy::Serial => true,
                ExecPolicy::Auto => {
                    !crate::run::replay_in_parallel(self.dschemes.len() + self.ischemes.len())
                }
                ExecPolicy::Parallel => false,
            };
            if serial {
                return run_kernel_fanout(*bench, &self.cfg, &self.dschemes, &self.ischemes);
            }
        }
        self.prepare()?.run()
    }

    /// Resolves the workload — hashing, store lookup, and production —
    /// without replaying, so callers can inspect the trace and the
    /// ingestion metadata (or amortize one resolution over custom
    /// logic) before [`Prepared::run`] replays it.
    ///
    /// # Errors
    ///
    /// As [`run`](Experiment::run).
    pub fn prepare(self) -> Result<Prepared, RunError> {
        let _phase = waymem_obs::phase::enter(waymem_obs::phase::Phase::Resolve);
        let _span = waymem_obs::span!("resolve", workload = describe_workload(&self.workload));
        let Experiment { workload, cfg, dschemes, ischemes, store, policy, streaming } = self;
        let store = store.get();
        let mut ingest_meta = None;
        if streaming {
            let (id, source_hash, source) =
                resolve_streaming(workload, &cfg, store, &mut ingest_meta)?;
            return Ok(Prepared {
                id,
                source_hash,
                source,
                cfg,
                dschemes,
                ischemes,
                policy,
                ingest_meta,
            });
        }
        let (id, source_hash, trace) = match workload {
            WorkloadSpec::Kernel(bench) => {
                resolve_kernel(bench, cfg.scale, &cfg, store)?
            }
            WorkloadSpec::Id(WorkloadId::Kernel { benchmark, scale }) => {
                resolve_kernel(benchmark, scale, &cfg, store)?
            }
            WorkloadSpec::Id(WorkloadId::Synthetic(spec))
            | WorkloadSpec::Synthetic(spec) => {
                let id = WorkloadId::Synthetic(spec);
                let hash = synth::source_hash(spec);
                let trace = match store {
                    Some(s) => s
                        .get_or_record(id, hash, || {
                            Ok::<_, std::convert::Infallible>(generate_synth(spec))
                        })
                        .unwrap_or_else(|e| match e {}),
                    None => Arc::new(generate_synth(spec)),
                };
                (id, hash, trace)
            }
            WorkloadSpec::Id(id @ WorkloadId::External { hash }) => {
                // Only a store (e.g. a warm persistent cache dir) can
                // resolve a bare external id — there is nothing to
                // re-produce it from.
                let trace = match store {
                    Some(s) => {
                        s.get_or_record(id, hash, || Err(RunError::MissingTrace { id }))?
                    }
                    None => return Err(RunError::MissingTrace { id }),
                };
                (id, hash, trace)
            }
            WorkloadSpec::Recorded { id, trace } => (id, 0, trace),
            WorkloadSpec::Log { path, format } => match store {
                // With a store, hash the raw bytes up front: a warm
                // `.wmtr` hit then skips the parse (and the event
                // materialization) entirely — for a multi-GB capture
                // the parse *is* the cost.
                Some(s) => {
                    let hash = hash_file(&path).map_err(|e| RunError::Ingest {
                        path: path.clone(),
                        message: format!("cannot read: {e}"),
                    })?;
                    let id = WorkloadId::External { hash };
                    let trace = s.get_or_record(id, hash, || {
                        let (trace, parsed_hash, meta) = parse_log(&path, format)?;
                        // The parser folds the identical byte stream into
                        // FNV-1a64; divergence means the file changed
                        // between the hash and the parse (or a parser
                        // regression) — either way the cache key would
                        // lie about the trace it maps to.
                        if parsed_hash != hash {
                            return Err(RunError::Ingest {
                                path: path.clone(),
                                message: format!(
                                    "file changed while being ingested \
                                     (hashed {hash:016x}, parsed {parsed_hash:016x})"
                                ),
                            });
                        }
                        ingest_meta = Some(meta);
                        Ok(trace)
                    })?;
                    (id, hash, trace)
                }
                // Store-less, the up-front hash would only double the
                // file I/O: parse once and take the identity from the
                // hash the parser streams.
                None => {
                    let (trace, hash, meta) = parse_log(&path, format)?;
                    ingest_meta = Some(meta);
                    (WorkloadId::External { hash }, hash, Arc::new(trace))
                }
            },
        };
        Ok(Prepared {
            id,
            source_hash,
            source: TraceSource::Materialized(trace),
            cfg,
            dschemes,
            ischemes,
            policy,
            ingest_meta,
        })
    }
}

/// Resolves a workload to an on-disk `.wmtr` streaming handle — the
/// [`Experiment::streaming`] counterpart of the materializing match in
/// [`Experiment::prepare`]. Store-backed resolutions go through
/// [`TraceStore::open_stream`] (warm cache files open in place, cold
/// ones are produced straight to disk); store-less ones produce to a
/// scratch temp file removed when the handle drops.
fn resolve_streaming(
    workload: WorkloadSpec,
    cfg: &SimConfig,
    store: Option<&TraceStore>,
    ingest_meta: &mut Option<IngestMeta>,
) -> Result<(WorkloadId, u64, TraceSource), RunError> {
    match workload {
        WorkloadSpec::Kernel(bench) => resolve_kernel_streaming(bench, cfg.scale, cfg, store),
        WorkloadSpec::Id(WorkloadId::Kernel { benchmark, scale }) => {
            resolve_kernel_streaming(benchmark, scale, cfg, store)
        }
        WorkloadSpec::Id(WorkloadId::Synthetic(spec)) | WorkloadSpec::Synthetic(spec) => {
            let id = WorkloadId::Synthetic(spec);
            let hash = synth::source_hash(spec);
            let st = open_stream_via(store, id, hash, |path| {
                let _phase = waymem_obs::phase::enter(waymem_obs::phase::Phase::Record);
                let _span = waymem_obs::span!("record", workload = id.name());
                let enc = StreamingEncoder::create(path).map_err(StreamError::from)?;
                let (stats, enc) = synth::generate_into(spec, enc);
                enc.finish(stats.cycles, hash)?;
                Ok(())
            })?;
            Ok((id, hash, TraceSource::Streaming(Arc::new(st))))
        }
        WorkloadSpec::Id(id @ WorkloadId::External { hash }) => match store {
            Some(s) => {
                let st =
                    s.open_stream(id, hash, |_: &Path| Err(RunError::MissingTrace { id }))?;
                Ok((id, hash, TraceSource::Streaming(Arc::new(st))))
            }
            None => Err(RunError::MissingTrace { id }),
        },
        WorkloadSpec::Recorded { id, trace } => {
            // Taken as given, like the materialized path: the store is
            // bypassed; the trace is spilled to scratch and replayed
            // from disk (the caller asked for bounded replay memory,
            // though the in-memory copy they handed over still exists).
            let st = open_scratch_stream(id, |path| {
                stream::write_encoded(&trace, 0, path).map_err(StreamError::from)?;
                Ok(())
            })?;
            Ok((id, 0, TraceSource::Streaming(Arc::new(st))))
        }
        WorkloadSpec::Log { path, format } => {
            // Hash the raw bytes up front in every case: the hash is the
            // workload's identity, and a warm store hit then skips the
            // parse entirely.
            let hash = hash_file(&path).map_err(|e| RunError::Ingest {
                path: path.clone(),
                message: format!("cannot read: {e}"),
            })?;
            let id = WorkloadId::External { hash };
            let st = open_stream_via(store, id, hash, |out| {
                produce_log_streaming(&path, format, hash, out, ingest_meta)
            })?;
            Ok((id, hash, TraceSource::Streaming(Arc::new(st))))
        }
    }
}

/// Streaming kernel resolution: the CPU interpreter's event stream goes
/// straight to the `.wmtr` file via [`record_trace_streaming`].
fn resolve_kernel_streaming(
    bench: Benchmark,
    scale: u32,
    cfg: &SimConfig,
    store: Option<&TraceStore>,
) -> Result<(WorkloadId, u64, TraceSource), RunError> {
    let id = WorkloadId::kernel(bench, scale);
    let hash = kernel_source_hash(bench, scale);
    let record_cfg = SimConfig { scale, ..*cfg };
    let st = open_stream_via(store, id, hash, |path| {
        record_trace_streaming(bench, &record_cfg, path).map(|_| ())
    })?;
    Ok((id, hash, TraceSource::Streaming(Arc::new(st))))
}

/// Opens a streaming handle through the store when one is attached, or
/// through a self-cleaning scratch file otherwise.
fn open_stream_via(
    store: Option<&TraceStore>,
    id: WorkloadId,
    hash: u64,
    produce: impl FnOnce(&Path) -> Result<(), RunError>,
) -> Result<StreamingTrace, RunError> {
    match store {
        Some(s) => s.open_stream(id, hash, produce),
        None => open_scratch_stream(id, produce),
    }
}

/// Produces a `.wmtr` file into a per-process scratch path and opens it
/// marked for deletion when the handle drops — the store-less streaming
/// path, where nothing outlives the experiment.
fn open_scratch_stream(
    id: WorkloadId,
    produce: impl FnOnce(&Path) -> Result<(), RunError>,
) -> Result<StreamingTrace, RunError> {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    let path = std::env::temp_dir().join(format!(
        "waymem-exp-{}-{}-{}",
        std::process::id(),
        n,
        id.file_name()
    ));
    produce(&path)?;
    match StreamingTrace::open(&path) {
        Ok(st) => Ok(st.delete_on_drop()),
        Err(e) => {
            let _ = std::fs::remove_file(&path);
            Err(e.into())
        }
    }
}

/// Parses a log straight into a `.wmtr` file at `out`, mapping every
/// failure to a structured [`RunError::Ingest`] and capturing the
/// ingestion metadata — the streaming counterpart of [`parse_log`].
fn produce_log_streaming(
    path: &Path,
    format: Option<LogFormat>,
    expected_hash: u64,
    out: &Path,
    ingest_meta: &mut Option<IngestMeta>,
) -> Result<(), RunError> {
    let _phase = waymem_obs::phase::enter(waymem_obs::phase::Phase::Record);
    let _span = waymem_obs::span!("record", source = path.display());
    let format = format.unwrap_or_else(|| LogFormat::for_path(path));
    let ingest_err = |message: String| RunError::Ingest { path: path.to_path_buf(), message };
    let file = std::fs::File::open(path).map_err(|e| ingest_err(format!("cannot open: {e}")))?;
    let stats = parse_to_wmtr(format, std::io::BufReader::new(file), out)
        .map_err(|e| ingest_err(e.to_string()))?;
    if stats.events() == 0 {
        return Err(ingest_err("log contains no accesses".to_owned()));
    }
    // The parser folds the identical byte stream into FNV-1a64;
    // divergence means the file changed between the hash and the parse
    // (or a parser regression) — either way the cache key would lie
    // about the trace it maps to.
    if stats.source_hash != expected_hash {
        return Err(ingest_err(format!(
            "file changed while being ingested \
             (hashed {expected_hash:016x}, parsed {:016x})",
            stats.source_hash
        )));
    }
    *ingest_meta = Some(IngestMeta {
        format,
        lines: stats.lines,
        skipped: stats.skipped,
    });
    Ok(())
}

/// Generates a synthetic trace under the Record phase, so synthetic
/// production shows up in the phase breakdown and span stream exactly
/// like a kernel interpretation or a log parse.
fn generate_synth(spec: SynthSpec) -> RecordedTrace {
    let _phase = waymem_obs::phase::enter(waymem_obs::phase::Phase::Record);
    let _span = waymem_obs::span!("record", workload = WorkloadId::Synthetic(spec).name());
    synth::generate(spec)
}

/// Resolves a kernel workload at an explicit scale: record through the
/// store when one is present (verified against [`kernel_source_hash`]),
/// interpret directly otherwise.
fn resolve_kernel(
    bench: Benchmark,
    scale: u32,
    cfg: &SimConfig,
    store: Option<&TraceStore>,
) -> Result<(WorkloadId, u64, Arc<RecordedTrace>), RunError> {
    let id = WorkloadId::kernel(bench, scale);
    let hash = kernel_source_hash(bench, scale);
    let record_cfg = SimConfig { scale, ..*cfg };
    let trace = match store {
        Some(s) => s.get_or_record(id, hash, || record_trace(bench, &record_cfg))?,
        None => Arc::new(record_trace(bench, &record_cfg)?),
    };
    Ok((id, hash, trace))
}

/// Parses a log file into a trace plus its streamed content hash and
/// ingestion metadata, mapping every failure — unreadable file,
/// malformed line, empty capture — to a structured [`RunError::Ingest`].
fn parse_log(
    path: &Path,
    format: Option<LogFormat>,
) -> Result<(RecordedTrace, u64, IngestMeta), RunError> {
    let _phase = waymem_obs::phase::enter(waymem_obs::phase::Phase::Record);
    let _span = waymem_obs::span!("record", source = path.display());
    let format = format.unwrap_or_else(|| LogFormat::for_path(path));
    let ingest_err = |message: String| RunError::Ingest { path: path.to_path_buf(), message };
    let file = std::fs::File::open(path).map_err(|e| ingest_err(format!("cannot open: {e}")))?;
    let ingested = parse(format, std::io::BufReader::new(file))
        .map_err(|e| ingest_err(e.to_string()))?;
    if ingested.trace.is_empty() {
        return Err(ingest_err("log contains no accesses".to_owned()));
    }
    let meta = IngestMeta {
        format,
        lines: ingested.lines,
        skipped: ingested.skipped,
    };
    Ok((ingested.trace, ingested.source_hash, meta))
}

/// What a log ingestion observed, when this experiment actually parsed
/// the file (a warm store hit skips the parse, and the metadata with it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestMeta {
    /// The grammar the log was parsed with.
    pub format: LogFormat,
    /// Total lines read, including skipped ones.
    pub lines: u64,
    /// Lines skipped as blanks, comments or valgrind banners.
    pub skipped: u64,
}

/// A resolved experiment: workload identity settled, trace in hand,
/// replay pending. Produced by [`Experiment::prepare`].
#[derive(Debug)]
#[must_use = "a Prepared experiment does nothing until .run()"]
pub struct Prepared {
    id: WorkloadId,
    source_hash: u64,
    source: TraceSource,
    cfg: SimConfig,
    dschemes: Vec<DScheme>,
    ischemes: Vec<IScheme>,
    policy: ExecPolicy,
    ingest_meta: Option<IngestMeta>,
}

impl Prepared {
    /// The workload's settled identity.
    #[must_use]
    pub fn workload_id(&self) -> WorkloadId {
        self.id
    }

    /// The workload's staleness fingerprint (0 for
    /// [`WorkloadSpec::Recorded`], which has no external source).
    #[must_use]
    pub fn source_hash(&self) -> u64 {
        self.source_hash
    }

    /// The resolved in-memory trace about to be replayed, when the
    /// experiment materialized one (`None` for
    /// [`streaming`](Experiment::streaming) resolutions, which never
    /// hold the event vector).
    #[must_use]
    pub fn trace(&self) -> Option<&Arc<RecordedTrace>> {
        self.source.materialized()
    }

    /// The resolved trace source — materialized or streaming — about to
    /// be replayed.
    #[must_use]
    pub fn source(&self) -> &TraceSource {
        &self.source
    }

    /// Ingestion metadata, when this resolution actually parsed a log
    /// (`None` for non-log workloads and for warm store hits).
    #[must_use]
    pub fn ingest_meta(&self) -> Option<IngestMeta> {
        self.ingest_meta
    }

    /// Replays the resolved trace across every requested scheme under
    /// the experiment's policy.
    ///
    /// # Errors
    ///
    /// [`RunError::Stream`] when a streaming source's file fails to read
    /// or decode mid-replay, [`RunError::Worker`] if a scheme-replay
    /// worker panics; materialized replay is otherwise infallible.
    pub fn run(self) -> Result<SimResult, RunError> {
        catch_worker(|| {
            replay_source_with_policy(
                self.id,
                &self.source,
                &self.cfg,
                &self.dschemes,
                &self.ischemes,
                self.policy,
            )
        })
    }
}

/// Multi-workload fan-out with shared configuration: the suite-level
/// companion to [`Experiment`], fanning its workloads out across scoped
/// worker threads under the same [`ExecPolicy`] knob.
///
/// ```no_run
/// use waymem_sim::{presets, Suite};
///
/// # fn main() -> Result<(), waymem_sim::RunError> {
/// let results = Suite::kernels() // the paper's seven benchmarks
///     .dschemes(presets::fig4_dschemes())
///     .run()?;
/// assert_eq!(results.len(), 7);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
#[must_use = "a Suite does nothing until .run()"]
pub struct Suite<'s> {
    workloads: Vec<WorkloadSpec>,
    cfg: SimConfig,
    dschemes: Vec<DScheme>,
    ischemes: Vec<IScheme>,
    store: StoreSel<'s>,
    policy: ExecPolicy,
    streaming: bool,
    isolate_failures: bool,
}

impl Default for Suite<'_> {
    fn default() -> Self {
        Self::new()
    }
}

impl Suite<'_> {
    /// An empty suite; add workloads with [`workload`](Suite::workload)
    /// / [`workloads`](Suite::workloads).
    pub fn new() -> Self {
        Suite {
            workloads: Vec::new(),
            cfg: SimConfig::default(),
            dschemes: Vec::new(),
            ischemes: Vec::new(),
            store: StoreSel::None,
            policy: ExecPolicy::Auto,
            streaming: false,
            isolate_failures: false,
        }
    }

    /// The paper's evaluation suite: all seven benchmark kernels, in
    /// [`Benchmark::ALL`] order.
    pub fn kernels() -> Self {
        Self::new().workloads(Benchmark::ALL)
    }
}

impl<'s> Suite<'s> {
    /// Appends one workload (anything an [`Experiment`] accepts:
    /// a [`Benchmark`], [`SynthSpec`], [`WorkloadId`], log path, or a
    /// full [`WorkloadSpec`]).
    pub fn workload(mut self, workload: impl Into<WorkloadSpec>) -> Self {
        self.workloads.push(workload.into());
        self
    }

    /// Appends many workloads at once.
    pub fn workloads<W: Into<WorkloadSpec>>(
        mut self,
        workloads: impl IntoIterator<Item = W>,
    ) -> Self {
        self.workloads.extend(workloads.into_iter().map(Into::into));
        self
    }

    /// Replaces the whole simulation configuration at once.
    pub fn config(mut self, cfg: SimConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Sets the cache geometry for both I- and D-caches.
    pub fn geometry(mut self, geometry: Geometry) -> Self {
        self.cfg.geometry = geometry;
        self
    }

    /// Sets the workload scale factor (kernel workloads only; a bare
    /// [`WorkloadId::Kernel`] workload's own scale wins, as on
    /// [`Experiment::scale`]).
    pub fn scale(mut self, scale: u32) -> Self {
        self.cfg.scale = scale;
        self
    }

    /// Sets the technology / operating point for the power models.
    pub fn technology(mut self, technology: Technology) -> Self {
        self.cfg.technology = technology;
        self
    }

    /// Sets the D-cache schemes, replacing any previous set.
    pub fn dschemes(mut self, schemes: impl IntoIterator<Item = DScheme>) -> Self {
        self.dschemes = schemes.into_iter().collect();
        self
    }

    /// Sets the I-cache schemes, replacing any previous set.
    pub fn ischemes(mut self, schemes: impl IntoIterator<Item = IScheme>) -> Self {
        self.ischemes = schemes.into_iter().collect();
        self
    }

    /// Threads a shared [`TraceStore`] through every workload of the
    /// suite (and, with an outer loop over geometries, through a whole
    /// sweep).
    pub fn store(mut self, store: &'s TraceStore) -> Self {
        self.store = StoreSel::Borrowed(store);
        self
    }

    /// Like [`store`](Suite::store), but owned and wired from the
    /// environment ([`TraceStore::from_env`]).
    pub fn store_from_env(mut self) -> Self {
        self.store = StoreSel::Owned(Box::new(TraceStore::from_env()));
        self
    }

    /// Sets the execution policy for both fan-out levels: across
    /// workloads, and across schemes within each workload.
    pub fn policy(mut self, policy: ExecPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Resolves and replays every workload through on-disk `.wmtr`
    /// files instead of in-memory event vectors (see
    /// [`Experiment::streaming`]): per-workload resident memory stays
    /// O(batch) regardless of trace length.
    pub fn streaming(mut self, streaming: bool) -> Self {
        self.streaming = streaming;
        self
    }

    /// Continue past per-workload failures instead of aborting the whole
    /// suite on the first one: failed workloads are recorded in
    /// [`SuiteResult::failures`] (after one serial retry when
    /// [`RunError::is_retryable`] says the environment may have healed)
    /// while every other workload still produces its result. Off by
    /// default — a plain `run()` keeps the strict first-error contract.
    pub fn isolate_failures(mut self, isolate: bool) -> Self {
        self.isolate_failures = isolate;
        self
    }

    /// Runs every workload and collects the results in workload order.
    ///
    /// Fan-out is bounded at both levels: at most
    /// [`std::thread::available_parallelism`] workload workers, each
    /// running the inner scheme replay under the same policy. Workers
    /// are joined in workload order, so result order — and which error
    /// is reported — matches a serial loop exactly. A panicking workload
    /// is caught at the worker boundary and surfaces as
    /// [`RunError::Worker`], never as a suite-wide abort.
    ///
    /// # Errors
    ///
    /// The first [`RunError`] in workload order — unless
    /// [`isolate_failures`](Suite::isolate_failures) is on, in which
    /// case errors land in [`SuiteResult::failures`] and `run` itself
    /// only reports them, it does not fail.
    pub fn run(self) -> Result<SuiteResult, RunError> {
        let Suite { workloads, cfg, dschemes, ischemes, store, policy, streaming, isolate_failures } =
            self;
        let store_ref = store.get();
        let run_one = |w: &WorkloadSpec| {
            let _span = waymem_obs::span!("suite.workload", workload = describe_workload(w));
            let exp = Experiment {
                workload: w.clone(),
                cfg,
                dschemes: dschemes.clone(),
                ischemes: ischemes.clone(),
                store: match store_ref {
                    Some(s) => StoreSel::Borrowed(s),
                    None => StoreSel::None,
                },
                policy,
                streaming,
            };
            catch_worker(|| exp.run())
        };
        let workers = std::thread::available_parallelism().map_or(1, |n| n.get());
        let parallel = match policy {
            ExecPolicy::Serial => false,
            ExecPolicy::Parallel => true,
            // On a single-core host the workers would only interleave;
            // run the workloads inline instead (results are identical
            // either way).
            ExecPolicy::Auto => workers > 1,
        };
        let outcomes: Vec<Result<SimResult, RunError>> = if parallel && workloads.len() > 1 {
            let chunk = workloads.len().div_ceil(workers).max(1);
            std::thread::scope(|scope| {
                let handles: Vec<_> = workloads
                    .chunks(chunk)
                    .map(|group| {
                        (group.len(), scope.spawn(move || group.iter().map(run_one).collect::<Vec<_>>()))
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|(len, handle)| {
                        // `run_one` catches workload panics itself; this
                        // guards the residual worker plumbing.
                        handle.join().unwrap_or_else(|payload| {
                            let message = panic_message(payload.as_ref());
                            std::iter::repeat_with(|| {
                                Err(RunError::Worker { message: message.clone() })
                            })
                            .take(len)
                            .collect()
                        })
                    })
                    .collect()
            })
        } else {
            workloads.iter().map(run_one).collect()
        };
        let mut results = Vec::with_capacity(workloads.len());
        let mut failures = Vec::new();
        for (index, outcome) in outcomes.into_iter().enumerate() {
            match outcome {
                Ok(result) => results.push(result),
                Err(error) if isolate_failures => {
                    let retryable = error.is_retryable();
                    // Transient failures get one serial retry: the store
                    // may have healed (quarantine + re-record) since the
                    // parallel attempt.
                    let healed = retryable.then(|| run_one(&workloads[index]).ok()).flatten();
                    match healed {
                        Some(result) => results.push(result),
                        None => {
                            let workload = describe_workload(&workloads[index]);
                            waymem_obs::warn!(
                                "suite.workload_failed",
                                workload = workload,
                                error = error,
                                retryable = retryable,
                            );
                            failures.push(SuiteFailure { index, workload, error, retryable });
                        }
                    }
                }
                Err(error) => return Err(error),
            }
        }
        Ok(SuiteResult {
            results,
            failures,
            store_stats: store_ref.map(TraceStore::stats),
        })
    }
}

/// Runs `f`, converting an escaping panic into a structured
/// [`RunError::Worker`] — the boundary [`Suite::run`] wraps every
/// workload in so one poisoned workload cannot take down its siblings.
pub fn catch_worker<T>(f: impl FnOnce() -> Result<T, RunError>) -> Result<T, RunError> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)).unwrap_or_else(|payload| {
        let message = panic_message(payload.as_ref());
        // The worker died: record the incident and dump the flight
        // recorder's black box (no-op unless a dump path is configured)
        // before the error is folded into the suite's failure list.
        waymem_obs::flight::note("suite.worker_panic", &[("message", message.clone())]);
        waymem_obs::flight::dump_on_incident("suite.worker_panic");
        Err(RunError::Worker { message })
    })
}

/// Extracts a human-readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(ToString::to_string)
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

/// A short display name for a workload, for failure reports.
fn describe_workload(w: &WorkloadSpec) -> String {
    match w {
        WorkloadSpec::Kernel(bench) => bench.to_string(),
        WorkloadSpec::Id(id) | WorkloadSpec::Recorded { id, .. } => id.to_string(),
        WorkloadSpec::Synthetic(spec) => WorkloadId::Synthetic(*spec).to_string(),
        WorkloadSpec::Log { path, .. } => path.display().to_string(),
    }
}

/// One workload's failure in an isolating ([`Suite::isolate_failures`])
/// suite run.
#[derive(Debug, Clone)]
pub struct SuiteFailure {
    /// Index of the workload in the order it was added to the suite.
    pub index: usize,
    /// Short display name of the failed workload.
    pub workload: String,
    /// What went wrong.
    pub error: RunError,
    /// Whether [`RunError::is_retryable`] held — if so, the suite
    /// already spent its one serial retry before recording the failure.
    pub retryable: bool,
}

/// The outcome of a [`Suite`] run: per-workload results in workload
/// order, plus a snapshot of the store's accounting when one was
/// attached. Dereferences to `[SimResult]`, so indexing and iteration
/// work like on the plain vector the legacy drivers returned.
///
/// Under [`Suite::isolate_failures`], `results` holds the workloads that
/// succeeded (still in workload order, failed ones skipped) and
/// [`failures`](Self::failures) records the rest; a strict run always
/// has `failures.is_empty()`.
#[derive(Debug, Clone)]
pub struct SuiteResult {
    /// One result per succeeded workload, in the order the workloads
    /// were added.
    pub results: Vec<SimResult>,
    /// The workloads that failed, in workload order (always empty
    /// without [`Suite::isolate_failures`] — a strict run aborts
    /// instead).
    pub failures: Vec<SuiteFailure>,
    /// The attached store's statistics, snapshotted right after the run
    /// (`None` when the suite ran store-less).
    pub store_stats: Option<StoreStats>,
}

impl SuiteResult {
    /// Consumes the result into the bare per-workload vector.
    #[must_use]
    pub fn into_results(self) -> Vec<SimResult> {
        self.results
    }

    /// `true` when every workload produced a result.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.failures.is_empty()
    }

    /// A one-line-per-failure human-readable report, or `None` when the
    /// run was complete.
    #[must_use]
    pub fn failure_report(&self) -> Option<String> {
        if self.failures.is_empty() {
            return None;
        }
        let lines: Vec<String> = self
            .failures
            .iter()
            .map(|f| format!("workload {} ({}): {}", f.index, f.workload, f.error))
            .collect();
        Some(lines.join("\n"))
    }
}

impl std::ops::Deref for SuiteResult {
    type Target = [SimResult];

    fn deref(&self) -> &[SimResult] {
        &self.results
    }
}

impl IntoIterator for SuiteResult {
    type Item = SimResult;
    type IntoIter = std::vec::IntoIter<SimResult>;

    fn into_iter(self) -> Self::IntoIter {
        self.results.into_iter()
    }
}

impl<'a> IntoIterator for &'a SuiteResult {
    type Item = &'a SimResult;
    type IntoIter = std::slice::Iter<'a, SimResult>;

    fn into_iter(self) -> Self::IntoIter {
        self.results.iter()
    }
}
