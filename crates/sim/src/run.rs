//! The experiment driver: runs one benchmark once, feeding every requested
//! scheme's front-end from the same trace, then composes power via Eq. (1).

use std::error::Error;
use std::fmt;

use waymem_cache::{AccessStats, Geometry};
use waymem_hwmodel::{
    cache_energies, mab_power_mw, CacheShape, EnergyCounts, PowerBreakdown, Technology,
};
use waymem_isa::{AsmError, Cpu, CpuError, FetchKind, TraceSink};
use waymem_workloads::Benchmark;

use crate::{DFront, DScheme, IFront, IScheme};

/// Simulation configuration shared by all experiments.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Cache geometry for both I- and D-caches (paper: 32 kB 2-way).
    pub geometry: Geometry,
    /// Workload scale factor (1 = default kernel sizes).
    pub scale: u32,
    /// Technology / operating point for the power models.
    pub technology: Technology,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            geometry: Geometry::frv(),
            scale: 1,
            technology: Technology::frv_0130(),
        }
    }
}

/// Why a simulation run failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// The benchmark's generated assembly failed to assemble.
    Assemble(AsmError),
    /// The CPU faulted while executing the benchmark.
    Cpu(CpuError),
    /// The benchmark did not halt within its step budget.
    StepLimit {
        /// The budget that was exhausted.
        max_steps: u64,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Assemble(e) => write!(f, "benchmark failed to assemble: {e}"),
            RunError::Cpu(e) => write!(f, "benchmark faulted: {e}"),
            RunError::StepLimit { max_steps } => {
                write!(f, "benchmark did not halt within {max_steps} steps")
            }
        }
    }
}

impl Error for RunError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RunError::Assemble(e) => Some(e),
            RunError::Cpu(e) => Some(e),
            RunError::StepLimit { .. } => None,
        }
    }
}

impl From<AsmError> for RunError {
    fn from(e: AsmError) -> Self {
        RunError::Assemble(e)
    }
}

impl From<CpuError> for RunError {
    fn from(e: CpuError) -> Self {
        RunError::Cpu(e)
    }
}

/// Per-scheme outcome of one benchmark run.
#[derive(Debug, Clone)]
pub struct SchemeResult {
    /// Scheme display name.
    pub name: String,
    /// Tag/way/hit accounting.
    pub stats: AccessStats,
    /// Raw counts handed to the power model.
    pub energy: EnergyCounts,
    /// Eq. (1) power decomposition.
    pub power: PowerBreakdown,
    /// Cycles added by lookup penalties (zero for way memoization).
    pub extra_cycles: u64,
}

/// Outcome of one benchmark under several schemes.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// The benchmark that ran.
    pub benchmark: Benchmark,
    /// Instructions retired (= cycles at CPI 1).
    pub cycles: u64,
    /// D-cache results, in the order the schemes were given.
    pub dcache: Vec<SchemeResult>,
    /// I-cache results, in the order the schemes were given.
    pub icache: Vec<SchemeResult>,
}

impl SimResult {
    /// Finds a D-cache result by scheme name.
    #[must_use]
    pub fn dcache_by_name(&self, name: &str) -> Option<&SchemeResult> {
        self.dcache.iter().find(|r| r.name == name)
    }

    /// Finds an I-cache result by scheme name.
    #[must_use]
    pub fn icache_by_name(&self, name: &str) -> Option<&SchemeResult> {
        self.icache.iter().find(|r| r.name == name)
    }
}

struct FanoutSink {
    dfronts: Vec<DFront>,
    ifronts: Vec<IFront>,
}

impl TraceSink for FanoutSink {
    fn fetch(&mut self, pc: u32, kind: FetchKind) {
        for f in &mut self.ifronts {
            f.fetch(pc, kind);
        }
    }

    fn load(&mut self, base: u32, disp: i32, addr: u32, _size: u8) {
        for f in &mut self.dfronts {
            f.access(false, base, disp, addr);
        }
    }

    fn store(&mut self, base: u32, disp: i32, addr: u32, _size: u8) {
        for f in &mut self.dfronts {
            f.access(true, base, disp, addr);
        }
    }
}

/// Runs `bench` once and returns per-scheme statistics and Eq. (1) power
/// for every requested D- and I-cache scheme. All schemes observe the
/// identical trace, so comparisons are exact.
///
/// # Errors
///
/// Returns [`RunError`] if the kernel fails to assemble, faults, or does
/// not halt.
pub fn run_benchmark(
    bench: Benchmark,
    cfg: &SimConfig,
    dschemes: &[DScheme],
    ischemes: &[IScheme],
) -> Result<SimResult, RunError> {
    let wl = bench.workload(cfg.scale)?;
    let mut sink = FanoutSink {
        dfronts: dschemes.iter().map(|s| s.build(cfg.geometry)).collect(),
        ifronts: ischemes.iter().map(|s| s.build(cfg.geometry)).collect(),
    };
    let mut cpu = Cpu::new(&wl.program);
    let outcome = cpu.run(wl.max_steps, &mut sink)?;
    if !outcome.halted() {
        return Err(RunError::StepLimit {
            max_steps: wl.max_steps,
        });
    }
    let cycles = cpu.instret();

    let shape = CacheShape {
        sets: cfg.geometry.sets(),
        ways: cfg.geometry.ways(),
        line_bytes: cfg.geometry.line_bytes(),
        tag_bits: cfg.geometry.tag_bits(),
    };
    let energies = cache_energies(shape, cfg.technology);

    let dcache = sink
        .dfronts
        .iter()
        .map(|f| {
            let energy = f.energy_counts(cycles);
            let mab = f.mab_shape().map(|s| mab_power_mw(s, cfg.technology));
            SchemeResult {
                name: f.scheme().name(),
                stats: f.stats(),
                energy,
                power: PowerBreakdown::from_counts(energy, energies, mab, cfg.technology),
                extra_cycles: f.extra_cycles(),
            }
        })
        .collect();
    let icache = sink
        .ifronts
        .iter()
        .map(|f| {
            let energy = f.energy_counts(cycles);
            let mab = f.mab_shape().map(|s| mab_power_mw(s, cfg.technology));
            SchemeResult {
                name: f.scheme().name(),
                stats: f.stats(),
                energy,
                power: PowerBreakdown::from_counts(energy, energies, mab, cfg.technology),
                extra_cycles: 0,
            }
        })
        .collect();

    Ok(SimResult {
        benchmark: bench,
        cycles,
        dcache,
        icache,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_schemes() -> (Vec<DScheme>, Vec<IScheme>) {
        (
            vec![
                DScheme::Original,
                DScheme::SetBuffer { entries: 1 },
                DScheme::paper_way_memo(),
            ],
            vec![
                IScheme::Original,
                IScheme::IntraLine,
                IScheme::paper_way_memo(),
            ],
        )
    }

    #[test]
    fn dct_run_produces_paper_shape() {
        let cfg = SimConfig::default();
        let (d, i) = paper_schemes();
        let r = run_benchmark(Benchmark::Dct, &cfg, &d, &i).expect("runs");
        assert!(r.cycles > 50_000);

        // All D schemes saw the same accesses.
        let accesses: Vec<u64> = r.dcache.iter().map(|s| s.stats.accesses).collect();
        assert!(accesses.windows(2).all(|w| w[0] == w[1]));

        let orig = &r.dcache[0];
        let ours = &r.dcache[2];
        // Figure 4 shape: original ~2 tags/access; ours ~90% fewer.
        assert!(orig.stats.tags_per_access() > 1.9);
        assert!(
            ours.stats.tag_reads * 3 < orig.stats.tag_reads,
            "ours {} vs orig {}",
            ours.stats.tag_reads,
            orig.stats.tag_reads
        );
        // Ways: ours stays above 1 (at least one way per access).
        assert!(ours.stats.ways_per_access() >= 1.0);
        assert!(ours.stats.ways_per_access() < orig.stats.ways_per_access());
        // Figure 5 shape: total power drops.
        assert!(ours.power.total_mw() < orig.power.total_mw());
        // No performance penalty for way memoization.
        assert_eq!(ours.extra_cycles, 0);

        // I-cache, Figure 6 shape: [4] removes most tags; ours removes more.
        let iorig = &r.icache[0];
        let i4 = &r.icache[1];
        let iours = &r.icache[2];
        assert!(i4.stats.tag_reads < iorig.stats.tag_reads / 2);
        assert!(iours.stats.tag_reads < i4.stats.tag_reads);
        assert!(iours.power.total_mw() < i4.power.total_mw());
    }

    #[test]
    fn stats_are_internally_consistent() {
        let cfg = SimConfig::default();
        let (d, i) = paper_schemes();
        let r = run_benchmark(Benchmark::Compress, &cfg, &d, &i).expect("runs");
        for s in r.dcache.iter().chain(r.icache.iter()) {
            assert!(s.stats.is_consistent(), "{}", s.name);
            assert_eq!(s.energy.cycles, r.cycles);
        }
    }

    #[test]
    fn lookup_by_name_works() {
        let cfg = SimConfig::default();
        let r = run_benchmark(
            Benchmark::Dct,
            &cfg,
            &[DScheme::Original],
            &[IScheme::Original],
        )
        .expect("runs");
        assert!(r.dcache_by_name("original").is_some());
        assert!(r.dcache_by_name("nope").is_none());
        assert!(r.icache_by_name("original").is_some());
    }
}
