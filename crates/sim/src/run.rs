//! The experiment engine: a record-once / replay-in-parallel pipeline.
//!
//! The engine executes the CPU interpreter (or a parser / generator)
//! exactly once, capturing the full fetch/load/store stream into a
//! [`RecordedTrace`] — two flat `Vec<TraceEvent>` streams split at
//! capture time, fetches apart from loads/stores — then replays that
//! recorded trace through every requested scheme's front-end, under an
//! [`ExecPolicy`]: concurrently on
//! [`std::thread::scope`] workers, or inline on the calling thread. Each
//! front-end consumes its stream as a slice through the batched
//! [`TraceSink::events`] entry point, which dispatches to a monomorphic
//! loop ([`DFront::replay`] / [`IFront::replay`]), so no per-event
//! virtual dispatch survives on the hot path; power is composed via
//! Eq. (1) once every worker joins. Every front-end sees the identical
//! recorded stream, so all policies are bit-identical — including the
//! per-event serial fanout that serial kernel runs use to skip the trace
//! materialization entirely.
//!
//! The composable front door to all of this is
//! [`Experiment`](crate::Experiment) / [`Suite`]
//! (`experiment` module); this module keeps the engine itself — the
//! result types, [`record_trace`], and the deprecated free-function
//! shims the builder replaced.

use std::error::Error;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use waymem_obs::phase::Phase;

use waymem_cache::{AccessStats, Geometry};
use waymem_hwmodel::{
    cache_energies, mab_power_mw, CacheShape, EnergyCounts, PowerBreakdown, Technology,
};
use waymem_isa::{AsmError, Cpu, CpuError, FetchKind, RecordingSink, TraceEvent, TraceSink};
use waymem_trace::{
    fnv1a64, Section, StreamError, StreamStats, StreamingEncoder, StreamingTrace, TraceStore,
    WorkloadId,
};
use waymem_workloads::Benchmark;

use crate::{DFront, DScheme, ExecPolicy, IFront, IScheme, Suite, SuiteResult};

/// Simulation configuration shared by all experiments.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Cache geometry for both I- and D-caches (paper: 32 kB 2-way).
    pub geometry: Geometry,
    /// Workload scale factor (1 = default kernel sizes).
    pub scale: u32,
    /// Technology / operating point for the power models.
    pub technology: Technology,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            geometry: Geometry::frv(),
            scale: 1,
            technology: Technology::frv_0130(),
        }
    }
}

/// Why a simulation run failed. Every way an
/// [`Experiment`](crate::Experiment) can go wrong is one of these — a
/// bad builder combination is a structured error, never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// The benchmark's generated assembly failed to assemble.
    Assemble(AsmError),
    /// The CPU faulted while executing the benchmark.
    Cpu(CpuError),
    /// The benchmark did not halt within its step budget.
    StepLimit {
        /// The budget that was exhausted.
        max_steps: u64,
    },
    /// An external log could not be read, parsed, or contained no
    /// accesses (the I/O or parse failure stringified, so the error
    /// stays `Clone` + `Eq`).
    Ingest {
        /// The log that failed.
        path: PathBuf,
        /// What went wrong with it.
        message: String,
    },
    /// The workload names a trace nothing can produce: an external
    /// [`WorkloadId`] with no attached store holding it.
    MissingTrace {
        /// The unresolvable workload.
        id: WorkloadId,
    },
    /// A streaming trace file could not be written, opened, or replayed
    /// (the I/O or codec failure stringified, so the error stays
    /// `Clone` + `Eq`).
    Stream {
        /// What went wrong with the stream.
        message: String,
    },
    /// A worker thread panicked mid-run. The panic is caught at the
    /// suite boundary and converted into this structured error so one
    /// bad workload cannot take down its siblings.
    Worker {
        /// The panic payload, stringified.
        message: String,
    },
}

impl RunError {
    /// Whether retrying the same run could plausibly succeed. Transient
    /// environment failures — I/O during ingest, a streaming trace file
    /// torn by a racing process — are retryable; deterministic failures
    /// (bad assembly, a CPU fault, an exhausted step budget, a missing
    /// trace, a worker panic) would only repeat themselves.
    #[must_use]
    pub fn is_retryable(&self) -> bool {
        matches!(self, RunError::Ingest { .. } | RunError::Stream { .. })
    }
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Assemble(e) => write!(f, "benchmark failed to assemble: {e}"),
            RunError::Cpu(e) => write!(f, "benchmark faulted: {e}"),
            RunError::StepLimit { max_steps } => {
                write!(f, "benchmark did not halt within {max_steps} steps")
            }
            RunError::Ingest { path, message } => {
                write!(f, "{}: {message}", path.display())
            }
            RunError::MissingTrace { id } => {
                write!(f, "workload {id} has no trace: not held by any attached store")
            }
            RunError::Stream { message } => {
                write!(f, "streaming trace failed: {message}")
            }
            RunError::Worker { message } => {
                write!(f, "worker thread panicked: {message}")
            }
        }
    }
}

impl Error for RunError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RunError::Assemble(e) => Some(e),
            RunError::Cpu(e) => Some(e),
            RunError::StepLimit { .. }
            | RunError::Ingest { .. }
            | RunError::MissingTrace { .. }
            | RunError::Stream { .. }
            | RunError::Worker { .. } => None,
        }
    }
}

impl From<StreamError> for RunError {
    fn from(e: StreamError) -> Self {
        RunError::Stream { message: e.to_string() }
    }
}

impl From<AsmError> for RunError {
    fn from(e: AsmError) -> Self {
        RunError::Assemble(e)
    }
}

impl From<CpuError> for RunError {
    fn from(e: CpuError) -> Self {
        RunError::Cpu(e)
    }
}

/// Per-scheme outcome of one benchmark run.
#[derive(Debug, Clone)]
pub struct SchemeResult {
    /// Scheme display name.
    pub name: String,
    /// Tag/way/hit accounting.
    pub stats: AccessStats,
    /// Raw counts handed to the power model.
    pub energy: EnergyCounts,
    /// Eq. (1) power decomposition.
    pub power: PowerBreakdown,
    /// Cycles added by lookup penalties (zero for way memoization).
    pub extra_cycles: u64,
}

/// Outcome of one workload under several schemes.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// The workload that ran: a built-in kernel, an ingested external
    /// trace, or a synthetic pattern.
    pub workload: WorkloadId,
    /// Instructions retired (= cycles at CPI 1).
    pub cycles: u64,
    /// D-cache results, in the order the schemes were given.
    pub dcache: Vec<SchemeResult>,
    /// I-cache results, in the order the schemes were given.
    pub icache: Vec<SchemeResult>,
}

impl SimResult {
    /// Finds a D-cache result by scheme name.
    #[must_use]
    pub fn dcache_by_name(&self, name: &str) -> Option<&SchemeResult> {
        self.dcache.iter().find(|r| r.name == name)
    }

    /// Finds an I-cache result by scheme name.
    #[must_use]
    pub fn icache_by_name(&self, name: &str) -> Option<&SchemeResult> {
        self.icache.iter().find(|r| r.name == name)
    }
}

/// Legacy serial fanout: forwards each CPU event to every front-end as it
/// happens. Kept (behind [`run_kernel_fanout`], the serial-policy kernel
/// path) as the reference the record/replay engine is benchmarked and
/// cross-validated against.
struct FanoutSink {
    dfronts: Vec<DFront>,
    ifronts: Vec<IFront>,
}

impl TraceSink for FanoutSink {
    fn fetch(&mut self, pc: u32, kind: FetchKind) {
        for f in &mut self.ifronts {
            f.fetch(pc, kind);
        }
    }

    fn load(&mut self, base: u32, disp: i32, addr: u32, _size: u8) {
        for f in &mut self.dfronts {
            f.access(false, base, disp, addr);
        }
    }

    fn store(&mut self, base: u32, disp: i32, addr: u32, _size: u8) {
        for f in &mut self.dfronts {
            f.access(true, base, disp, addr);
        }
    }
}

pub use waymem_isa::RecordedTrace;

/// Where a replay's event stream comes from: a fully materialized
/// in-memory trace, or an on-disk `.wmtr` file replayed in bounded
/// batches. Every front-end sees the identical event sequence either
/// way — `tests/determinism.rs` pins the two sources bit-identical for
/// every scheme — only the resident-memory cost differs: O(events)
/// materialized, O(batch) streaming.
#[derive(Debug, Clone)]
pub enum TraceSource {
    /// The whole event stream resident in memory, shared across replay
    /// workers.
    Materialized(Arc<RecordedTrace>),
    /// Replayed from an on-disk `.wmtr` file through a bounded window;
    /// each front-end replays its section from its own file cursor.
    Streaming(Arc<StreamingTrace>),
}

impl TraceSource {
    /// The trace's cycle count.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        match self {
            TraceSource::Materialized(t) => t.cycles,
            TraceSource::Streaming(t) => t.cycles(),
        }
    }

    /// Total event count (fetch + data).
    #[must_use]
    pub fn len(&self) -> u64 {
        match self {
            TraceSource::Materialized(t) => t.len() as u64,
            TraceSource::Streaming(t) => t.len(),
        }
    }

    /// Whether the trace holds no events at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The in-memory trace, when this source is materialized.
    #[must_use]
    pub fn materialized(&self) -> Option<&Arc<RecordedTrace>> {
        match self {
            TraceSource::Materialized(t) => Some(t),
            TraceSource::Streaming(_) => None,
        }
    }

    /// The on-disk streaming handle, when this source streams.
    #[must_use]
    pub fn streaming(&self) -> Option<&Arc<StreamingTrace>> {
        match self {
            TraceSource::Materialized(_) => None,
            TraceSource::Streaming(t) => Some(t),
        }
    }
}

impl From<Arc<RecordedTrace>> for TraceSource {
    fn from(trace: Arc<RecordedTrace>) -> Self {
        TraceSource::Materialized(trace)
    }
}

impl From<RecordedTrace> for TraceSource {
    fn from(trace: RecordedTrace) -> Self {
        TraceSource::Materialized(Arc::new(trace))
    }
}

impl From<Arc<StreamingTrace>> for TraceSource {
    fn from(trace: Arc<StreamingTrace>) -> Self {
        TraceSource::Streaming(trace)
    }
}

impl From<StreamingTrace> for TraceSource {
    fn from(trace: StreamingTrace) -> Self {
        TraceSource::Streaming(Arc::new(trace))
    }
}

/// The recording sink behind [`record_trace`]: like
/// [`waymem_isa::RecordingSink`] but splitting the stream at capture time
/// so replay never re-partitions it.
#[derive(Debug, Default)]
struct SplitRecordingSink {
    fetches: Vec<TraceEvent>,
    data: Vec<TraceEvent>,
}

impl TraceSink for SplitRecordingSink {
    fn fetch(&mut self, pc: u32, kind: FetchKind) {
        self.fetches.push(TraceEvent::Fetch { pc, kind });
    }

    fn load(&mut self, base: u32, disp: i32, addr: u32, size: u8) {
        self.data.push(TraceEvent::Load {
            base,
            disp,
            addr,
            size,
        });
    }

    fn store(&mut self, base: u32, disp: i32, addr: u32, size: u8) {
        self.data.push(TraceEvent::Store {
            base,
            disp,
            addr,
            size,
        });
    }
}

/// Executes `bench` once and records its full event stream.
///
/// This is the "record" half of the engine; [`replay_trace`] is the other.
/// Splitting them lets callers amortize one CPU run over many replays
/// (geometry sweeps, scheme sweeps) instead of re-interpreting the kernel.
///
/// # Errors
///
/// Returns [`RunError`] if the kernel fails to assemble, faults, or does
/// not halt within its step budget.
pub fn record_trace(bench: Benchmark, cfg: &SimConfig) -> Result<RecordedTrace, RunError> {
    let _phase = waymem_obs::phase::enter(Phase::Record);
    let _span = waymem_obs::span!("record", workload = bench.name());
    let wl = bench.workload(cfg.scale)?;
    // Pre-size each stream with `RecordingSink`'s shared clamp. The
    // estimates are one fetch per budgeted instruction (+1 for `halt`)
    // and one load/store per four instructions (typical kernels issue
    // one every 4–8); both are *estimates*, not bounds — the Vecs grow
    // geometrically past them. The default 30 M-step budgets exceed the
    // clamp anyway, so in practice both streams start at the cap and
    // the estimates only matter for small custom budgets.
    let mut sink = SplitRecordingSink {
        fetches: Vec::with_capacity(RecordingSink::prealloc_cap(wl.max_steps.saturating_add(1))),
        data: Vec::with_capacity(RecordingSink::prealloc_cap(wl.max_steps / 4)),
    };
    let mut cpu = Cpu::new(&wl.program);
    let outcome = cpu.run(wl.max_steps, &mut sink)?;
    if !outcome.halted() {
        return Err(RunError::StepLimit {
            max_steps: wl.max_steps,
        });
    }
    Ok(RecordedTrace {
        fetch_events: sink.fetches,
        data_events: sink.data,
        cycles: cpu.instret(),
    })
}

/// Executes `bench` once, encoding its full event stream straight to a
/// `.wmtr` file at `path` — the bounded-memory counterpart of
/// [`record_trace`]: the event vector is never materialized, so a
/// long-running kernel costs O(1) resident memory to capture. The file's
/// header carries [`kernel_source_hash`] as its staleness fingerprint,
/// so a store treats it exactly like a trace it recorded itself.
///
/// # Errors
///
/// [`RunError`] if the kernel fails to assemble, faults, does not halt
/// within its step budget, or the file cannot be written.
pub fn record_trace_streaming(
    bench: Benchmark,
    cfg: &SimConfig,
    path: &Path,
) -> Result<StreamStats, RunError> {
    let _phase = waymem_obs::phase::enter(Phase::Record);
    let _span = waymem_obs::span!("record", workload = bench.name());
    let wl = bench.workload(cfg.scale)?;
    let mut sink = StreamingEncoder::create(path).map_err(StreamError::from)?;
    let mut cpu = Cpu::new(&wl.program);
    let outcome = cpu.run(wl.max_steps, &mut sink)?;
    if !outcome.halted() {
        return Err(RunError::StepLimit {
            max_steps: wl.max_steps,
        });
    }
    let cycles = cpu.instret();
    Ok(sink.finish(cycles, kernel_source_hash(bench, cfg.scale))?)
}

/// The per-run Eq. (1) ingredients shared by every scheme: the cache's
/// per-access energies depend only on geometry and technology, so they
/// are computed once per run, not once per scheme.
fn run_energies(cfg: &SimConfig) -> waymem_hwmodel::CacheEnergies {
    let shape = CacheShape {
        sets: cfg.geometry.sets(),
        ways: cfg.geometry.ways(),
        line_bytes: cfg.geometry.line_bytes(),
        tag_bits: cfg.geometry.tag_bits(),
    };
    cache_energies(shape, cfg.technology)
}

/// Composes the Eq. (1) result for one joined D-front.
fn dscheme_result(
    f: &DFront,
    cycles: u64,
    cfg: &SimConfig,
    energies: waymem_hwmodel::CacheEnergies,
) -> SchemeResult {
    let energy = f.energy_counts(cycles);
    let mab = f.mab_shape().map(|s| mab_power_mw(s, cfg.technology));
    SchemeResult {
        name: f.scheme().name(),
        stats: f.stats(),
        energy,
        power: PowerBreakdown::from_counts(energy, energies, mab, cfg.technology),
        extra_cycles: f.extra_cycles(),
    }
}

/// Composes the Eq. (1) result for one joined I-front.
fn ischeme_result(
    f: &IFront,
    cycles: u64,
    cfg: &SimConfig,
    energies: waymem_hwmodel::CacheEnergies,
) -> SchemeResult {
    let energy = f.energy_counts(cycles);
    let mab = f.mab_shape().map(|s| mab_power_mw(s, cfg.technology));
    SchemeResult {
        name: f.scheme().name(),
        stats: f.stats(),
        energy,
        power: PowerBreakdown::from_counts(energy, energies, mab, cfg.technology),
        extra_cycles: 0,
    }
}

/// Whether fanning replays out across threads can pay for itself: more
/// than one front-end to run, and more than one hardware thread to run
/// them on. On a single-core host the scoped workers would only
/// interleave, so the engine replays inline instead — the numbers are
/// identical either way (each front-end consumes the same slice in
/// isolation); only wall-clock differs.
pub(crate) fn replay_in_parallel(front_count: usize) -> bool {
    front_count > 1
        && std::thread::available_parallelism().is_ok_and(|n| n.get() > 1)
}

/// Elapsed nanoseconds since `started`, saturated to `u64::MAX`.
fn elapsed_ns(started: Instant) -> u64 {
    u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Builds one D-front and replays the recorded data stream through it,
/// publishing the per-front instruments: `replay.data_events` (events
/// delivered), `replay.front_ns` (wall-clock per front), and a
/// `replay.front` span. Shared by the parallel workers and the serial
/// path so both report identically.
fn replay_d_front(s: DScheme, geometry: Geometry, events: &[TraceEvent]) -> DFront {
    let _span = waymem_obs::span!("replay.front", scheme = s.name());
    let started = Instant::now();
    let mut f = s.build(geometry);
    f.events(events);
    waymem_obs::counter!("replay.data_events").add(events.len() as u64);
    waymem_obs::histogram!("replay.front_ns").record(elapsed_ns(started));
    f
}

/// The I-front counterpart of [`replay_d_front`]: counts into
/// `replay.fetch_events`.
fn replay_i_front(s: IScheme, geometry: Geometry, events: &[TraceEvent]) -> IFront {
    let _span = waymem_obs::span!("replay.front", scheme = s.name());
    let started = Instant::now();
    let mut f = s.build(geometry);
    f.events(events);
    waymem_obs::counter!("replay.fetch_events").add(events.len() as u64);
    waymem_obs::histogram!("replay.front_ns").record(elapsed_ns(started));
    f
}

/// Streaming counterpart of [`replay_d_front`]: replays the data section
/// straight from the `.wmtr` cursor, counting the delivered events that
/// [`StreamingTrace::replay_section`] reports.
fn stream_d_front(
    s: DScheme,
    geometry: Geometry,
    trace: &StreamingTrace,
) -> Result<DFront, StreamError> {
    let _span = waymem_obs::span!("replay.front", scheme = s.name());
    let started = Instant::now();
    let mut f = s.build(geometry);
    let delivered = trace.replay_section(Section::Data, &mut f)?;
    waymem_obs::counter!("replay.data_events").add(delivered);
    waymem_obs::histogram!("replay.front_ns").record(elapsed_ns(started));
    Ok(f)
}

/// Streaming counterpart of [`replay_i_front`].
fn stream_i_front(
    s: IScheme,
    geometry: Geometry,
    trace: &StreamingTrace,
) -> Result<IFront, StreamError> {
    let _span = waymem_obs::span!("replay.front", scheme = s.name());
    let started = Instant::now();
    let mut f = s.build(geometry);
    let delivered = trace.replay_section(Section::Fetch, &mut f)?;
    waymem_obs::counter!("replay.fetch_events").add(delivered);
    waymem_obs::histogram!("replay.front_ns").record(elapsed_ns(started));
    Ok(f)
}

/// Replays an already-recorded trace of the kernel `bench` through every
/// requested scheme's front-end.
#[deprecated(
    since = "0.1.0",
    note = "use Experiment::recorded(WorkloadId::kernel(bench, cfg.scale), trace).run()"
)]
#[must_use]
pub fn replay_trace(
    bench: Benchmark,
    trace: &RecordedTrace,
    cfg: &SimConfig,
    dschemes: &[DScheme],
    ischemes: &[IScheme],
) -> SimResult {
    replay_with_policy(
        WorkloadId::kernel(bench, cfg.scale),
        trace,
        cfg,
        dschemes,
        ischemes,
        ExecPolicy::Auto,
    )
}

/// Evaluates **any** recorded trace across every requested scheme's
/// front-end.
#[deprecated(since = "0.1.0", note = "use Experiment::recorded(workload, trace).run()")]
#[must_use]
pub fn run_trace(
    workload: WorkloadId,
    trace: &RecordedTrace,
    cfg: &SimConfig,
    dschemes: &[DScheme],
    ischemes: &[IScheme],
) -> SimResult {
    replay_with_policy(workload, trace, cfg, dschemes, ischemes, ExecPolicy::Auto)
}

/// The replay half of the engine: evaluates a recorded trace — a
/// built-in kernel's, an ingested external log's, a synthetic
/// generator's — across every requested scheme's front-end, under the
/// given [`ExecPolicy`].
///
/// The parallel fan-out is bounded: schemes are chunked across at most
/// [`std::thread::available_parallelism`] workers, each replaying its
/// chunk sequentially, so a long scheme list never spawns more compute
/// threads than the host has cores. Chunks are joined in scheme order,
/// so the result vectors keep the order the schemes were given and the
/// outcome is deterministic: every front-end consumes the identical
/// event slice independently, so the numbers are bit-identical to a
/// serial replay (pinned by `tests/experiment.rs`).
pub(crate) fn replay_with_policy(
    workload: WorkloadId,
    trace: &RecordedTrace,
    cfg: &SimConfig,
    dschemes: &[DScheme],
    ischemes: &[IScheme],
    policy: ExecPolicy,
) -> SimResult {
    let _phase = waymem_obs::phase::enter(Phase::Replay);
    let _span = waymem_obs::span!("replay", workload = workload.name());
    let parallel = match policy {
        ExecPolicy::Auto => replay_in_parallel(dschemes.len() + ischemes.len()),
        ExecPolicy::Parallel => true,
        ExecPolicy::Serial => false,
    };
    let data_events = trace.data_events.as_slice();
    let fetch_events = trace.fetch_events.as_slice();
    let (dfronts, ifronts) = if parallel {
        let workers = std::thread::available_parallelism().map_or(1, |n| n.get());
        let chunk = (dschemes.len() + ischemes.len()).div_ceil(workers).max(1);
        std::thread::scope(|scope| {
            let dhandles: Vec<_> = dschemes
                .chunks(chunk)
                .map(|group| {
                    scope.spawn(move || {
                        group
                            .iter()
                            .map(|&s| replay_d_front(s, cfg.geometry, data_events))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            let ihandles: Vec<_> = ischemes
                .chunks(chunk)
                .map(|group| {
                    scope.spawn(move || {
                        group
                            .iter()
                            .map(|&s| replay_i_front(s, cfg.geometry, fetch_events))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            let dfronts: Vec<DFront> = dhandles
                .into_iter()
                .flat_map(|h| h.join().expect("D-front replay worker panicked"))
                .collect();
            let ifronts: Vec<IFront> = ihandles
                .into_iter()
                .flat_map(|h| h.join().expect("I-front replay worker panicked"))
                .collect();
            (dfronts, ifronts)
        })
    } else {
        (
            dschemes
                .iter()
                .map(|&s| replay_d_front(s, cfg.geometry, data_events))
                .collect(),
            ischemes
                .iter()
                .map(|&s| replay_i_front(s, cfg.geometry, fetch_events))
                .collect(),
        )
    };
    let energies = run_energies(cfg);
    SimResult {
        workload,
        cycles: trace.cycles,
        dcache: dfronts
            .iter()
            .map(|f| dscheme_result(f, trace.cycles, cfg, energies))
            .collect(),
        icache: ifronts
            .iter()
            .map(|f| ischeme_result(f, trace.cycles, cfg, energies))
            .collect(),
    }
}

/// Replays either trace source across every requested scheme's
/// front-end: materialized sources go through [`replay_with_policy`]
/// unchanged; streaming sources fan each front-end out over its own
/// file cursor, consuming the section in bounded batches.
///
/// # Errors
///
/// [`RunError::Stream`] when a streaming source's file fails to read or
/// decode mid-replay. Materialized replay is infallible.
pub(crate) fn replay_source_with_policy(
    workload: WorkloadId,
    source: &TraceSource,
    cfg: &SimConfig,
    dschemes: &[DScheme],
    ischemes: &[IScheme],
    policy: ExecPolicy,
) -> Result<SimResult, RunError> {
    match source {
        TraceSource::Materialized(trace) => {
            Ok(replay_with_policy(workload, trace, cfg, dschemes, ischemes, policy))
        }
        TraceSource::Streaming(trace) => {
            replay_streaming(workload, trace, cfg, dschemes, ischemes, policy)
        }
    }
}

/// The streaming replay engine: every front-end replays its section
/// (fetches for I-fronts, loads/stores for D-fronts) straight from the
/// `.wmtr` file through its own independent cursor —
/// [`StreamingTrace::replay_section`] opens a fresh file handle per
/// call, so the parallel fan-out needs no coordination and the numbers
/// are bit-identical to the materialized engine (each front-end consumes
/// the identical event sequence in isolation, in the same batched
/// `events()` entry point).
fn replay_streaming(
    workload: WorkloadId,
    trace: &StreamingTrace,
    cfg: &SimConfig,
    dschemes: &[DScheme],
    ischemes: &[IScheme],
    policy: ExecPolicy,
) -> Result<SimResult, RunError> {
    let _phase = waymem_obs::phase::enter(Phase::Replay);
    let _span = waymem_obs::span!("replay", workload = workload.name());
    let parallel = match policy {
        ExecPolicy::Auto => replay_in_parallel(dschemes.len() + ischemes.len()),
        ExecPolicy::Parallel => true,
        ExecPolicy::Serial => false,
    };
    let (dfronts, ifronts) = if parallel {
        let workers = std::thread::available_parallelism().map_or(1, |n| n.get());
        let chunk = (dschemes.len() + ischemes.len()).div_ceil(workers).max(1);
        std::thread::scope(|scope| -> Result<_, StreamError> {
            let dhandles: Vec<_> = dschemes
                .chunks(chunk)
                .map(|group| {
                    scope.spawn(move || {
                        group
                            .iter()
                            .map(|&s| stream_d_front(s, cfg.geometry, trace))
                            .collect::<Result<Vec<_>, StreamError>>()
                    })
                })
                .collect();
            let ihandles: Vec<_> = ischemes
                .chunks(chunk)
                .map(|group| {
                    scope.spawn(move || {
                        group
                            .iter()
                            .map(|&s| stream_i_front(s, cfg.geometry, trace))
                            .collect::<Result<Vec<_>, StreamError>>()
                    })
                })
                .collect();
            let mut dfronts: Vec<DFront> = Vec::with_capacity(dschemes.len());
            for h in dhandles {
                dfronts.extend(h.join().expect("D-front streaming replay worker panicked")?);
            }
            let mut ifronts: Vec<IFront> = Vec::with_capacity(ischemes.len());
            for h in ihandles {
                ifronts.extend(h.join().expect("I-front streaming replay worker panicked")?);
            }
            Ok((dfronts, ifronts))
        })?
    } else {
        let mut dfronts = Vec::with_capacity(dschemes.len());
        for &s in dschemes {
            dfronts.push(stream_d_front(s, cfg.geometry, trace).map_err(RunError::from)?);
        }
        let mut ifronts = Vec::with_capacity(ischemes.len());
        for &s in ischemes {
            ifronts.push(stream_i_front(s, cfg.geometry, trace).map_err(RunError::from)?);
        }
        (dfronts, ifronts)
    };
    let cycles = trace.cycles();
    let energies = run_energies(cfg);
    Ok(SimResult {
        workload,
        cycles,
        dcache: dfronts
            .iter()
            .map(|f| dscheme_result(f, cycles, cfg, energies))
            .collect(),
        icache: ifronts
            .iter()
            .map(|f| ischeme_result(f, cycles, cfg, energies))
            .collect(),
    })
}

/// Runs `bench` once and returns per-scheme statistics and Eq. (1) power
/// for every requested D- and I-cache scheme.
#[deprecated(since = "0.1.0", note = "use Experiment::kernel(bench).run()")]
pub fn run_benchmark(
    bench: Benchmark,
    cfg: &SimConfig,
    dschemes: &[DScheme],
    ischemes: &[IScheme],
) -> Result<SimResult, RunError> {
    crate::Experiment::kernel(bench)
        .config(*cfg)
        .dschemes(dschemes.iter().copied())
        .ischemes(ischemes.iter().copied())
        .run()
}

/// The FNV-1a64 of the kernel's generated assembly source at `scale` —
/// the staleness fingerprint stored traces of built-in kernels carry.
/// A workload-generator change alters the source text, so warm cache
/// files from before the change stop matching and are re-recorded
/// instead of silently replayed.
///
/// Memoized per `(benchmark, scale)` for the process lifetime: sweeps
/// call the store-backed runners hundreds of times per configuration,
/// and regenerating a kernel's full source (synthetic input frames
/// included) per call just to re-derive a constant would dwarf the
/// lookup it guards. Kernel generators are pure, so the hash cannot go
/// stale within a process.
#[must_use]
pub fn kernel_source_hash(bench: Benchmark, scale: u32) -> u64 {
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};
    static CACHE: OnceLock<Mutex<HashMap<(Benchmark, u32), u64>>> = OnceLock::new();
    let cache = CACHE.get_or_init(Mutex::default);
    if let Some(&hash) = cache.lock().expect("hash cache poisoned").get(&(bench, scale)) {
        return hash;
    }
    // Generate outside the lock: source generation is the expensive
    // part, and a racing thread at worst recomputes the same value.
    let hash = fnv1a64(bench.source(scale).as_bytes());
    cache.lock().expect("hash cache poisoned").insert((bench, scale), hash);
    hash
}

/// Like `run_benchmark`, but sourcing the recorded trace from a shared
/// [`TraceStore`].
#[deprecated(since = "0.1.0", note = "use Experiment::kernel(bench).store(&store).run()")]
pub fn run_benchmark_with_store(
    bench: Benchmark,
    cfg: &SimConfig,
    dschemes: &[DScheme],
    ischemes: &[IScheme],
    store: &TraceStore,
) -> Result<SimResult, RunError> {
    crate::Experiment::kernel(bench)
        .config(*cfg)
        .dschemes(dschemes.iter().copied())
        .ischemes(ischemes.iter().copied())
        .store(store)
        .run()
}

/// The custom-producer store-backed runner: evaluates the workload `id`
/// across all requested schemes, producing its trace at most once per
/// store lifetime via `record`.
#[deprecated(
    since = "0.1.0",
    note = "use Experiment (kernel/synthetic/ingest resolve their own producer), or \
            TraceStore::get_or_record + Experiment::recorded for a custom producer"
)]
#[allow(clippy::too_many_arguments)]
pub fn run_trace_with_store<E>(
    id: WorkloadId,
    source_hash: u64,
    cfg: &SimConfig,
    dschemes: &[DScheme],
    ischemes: &[IScheme],
    store: &TraceStore,
    record: impl FnOnce() -> Result<RecordedTrace, E>,
) -> Result<SimResult, E> {
    let trace = store.get_or_record(id, source_hash, record)?;
    Ok(replay_with_policy(id, &trace, cfg, dschemes, ischemes, ExecPolicy::Auto))
}

/// The pre-record/replay serial engine: one CPU run with every front-end
/// fed per event through the serial [`FanoutSink`], skipping trace
/// materialization entirely. This is what [`ExecPolicy::Serial`] (and
/// `Auto`, when parallel replay cannot pay) resolves to for kernel
/// workloads without a store; kept private as the reference engine the
/// parallel replay is cross-validated against.
///
/// # Errors
///
/// Returns [`RunError`] if the kernel fails to assemble, faults, or does
/// not halt.
pub(crate) fn run_kernel_fanout(
    bench: Benchmark,
    cfg: &SimConfig,
    dschemes: &[DScheme],
    ischemes: &[IScheme],
) -> Result<SimResult, RunError> {
    let _phase = waymem_obs::phase::enter(Phase::Replay);
    let _span = waymem_obs::span!("replay", workload = bench.name());
    let wl = bench.workload(cfg.scale)?;
    let mut sink = FanoutSink {
        dfronts: dschemes.iter().map(|s| s.build(cfg.geometry)).collect(),
        ifronts: ischemes.iter().map(|s| s.build(cfg.geometry)).collect(),
    };
    let mut cpu = Cpu::new(&wl.program);
    let outcome = cpu.run(wl.max_steps, &mut sink)?;
    if !outcome.halted() {
        return Err(RunError::StepLimit {
            max_steps: wl.max_steps,
        });
    }
    let cycles = cpu.instret();
    let energies = run_energies(cfg);
    Ok(SimResult {
        workload: WorkloadId::kernel(bench, cfg.scale),
        cycles,
        dcache: sink
            .dfronts
            .iter()
            .map(|f| dscheme_result(f, cycles, cfg, energies))
            .collect(),
        icache: sink
            .ifronts
            .iter()
            .map(|f| ischeme_result(f, cycles, cfg, energies))
            .collect(),
    })
}

/// Runs all seven benchmarks under the given schemes, fanning the
/// benchmarks out across worker threads.
#[deprecated(
    since = "0.1.0",
    note = "use Suite::kernels().dschemes(..).ischemes(..).run()"
)]
pub fn run_suite(
    cfg: &SimConfig,
    dschemes: &[DScheme],
    ischemes: &[IScheme],
) -> Result<Vec<SimResult>, RunError> {
    Suite::kernels()
        .config(*cfg)
        .dschemes(dschemes.iter().copied())
        .ischemes(ischemes.iter().copied())
        .run()
        .map(SuiteResult::into_results)
}

/// `run_suite` with a shared [`TraceStore`].
#[deprecated(
    since = "0.1.0",
    note = "use Suite::kernels().dschemes(..).ischemes(..).store(&store).run()"
)]
pub fn run_suite_with_store(
    cfg: &SimConfig,
    dschemes: &[DScheme],
    ischemes: &[IScheme],
    store: &TraceStore,
) -> Result<Vec<SimResult>, RunError> {
    Suite::kernels()
        .config(*cfg)
        .dschemes(dschemes.iter().copied())
        .ischemes(ischemes.iter().copied())
        .store(store)
        .run()
        .map(SuiteResult::into_results)
}

/// The fully serial suite driver: benchmarks one after another, each
/// feeding every front-end per event through the serial fanout sink.
#[deprecated(
    since = "0.1.0",
    note = "use Suite::kernels().policy(ExecPolicy::Serial)…run()"
)]
pub fn run_suite_serial(
    cfg: &SimConfig,
    dschemes: &[DScheme],
    ischemes: &[IScheme],
) -> Result<Vec<SimResult>, RunError> {
    Suite::kernels()
        .config(*cfg)
        .dschemes(dschemes.iter().copied())
        .ischemes(ischemes.iter().copied())
        .policy(ExecPolicy::Serial)
        .run()
        .map(SuiteResult::into_results)
}

#[cfg(test)]
mod tests {
    // These unit tests deliberately keep exercising the deprecated shims:
    // they are the in-crate proof that every shim stays bit-identical to
    // the `Experiment` pipeline it forwards to. Workspace-level code is
    // held to the builder API by `tests/deprecation_tripwire.rs`.
    #![allow(deprecated)]

    use super::*;
    use crate::Experiment;

    fn paper_schemes() -> (Vec<DScheme>, Vec<IScheme>) {
        (
            vec![
                DScheme::Original,
                DScheme::SetBuffer { entries: 1 },
                DScheme::paper_way_memo(),
            ],
            vec![
                IScheme::Original,
                IScheme::IntraLine,
                IScheme::paper_way_memo(),
            ],
        )
    }

    #[test]
    fn dct_run_produces_paper_shape() {
        let cfg = SimConfig::default();
        let (d, i) = paper_schemes();
        let r = run_benchmark(Benchmark::Dct, &cfg, &d, &i).expect("runs");
        assert!(r.cycles > 50_000);

        // All D schemes saw the same accesses.
        let accesses: Vec<u64> = r.dcache.iter().map(|s| s.stats.accesses).collect();
        assert!(accesses.windows(2).all(|w| w[0] == w[1]));

        let orig = &r.dcache[0];
        let ours = &r.dcache[2];
        // Figure 4 shape: original ~2 tags/access; ours ~90% fewer.
        assert!(orig.stats.tags_per_access() > 1.9);
        assert!(
            ours.stats.tag_reads * 3 < orig.stats.tag_reads,
            "ours {} vs orig {}",
            ours.stats.tag_reads,
            orig.stats.tag_reads
        );
        // Ways: ours stays above 1 (at least one way per access).
        assert!(ours.stats.ways_per_access() >= 1.0);
        assert!(ours.stats.ways_per_access() < orig.stats.ways_per_access());
        // Figure 5 shape: total power drops.
        assert!(ours.power.total_mw() < orig.power.total_mw());
        // No performance penalty for way memoization.
        assert_eq!(ours.extra_cycles, 0);

        // I-cache, Figure 6 shape: [4] removes most tags; ours removes more.
        let iorig = &r.icache[0];
        let i4 = &r.icache[1];
        let iours = &r.icache[2];
        assert!(i4.stats.tag_reads < iorig.stats.tag_reads / 2);
        assert!(iours.stats.tag_reads < i4.stats.tag_reads);
        assert!(iours.power.total_mw() < i4.power.total_mw());
    }

    #[test]
    fn stats_are_internally_consistent() {
        let cfg = SimConfig::default();
        let (d, i) = paper_schemes();
        let r = run_benchmark(Benchmark::Compress, &cfg, &d, &i).expect("runs");
        for s in r.dcache.iter().chain(r.icache.iter()) {
            assert!(s.stats.is_consistent(), "{}", s.name);
            assert_eq!(s.energy.cycles, r.cycles);
        }
    }

    /// Structural equality of two results down to f64 bits.
    fn assert_results_identical(a: &SimResult, b: &SimResult) {
        assert_eq!(a.workload, b.workload);
        assert_eq!(a.cycles, b.cycles);
        let pairs = a.dcache.iter().zip(&b.dcache).chain(a.icache.iter().zip(&b.icache));
        for (x, y) in pairs {
            assert_eq!(x.name, y.name);
            assert_eq!(x.stats, y.stats, "{}: stats differ", x.name);
            assert_eq!(x.energy, y.energy, "{}: energy differs", x.name);
            assert_eq!(x.extra_cycles, y.extra_cycles);
            assert_eq!(
                x.power.total_mw().to_bits(),
                y.power.total_mw().to_bits(),
                "{}: power differs",
                x.name
            );
        }
    }

    #[test]
    fn parallel_replay_matches_legacy_fanout() {
        // Exercise the record/replay engine explicitly (not through
        // `run_benchmark`, which may pick the fanout path on single-core
        // hosts) and pin it bit-identical to the serial fanout.
        let cfg = SimConfig::default();
        let (d, i) = paper_schemes();
        let trace = record_trace(Benchmark::Dct, &cfg).expect("records");
        let replayed = replay_trace(Benchmark::Dct, &trace, &cfg, &d, &i);
        let fanout = run_kernel_fanout(Benchmark::Dct, &cfg, &d, &i).expect("fanout runs");
        assert_results_identical(&replayed, &fanout);
    }

    #[test]
    fn experiment_builder_matches_every_legacy_shim() {
        // The shims must be pure plumbing: each one bit-identical to the
        // builder chain its deprecation note names.
        let cfg = SimConfig::default();
        let (d, i) = paper_schemes();

        let legacy = run_benchmark(Benchmark::Dct, &cfg, &d, &i).expect("legacy runs");
        let built = Experiment::kernel(Benchmark::Dct)
            .dschemes(d.iter().copied())
            .ischemes(i.iter().copied())
            .run()
            .expect("builder runs");
        assert_results_identical(&legacy, &built);

        let trace = record_trace(Benchmark::Dct, &cfg).expect("records");
        let legacy = run_trace(
            WorkloadId::kernel(Benchmark::Dct, 1),
            &trace,
            &cfg,
            &d,
            &i,
        );
        let built = Experiment::recorded(
            WorkloadId::kernel(Benchmark::Dct, 1),
            trace.clone(),
        )
        .dschemes(d.iter().copied())
        .ischemes(i.iter().copied())
        .run()
        .expect("builder replays");
        assert_results_identical(&legacy, &built);

        let legacy_store = TraceStore::new();
        let built_store = TraceStore::new();
        let legacy = run_benchmark_with_store(Benchmark::Dct, &cfg, &d, &i, &legacy_store)
            .expect("legacy store run");
        let built = Experiment::kernel(Benchmark::Dct)
            .dschemes(d.iter().copied())
            .ischemes(i.iter().copied())
            .store(&built_store)
            .run()
            .expect("builder store run");
        assert_results_identical(&legacy, &built);
        assert_eq!(legacy_store.stats().records, built_store.stats().records);

        let legacy = run_suite(&cfg, &d, &i).expect("legacy suite");
        let built = crate::Suite::kernels()
            .dschemes(d.iter().copied())
            .ischemes(i.iter().copied())
            .run()
            .expect("builder suite");
        assert_eq!(legacy.len(), built.len());
        for (a, b) in legacy.iter().zip(built.iter()) {
            assert_results_identical(a, b);
        }

        let serial = run_suite_serial(&cfg, &d, &i).expect("legacy serial suite");
        for (a, b) in serial.iter().zip(legacy.iter()) {
            assert_results_identical(a, b);
        }
    }

    #[test]
    fn replaying_a_recorded_trace_twice_is_identical() {
        let cfg = SimConfig::default();
        let (d, i) = paper_schemes();
        let trace = record_trace(Benchmark::Fft, &cfg).expect("records");
        assert!(!trace.is_empty());
        let first = replay_trace(Benchmark::Fft, &trace, &cfg, &d, &i);
        let second = replay_trace(Benchmark::Fft, &trace, &cfg, &d, &i);
        assert_results_identical(&first, &second);
        for (x, y) in first.dcache.iter().zip(&second.dcache) {
            assert_eq!(x.stats, y.stats);
        }
    }

    #[test]
    fn recorded_trace_event_counts_match_counting_sink() {
        // The recorded stream must be exactly what a CountingSink observes
        // live: same number of fetches, loads and stores.
        use waymem_isa::CountingSink;
        let cfg = SimConfig::default();
        let bench = Benchmark::Dct;
        let trace = record_trace(bench, &cfg).expect("records");
        let wl = bench.workload(cfg.scale).expect("assembles");
        let mut counter = CountingSink::default();
        let mut cpu = Cpu::new(&wl.program);
        cpu.run(wl.max_steps, &mut counter).expect("runs");
        // The fetch stream must be pure fetches and the data stream pure
        // loads/stores, both matching what a CountingSink observes live.
        assert!(trace
            .fetch_events
            .iter()
            .all(|e| matches!(e, waymem_isa::TraceEvent::Fetch { .. })));
        let loads = trace
            .data_events
            .iter()
            .filter(|e| matches!(e, waymem_isa::TraceEvent::Load { .. }))
            .count() as u64;
        let stores = trace
            .data_events
            .iter()
            .filter(|e| matches!(e, waymem_isa::TraceEvent::Store { .. }))
            .count() as u64;
        assert_eq!(trace.fetch_events.len() as u64, counter.fetches);
        assert_eq!(loads, counter.loads);
        assert_eq!(stores, counter.stores);
        // One fetch per retired instruction, plus the final `halt`, which
        // is fetched but does not retire.
        assert_eq!(trace.fetch_events.len() as u64, trace.cycles + 1);
    }

    #[test]
    fn store_backed_run_matches_plain_run_and_records_once() {
        let cfg = SimConfig::default();
        let (d, i) = paper_schemes();
        let store = TraceStore::new();
        let trace = record_trace(Benchmark::Dct, &cfg).expect("records");
        let plain = replay_trace(Benchmark::Dct, &trace, &cfg, &d, &i);
        let first =
            run_benchmark_with_store(Benchmark::Dct, &cfg, &d, &i, &store).expect("runs");
        // A different geometry replays the *same* stored trace.
        let wide = SimConfig {
            geometry: waymem_cache::Geometry::new(128, 8, 32).expect("valid"),
            ..cfg
        };
        let second =
            run_benchmark_with_store(Benchmark::Dct, &wide, &d, &i, &store).expect("runs");
        assert_results_identical(&plain, &first);
        assert_eq!(second.cycles, first.cycles, "same trace, same cycles");
        let s = store.stats();
        assert_eq!((s.lookups, s.records, s.hits), (2, 1, 1));
    }

    #[test]
    fn run_trace_evaluates_foreign_workloads() {
        // A hand-built trace with no kernel behind it — the ingest
        // subsystem's shape — must flow through the same engine and
        // produce consistent per-scheme accounting.
        let cfg = SimConfig::default();
        let (d, i) = paper_schemes();
        let trace = RecordedTrace {
            fetch_events: (0..2000)
                .map(|k| TraceEvent::Fetch { pc: 0x1000 + 4 * k, kind: FetchKind::Sequential })
                .collect(),
            data_events: (0..500)
                .map(|k| TraceEvent::Load {
                    base: 0x8000 + 8 * k,
                    disp: 0,
                    addr: 0x8000 + 8 * k,
                    size: 4,
                })
                .collect(),
            cycles: 2000,
        };
        let id = WorkloadId::External { hash: 0xabcd };
        let r = run_trace(id, &trace, &cfg, &d, &i);
        assert_eq!(r.workload, id);
        assert_eq!(r.cycles, 2000);
        for s in r.dcache.iter().chain(r.icache.iter()) {
            assert!(s.stats.is_consistent(), "{}", s.name);
            assert!(s.stats.accesses > 0, "{}", s.name);
            assert!(s.power.total_mw() > 0.0, "{}", s.name);
        }
    }

    #[test]
    fn run_trace_with_store_produces_once_and_verifies_hash() {
        let cfg = SimConfig::default();
        let (d, i) = paper_schemes();
        let id = WorkloadId::External { hash: 77 };
        let store = TraceStore::new();
        let mut productions = 0;
        let trace = RecordedTrace {
            fetch_events: vec![TraceEvent::Fetch { pc: 0, kind: FetchKind::Sequential }],
            data_events: vec![TraceEvent::Load { base: 0, disp: 0, addr: 0, size: 4 }],
            cycles: 1,
        };
        for _ in 0..2 {
            let r = run_trace_with_store(id, 77, &cfg, &d, &i, &store, || {
                productions += 1;
                Ok::<_, ()>(trace.clone())
            })
            .expect("runs");
            assert_eq!(r.workload, id);
        }
        assert_eq!(productions, 1, "second run must hit the store");
    }

    #[test]
    fn kernel_source_hash_is_stable_and_scale_sensitive() {
        let h1 = kernel_source_hash(Benchmark::Dct, 1);
        assert_eq!(h1, kernel_source_hash(Benchmark::Dct, 1));
        assert_ne!(h1, kernel_source_hash(Benchmark::Dct, 2));
        assert_ne!(h1, kernel_source_hash(Benchmark::Fft, 1));
        assert_ne!(h1, 0, "hash 0 means 'unverified' and must not collide");
    }

    #[test]
    fn lookup_by_name_works() {
        let cfg = SimConfig::default();
        let r = run_benchmark(
            Benchmark::Dct,
            &cfg,
            &[DScheme::Original],
            &[IScheme::Original],
        )
        .expect("runs");
        assert!(r.dcache_by_name("original").is_some());
        assert!(r.dcache_by_name("nope").is_none());
        assert!(r.icache_by_name("original").is_some());
    }
}
