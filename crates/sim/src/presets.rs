//! Named scheme-set presets: the combinations the paper's figures (and
//! the full design-space exports) evaluate, ready to hand to
//! [`Experiment::dschemes`](crate::Experiment::dschemes) /
//! [`ischemes`](crate::Experiment::ischemes) or their [`Suite`]
//! counterparts.
//!
//! [`Suite`]: crate::Suite

use crate::{DScheme, IScheme};

/// The D-cache schemes of Figures 4–5: original, set buffer \[14\], ours.
#[must_use]
pub fn fig4_dschemes() -> Vec<DScheme> {
    vec![
        DScheme::Original,
        DScheme::SetBuffer { entries: 1 },
        DScheme::WayMemo {
            tag_entries: 2,
            set_entries: 8,
        },
    ]
}

/// The I-cache schemes of Figures 6–7: approach \[4\] plus ours with 2×8,
/// 2×16 and 2×32 MABs.
#[must_use]
pub fn fig6_ischemes() -> Vec<IScheme> {
    vec![
        IScheme::IntraLine,
        IScheme::WayMemo {
            tag_entries: 2,
            set_entries: 8,
        },
        IScheme::WayMemo {
            tag_entries: 2,
            set_entries: 16,
        },
        IScheme::WayMemo {
            tag_entries: 2,
            set_entries: 32,
        },
    ]
}

/// Every implemented D-cache lookup scheme — conventional, the paper's
/// way memoization, and all ablations — in presentation order. The
/// `export` and `ingest` bins run this full comparison so their JSON
/// rows cover the whole design space.
#[must_use]
pub fn full_dschemes() -> Vec<DScheme> {
    vec![
        DScheme::Original,
        DScheme::SetBuffer { entries: 1 },
        DScheme::FilterCache { lines: 4 },
        DScheme::WayPredict,
        DScheme::TwoPhase,
        DScheme::paper_way_memo(),
        DScheme::WayMemoLineBuffer {
            tag_entries: 2,
            set_entries: 8,
            line_entries: 2,
        },
    ]
}

/// Every implemented I-cache lookup scheme, in presentation order; the
/// I-side counterpart of [`full_dschemes`].
#[must_use]
pub fn full_ischemes() -> Vec<IScheme> {
    vec![
        IScheme::Original,
        IScheme::IntraLine,
        IScheme::LinkMemo,
        IScheme::ExtendedBtb { entries: 32 },
        IScheme::WayMemo {
            tag_entries: 2,
            set_entries: 8,
        },
        IScheme::WayMemo {
            tag_entries: 2,
            set_entries: 16,
        },
        IScheme::WayMemo {
            tag_entries: 2,
            set_entries: 32,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_lists_have_expected_sizes() {
        assert_eq!(fig4_dschemes().len(), 3);
        assert_eq!(fig6_ischemes().len(), 4);
        assert_eq!(full_dschemes().len(), 7);
        assert_eq!(full_ischemes().len(), 7);
    }

    #[test]
    fn figure_presets_prefix_the_full_space() {
        // Every figure scheme appears in the full design-space list, so
        // `export`'s rows subsume the figures'.
        for s in fig4_dschemes() {
            assert!(full_dschemes().contains(&s), "{}", s.name());
        }
        for s in fig6_ischemes() {
            assert!(full_ischemes().contains(&s), "{}", s.name());
        }
    }
}
