//! Plain-text rendering of the paper's figures: each figure is a table of
//! benchmark rows × scheme series, printed with aligned columns so the
//! bench binaries' output reads like the paper's bar charts.

use std::fmt::Write as _;

use waymem_hwmodel::PowerBreakdown;

/// One row of a figure: a benchmark label plus one value per series.
#[derive(Debug, Clone)]
pub struct FigureRow {
    /// Row label (benchmark name).
    pub label: String,
    /// `(series name, value)` pairs, one per scheme.
    pub values: Vec<(String, f64)>,
}

/// Formats rows of per-scheme ratios (tags/access, ways/access…) as an
/// aligned table with a title line.
///
/// ```
/// use waymem_sim::{format_ratio_table, FigureRow};
///
/// let rows = vec![FigureRow {
///     label: "DCT".into(),
///     values: vec![("original".into(), 2.0), ("ours".into(), 0.2)],
/// }];
/// let t = format_ratio_table("tags per access", &rows);
/// assert!(t.contains("DCT"));
/// assert!(t.contains("original"));
/// ```
#[must_use]
pub fn format_ratio_table(title: &str, rows: &[FigureRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    if rows.is_empty() {
        return out;
    }
    let label_w = rows
        .iter()
        .map(|r| r.label.len())
        .max()
        .unwrap_or(0)
        .max("benchmark".len());
    let series: Vec<&str> = rows[0].values.iter().map(|(n, _)| n.as_str()).collect();
    let col_w: Vec<usize> = series.iter().map(|s| s.len().max(8)).collect();
    let _ = write!(out, "{:label_w$}", "benchmark");
    for (s, w) in series.iter().zip(&col_w) {
        let _ = write!(out, "  {s:>w$}");
    }
    let _ = writeln!(out);
    for row in rows {
        let _ = write!(out, "{:label_w$}", row.label);
        for ((_, v), w) in row.values.iter().zip(&col_w) {
            let _ = write!(out, "  {v:>w$.3}");
        }
        let _ = writeln!(out);
    }
    out
}

/// Formats per-scheme power breakdowns for one benchmark as a stacked
/// table (`data / tag / mab / buffer / total`, mW) — the textual analogue
/// of one benchmark group in Figures 5 and 7.
#[must_use]
pub fn format_power_table(title: &str, entries: &[(String, PowerBreakdown)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    let name_w = entries
        .iter()
        .map(|(n, _)| n.len())
        .max()
        .unwrap_or(0)
        .max("scheme".len());
    let _ = writeln!(
        out,
        "{:name_w$}  {:>9}  {:>9}  {:>9}  {:>9}  {:>9}",
        "scheme", "data mW", "tag mW", "MAB mW", "buf mW", "total mW"
    );
    for (name, p) in entries {
        let _ = writeln!(
            out,
            "{:name_w$}  {:>9.2}  {:>9.2}  {:>9.2}  {:>9.2}  {:>9.2}",
            name,
            p.data_mw,
            p.tag_mw,
            p.mab_mw,
            p.buffer_mw,
            p.total_mw()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_table_aligns_and_includes_all_values() {
        let rows = vec![
            FigureRow {
                label: "DCT".into(),
                values: vec![("original".into(), 1.95), ("ours".into(), 0.21)],
            },
            FigureRow {
                label: "mpeg2enc".into(),
                values: vec![("original".into(), 2.0), ("ours".into(), 0.15)],
            },
        ];
        let t = format_ratio_table("Figure 4: tag accesses", &rows);
        assert!(t.contains("Figure 4"));
        assert!(t.contains("1.950"));
        assert!(t.contains("0.150"));
        assert!(t.lines().count() == 4);
    }

    #[test]
    fn empty_rows_render_title_only() {
        let t = format_ratio_table("nothing", &[]);
        assert_eq!(t.lines().count(), 1);
    }

    #[test]
    fn power_table_shows_total() {
        let p = PowerBreakdown {
            data_mw: 10.0,
            tag_mw: 3.0,
            mab_mw: 1.5,
            buffer_mw: 0.0,
        };
        let t = format_power_table("D-cache: DCT", &[("ours".into(), p)]);
        assert!(t.contains("14.50"));
        assert!(t.contains("ours"));
    }
}
