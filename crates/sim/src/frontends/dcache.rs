//! D-cache front-ends (paper Figures 4–5 plus ablations).

use waymem_cache::{
    AccessKind, AccessOutcome, AccessStats, Geometry, LineBuffer, MainMemory, SetAssocCache,
    SetBuffer, SetBufferLookup,
};
use waymem_core::{Mab, MabConfig, MabLookup, MabStats};
use waymem_hwmodel::{EnergyCounts, MabShape};
use waymem_isa::{FetchKind, TraceEvent, TraceSink};

/// A D-cache lookup scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DScheme {
    /// Conventional parallel lookup: all tags + all data ways per load,
    /// all tags + one way per store (write-back buffer).
    Original,
    /// Yang et al.'s lightweight set buffer (approach \[14\]).
    SetBuffer {
        /// Number of buffered sets (the paper's comparison uses 1).
        entries: usize,
    },
    /// The paper's way memoization: a MAB in front of the cache.
    WayMemo {
        /// MAB tag rows (`N_t`).
        tag_entries: usize,
        /// MAB set-index columns (`N_s`).
        set_entries: usize,
    },
    /// The conclusion's future-work hybrid: a line buffer probed before
    /// the MAB (line-buffer hits cost no array access at all).
    WayMemoLineBuffer {
        /// MAB tag rows.
        tag_entries: usize,
        /// MAB set-index columns.
        set_entries: usize,
        /// Line-buffer entries.
        line_entries: usize,
    },
    /// MRU way prediction (Inoue et al., \[9\]): one tag + one way on a
    /// correct prediction, the rest (plus an extra cycle) on a miss.
    WayPredict,
    /// Two-phase lookup (Hasegawa et al., \[8\]): tags first, then exactly
    /// one way — an extra cycle on every access.
    TwoPhase,
    /// A small L0 filter cache / line buffer in front of the L1 (Kin et
    /// al. \[6\]; with one line, Su & Despain's in-cache line buffer
    /// \[13\]). Loads hitting the L0 cost only buffer energy, but an L0
    /// miss "will require additional cycles to access the main cache" —
    /// the performance loss the paper's §2 criticizes. Stores write
    /// through to the L1 conventionally.
    FilterCache {
        /// Number of L0 lines (fully associative, LRU).
        lines: usize,
    },
    /// The MAB *without* replacement-time invalidation, trusting the
    /// paper's §3.3 claim that LRU ordering alone keeps the MAB
    /// consistent with the cache. Every hit is verified against actual
    /// residency; hits that would have returned stale data are counted in
    /// [`waymem_cache::AccessStats::unsound_hits`] and recovered with a
    /// conventional lookup. Exists to *measure* the claim, not to deploy.
    WayMemoPaperLru {
        /// MAB tag rows (`N_t`).
        tag_entries: usize,
        /// MAB set-index columns (`N_s`).
        set_entries: usize,
    },
}

impl DScheme {
    /// Display name used in figure rows.
    #[must_use]
    pub fn name(&self) -> String {
        match self {
            DScheme::Original => "original".to_owned(),
            DScheme::SetBuffer { entries } => format!("set_buffer[14]x{entries}"),
            DScheme::WayMemo {
                tag_entries,
                set_entries,
            } => format!("way_memo {tag_entries}x{set_entries}"),
            DScheme::WayMemoLineBuffer {
                tag_entries,
                set_entries,
                line_entries,
            } => format!("way_memo+lb {tag_entries}x{set_entries}+{line_entries}"),
            DScheme::WayPredict => "way_predict[9]".to_owned(),
            DScheme::TwoPhase => "two_phase[8]".to_owned(),
            DScheme::FilterCache { lines } => format!("filter_cache[6]x{lines}"),
            DScheme::WayMemoPaperLru {
                tag_entries,
                set_entries,
            } => format!("way_memo_paper_lru {tag_entries}x{set_entries}"),
        }
    }

    /// The paper's D-cache MAB configuration (2×8).
    #[must_use]
    pub fn paper_way_memo() -> Self {
        DScheme::WayMemo {
            tag_entries: 2,
            set_entries: 8,
        }
    }

    /// Builds the front-end over a cache shaped by `geom`.
    ///
    /// # Panics
    ///
    /// Panics if a MAB scheme's entry counts are invalid (zero or > 255).
    #[must_use]
    pub fn build(self, geom: Geometry) -> DFront {
        let mab = match self {
            DScheme::WayMemo {
                tag_entries,
                set_entries,
            }
            | DScheme::WayMemoPaperLru {
                tag_entries,
                set_entries,
            }
            | DScheme::WayMemoLineBuffer {
                tag_entries,
                set_entries,
                ..
            } => Some(Mab::new(
                MabConfig::new(geom, tag_entries, set_entries).expect("valid MAB config"),
            )),
            _ => None,
        };
        let set_buffer = match self {
            DScheme::SetBuffer { entries } => Some(SetBuffer::new(geom, entries)),
            _ => None,
        };
        let line_buffer = match self {
            DScheme::WayMemoLineBuffer { line_entries, .. } => {
                Some(LineBuffer::new(geom, line_entries))
            }
            DScheme::FilterCache { lines } => Some(LineBuffer::new(geom, lines)),
            _ => None,
        };
        DFront {
            scheme: self,
            geom,
            cache: SetAssocCache::new(geom),
            mem: MainMemory::new(),
            stats: AccessStats::new(),
            mab,
            set_buffer,
            line_buffer,
            extra_cycles: 0,
        }
    }
}

/// A trace-driven D-cache model under one scheme.
///
/// The front-end owns a private cache and dummy backing memory: it tracks
/// residency, LRU and dirty state driven purely by the address stream (the
/// CPU's architectural data lives elsewhere), which is exactly what the
/// energy accounting needs.
#[derive(Debug)]
pub struct DFront {
    scheme: DScheme,
    geom: Geometry,
    cache: SetAssocCache,
    mem: MainMemory,
    stats: AccessStats,
    mab: Option<Mab>,
    set_buffer: Option<SetBuffer>,
    line_buffer: Option<LineBuffer>,
    extra_cycles: u64,
}

impl DFront {
    /// The scheme this front-end models.
    #[must_use]
    pub fn scheme(&self) -> DScheme {
        self.scheme
    }

    /// Conventional lookup accounting + architectural access.
    fn conventional(&mut self, is_store: bool, addr: u32) -> AccessOutcome {
        let w = u64::from(self.geom.ways());
        self.stats.tag_reads += w;
        self.stats.way_reads += if is_store { 1 } else { w };
        self.finish(is_store, addr)
    }

    /// Architectural access with hit/miss/fill accounting (no lookup cost).
    fn finish(&mut self, is_store: bool, addr: u32) -> AccessOutcome {
        let kind = if is_store {
            AccessKind::Store
        } else {
            AccessKind::Load
        };
        let out = self.cache.access(addr, kind, &mut self.mem);
        if out.hit {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
            self.stats.way_reads += 1; // line-fill write
            if out.evicted.is_some_and(|e| e.dirty) {
                self.stats.write_backs += 1;
            }
            // Any structure memoizing the victim's location is now stale.
            // The PaperLru variant deliberately skips this to measure the
            // paper's claim that LRU ordering makes it unnecessary.
            let precise = !matches!(self.scheme, DScheme::WayMemoPaperLru { .. });
            if precise {
                if let Some(mab) = self.mab.as_mut() {
                    mab.invalidate_location(out.index, out.way);
                }
            }
            if let Some(ev) = out.evicted {
                if let Some(lb) = self.line_buffer.as_mut() {
                    lb.invalidate_line(self.geom.line_addr(ev.tag, ev.index));
                }
            }
        }
        out
    }

    /// A known-way access (MAB / buffer / predictor hit): one way, no tags.
    fn known_way(&mut self, is_store: bool, addr: u32, way: u32) {
        debug_assert_eq!(
            self.cache.probe(addr),
            Some(way),
            "known-way access must target a resident line ({})",
            self.scheme.name()
        );
        self.stats.way_reads += 1;
        let out = self.finish(is_store, addr);
        debug_assert!(out.hit);
    }

    /// Feeds one load/store into the model.
    pub fn access(&mut self, is_store: bool, base: u32, disp: i32, addr: u32) {
        self.stats.accesses += 1;
        match self.scheme {
            DScheme::Original => {
                self.conventional(is_store, addr);
            }
            DScheme::SetBuffer { .. } => self.access_set_buffer(is_store, addr),
            DScheme::WayMemo { .. } => self.access_way_memo(is_store, base, disp, addr),
            DScheme::WayMemoPaperLru { .. } => {
                self.access_way_memo_unchecked(is_store, base, disp, addr);
            }
            DScheme::FilterCache { .. } => {
                if is_store {
                    // Write-through past the L0; keep the L0 coherent.
                    self.conventional(true, addr);
                    self.line_buffer
                        .as_mut()
                        .expect("scheme has L0")
                        .invalidate_line(addr);
                    return;
                }
                let l0 = self.line_buffer.as_mut().expect("scheme has L0");
                if l0.lookup(addr).is_some() {
                    // Served entirely from the L0: buffer energy only.
                    // (L0 ⊆ L1 is maintained by eviction invalidation.)
                    debug_assert!(self.cache.probe(addr).is_some());
                    self.stats.buffer_hits += 1;
                    self.stats.hits += 1;
                    self.cache.access(addr, AccessKind::Load, &mut self.mem);
                    return;
                }
                // L0 miss: the extra cycle the paper's §2 criticizes.
                self.extra_cycles += 1;
                let out = self.conventional(false, addr);
                self.line_buffer
                    .as_mut()
                    .expect("scheme has L0")
                    .record(addr, out.way);
            }
            DScheme::WayMemoLineBuffer { .. } => {
                if !is_store {
                    let lb = self.line_buffer.as_mut().expect("scheme has line buffer");
                    if let Some(way) = lb.lookup(addr) {
                        // Served from the line buffer: no array activation.
                        self.stats.buffer_hits += 1;
                        debug_assert_eq!(self.cache.probe(addr), Some(way));
                        self.stats.hits += 1;
                        self.cache
                            .access(addr, AccessKind::Load, &mut self.mem);
                        return;
                    }
                }
                self.access_way_memo(is_store, base, disp, addr);
                // Memoize the line for subsequent loads.
                if let Some(way) = self.cache.probe(addr) {
                    self.line_buffer
                        .as_mut()
                        .expect("scheme has line buffer")
                        .record(addr, way);
                }
            }
            DScheme::WayPredict => {
                let index = self.geom.index_of(addr);
                let predicted = self.cache.mru_way(index);
                self.stats.tag_reads += 1;
                self.stats.way_reads += 1;
                if self.cache.probe(addr) == Some(predicted) {
                    let out = self.finish(is_store, addr);
                    debug_assert!(out.hit);
                } else {
                    // Misprediction: re-access the remaining ways, one
                    // cycle later.
                    let w = u64::from(self.geom.ways());
                    self.stats.tag_reads += w - 1;
                    self.stats.way_reads += if is_store { 0 } else { w - 1 };
                    self.extra_cycles += 1;
                    self.finish(is_store, addr);
                }
            }
            DScheme::TwoPhase => {
                // Phase 1: all tags; phase 2: exactly one way. Always an
                // extra cycle.
                self.stats.tag_reads += u64::from(self.geom.ways());
                self.stats.way_reads += 1;
                self.extra_cycles += 1;
                self.finish(is_store, addr);
            }
        }
    }

    fn access_set_buffer(&mut self, is_store: bool, addr: u32) {
        let sb = self.set_buffer.as_mut().expect("scheme has set buffer");
        match sb.lookup(addr) {
            SetBufferLookup::WayKnown(way) => {
                self.stats.buffer_hits += 1;
                self.known_way(is_store, addr, way);
            }
            SetBufferLookup::SetKnownTagMiss | SetBufferLookup::SetMiss => {
                self.conventional(is_store, addr);
                // Refresh the buffered copy of this set's tags.
                let index = self.geom.index_of(addr);
                let tags: Vec<Option<u32>> = (0..self.geom.ways())
                    .map(|w| self.cache.tag_at(index, w))
                    .collect();
                self.set_buffer
                    .as_mut()
                    .expect("scheme has set buffer")
                    .refill(index, &tags);
            }
        }
    }

    /// The MAB without invalidation: hits are audited against residency.
    /// A hit on a stale location is counted as unsound (in hardware it
    /// would have returned wrong data) and recovered conventionally.
    fn access_way_memo_unchecked(&mut self, is_store: bool, base: u32, disp: i32, addr: u32) {
        let mab = self.mab.as_mut().expect("scheme has MAB");
        match mab.lookup(base, disp) {
            MabLookup::Hit { way, .. } => {
                if self.cache.probe(addr) == Some(way) {
                    self.stats.way_reads += 1;
                    let out = self.finish(is_store, addr);
                    debug_assert!(out.hit);
                } else {
                    // The §3.3 LRU argument failed here.
                    self.stats.unsound_hits += 1;
                    let out = self.conventional(is_store, addr);
                    self.mab
                        .as_mut()
                        .expect("scheme has MAB")
                        .record(base, disp, out.way);
                }
            }
            MabLookup::Miss { .. } => {
                let out = self.conventional(is_store, addr);
                self.mab
                    .as_mut()
                    .expect("scheme has MAB")
                    .record(base, disp, out.way);
            }
            MabLookup::Wide => {
                self.conventional(is_store, addr);
            }
        }
    }

    fn access_way_memo(&mut self, is_store: bool, base: u32, disp: i32, addr: u32) {
        let mab = self.mab.as_mut().expect("scheme has MAB");
        match mab.lookup(base, disp) {
            MabLookup::Hit { way, set_index, .. } => {
                debug_assert_eq!(set_index, self.geom.index_of(addr));
                self.stats.buffer_hits += 0; // MAB hits tracked via mab stats
                self.known_way(is_store, addr, way);
            }
            MabLookup::Miss { .. } => {
                let out = self.conventional(is_store, addr);
                self.mab
                    .as_mut()
                    .expect("scheme has MAB")
                    .record(base, disp, out.way);
            }
            MabLookup::Wide => {
                self.conventional(is_store, addr);
            }
        }
    }

    /// Replays a recorded trace slice into the model: loads and stores are
    /// consumed in program order, fetch events are skipped. The loop is
    /// monomorphic for this front-end, so a replay pays no per-event
    /// virtual dispatch — this is the hot path of the record-once /
    /// replay-in-parallel engine in [`crate::run_benchmark`].
    pub fn replay(&mut self, events: &[TraceEvent]) {
        for &e in events {
            match e {
                TraceEvent::Load {
                    base, disp, addr, ..
                } => self.access(false, base, disp, addr),
                TraceEvent::Store {
                    base, disp, addr, ..
                } => self.access(true, base, disp, addr),
                TraceEvent::Fetch { .. } => {}
            }
        }
    }

    /// Accounting so far. For MAB schemes the `mab_*` counters reflect the
    /// MAB's own statistics.
    #[must_use]
    pub fn stats(&self) -> AccessStats {
        let mut s = self.stats;
        if let Some(mab) = self.mab.as_ref() {
            s.mab_lookups = mab.stats().lookups + mab.stats().wide_bypasses;
            s.mab_hits = mab.stats().hits;
        }
        if let Some(sb) = self.set_buffer.as_ref() {
            s.buffer_hits = sb.way_hits();
        }
        s
    }

    /// Raw MAB statistics (MAB schemes only).
    #[must_use]
    pub fn mab_stats(&self) -> Option<MabStats> {
        self.mab.as_ref().map(Mab::stats)
    }

    /// The MAB's hardware shape for area/power models (MAB schemes only).
    #[must_use]
    pub fn mab_shape(&self) -> Option<MabShape> {
        self.mab.as_ref().map(|m| {
            let cfg = m.config();
            MabShape {
                tag_entries: cfg.tag_entries() as u32,
                set_entries: cfg.set_entries() as u32,
                tag_entry_bits: cfg.tag_entry_bits(),
                set_entry_bits: cfg.set_entry_bits(),
                pair_bits: cfg.pair_bits(),
                adder_bits: cfg.geometry().low_bits(),
            }
        })
    }

    /// Cycles added by schemes with lookup penalties (way prediction,
    /// two-phase); zero for the others — the paper's "no performance
    /// penalty" claim is that this is zero for way memoization.
    #[must_use]
    pub fn extra_cycles(&self) -> u64 {
        self.extra_cycles
    }

    /// Converts the counters into hwmodel inputs. `cycles` is the run's
    /// instruction count (CPI 1).
    #[must_use]
    pub fn energy_counts(&self, cycles: u64) -> EnergyCounts {
        let buffer_probes = self.set_buffer.as_ref().map_or(0, SetBuffer::lookups)
            + self.line_buffer.as_ref().map_or(0, LineBuffer::lookups);
        EnergyCounts {
            way_reads: self.stats.way_reads,
            tag_reads: self.stats.tag_reads,
            buffer_probes,
            mab_lookups: if self.mab.is_some() {
                self.stats.accesses
            } else {
                0
            },
            cycles,
        }
    }

    /// The modelled cache (tests inspect residency).
    #[must_use]
    pub fn cache(&self) -> &SetAssocCache {
        &self.cache
    }
}

/// A D-front is itself a [`TraceSink`]: loads/stores feed the model,
/// fetches are ignored, and the batched [`TraceSink::events`] entry point
/// dispatches to the monomorphic [`DFront::replay`] loop — the path the
/// record/replay engine drives.
impl TraceSink for DFront {
    fn fetch(&mut self, _pc: u32, _kind: FetchKind) {}

    fn load(&mut self, base: u32, disp: i32, addr: u32, _size: u8) {
        self.access(false, base, disp, addr);
    }

    fn store(&mut self, base: u32, disp: i32, addr: u32, _size: u8) {
        self.access(true, base, disp, addr);
    }

    fn events(&mut self, batch: &[TraceEvent]) {
        self.replay(batch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> Geometry {
        Geometry::frv()
    }

    #[test]
    fn original_load_costs_all_tags_and_ways() {
        let mut f = DScheme::Original.build(geom());
        f.access(false, 0x1000, 0, 0x1000); // cold miss
        let s = f.stats();
        assert_eq!(s.accesses, 1);
        assert_eq!(s.tag_reads, 2);
        assert_eq!(s.way_reads, 3); // 2 parallel reads + 1 fill
        f.access(false, 0x1000, 4, 0x1004); // hit
        let s = f.stats();
        assert_eq!(s.tag_reads, 4);
        assert_eq!(s.way_reads, 5);
        assert!(s.is_consistent());
    }

    #[test]
    fn original_store_costs_one_way() {
        let mut f = DScheme::Original.build(geom());
        f.access(true, 0x2000, 0, 0x2000); // store miss: 2 tags + 1 way + fill
        let s = f.stats();
        assert_eq!(s.tag_reads, 2);
        assert_eq!(s.way_reads, 2);
        f.access(true, 0x2000, 8, 0x2008); // store hit: 2 tags + 1 way
        let s = f.stats();
        assert_eq!(s.tag_reads, 4);
        assert_eq!(s.way_reads, 3);
    }

    #[test]
    fn way_memo_hit_skips_tags() {
        let mut f = DScheme::paper_way_memo().build(geom());
        f.access(false, 0x3000, 0, 0x3000); // miss everywhere, records MAB
        let before = f.stats();
        f.access(false, 0x3000, 4, 0x3004); // MAB hit: same tag/set
        let s = f.stats();
        assert_eq!(s.tag_reads, before.tag_reads, "no new tag reads");
        assert_eq!(s.way_reads, before.way_reads + 1, "exactly one way");
        assert_eq!(s.mab_hits, 1);
    }

    #[test]
    fn way_memo_wide_displacement_bypasses() {
        let mut f = DScheme::paper_way_memo().build(geom());
        f.access(false, 0x3000, 1 << 20, 0x3000 + (1 << 20));
        let s = f.stats();
        assert_eq!(s.tag_reads, 2, "conventional path");
        // Re-probing the same wide pair still misses the MAB.
        f.access(false, 0x3000, 1 << 20, 0x3000 + (1 << 20));
        assert_eq!(f.stats().mab_hits, 0);
    }

    #[test]
    fn way_memo_survives_eviction_soundly() {
        // Fill a set with conflicting lines and make sure stale MAB pairs
        // never produce a wrong known-way access (debug_assert would fire).
        let g = Geometry::new(4, 2, 16).unwrap();
        let mut f = DScheme::WayMemo {
            tag_entries: 2,
            set_entries: 4,
        }
        .build(g);
        // Three lines mapping to set 0: 0x000, 0x040, 0x080.
        for round in 0..8u32 {
            for base in [0x000u32, 0x040, 0x080] {
                f.access(round % 2 == 0, base, 0, base);
            }
        }
        assert!(f.stats().is_consistent());
    }

    #[test]
    fn mab_claims_always_match_cache_residency() {
        let g = Geometry::new(16, 2, 16).unwrap();
        let mut f = DScheme::WayMemo {
            tag_entries: 2,
            set_entries: 8,
        }
        .build(g);
        let mut x: u32 = 0x1234_5678;
        for i in 0..4000u32 {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            let base = (x >> 8) & 0xfff0;
            let disp = ((x & 0xff) as i32) - 128;
            let addr = base.wrapping_add(disp as u32);
            f.access(i % 3 == 0, base, disp, addr);
            if let Some(mab) = f.mab.as_ref() {
                for (set, way, tag) in mab.claims() {
                    assert_eq!(
                        f.cache.resident_way(tag, set),
                        Some(way),
                        "stale MAB claim at iteration {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn set_buffer_exploits_same_set_locality() {
        let mut f = DScheme::SetBuffer { entries: 1 }.build(geom());
        f.access(false, 0x4000, 0, 0x4000); // miss, buffer refilled
        f.access(false, 0x4000, 4, 0x4004); // same set -> way known
        let s = f.stats();
        assert_eq!(s.buffer_hits, 1);
        assert_eq!(s.tag_reads, 2, "second access needed no tag read");
    }

    #[test]
    fn set_buffer_cannot_exploit_cross_set_locality() {
        let mut f = DScheme::SetBuffer { entries: 1 }.build(geom());
        // Alternate between two sets: single-entry buffer thrashes.
        for i in 0..10 {
            let addr = if i % 2 == 0 { 0x4000 } else { 0x4020 };
            f.access(false, addr, 0, addr);
        }
        assert_eq!(f.stats().buffer_hits, 0);
        // The MAB, by contrast, covers both lines at once.
        let mut m = DScheme::paper_way_memo().build(geom());
        for i in 0..10 {
            let addr = if i % 2 == 0 { 0x4000 } else { 0x4020 };
            m.access(false, addr, 0, addr);
        }
        assert_eq!(m.stats().mab_hits, 8);
    }

    #[test]
    fn way_predict_penalizes_mispredictions() {
        let mut f = DScheme::WayPredict.build(geom());
        // Two conflicting lines in one set: alternating accesses make the
        // MRU prediction always wrong.
        let stride = 512 * 32;
        f.access(false, 0x0, 0, 0x0);
        f.access(false, stride, 0, stride);
        let before = f.extra_cycles();
        f.access(false, 0x0, 0, 0x0);
        f.access(false, stride, 0, stride);
        assert_eq!(f.extra_cycles(), before + 2);
        // A repeated access predicts correctly: no new penalty.
        f.access(false, stride, 0, stride);
        assert_eq!(f.extra_cycles(), before + 2);
    }

    #[test]
    fn two_phase_costs_a_cycle_every_access() {
        let mut f = DScheme::TwoPhase.build(geom());
        for i in 0..5 {
            f.access(false, 0x100 * i, 0, 0x100 * i);
        }
        assert_eq!(f.extra_cycles(), 5);
        let s = f.stats();
        assert_eq!(s.tag_reads, 10);
        // 1 way per access + fills.
        assert!(s.way_reads >= 5);
    }

    #[test]
    fn line_buffer_hybrid_eliminates_array_access_on_lb_hit() {
        let mut f = DScheme::WayMemoLineBuffer {
            tag_entries: 2,
            set_entries: 8,
            line_entries: 1,
        }
        .build(geom());
        f.access(false, 0x5000, 0, 0x5000);
        let before = f.stats();
        f.access(false, 0x5000, 4, 0x5004); // line-buffer hit
        let s = f.stats();
        assert_eq!(s.tag_reads, before.tag_reads);
        assert_eq!(s.way_reads, before.way_reads, "no way access either");
        assert_eq!(s.buffer_hits, before.buffer_hits + 1);
    }

    #[test]
    fn filter_cache_hits_cost_no_arrays_but_misses_cost_cycles() {
        let mut f = DScheme::FilterCache { lines: 2 }.build(geom());
        f.access(false, 0x1000, 0, 0x1000); // L0 miss: +1 cycle, full L1
        assert_eq!(f.extra_cycles(), 1);
        let before = f.stats();
        f.access(false, 0x1000, 4, 0x1004); // L0 hit
        let s = f.stats();
        assert_eq!(s.tag_reads, before.tag_reads);
        assert_eq!(s.way_reads, before.way_reads);
        assert_eq!(s.buffer_hits, 1);
        assert_eq!(f.extra_cycles(), 1, "hits cost no cycle");
    }

    #[test]
    fn filter_cache_stores_write_through_and_invalidate_l0() {
        let mut f = DScheme::FilterCache { lines: 1 }.build(geom());
        f.access(false, 0x2000, 0, 0x2000); // load fills L0
        f.access(true, 0x2000, 4, 0x2004); // store invalidates the L0 copy
        let cycles = f.extra_cycles();
        f.access(false, 0x2000, 8, 0x2008); // must re-fetch into L0
        assert_eq!(f.extra_cycles(), cycles + 1);
    }

    /// The counterexample to the paper's §3.3 consistency argument: MAB
    /// row recency is global while cache LRU is per set, so a row kept
    /// alive by an access to a *different* set can outlive its line.
    fn paper_lru_counterexample(f: &mut DFront) {
        let g = f.cache().geometry();
        let low = g.low_bits();
        let a = |tag: u32, set: u32| (tag << low) | (set << g.offset_bits());
        f.access(false, a(1, 0), 0, a(1, 0)); // T1 -> set0 way0
        f.access(false, a(2, 0), 0, a(2, 0)); // T2 -> set0 way1
        f.access(false, a(1, 1), 0, a(1, 1)); // touches MAB row T1 via set1
        f.access(false, a(3, 0), 0, a(3, 0)); // evicts T1 from set0 way0
        f.access(false, a(1, 0), 0, a(1, 0)); // stale pair (T1, set0) -> way0
    }

    #[test]
    fn paper_lru_mode_exhibits_unsound_hits() {
        let g = Geometry::new(4, 2, 16).unwrap();
        let mut f = DScheme::WayMemoPaperLru {
            tag_entries: 2,
            set_entries: 4,
        }
        .build(g);
        paper_lru_counterexample(&mut f);
        assert_eq!(
            f.stats().unsound_hits,
            1,
            "the LRU argument must fail on this interleaving"
        );
    }

    #[test]
    fn precise_mode_survives_the_same_counterexample() {
        let g = Geometry::new(4, 2, 16).unwrap();
        let mut f = DScheme::WayMemo {
            tag_entries: 2,
            set_entries: 4,
        }
        .build(g);
        paper_lru_counterexample(&mut f); // known-way debug asserts active
        assert_eq!(f.stats().unsound_hits, 0);
        assert!(f.stats().is_consistent());
    }

    #[test]
    fn energy_counts_mirror_stats() {
        let mut f = DScheme::paper_way_memo().build(geom());
        for i in 0..50u32 {
            f.access(i % 4 == 0, 0x8000 + (i % 8) * 64, 4, 0x8004 + (i % 8) * 64);
        }
        let e = f.energy_counts(1000);
        let s = f.stats();
        assert_eq!(e.way_reads, s.way_reads);
        assert_eq!(e.tag_reads, s.tag_reads);
        assert_eq!(e.mab_lookups, s.accesses);
        assert_eq!(e.cycles, 1000);
    }

    #[test]
    fn scheme_names_are_distinct() {
        let schemes = [
            DScheme::Original,
            DScheme::SetBuffer { entries: 1 },
            DScheme::paper_way_memo(),
            DScheme::WayPredict,
            DScheme::TwoPhase,
        ];
        let names: std::collections::HashSet<_> =
            schemes.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), schemes.len());
    }
}
