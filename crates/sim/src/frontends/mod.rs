//! Cache front-ends: one per lookup scheme. Each consumes the CPU's trace
//! events against its own private cache state and accounts tag/way
//! activations per the crate-level rules.

mod dcache;
mod icache;
mod links;

pub use dcache::{DFront, DScheme};
pub use icache::{IFront, IScheme};
