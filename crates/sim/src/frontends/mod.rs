//! Cache front-ends: one per lookup scheme. Each consumes the CPU's trace
//! events against its own private cache state and accounts tag/way
//! activations per the crate-level rules.

mod dcache;
mod icache;
mod links;

pub use dcache::{DFront, DScheme};
pub use icache::{IFront, IScheme};

// The record/replay engine hands each front-end to its own worker thread,
// so `DFront` and `IFront` must stay `Send` (each owns its cache, memory
// and buffer state outright — no shared interior mutability). This
// assertion turns an accidental `Rc`/`RefCell` regression into a compile
// error at the definition site instead of a confusing one in `run.rs`.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<DFront>();
    assert_send::<IFront>();
};
