//! Side structure for Ma, Zhang & Asanović's link-based way memoization
//! (paper reference \[11\]): per cache-line *sequential* and *branch*
//! links. Each link names a target line (by its base address) and the way
//! it was resident in when the link was created.
//!
//! Soundness contract: a link may be used only if (a) its stored target
//! base equals the line actually being fetched, and (b) no fill has
//! touched the target location since the link was set. (b) is maintained
//! by [`LinkTable::invalidate_target`], which is exactly the replacement-
//! time "mechanism to invalidate sequential and branch links" the paper
//! criticizes this approach for needing.

use waymem_cache::Geometry;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Link {
    target_base: u32,
    way: u32,
}

/// Per-location (set × way) sequential and branch links.
#[derive(Debug)]
pub struct LinkTable {
    geom: Geometry,
    seq: Vec<Option<Link>>,
    branch: Vec<Option<Link>>,
    invalidated: u64,
}

impl LinkTable {
    /// Creates an empty table for caches shaped by `geom`.
    #[must_use]
    pub fn new(geom: Geometry) -> Self {
        let n = (geom.sets() * geom.ways()) as usize;
        Self {
            geom,
            seq: vec![None; n],
            branch: vec![None; n],
            invalidated: 0,
        }
    }

    fn loc(&self, set: u32, way: u32) -> usize {
        (set * self.geom.ways() + way) as usize
    }

    /// Looks up the sequential link of the line at (`set`, `way`); returns
    /// the memoized way if it names `target_base`.
    #[must_use]
    pub fn seq_way(&self, set: u32, way: u32, target_base: u32) -> Option<u32> {
        self.seq[self.loc(set, way)]
            .filter(|l| l.target_base == target_base)
            .map(|l| l.way)
    }

    /// Looks up the branch link of the line at (`set`, `way`).
    #[must_use]
    pub fn branch_way(&self, set: u32, way: u32, target_base: u32) -> Option<u32> {
        self.branch[self.loc(set, way)]
            .filter(|l| l.target_base == target_base)
            .map(|l| l.way)
    }

    /// Sets the sequential link of (`set`, `way`).
    pub fn set_seq(&mut self, set: u32, way: u32, target_base: u32, target_way: u32) {
        let loc = self.loc(set, way);
        self.seq[loc] = Some(Link {
            target_base,
            way: target_way,
        });
    }

    /// Sets the branch link of (`set`, `way`).
    pub fn set_branch(&mut self, set: u32, way: u32, target_base: u32, target_way: u32) {
        let loc = self.loc(set, way);
        self.branch[loc] = Some(Link {
            target_base,
            way: target_way,
        });
    }

    /// A fill replaced the line at (`set`, `way`): clears that location's
    /// own links and every link pointing at it. This is the scan the
    /// hardware must implement (or approximate) on each replacement.
    pub fn invalidate_target(&mut self, set: u32, way: u32) {
        let loc = self.loc(set, way);
        self.seq[loc] = None;
        self.branch[loc] = None;
        let geom = self.geom;
        let mut cleared = 0u64;
        for link in self.seq.iter_mut().chain(self.branch.iter_mut()) {
            if let Some(l) = link {
                if geom.index_of(l.target_base) == set && l.way == way {
                    *link = None;
                    cleared += 1;
                }
            }
        }
        self.invalidated += cleared;
    }

    /// Links cleared by replacement-time invalidation so far.
    #[must_use]
    pub fn invalidated(&self) -> u64 {
        self.invalidated
    }
}

/// A way-extended branch target buffer (Inoue et al., paper reference
/// \[12\]): fully associative entries keyed by the *source packet* of a
/// control transfer, memoizing the target line and the way it resided in.
#[derive(Debug)]
pub struct Btb {
    geom: Geometry,
    entries: Vec<Option<BtbEntry>>,
    lru: waymem_cache::LruOrder,
    probes: u64,
    hits: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BtbEntry {
    source: u32,
    target_base: u32,
    way: u32,
}

impl Btb {
    /// Creates an empty BTB with `entries` slots.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero or exceeds 255.
    #[must_use]
    pub fn new(geom: Geometry, entries: usize) -> Self {
        Self {
            geom,
            entries: vec![None; entries],
            lru: waymem_cache::LruOrder::new(entries),
            probes: 0,
            hits: 0,
        }
    }

    /// Probes for a transfer from `source` to the line at `target_base`;
    /// returns the memoized way on a full match and refreshes recency.
    pub fn probe(&mut self, source: u32, target_base: u32) -> Option<u32> {
        self.probes += 1;
        let slot = self.entries.iter().position(|e| {
            matches!(e, Some(en) if en.source == source && en.target_base == target_base)
        })?;
        self.lru.touch(slot);
        self.hits += 1;
        self.entries[slot].map(|e| e.way)
    }

    /// Installs (or refreshes) the entry for `source`, replacing LRU.
    pub fn record(&mut self, source: u32, target_base: u32, way: u32) {
        let slot = self
            .entries
            .iter()
            .position(|e| matches!(e, Some(en) if en.source == source))
            .unwrap_or_else(|| self.lru.victim());
        self.entries[slot] = Some(BtbEntry {
            source,
            target_base,
            way,
        });
        self.lru.touch(slot);
    }

    /// A fill replaced the line at (`set`, `way`): drop entries pointing
    /// there.
    pub fn invalidate_target(&mut self, set: u32, way: u32) {
        let geom = self.geom;
        for e in &mut self.entries {
            if let Some(en) = e {
                if geom.index_of(en.target_base) == set && en.way == way {
                    *e = None;
                }
            }
        }
    }

    /// Probes performed so far.
    #[must_use]
    pub fn probes(&self) -> u64 {
        self.probes
    }

    /// Probes that matched.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> Geometry {
        Geometry::new(8, 2, 32).unwrap()
    }

    #[test]
    fn btb_round_trip_and_invalidation() {
        let g = geom();
        let mut b = Btb::new(g, 4);
        assert_eq!(b.probe(0x100, 0x200), None);
        b.record(0x100, 0x200, 1);
        assert_eq!(b.probe(0x100, 0x200), Some(1));
        assert_eq!(b.probe(0x100, 0x240), None, "target changed");
        b.invalidate_target(g.index_of(0x200), 1);
        assert_eq!(b.probe(0x100, 0x200), None);
        assert_eq!(b.probes(), 4);
        assert_eq!(b.hits(), 1);
    }

    #[test]
    fn btb_lru_replacement() {
        let g = geom();
        let mut b = Btb::new(g, 2);
        b.record(0x10, 0x100, 0);
        b.record(0x20, 0x200, 1);
        let _ = b.probe(0x10, 0x100); // refresh first entry
        b.record(0x30, 0x300, 0); // evicts 0x20
        assert_eq!(b.probe(0x20, 0x200), None);
        assert_eq!(b.probe(0x10, 0x100), Some(0));
        assert_eq!(b.probe(0x30, 0x300), Some(0));
    }

    #[test]
    fn btb_rekeying_same_source_updates_in_place() {
        let g = geom();
        let mut b = Btb::new(g, 2);
        b.record(0x10, 0x100, 0);
        b.record(0x10, 0x180, 1); // same branch, new target (e.g. indirect)
        assert_eq!(b.probe(0x10, 0x100), None);
        assert_eq!(b.probe(0x10, 0x180), Some(1));
    }

    #[test]
    fn links_round_trip_when_target_matches() {
        let g = geom();
        let mut t = LinkTable::new(g);
        t.set_seq(3, 0, 0x80, 1);
        assert_eq!(t.seq_way(3, 0, 0x80), Some(1));
        assert_eq!(t.seq_way(3, 0, 0xa0), None, "different target line");
        assert_eq!(t.branch_way(3, 0, 0x80), None, "branch link separate");
        t.set_branch(3, 0, 0x200, 0);
        assert_eq!(t.branch_way(3, 0, 0x200), Some(0));
    }

    #[test]
    fn replacement_invalidates_incoming_links() {
        let g = geom();
        let mut t = LinkTable::new(g);
        // Line at set 2, way 1 is the target of two links.
        let target_base = g.line_addr(5, 2);
        t.set_seq(1, 0, target_base, 1);
        t.set_branch(7, 1, target_base, 1);
        // And itself links elsewhere.
        t.set_seq(2, 1, 0x80, 0);
        t.invalidate_target(2, 1);
        assert_eq!(t.seq_way(1, 0, target_base), None);
        assert_eq!(t.branch_way(7, 1, target_base), None);
        assert_eq!(t.seq_way(2, 1, 0x80), None, "own links die too");
        assert_eq!(t.invalidated(), 2);
    }

    #[test]
    fn unrelated_links_survive_invalidation() {
        let g = geom();
        let mut t = LinkTable::new(g);
        t.set_seq(1, 0, g.line_addr(9, 4), 0);
        t.invalidate_target(4, 1); // same set, different way
        assert_eq!(t.seq_way(1, 0, g.line_addr(9, 4)), Some(0));
    }
}
