//! I-cache front-ends (paper Figures 6–7).
//!
//! The FR-V fetches 8-byte VLIW packets, so one I-cache access happens per
//! *packet*, not per instruction: consecutive instructions in the same
//! packet cost nothing new. Accesses are classified per the paper's §2
//! taxonomy; intra-cache-line sequential flow (case 1) needs no tag check
//! at all — the way is known from the previous fetch — and everything else
//! goes through the MAB under the paper's scheme, with the input mux of
//! Figure 2 choosing between (PC, stride), (PC, branch offset) and the
//! link-register value.

use waymem_cache::{AccessKind, AccessStats, Geometry, MainMemory, SetAssocCache};
use waymem_core::{Mab, MabConfig, MabLookup, MabStats};
use waymem_hwmodel::{EnergyCounts, MabShape};
use waymem_isa::{FetchKind, TraceEvent, TraceSink};

use super::links::{Btb, LinkTable};

/// Fetch packet size in bytes (two 4-byte syllables, per FR-V).
pub const PACKET_BYTES: u32 = 8;

/// An I-cache lookup scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IScheme {
    /// Conventional: all tags + all ways on every packet fetch.
    Original,
    /// Panwar & Rennels (approach \[4\]): skip tag and non-resident ways
    /// for intra-cache-line sequential flow; full access otherwise.
    IntraLine,
    /// The paper: intra-line skip plus a MAB for inter-line sequential
    /// and non-sequential flow.
    WayMemo {
        /// MAB tag rows (`N_t`).
        tag_entries: usize,
        /// MAB set-index columns (`N_s`).
        set_entries: usize,
    },
    /// Ma, Zhang & Asanović (\[11\]): every cache line carries a
    /// *sequential link* (valid bit + way of the next-line's way) and a
    /// *branch link* (valid bit + target line + way). Handles inter-line
    /// sequential and taken-branch flow without a MAB, but pays two extra
    /// bits read with every instruction and needs a link-invalidation
    /// mechanism on every line replacement — the overheads the paper's
    /// MAB avoids.
    LinkMemo,
    /// Inoue, Moshnyaga & Murakami (\[12\]): a branch target buffer
    /// extended with the target's way, probed on non-sequential flow;
    /// intra-line sequential flow uses the way register. Its weakness —
    /// called out in the paper's §2 — is that it "cannot handle the
    /// inter-cache-line sequential flow", which pays full lookups.
    ExtendedBtb {
        /// Number of BTB entries (fully associative, LRU).
        entries: usize,
    },
}

impl IScheme {
    /// Display name used in figure rows.
    #[must_use]
    pub fn name(&self) -> String {
        match self {
            IScheme::Original => "original".to_owned(),
            IScheme::IntraLine => "intra_line[4]".to_owned(),
            IScheme::WayMemo {
                tag_entries,
                set_entries,
            } => format!("way_memo {tag_entries}x{set_entries}"),
            IScheme::LinkMemo => "link_memo[11]".to_owned(),
            IScheme::ExtendedBtb { entries } => format!("ext_btb[12]x{entries}"),
        }
    }

    /// The paper's I-cache MAB configuration (2×16).
    #[must_use]
    pub fn paper_way_memo() -> Self {
        IScheme::WayMemo {
            tag_entries: 2,
            set_entries: 16,
        }
    }

    /// Builds the front-end over a cache shaped by `geom`.
    ///
    /// # Panics
    ///
    /// Panics if a MAB scheme's entry counts are invalid (zero or > 255).
    #[must_use]
    pub fn build(self, geom: Geometry) -> IFront {
        let mab = match self {
            IScheme::WayMemo {
                tag_entries,
                set_entries,
            } => Some(Mab::new(
                MabConfig::new(geom, tag_entries, set_entries).expect("valid MAB config"),
            )),
            _ => None,
        };
        let links = match self {
            IScheme::LinkMemo => Some(LinkTable::new(geom)),
            _ => None,
        };
        let btb = match self {
            IScheme::ExtendedBtb { entries } => Some(Btb::new(geom, entries)),
            _ => None,
        };
        IFront {
            scheme: self,
            geom,
            cache: SetAssocCache::new(geom),
            mem: MainMemory::new(),
            stats: AccessStats::new(),
            mab,
            links,
            btb,
            link_bit_reads: 0,
            prev_packet: None,
            current_way: None,
        }
    }
}

/// A trace-driven I-cache model under one scheme.
#[derive(Debug)]
pub struct IFront {
    scheme: IScheme,
    geom: Geometry,
    cache: SetAssocCache,
    mem: MainMemory,
    stats: AccessStats,
    mab: Option<Mab>,
    links: Option<LinkTable>,
    btb: Option<Btb>,
    /// Extra link-field reads performed alongside instruction reads
    /// (LinkMemo only) — the "two extra bits per instruction" cost.
    link_bit_reads: u64,
    prev_packet: Option<u32>,
    /// The way holding the most recently fetched packet (the "way
    /// register" that intra-line flow reuses).
    current_way: Option<u32>,
}

impl IFront {
    /// The scheme this front-end models.
    #[must_use]
    pub fn scheme(&self) -> IScheme {
        self.scheme
    }

    fn conventional(&mut self, packet: u32) -> u32 {
        let w = u64::from(self.geom.ways());
        self.stats.tag_reads += w;
        self.stats.way_reads += w;
        self.finish(packet)
    }

    fn finish(&mut self, packet: u32) -> u32 {
        let out = self.cache.access(packet, AccessKind::Load, &mut self.mem);
        if out.hit {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
            self.stats.way_reads += 1; // fill write
            if let Some(mab) = self.mab.as_mut() {
                mab.invalidate_location(out.index, out.way);
            }
            if let Some(links) = self.links.as_mut() {
                links.invalidate_target(out.index, out.way);
            }
            if let Some(btb) = self.btb.as_mut() {
                btb.invalidate_target(out.index, out.way);
            }
        }
        out.way
    }

    fn known_way(&mut self, packet: u32, way: u32) -> u32 {
        debug_assert_eq!(
            self.cache.probe(packet),
            Some(way),
            "known-way fetch must target a resident line ({})",
            self.scheme.name()
        );
        self.stats.way_reads += 1;
        self.finish(packet)
    }

    /// Feeds one instruction fetch into the model.
    pub fn fetch(&mut self, pc: u32, kind: FetchKind) {
        let packet = pc & !(PACKET_BYTES - 1);
        let sequential = matches!(kind, FetchKind::Sequential);
        if sequential && self.prev_packet == Some(packet) {
            return; // still streaming out of the fetched packet
        }
        self.stats.accesses += 1;
        let intra_line = sequential
            && self
                .prev_packet
                .is_some_and(|p| self.geom.same_line(p, packet));

        let way = match self.scheme {
            IScheme::Original => self.conventional(packet),
            IScheme::IntraLine => {
                if intra_line {
                    self.stats.intra_line_skips += 1;
                    let way = self.current_way.expect("intra-line implies a previous fetch");
                    self.known_way(packet, way)
                } else {
                    self.conventional(packet)
                }
            }
            IScheme::WayMemo { .. } => {
                if intra_line {
                    self.stats.intra_line_skips += 1;
                    let way = self.current_way.expect("intra-line implies a previous fetch");
                    self.known_way(packet, way)
                } else {
                    let (base, disp) = match (kind, self.prev_packet) {
                        // Inter-line sequential: PC + stride (Figure 2's
                        // "+8" input).
                        (FetchKind::Sequential, Some(prev)) => (prev, PACKET_BYTES as i32),
                        // Very first fetch: no architectural base exists;
                        // treat the packet address itself as the base.
                        (FetchKind::Sequential, None) => (packet, 0),
                        (FetchKind::TakenBranch { base, disp }, _) => (base, disp),
                        (FetchKind::LinkReturn { target }, _) => (target, 0),
                        (FetchKind::Indirect { base, disp }, _) => (base, disp),
                    };
                    self.mab_fetch(packet, base, disp)
                }
            }
            IScheme::LinkMemo => {
                // The link fields ride along with every instruction read.
                self.link_bit_reads += 1;
                if intra_line {
                    self.stats.intra_line_skips += 1;
                    let way = self.current_way.expect("intra-line implies a previous fetch");
                    self.known_way(packet, way)
                } else {
                    self.link_fetch(packet, sequential)
                }
            }
            IScheme::ExtendedBtb { .. } => {
                if intra_line {
                    self.stats.intra_line_skips += 1;
                    let way = self.current_way.expect("intra-line implies a previous fetch");
                    self.known_way(packet, way)
                } else if sequential {
                    // [12]'s weakness: inter-line sequential flow pays.
                    self.conventional(packet)
                } else {
                    self.btb_fetch(packet)
                }
            }
        };
        self.current_way = Some(way);
        self.prev_packet = Some(packet);
    }

    /// Way-extended-BTB fetch (Inoue et al. \[12\]): key the BTB by the
    /// packet the transfer came from; a full (source, target) match makes
    /// the target's way known.
    fn btb_fetch(&mut self, packet: u32) -> u32 {
        let target_base = self.geom.line_base(packet);
        let Some(source) = self.prev_packet else {
            return self.conventional(packet);
        };
        let btb = self.btb.as_mut().expect("scheme has BTB");
        if let Some(way) = btb.probe(source, target_base) {
            self.stats.buffer_hits += 1;
            return self.known_way(packet, way);
        }
        let way = self.conventional(packet);
        self.btb
            .as_mut()
            .expect("scheme has BTB")
            .record(source, target_base, way);
        way
    }

    /// Link-based fetch (Ma et al. \[11\]): consult the previous line's
    /// sequential or branch link; on a valid link the way is known, else
    /// do a conventional lookup and install the link for next time.
    fn link_fetch(&mut self, packet: u32, sequential: bool) -> u32 {
        let target_base = self.geom.line_base(packet);
        let prev_loc = self.prev_packet.zip(self.current_way).map(|(p, w)| {
            (self.geom.index_of(p), w)
        });
        if let Some((set, from_way)) = prev_loc {
            let links = self.links.as_ref().expect("scheme has links");
            let linked = if sequential {
                links.seq_way(set, from_way, target_base)
            } else {
                links.branch_way(set, from_way, target_base)
            };
            if let Some(way) = linked {
                self.stats.buffer_hits += 1;
                return self.known_way(packet, way);
            }
        }
        let way = self.conventional(packet);
        if let Some((set, from_way)) = prev_loc {
            let links = self.links.as_mut().expect("scheme has links");
            if sequential {
                links.set_seq(set, from_way, target_base, way);
            } else {
                links.set_branch(set, from_way, target_base, way);
            }
        }
        way
    }

    fn mab_fetch(&mut self, packet: u32, base: u32, disp: i32) -> u32 {
        let mab = self.mab.as_mut().expect("scheme has MAB");
        match mab.lookup(base, disp) {
            MabLookup::Hit { way, set_index, .. } => {
                debug_assert_eq!(set_index, self.geom.index_of(packet));
                self.known_way(packet, way)
            }
            MabLookup::Miss { .. } => {
                let way = self.conventional(packet);
                self.mab
                    .as_mut()
                    .expect("scheme has MAB")
                    .record(base, disp, way);
                way
            }
            MabLookup::Wide => self.conventional(packet),
        }
    }

    /// Replays a recorded trace slice into the model: fetch events are
    /// consumed in program order, loads and stores are skipped. Like
    /// [`DFront::replay`](crate::DFront::replay), the loop is monomorphic
    /// for this front-end — the hot path of the record/replay engine.
    pub fn replay(&mut self, events: &[TraceEvent]) {
        for &e in events {
            if let TraceEvent::Fetch { pc, kind } = e {
                self.fetch(pc, kind);
            }
        }
    }

    /// Accounting so far; MAB counters reflect the MAB's own statistics.
    #[must_use]
    pub fn stats(&self) -> AccessStats {
        let mut s = self.stats;
        if let Some(mab) = self.mab.as_ref() {
            s.mab_lookups = mab.stats().lookups + mab.stats().wide_bypasses;
            s.mab_hits = mab.stats().hits;
        }
        s
    }

    /// Raw MAB statistics (MAB schemes only).
    #[must_use]
    pub fn mab_stats(&self) -> Option<MabStats> {
        self.mab.as_ref().map(Mab::stats)
    }

    /// The MAB's hardware shape (MAB schemes only).
    #[must_use]
    pub fn mab_shape(&self) -> Option<MabShape> {
        self.mab.as_ref().map(|m| {
            let cfg = m.config();
            MabShape {
                tag_entries: cfg.tag_entries() as u32,
                set_entries: cfg.set_entries() as u32,
                tag_entry_bits: cfg.tag_entry_bits(),
                set_entry_bits: cfg.set_entry_bits(),
                pair_bits: cfg.pair_bits(),
                adder_bits: cfg.geometry().low_bits(),
            }
        })
    }

    /// Converts counters into hwmodel inputs (`cycles` = instructions).
    ///
    /// For the link-memoization baseline \[11\] the two extra link bits
    /// per 4-byte instruction widen every data-array row by 16/256 =
    /// 1/16, so each way activation reads proportionally more bitlines;
    /// that is charged as extra fractional way reads, plus one register
    /// probe per access for the link-valid muxing.
    #[must_use]
    pub fn energy_counts(&self, cycles: u64) -> EnergyCounts {
        let way_reads = if matches!(self.scheme, IScheme::LinkMemo) {
            let line_bits = u64::from(self.geom.line_bytes()) * 8;
            let link_bits = u64::from(self.geom.line_bytes()) / 4 * 2;
            self.stats.way_reads + self.stats.way_reads * link_bits / line_bits
        } else {
            self.stats.way_reads
        };
        EnergyCounts {
            way_reads,
            tag_reads: self.stats.tag_reads,
            buffer_probes: self.link_bit_reads + self.btb.as_ref().map_or(0, Btb::probes),
            mab_lookups: if self.mab.is_some() {
                // The I-MAB is probed on every non-intra-line access.
                self.stats.accesses - self.stats.intra_line_skips
            } else {
                0
            },
            cycles,
        }
    }

    /// Replacement-time link invalidations performed so far (LinkMemo
    /// baseline only) — the bookkeeping cost the MAB avoids.
    #[must_use]
    pub fn link_invalidations(&self) -> Option<u64> {
        self.links.as_ref().map(LinkTable::invalidated)
    }

    /// `(probes, hits)` of the way-extended BTB (ExtendedBtb baseline
    /// only).
    #[must_use]
    pub fn btb_probes_hits(&self) -> Option<(u64, u64)> {
        self.btb.as_ref().map(|b| (b.probes(), b.hits()))
    }

    /// The modelled cache (tests inspect residency).
    #[must_use]
    pub fn cache(&self) -> &SetAssocCache {
        &self.cache
    }
}

/// An I-front is itself a [`TraceSink`]: fetches feed the model, data
/// events are ignored, and the batched [`TraceSink::events`] entry point
/// dispatches to the monomorphic [`IFront::replay`] loop — the path the
/// record/replay engine drives.
impl TraceSink for IFront {
    fn fetch(&mut self, pc: u32, kind: FetchKind) {
        IFront::fetch(self, pc, kind);
    }

    fn events(&mut self, batch: &[TraceEvent]) {
        self.replay(batch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> Geometry {
        Geometry::frv()
    }

    /// Feeds a straight-line run of `n` instructions starting at `pc`.
    fn straight(f: &mut IFront, pc: u32, n: u32) {
        for i in 0..n {
            f.fetch(pc + 4 * i, FetchKind::Sequential);
        }
    }

    #[test]
    fn packet_granularity_two_instructions_one_access() {
        let mut f = IScheme::Original.build(geom());
        straight(&mut f, 0x1000, 8); // 8 instructions = 4 packets
        assert_eq!(f.stats().accesses, 4);
    }

    #[test]
    fn original_reads_everything_every_packet() {
        let mut f = IScheme::Original.build(geom());
        straight(&mut f, 0x1000, 8);
        let s = f.stats();
        assert_eq!(s.tag_reads, 8); // 4 packets x 2 ways
        assert_eq!(s.way_reads, 9); // 8 reads + 1 fill (one line)
    }

    #[test]
    fn intra_line_skips_tags_within_line() {
        let mut f = IScheme::IntraLine.build(geom());
        straight(&mut f, 0x1000, 8); // one 32-B line = 4 packets
        let s = f.stats();
        assert_eq!(s.intra_line_skips, 3, "packets 2-4 are intra-line");
        assert_eq!(s.tag_reads, 2, "only the first packet reads tags");
    }

    #[test]
    fn intra_line_pays_on_line_crossing() {
        let mut f = IScheme::IntraLine.build(geom());
        straight(&mut f, 0x1000, 10); // crosses into a second line
        let s = f.stats();
        // Packets: 0x1000,0x1008,0x1010,0x1018 (line 1), 0x1020 (line 2).
        assert_eq!(s.accesses, 5);
        assert_eq!(s.tag_reads, 4, "two inter-line accesses pay tags");
    }

    #[test]
    fn way_memo_catches_inter_line_sequential() {
        let mut f = IScheme::paper_way_memo().build(geom());
        // Two passes over the same straight-line code: second pass's
        // line-crossing fetches hit the MAB.
        straight(&mut f, 0x1000, 20);
        let first_pass = f.stats();
        assert_eq!(first_pass.mab_hits, 0, "cold MAB");
        f.fetch(0x1000, FetchKind::Indirect { base: 0x1000, disp: 0 });
        straight(&mut f, 0x1004, 19);
        let s = f.stats();
        // 40 instructions -> 2.5 lines; pass 2 has 2 line crossings that
        // now hit (plus possibly the indirect entry).
        assert!(
            s.mab_hits >= 2,
            "inter-line sequential crossings must hit the MAB on the \
             second pass (got {})",
            s.mab_hits
        );
        assert!(s.tag_reads < first_pass.tag_reads * 2);
    }

    #[test]
    fn way_memo_catches_loop_branches() {
        let mut f = IScheme::paper_way_memo().build(geom());
        // A loop: 6 instructions then a taken branch back, many times.
        let body = 0x2000u32;
        for _ in 0..10 {
            straight(&mut f, body, 6);
            f.fetch(
                body,
                FetchKind::TakenBranch {
                    base: body + 20,
                    disp: -20,
                },
            );
        }
        let s = f.stats();
        // After warm-up every branch-back hits the MAB.
        assert!(
            s.mab_hits >= 8,
            "loop back-edges must be memoized, got {}",
            s.mab_hits
        );
    }

    #[test]
    fn way_memo_handles_link_returns() {
        let mut f = IScheme::paper_way_memo().build(geom());
        let call_site = 0x3000u32;
        let callee = 0x3800u32;
        for _ in 0..6 {
            straight(&mut f, call_site, 2);
            f.fetch(
                callee,
                FetchKind::TakenBranch {
                    base: call_site + 4,
                    disp: (callee - call_site - 4) as i32,
                },
            );
            straight(&mut f, callee + 4, 2);
            f.fetch(call_site + 8, FetchKind::LinkReturn { target: call_site + 8 });
            f.fetch(call_site, FetchKind::TakenBranch { base: call_site + 8, disp: -8 });
        }
        let s = f.stats();
        assert!(s.mab_hits >= 10, "calls and returns memoize, got {}", s.mab_hits);
    }

    #[test]
    fn way_memo_tag_reads_below_intra_line_baseline() {
        // The paper's Figure 6 claim: ours reduces tag accesses to ~80%
        // of approach [4]'s (i.e. below it) on loopy code.
        let mut ours = IScheme::paper_way_memo().build(geom());
        let mut baseline = IScheme::IntraLine.build(geom());
        let run = |f: &mut IFront| {
            for _ in 0..50 {
                // 24-instruction loop spanning 3 lines, then branch back.
                for i in 0..24u32 {
                    f.fetch(0x4000 + 4 * i, FetchKind::Sequential);
                }
                f.fetch(
                    0x4000,
                    FetchKind::TakenBranch {
                        base: 0x4000 + 4 * 23,
                        disp: -(4 * 23i32),
                    },
                );
            }
        };
        run(&mut ours);
        run(&mut baseline);
        assert!(
            ours.stats().tag_reads * 4 < baseline.stats().tag_reads,
            "ours {} vs [4] {}",
            ours.stats().tag_reads,
            baseline.stats().tag_reads
        );
        assert_eq!(ours.stats().accesses, baseline.stats().accesses);
    }

    #[test]
    fn mab_claims_match_residency_under_conflict_pressure() {
        // Jump between many lines that collide in the cache so fills evict
        // memoized lines; debug asserts + claims check soundness.
        let g = Geometry::new(8, 2, 32).unwrap();
        let mut f = IScheme::WayMemo {
            tag_entries: 2,
            set_entries: 4,
        }
        .build(g);
        let mut x = 7u32;
        let mut prev = 0u32;
        for _ in 0..3000 {
            x = x.wrapping_mul(1103515245).wrapping_add(12345);
            let target = (x >> 4) & 0x7ff8;
            f.fetch(
                target,
                FetchKind::TakenBranch {
                    base: prev,
                    disp: target.wrapping_sub(prev) as i32,
                },
            );
            prev = target;
            if let Some(mab) = f.mab.as_ref() {
                for (set, way, tag) in mab.claims() {
                    assert_eq!(f.cache.resident_way(tag, set), Some(way));
                }
            }
        }
    }

    #[test]
    fn link_memo_catches_sequential_crossings_on_second_pass() {
        let mut f = IScheme::LinkMemo.build(geom());
        straight(&mut f, 0x1000, 20); // cold pass installs seq links
        let cold = f.stats();
        assert_eq!(cold.buffer_hits, 0);
        f.fetch(0x1000, FetchKind::TakenBranch { base: 0x1000 + 76, disp: -76 });
        straight(&mut f, 0x1004, 19);
        let s = f.stats();
        // Two line crossings now ride the sequential links.
        assert!(s.buffer_hits >= 2, "got {}", s.buffer_hits);
        assert!(s.tag_reads < cold.tag_reads * 2);
    }

    #[test]
    fn link_memo_catches_loop_branches() {
        let mut f = IScheme::LinkMemo.build(geom());
        let body = 0x2000u32;
        for _ in 0..10 {
            straight(&mut f, body, 6);
            f.fetch(
                body,
                FetchKind::TakenBranch {
                    base: body + 20,
                    disp: -20,
                },
            );
        }
        let s = f.stats();
        assert!(s.buffer_hits >= 8, "branch links memoize, got {}", s.buffer_hits);
    }

    #[test]
    fn link_memo_invalidates_on_replacement() {
        // Conflict-heavy jumping on a tiny cache: links must never produce
        // a wrong known-way (debug asserts check), and invalidations must
        // actually occur.
        let g = Geometry::new(8, 2, 32).unwrap();
        let mut f = IScheme::LinkMemo.build(g);
        let mut x = 99u32;
        let mut prev = 0u32;
        for _ in 0..2000 {
            x = x.wrapping_mul(1103515245).wrapping_add(12345);
            let target = (x >> 4) & 0x3ff8;
            f.fetch(
                target,
                FetchKind::TakenBranch {
                    base: prev,
                    disp: target.wrapping_sub(prev) as i32,
                },
            );
            prev = target;
        }
        assert!(f.link_invalidations().unwrap() > 0);
        assert!(f.stats().is_consistent());
    }

    #[test]
    fn extended_btb_catches_branches_but_not_sequential_crossings() {
        let mut f = IScheme::ExtendedBtb { entries: 16 }.build(geom());
        let body = 0x2000u32;
        for _ in 0..10 {
            straight(&mut f, body, 6);
            f.fetch(
                body,
                FetchKind::TakenBranch {
                    base: body + 20,
                    disp: -20,
                },
            );
        }
        let s = f.stats();
        assert!(s.buffer_hits >= 8, "loop branch memoized, got {}", s.buffer_hits);

        // Inter-line sequential flow always pays: a long straight run gets
        // no BTB help beyond intra-line skips.
        let mut g = IScheme::ExtendedBtb { entries: 16 }.build(geom());
        straight(&mut g, 0x4000, 40); // 5 lines
        let gs = g.stats();
        assert_eq!(gs.buffer_hits, 0);
        // Line crossings (4 of them) + first fetch pay full tag reads.
        assert_eq!(gs.tag_reads, 10);
    }

    #[test]
    fn link_memo_charges_link_bit_reads() {
        let mut f = IScheme::LinkMemo.build(geom());
        straight(&mut f, 0x1000, 8);
        let e = f.energy_counts(8);
        assert_eq!(e.buffer_probes, f.stats().accesses);
        assert_eq!(
            IScheme::IntraLine.build(geom()).energy_counts(8).buffer_probes,
            0
        );
    }

    #[test]
    fn first_fetch_is_not_intra_line() {
        let mut f = IScheme::IntraLine.build(geom());
        f.fetch(0x1004, FetchKind::Sequential);
        assert_eq!(f.stats().intra_line_skips, 0);
        assert_eq!(f.stats().tag_reads, 2);
    }

    #[test]
    fn energy_counts_track_mab_utilization() {
        let mut f = IScheme::paper_way_memo().build(geom());
        straight(&mut f, 0x1000, 16);
        let e = f.energy_counts(16);
        let s = f.stats();
        assert_eq!(e.mab_lookups, s.accesses - s.intra_line_skips);
        let orig = IScheme::Original.build(geom()).energy_counts(16);
        assert_eq!(orig.mab_lookups, 0);
    }
}
