//! # waymem-sim — trace-driven cache front-ends and the experiment driver
//!
//! This crate wires everything together: the frv-lite CPU
//! ([`waymem_isa`]) emits fetch and load/store events; a set of **cache
//! front-ends** — one per lookup scheme — consume the same event stream in
//! parallel and account how many tag arrays and data ways each scheme
//! activates; [`waymem_hwmodel`] then turns the counts into the power
//! numbers of the paper's Figures 5, 7 and 8 via Eq. (1).
//!
//! ## Schemes
//!
//! D-cache ([`DScheme`]): `Original` (conventional parallel lookup),
//! `SetBuffer` (Yang et al., approach \[14\]), `WayMemo` (the paper),
//! plus ablations `WayPredict` (MRU way prediction \[9\]), `TwoPhase`
//! (\[8\]), `FilterCache` (\[6\]/\[13\]), `WayMemoLineBuffer` (the
//! conclusion's future-work hybrid) and `WayMemoPaperLru` (the §3.3
//! consistency audit).
//!
//! I-cache ([`IScheme`]): `Original`, `IntraLine` (Panwar & Rennels,
//! approach \[4\]), `LinkMemo` (Ma et al., \[11\]), `ExtendedBtb`
//! (Inoue et al., \[12\]) and `WayMemo` (intra-line skip + MAB for
//! inter-line and non-sequential flow, per Figure 2).
//!
//! ## The experiment builder
//!
//! [`Experiment`] is the one entry point for every workload × scheme ×
//! store run — a built-in kernel, an ingested external log, a synthetic
//! pattern, or a pre-recorded trace, with an optional shared
//! [`TraceStore`] and an [`ExecPolicy`]; [`Suite`] fans a list of
//! workloads out with shared settings. The nine legacy `run_*` free
//! functions are `#[deprecated]` shims over the same pipeline.
//!
//! ```
//! use waymem_sim::{Experiment, DScheme, IScheme};
//! use waymem_workloads::Benchmark;
//!
//! # fn main() -> Result<(), waymem_sim::RunError> {
//! let result = Experiment::kernel(Benchmark::Dct)
//!     .dschemes([DScheme::Original, DScheme::WayMemo { tag_entries: 2, set_entries: 8 }])
//!     .ischemes([IScheme::IntraLine])
//!     .run()?;
//! let original = &result.dcache[0];
//! let waymemo = &result.dcache[1];
//! assert!(waymemo.stats.tag_reads < original.stats.tag_reads / 2);
//! # Ok(())
//! # }
//! ```
//!
//! ## Execution model and thread-safety contract
//!
//! The engine records the CPU's event stream **once** into a
//! [`RecordedTrace`] — two flat `Vec<TraceEvent>` streams, fetches split
//! from loads/stores at capture time — and then replays the recorded
//! slices through every requested front-end **concurrently** on
//! [`std::thread::scope`] workers, at most one per hardware thread.
//! Each worker owns its front-ends outright, so `DFront` and `IFront`
//! are (and must remain) [`Send`]: they hold only owned cache, memory
//! and buffer state, with no shared interior mutability — a compile-time
//! assertion in `frontends/mod.rs` enforces this. The trace itself is
//! shared immutably (`&[TraceEvent]`), front-ends never observe each
//! other, and workers are joined in scheme order, so results are
//! bit-identical to a serial run — `tests/experiment.rs` pins
//! [`ExecPolicy::Serial`] ≡ [`ExecPolicy::Parallel`] down to the last
//! `f64` bit.
//!
//! ## Accounting rules (uniform across schemes)
//!
//! * conventional load lookup: `W` tag reads + `W` way reads (parallel);
//! * conventional store lookup: `W` tag reads + 1 way write (the
//!   write-back buffer lets the store wait for the tag match);
//! * known-way access (MAB hit / buffer hit / intra-line flow): 0 tag
//!   reads + 1 way access;
//! * every line fill adds 1 way write;
//! * I-cache accesses happen per 8-byte fetch packet, not per instruction.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod experiment;
pub mod frontends;
pub mod presets;
mod report;
pub mod run;

pub use experiment::{
    catch_worker, ExecPolicy, Experiment, IngestMeta, Prepared, Suite, SuiteFailure, SuiteResult,
    WorkloadSpec,
};
pub use frontends::{DFront, DScheme, IFront, IScheme};
pub use presets::{fig4_dschemes, fig6_ischemes, full_dschemes, full_ischemes};
pub use report::{format_power_table, format_ratio_table, FigureRow};
pub use run::{
    kernel_source_hash, record_trace, record_trace_streaming, RecordedTrace, RunError,
    SchemeResult, SimConfig, SimResult, TraceSource,
};
// The deprecated free-function shims stay importable under their old
// names so downstream code keeps compiling (with a deprecation nudge
// toward the builder).
#[allow(deprecated)]
pub use run::{
    replay_trace, run_benchmark, run_benchmark_with_store, run_suite, run_suite_serial,
    run_suite_with_store, run_trace, run_trace_with_store,
};
// The store an `Experiment` threads through its pipeline and the
// workload-identity types it speaks, re-exported so driver-level
// callers need not name `waymem-trace` themselves; ditto the log-format
// selector from `waymem-ingest`.
pub use waymem_ingest::LogFormat;
pub use waymem_trace::{
    StoreStats, StreamError, StreamingTrace, SynthPattern, SynthSpec, TraceStore, WorkloadId,
};
