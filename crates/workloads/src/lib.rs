//! # waymem-workloads — the seven DATE 2005 benchmark kernels for frv-lite
//!
//! The paper evaluates on *DCT, FFT, dhrystone, whetstone, compress, jpeg
//! encoder and mpeg2 encoder*, compiled for the FR-V with Fujitsu's
//! toolchain. Those binaries are unavailable, so this crate re-implements
//! each kernel in frv-lite assembly with deterministic, seeded synthetic
//! input data. What matters for way memoization is the **shape of the
//! address streams** — blocked matrix loops (DCT/jpeg), strided butterflies
//! (FFT), record/string traffic (dhrystone), scalar loop nests (whetstone),
//! dictionary probing (compress) and windowed search (mpeg2) — which these
//! kernels reproduce.
//!
//! Every kernel finishes with a checksum in `a0` and halts, so tests can
//! pin behavioural determinism, and three of them (DCT, FFT, compress) are
//! verified against independent Rust reference implementations.
//!
//! ```
//! use waymem_workloads::Benchmark;
//! use waymem_isa::{Cpu, NullSink};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let wl = Benchmark::Dct.workload(1)?;
//! let mut cpu = Cpu::new(&wl.program);
//! let out = cpu.run(wl.max_steps, &mut NullSink)?;
//! assert!(out.halted());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod gen;
mod kernels;

pub use gen::XorShift32;

/// Rust reference models for kernels whose results are independently
/// verifiable (see the `reference_models` integration test).
pub mod reference {
    /// Expected `a0` checksum of the DCT kernel at `scale`.
    #[must_use]
    pub fn dct_checksum(scale: u32) -> u32 {
        crate::kernels::dct::reference_checksum(scale)
    }

    /// Expected `a0` checksum of the FFT kernel (scale-independent result;
    /// repetitions recompute the same transform).
    #[must_use]
    pub fn fft_checksum() -> u32 {
        crate::kernels::fft::reference_checksum()
    }

    /// Expected `a0` checksum of the compress kernel at `scale`.
    #[must_use]
    pub fn compress_checksum(scale: u32) -> u32 {
        crate::kernels::compress::reference_checksum(scale)
    }
}

use waymem_isa::{assemble, AsmError, Program};

/// One of the paper's seven benchmark programs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Benchmark {
    /// 8×8 two-dimensional integer DCT over a stream of blocks.
    Dct,
    /// 256-point radix-2 fixed-point FFT, repeated over fresh data.
    Fft,
    /// Dhrystone-flavoured record, string and linked-list manipulation.
    Dhrystone,
    /// Whetstone-flavoured scalar arithmetic modules (fixed-point).
    Whetstone,
    /// LZW compression of a synthetic text corpus.
    Compress,
    /// JPEG encoder core: level-shift, DCT, quantization, zigzag + RLE.
    JpegEnc,
    /// MPEG-2 encoder core: block motion search (SAD) + residual.
    Mpeg2Enc,
}

impl Benchmark {
    /// All seven benchmarks in the paper's presentation order.
    pub const ALL: [Benchmark; 7] = [
        Benchmark::Dct,
        Benchmark::Fft,
        Benchmark::Dhrystone,
        Benchmark::Whetstone,
        Benchmark::Compress,
        Benchmark::JpegEnc,
        Benchmark::Mpeg2Enc,
    ];

    /// The short name used in the paper's figures.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Dct => "DCT",
            Benchmark::Fft => "FFT",
            Benchmark::Dhrystone => "dhrystone",
            Benchmark::Whetstone => "whetstone",
            Benchmark::Compress => "compress",
            Benchmark::JpegEnc => "jpeg_enc",
            Benchmark::Mpeg2Enc => "mpeg2enc",
        }
    }

    /// Generates the kernel's assembly source at the given scale factor
    /// (1 = the default ~10^5-instruction configuration; larger scales
    /// multiply the input size / iteration count).
    #[must_use]
    pub fn source(self, scale: u32) -> String {
        let scale = scale.max(1);
        match self {
            Benchmark::Dct => kernels::dct::source(scale),
            Benchmark::Fft => kernels::fft::source(scale),
            Benchmark::Dhrystone => kernels::dhrystone::source(scale),
            Benchmark::Whetstone => kernels::whetstone::source(scale),
            Benchmark::Compress => kernels::compress::source(scale),
            Benchmark::JpegEnc => kernels::jpeg::source(scale),
            Benchmark::Mpeg2Enc => kernels::mpeg2::source(scale),
        }
    }

    /// Assembles the kernel into a runnable [`Workload`].
    ///
    /// # Errors
    ///
    /// Propagates [`AsmError`] if the generated source fails to assemble
    /// (a bug in this crate, surfaced rather than panicking).
    pub fn workload(self, scale: u32) -> Result<Workload, AsmError> {
        let program = assemble(&self.source(scale))?;
        Ok(Workload {
            benchmark: self,
            program,
            max_steps: 30_000_000 * u64::from(scale.max(1)),
        })
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// An assembled, runnable benchmark.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Which benchmark this is.
    pub benchmark: Benchmark,
    /// The assembled program.
    pub program: Program,
    /// A generous step budget; every kernel halts well inside it.
    pub max_steps: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use waymem_isa::{Cpu, NullSink};

    fn run(b: Benchmark) -> (u32, u64) {
        let wl = b.workload(1).expect("kernel assembles");
        let mut cpu = Cpu::new(&wl.program);
        let out = cpu.run(wl.max_steps, &mut NullSink).expect("kernel runs");
        assert!(out.halted(), "{b} must halt");
        (cpu.reg(10), cpu.instret()) // a0 checksum, instructions retired
    }

    #[test]
    fn all_benchmarks_assemble_run_and_halt() {
        for b in Benchmark::ALL {
            let (checksum, instret) = run(b);
            assert!(
                instret > 50_000,
                "{b} retired only {instret} instructions; too small to exercise caches"
            );
            assert_ne!(checksum, 0, "{b} checksum should be non-trivial");
        }
    }

    #[test]
    fn benchmarks_are_deterministic() {
        for b in [Benchmark::Dct, Benchmark::Compress, Benchmark::Mpeg2Enc] {
            assert_eq!(run(b), run(b), "{b} must be reproducible");
        }
    }

    #[test]
    fn names_match_paper() {
        let names: Vec<_> = Benchmark::ALL.iter().map(|b| b.name()).collect();
        assert_eq!(
            names,
            vec![
                "DCT",
                "FFT",
                "dhrystone",
                "whetstone",
                "compress",
                "jpeg_enc",
                "mpeg2enc"
            ]
        );
    }

    #[test]
    fn scale_increases_work() {
        let (_, small) = {
            let wl = Benchmark::Dct.workload(1).unwrap();
            let mut cpu = Cpu::new(&wl.program);
            cpu.run(wl.max_steps, &mut NullSink).unwrap();
            (cpu.reg(10), cpu.instret())
        };
        let wl = Benchmark::Dct.workload(2).unwrap();
        let mut cpu = Cpu::new(&wl.program);
        cpu.run(wl.max_steps, &mut NullSink).unwrap();
        assert!(cpu.instret() > small, "scale 2 must do more work");
    }
}
