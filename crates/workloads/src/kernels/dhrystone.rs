//! Dhrystone-flavoured integer benchmark: a linked list of records with
//! integer fields and embedded strings, exercised by list traversal,
//! `strcmp`/`strcpy`-style byte loops and small leaf procedures — the mix
//! of pointer chasing, byte traffic and call/return control flow the
//! original Dhrystone is known for.

/// Records in the list.
pub const RECORDS: u32 = 32;
/// Traversal iterations at scale 1.
pub const LOOPS_PER_SCALE: u32 = 20;

/// Record layout (32 bytes): 0 `a`, 4 `b`, 8 `next`, 12 `kind`,
/// 16..32 string (NUL-padded).
const REC_BYTES: u32 = 32;

/// Builds the kernel source.
#[must_use]
pub fn source(scale: u32) -> String {
    let loops = LOOPS_PER_SCALE * scale;
    format!(
        r#"# dhrystone benchmark: {records} records, {loops} traversals.
        .equ NREC, {records}
        .equ LOOPS, {loops}
        .data
recs:   .space {recs_bytes}
gstr:   .asciz "DHRYSTONE PGM"
tmpstr: .space 16
        .text
main:   # --- build the record list ---
        la   s0, recs
        li   s1, 0              # index
init:   slli t0, s1, 5
        add  t1, s0, t0         # &rec[i]
        sw   s1, 0(t1)          # a = i
        slli t2, s1, 1
        add  t2, t2, s1
        sw   t2, 4(t1)          # b = 3i
        addi t3, t1, {rec_bytes}
        sw   t3, 8(t1)          # next = &rec[i+1]
        andi t4, s1, 3
        sw   t4, 12(t1)         # kind = i % 4
        # copy gstr into the record string, varying the first byte
        la   t5, gstr
        addi t6, t1, 16
        li   a4, 0
scopy:  add  a5, t5, a4
        lbu  a6, 0(a5)
        add  a5, t6, a4
        sb   a6, 0(a5)
        addi a4, a4, 1
        li   a5, 14
        blt  a4, a5, scopy
        andi a6, s1, 15
        addi a6, a6, 'A'
        sb   a6, 16(t1)         # personalize first char
        addi s1, s1, 1
        li   t0, NREC
        blt  s1, t0, init
        # terminate the list
        li   t0, NREC-1
        slli t0, t0, 5
        add  t1, s0, t0
        sw   zero, 8(t1)

        li   s2, 0              # loop counter
        li   s11, 0             # checksum
outer:  mv   s3, s0             # cursor = head
walk:   beqz s3, walked
        lw   t0, 0(s3)          # a
        lw   t1, 4(s3)          # b
        add  t0, t0, t1         # a += b
        sw   t0, 0(s3)
        add  s11, s11, t0
        # strcmp(rec.str, gstr) -> a0 (0 equal, else sign of diff)
        addi a0, s3, 16
        la   a1, gstr
        call strcmp
        add  s11, s11, a0
        # strcpy(tmpstr, rec.str)
        la   a0, tmpstr
        addi a1, s3, 16
        call strcpy
        # leaf procedures on the record's ints
        lw   a0, 0(s3)
        lw   a1, 4(s3)
        call proc_min
        sw   a0, 4(s3)          # b = min(a, b)
        lw   t2, 12(s3)         # kind drives a switch-like chain
        beqz t2, knd0
        li   t3, 1
        beq  t2, t3, knd1
        li   t3, 2
        beq  t2, t3, knd2
        addi s11, s11, 3
        j    kdone
knd0:   addi s11, s11, 7
        j    kdone
knd1:   slli s11, s11, 1
        j    kdone
knd2:   srli s11, s11, 1
kdone:  lw   s3, 8(s3)          # next
        j    walk
walked: addi s2, s2, 1
        li   t0, LOOPS
        blt  s2, t0, outer
        ori  a0, s11, 1
        halt

# strcmp: a0 = first NUL-terminated string, a1 = second.
# Returns 0 if equal, else (first differing byte difference).
strcmp: lbu  t0, 0(a0)
        lbu  t1, 0(a1)
        bne  t0, t1, scdiff
        beqz t0, sceq
        addi a0, a0, 1
        addi a1, a1, 1
        j    strcmp
sceq:   li   a0, 0
        ret
scdiff: sub  a0, t0, t1
        ret

# strcpy: a0 = dest, a1 = src (NUL-terminated, < 16 bytes).
strcpy: lbu  t0, 0(a1)
        sb   t0, 0(a0)
        beqz t0, spdone
        addi a0, a0, 1
        addi a1, a1, 1
        j    strcpy
spdone: ret

# proc_min: a0 = min(a0, a1)
proc_min:
        ble  a0, a1, pmret
        mv   a0, a1
pmret:  ret
"#,
        records = RECORDS,
        loops = loops,
        recs_bytes = RECORDS * REC_BYTES,
        rec_bytes = REC_BYTES,
    )
}
