//! JPEG encoder core: per 8×8 block — level shift, 2-D integer DCT,
//! quantization against the standard luminance table, zigzag reordering and
//! run-length encoding of zeros. The block pipeline (byte loads, matrix
//! loops, table-indexed gathers, sequential appends) mirrors a real
//! baseline JPEG compressor's hot path.

use crate::gen::{dct8_coefficients_q6, synthetic_frame, words};

/// Blocks encoded at scale 1.
pub const BLOCKS_PER_SCALE: u32 = 8;
const FRAME_W: usize = 64;
const FRAME_H: usize = 48;

/// The Annex-K JPEG luminance quantization table.
const QTABLE: [i64; 64] = [
    16, 11, 10, 16, 24, 40, 51, 61, //
    12, 12, 14, 19, 26, 58, 60, 55, //
    14, 13, 16, 24, 40, 57, 69, 56, //
    14, 17, 22, 29, 51, 87, 80, 62, //
    18, 22, 37, 56, 68, 109, 103, 77, //
    24, 35, 55, 64, 81, 104, 113, 92, //
    49, 64, 78, 87, 103, 121, 120, 101, //
    72, 92, 95, 98, 112, 100, 103, 99,
];

/// The JPEG zigzag scan order (source index for each output position).
const ZIGZAG: [i64; 64] = [
    0, 1, 8, 16, 9, 2, 3, 10, //
    17, 24, 32, 25, 18, 11, 4, 5, //
    12, 19, 26, 33, 40, 48, 41, 34, //
    27, 20, 13, 6, 7, 14, 21, 28, //
    35, 42, 49, 56, 57, 50, 43, 36, //
    29, 22, 15, 23, 30, 37, 44, 51, //
    58, 59, 52, 45, 38, 31, 39, 46, //
    53, 60, 61, 54, 47, 55, 62, 63,
];

/// Builds the kernel source.
#[must_use]
pub fn source(scale: u32) -> String {
    let nb = BLOCKS_PER_SCALE * scale;
    let frame = synthetic_frame(FRAME_W, FRAME_H, 0x0f0e_0004);
    let frame_data = crate::gen::bytes("frame", &frame);
    let coef = words("coef", &dct8_coefficients_q6());
    let qt = words("qtab", &QTABLE);
    let zz = words("zigzag", &ZIGZAG);
    // Blocks wrap around the frame's 8x6 grid of 8x8 blocks.
    format!(
        r#"# jpeg_enc benchmark: {nb} blocks through DCT+quant+zigzag+RLE.
        .equ NB, {nb}
        .equ FRAMEW, {frame_w}
        .data
{frame_data}
        .align 2
{coef}
{qt}
{zz}
xbuf:   .space 256
tbuf:   .space 256
ybuf:   .space 256
zbuf:   .space 256
outbuf: .space {obytes}
        .text
main:   li   s0, 0              # block counter
        la   s7, outbuf
        li   s11, 0             # checksum
blkloop:
        # block coordinates: bx = s0 % 8, by = (s0 / 8) % 6
        andi s1, s0, 7
        srli s2, s0, 3
        li   t0, 6
        rem  s2, s2, t0
        # load the block: xbuf[y*8+x] = frame[(by*8+y)*64 + bx*8+x] - 128
        li   t0, 0              # y
ldy:    li   t1, 0              # x
ldx:    slli t2, s2, 3
        add  t2, t2, t0         # by*8 + y
        slli t2, t2, 6          # * FRAMEW
        slli t3, s1, 3
        add  t3, t3, t1
        add  t2, t2, t3
        la   t4, frame
        add  t4, t4, t2
        lbu  t5, 0(t4)
        addi t5, t5, -128
        slli t2, t0, 5
        slli t3, t1, 2
        add  t2, t2, t3
        la   t4, xbuf
        add  t4, t4, t2
        sw   t5, 0(t4)
        addi t1, t1, 1
        li   t2, 8
        blt  t1, t2, ldx
        addi t0, t0, 1
        li   t2, 8
        blt  t0, t2, ldy

        la   a0, coef           # T = C * X
        la   a1, xbuf
        la   a2, tbuf
        li   a3, 0
        call mm8
        la   a0, tbuf           # Y = T * C^T
        la   a1, coef
        la   a2, ybuf
        li   a3, 1
        call mm8

        # quantize + zigzag: zbuf[i] = (ybuf[zigzag[i]]) / qtab[zigzag[i]]
        li   t0, 0
qz:     slli t1, t0, 2
        la   t2, zigzag
        add  t2, t2, t1
        lw   t3, 0(t2)          # src index
        slli t3, t3, 2
        la   t2, ybuf
        add  t2, t2, t3
        lw   t4, 0(t2)
        la   t2, qtab
        add  t2, t2, t3
        lw   t5, 0(t2)
        div  t4, t4, t5
        la   t2, zbuf
        add  t2, t2, t1
        sw   t4, 0(t2)
        addi t0, t0, 1
        li   t1, 64
        blt  t0, t1, qz

        # RLE of zbuf: emit (run << 8) | (value & 0xff) per nonzero coeff.
        li   t0, 0              # index
        li   t6, 0              # zero-run length
rle:    slli t1, t0, 2
        la   t2, zbuf
        add  t2, t2, t1
        lw   t3, 0(t2)
        bnez t3, rlev
        addi t6, t6, 1
        j    rlen
rlev:   andi t4, t3, 255
        slli t5, t6, 8
        or   t4, t4, t5
        sw   t4, 0(s7)
        addi s7, s7, 4
        add  s11, s11, t4
        li   t6, 0
rlen:   addi t0, t0, 1
        li   t1, 64
        blt  t0, t1, rle
        # end-of-block marker folds the trailing run length in
        slli t4, t6, 8
        ori  t4, t4, 0xEB
        sw   t4, 0(s7)
        addi s7, s7, 4
        add  s11, s11, t4

        addi s0, s0, 1
        li   t0, NB
        blt  s0, t0, blkloop
        ori  a0, s11, 1
        halt

# mm8: identical to the DCT kernel's matrix multiply (a0=A, a1=B, a2=C,
# a3 = 1 to index B transposed), Q6 product scaling.
mm8:    li   t0, 0
mmi:    li   t1, 0
mmj:    li   t2, 0
        li   s5, 0
mmk:    slli t3, t0, 5
        slli t4, t2, 2
        add  t3, t3, t4
        add  t3, a0, t3
        lw   t5, 0(t3)
        beqz a3, mmb
        slli t3, t1, 5
        slli t4, t2, 2
        j    mmsum
mmb:    slli t3, t2, 5
        slli t4, t1, 2
mmsum:  add  t3, t3, t4
        add  t3, a1, t3
        lw   t6, 0(t3)
        mul  t5, t5, t6
        add  s5, s5, t5
        addi t2, t2, 1
        li   t3, 8
        blt  t2, t3, mmk
        srai s5, s5, 6
        slli t3, t0, 5
        slli t4, t1, 2
        add  t3, t3, t4
        add  t3, a2, t3
        sw   s5, 0(t3)
        addi t1, t1, 1
        li   t3, 8
        blt  t1, t3, mmj
        addi t0, t0, 1
        li   t3, 8
        blt  t0, t3, mmi
        ret
"#,
        nb = nb,
        frame_w = FRAME_W,
        frame_data = frame_data,
        coef = coef,
        qt = qt,
        zz = zz,
        obytes = nb * 4 * 70,
    )
}
