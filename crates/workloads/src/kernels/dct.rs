//! 8×8 two-dimensional integer DCT over a stream of blocks.
//!
//! `Y = C·X·Cᵀ` in Q6 fixed point via two 8×8 matrix multiplies per block
//! (the second with a transposed operand), matching the blocked loop nests
//! of a real still-image DCT pass. Verified against a Rust reference in the
//! crate's integration tests.

use crate::gen::{dct8_coefficients_q6, words, XorShift32};

/// Number of 8×8 blocks processed at scale 1.
pub const BLOCKS_PER_SCALE: u32 = 12;

/// Generates pixel data for `blocks` blocks (row-major 64 words each).
pub(crate) fn input_blocks(blocks: u32) -> Vec<i64> {
    let mut rng = XorShift32::new(0x0dc7_0001);
    (0..blocks * 64).map(|_| i64::from(rng.below(256))).collect()
}

/// Builds the kernel source.
#[must_use]
pub fn source(scale: u32) -> String {
    let nb = BLOCKS_PER_SCALE * scale;
    let input = words("input", &input_blocks(nb));
    let coef = words("coef", &dct8_coefficients_q6());
    format!(
        r#"# DCT benchmark: {nb} 8x8 blocks, Y = C*X*C^T in Q6.
        .equ NB, {nb}
        .data
{coef}
{input}
tmpbuf: .space 256
output: .space {out_bytes}
        .text
main:   li   s0, 0              # block counter
        la   s1, input
        la   s2, output
blkloop:
        la   a0, coef           # T = C * X
        mv   a1, s1
        la   a2, tmpbuf
        li   a3, 0
        call mm8
        la   a0, tmpbuf         # Y = T * C^T
        la   a1, coef
        mv   a2, s2
        li   a3, 1
        call mm8
        addi s1, s1, 256
        addi s2, s2, 256
        addi s0, s0, 1
        li   t0, NB
        blt  s0, t0, blkloop

        # checksum of all output words
        la   t0, output
        li   t1, NB
        slli t1, t1, 6
        li   s11, 0
cksum:  lw   t2, 0(t0)
        add  s11, s11, t2
        addi t0, t0, 4
        addi t1, t1, -1
        bnez t1, cksum
        ori  a0, s11, 1
        halt

# mm8: C[i][j] = (sum_k A[i][k] * B[k][j]) >> 6
#   a0 = A base, a1 = B base, a2 = C base,
#   a3 = 1 to index B transposed (B[j][k]).
mm8:    li   t0, 0              # i
mmi:    li   t1, 0              # j
mmj:    li   t2, 0              # k
        li   s5, 0              # acc
mmk:    slli t3, t0, 5
        slli t4, t2, 2
        add  t3, t3, t4
        add  t3, a0, t3
        lw   t5, 0(t3)          # A[i][k]
        beqz a3, mmb
        slli t3, t1, 5          # B[j][k]
        slli t4, t2, 2
        j    mmsum
mmb:    slli t3, t2, 5          # B[k][j]
        slli t4, t1, 2
mmsum:  add  t3, t3, t4
        add  t3, a1, t3
        lw   t6, 0(t3)
        mul  t5, t5, t6
        add  s5, s5, t5
        addi t2, t2, 1
        li   t3, 8
        blt  t2, t3, mmk
        srai s5, s5, 6
        slli t3, t0, 5
        slli t4, t1, 2
        add  t3, t3, t4
        add  t3, a2, t3
        sw   s5, 0(t3)
        addi t1, t1, 1
        li   t3, 8
        blt  t1, t3, mmj
        addi t0, t0, 1
        li   t3, 8
        blt  t0, t3, mmi
        ret
"#,
        nb = nb,
        coef = coef,
        input = input,
        out_bytes = nb * 256,
    )
}

/// Rust reference model of the kernel: returns the checksum the assembly
/// program must leave in `a0`.
#[must_use]
pub fn reference_checksum(scale: u32) -> u32 {
    let nb = BLOCKS_PER_SCALE * scale.max(1);
    let coef: Vec<i32> = dct8_coefficients_q6().iter().map(|&v| v as i32).collect();
    let input: Vec<i32> = input_blocks(nb).iter().map(|&v| v as i32).collect();
    let mut checksum: u32 = 0;
    for b in 0..nb as usize {
        let x = &input[b * 64..b * 64 + 64];
        let mut t = [0i32; 64];
        for i in 0..8 {
            for j in 0..8 {
                let mut acc: i32 = 0;
                for k in 0..8 {
                    acc = acc.wrapping_add(coef[i * 8 + k].wrapping_mul(x[k * 8 + j]));
                }
                t[i * 8 + j] = acc >> 6;
            }
        }
        for i in 0..8 {
            for j in 0..8 {
                let mut acc: i32 = 0;
                for k in 0..8 {
                    acc = acc.wrapping_add(t[i * 8 + k].wrapping_mul(coef[j * 8 + k]));
                }
                checksum = checksum.wrapping_add((acc >> 6) as u32);
            }
        }
    }
    checksum | 1
}
