//! MPEG-2 encoder core: full-search block motion estimation (sum of
//! absolute differences over a ±2 pixel window) followed by residual
//! computation — the byte-granular, windowed two-frame access pattern that
//! dominates a video encoder's inter-frame path.

use crate::gen::{bytes, shifted_frame, synthetic_frame};

/// Macroblocks processed at scale 1.
pub const BLOCKS_PER_SCALE: u32 = 16;
const FRAME_W: usize = 80;
const FRAME_H: usize = 40;

/// Builds the kernel source.
#[must_use]
pub fn source(scale: u32) -> String {
    let nmb = BLOCKS_PER_SCALE * scale;
    let reference = synthetic_frame(FRAME_W, FRAME_H, 0x2be9_0005);
    let current = shifted_frame(&reference, FRAME_W, FRAME_H, 1, -1, 0x2be9_0006);
    let ref_data = bytes("ref", &reference);
    let cur_data = bytes("cur", &current);
    format!(
        r#"# mpeg2enc benchmark: {nmb} 8x8 blocks, full search +/-2, {fw}x{fh} frames.
        .equ NMB, {nmb}
        .equ FRAMEW, {fw}
        .data
{ref_data}
{cur_data}
resbuf: .space 64
        .text
main:   li   s0, 0              # block counter
        li   s11, 0             # checksum
mbloop:
        # bx = 1 + s0 % 8, by = 1 + (s0 >> 3) % 2  (inner blocks only,
        # so the +/-2 search window never leaves the frame)
        andi s1, s0, 7
        addi s1, s1, 1
        srli s2, s0, 3
        andi s2, s2, 1
        addi s2, s2, 1
        slli t0, s2, 3
        li   t1, FRAMEW
        mul  t0, t0, t1
        slli t1, s1, 3
        add  t0, t0, t1         # pixel offset of block origin
        la   t2, cur
        add  s7, t2, t0         # current-block origin
        la   t2, ref
        add  s8, t2, t0         # co-located reference origin
        li   s3, 0x7fffffff     # best SAD
        li   s4, 0              # best motion vector (packed)
        li   s5, -2             # dy
dyloop: li   s6, -2             # dx
dxloop: li   t0, FRAMEW
        mul  t0, s5, t0
        add  t0, t0, s6
        add  a1, s8, t0         # candidate origin
        mv   a0, s7
        addi sp, sp, -4
        sw   ra, 0(sp)
        call sad8
        lw   ra, 0(sp)
        addi sp, sp, 4
        bge  a0, s3, notbest
        mv   s3, a0
        addi t0, s5, 2
        slli t0, t0, 4
        addi t1, s6, 2
        or   s4, t0, t1         # mv = (dy+2) << 4 | (dx+2)
notbest:
        addi s6, s6, 1
        li   t0, 3
        blt  s6, t0, dxloop
        addi s5, s5, 1
        li   t0, 3
        blt  s5, t0, dyloop
        add  s11, s11, s3
        add  s11, s11, s4

        # residual against the best candidate
        srli t0, s4, 4
        addi t0, t0, -2
        andi t1, s4, 15
        addi t1, t1, -2
        li   t2, FRAMEW
        mul  t0, t0, t2
        add  t0, t0, t1
        add  a1, s8, t0
        mv   a0, s7
        la   a2, resbuf
        li   t0, 0              # y
resy:   li   t1, 0              # x
resx:   add  t2, a0, t1
        lbu  t3, 0(t2)
        add  t2, a1, t1
        lbu  t4, 0(t2)
        sub  t3, t3, t4
        add  t2, a2, t1
        sb   t3, 0(t2)
        addi t1, t1, 1
        li   t2, 8
        blt  t1, t2, resx
        addi a0, a0, FRAMEW
        addi a1, a1, FRAMEW
        addi a2, a2, 8
        addi t0, t0, 1
        li   t2, 8
        blt  t0, t2, resy
        # fold a few residual bytes into the checksum
        la   t2, resbuf
        lbu  t3, 0(t2)
        lbu  t4, 63(t2)
        add  s11, s11, t3
        add  s11, s11, t4

        addi s0, s0, 1
        li   t0, NMB
        blt  s0, t0, mbloop
        ori  a0, s11, 1
        halt

# sad8: a0 = current origin, a1 = candidate origin.
# Returns the 8x8 sum of absolute differences in a0. Clobbers t0-t6.
sad8:   li   t0, 0
        li   t5, 0
sady:   li   t1, 0
sadx:   add  t2, a0, t1
        lbu  t3, 0(t2)
        add  t2, a1, t1
        lbu  t4, 0(t2)
        sub  t3, t3, t4
        srai t6, t3, 31
        xor  t3, t3, t6
        sub  t3, t3, t6         # |cur - ref|
        add  t5, t5, t3
        addi t1, t1, 1
        li   t2, 8
        blt  t1, t2, sadx
        addi a0, a0, FRAMEW
        addi a1, a1, FRAMEW
        addi t0, t0, 1
        li   t2, 8
        blt  t0, t2, sady
        mv   a0, t5
        ret
"#,
        nmb = nmb,
        fw = FRAME_W,
        fh = FRAME_H,
        ref_data = ref_data,
        cur_data = cur_data,
    )
}
