//! Whetstone-flavoured scalar benchmark in Q12 fixed point: the classic
//! module mix — element identities on a small array, tight procedure calls,
//! conditional-jump toggling and table-driven "trig" — dominated by
//! register arithmetic with a sprinkle of stack and table traffic, which is
//! exactly why whetstone shows the weakest D-cache savings in the paper.

use crate::gen::{sine_table_q14, words};

/// Outer iterations at scale 1.
pub const LOOPS_PER_SCALE: u32 = 60;

/// Builds the kernel source.
#[must_use]
pub fn source(scale: u32) -> String {
    let loops = LOOPS_PER_SCALE * scale;
    let sine = words("sintab", &sine_table_q14(256));
    format!(
        r#"# whetstone benchmark: {loops} iterations of fixed-point modules.
        .equ LOOPS, {loops}
        .equ THALF, 2005        # ~0.489 in Q12
        .data
e1:     .word 4096, -4096, -4096, -4096   # 1.0, -1.0, -1.0, -1.0 in Q12
{sine}
        .text
main:   li   s0, 0              # iteration
        li   s11, 0             # checksum
iter:
        # --- module 1: identities on four scalars (registers) ---
        li   s1, 4096           # x1 = 1.0
        li   s2, -4096
        li   s3, -4096
        li   s4, -4096
        li   t0, 12             # inner repetitions
m1:     add  t1, s1, s2
        add  t1, t1, s3
        sub  t1, t1, s4
        li   t2, THALF
        mul  t1, t1, t2
        srai s1, t1, 12         # x1 = (x1+x2+x3-x4)*t
        add  t1, s1, s2
        sub  t1, t1, s3
        add  t1, t1, s4
        mul  t1, t1, t2
        srai s2, t1, 12
        sub  t1, s1, s2
        add  t1, t1, s3
        add  t1, t1, s4
        mul  t1, t1, t2
        srai s3, t1, 12
        add  t1, s1, s2
        add  t1, t1, s3
        add  t1, t1, s4
        mul  t1, t1, t2
        srai s4, t1, 12
        addi t0, t0, -1
        bnez t0, m1
        add  s11, s11, s1
        add  s11, s11, s4

        # --- module 2: array elements through memory ---
        la   s5, e1
        li   t0, 10
m2:     lw   t1, 0(s5)
        lw   t2, 4(s5)
        lw   t3, 8(s5)
        lw   t4, 12(s5)
        add  t5, t1, t2
        add  t5, t5, t3
        sub  t5, t5, t4
        li   t6, THALF
        mul  t5, t5, t6
        srai t5, t5, 12
        sw   t5, 0(s5)
        add  t5, t1, t2
        sub  t5, t5, t3
        add  t5, t5, t4
        mul  t5, t5, t6
        srai t5, t5, 12
        sw   t5, 4(s5)
        sub  t5, t1, t2
        add  t5, t5, t3
        add  t5, t5, t4
        mul  t5, t5, t6
        srai t5, t5, 12
        sw   t5, 8(s5)
        addi t0, t0, -1
        bnez t0, m2
        lw   t1, 0(s5)
        add  s11, s11, t1

        # --- module 3: procedure calls with stack traffic ---
        li   t0, 8
        li   a0, 4096
        li   a1, -2048
m3:     addi sp, sp, -8
        sw   t0, 0(sp)
        sw   ra, 4(sp)
        call pa
        lw   ra, 4(sp)
        lw   t0, 0(sp)
        addi sp, sp, 8
        addi t0, t0, -1
        bnez t0, m3
        add  s11, s11, a0

        # --- module 4: conditional jumps toggling a flag ---
        li   t0, 16
        li   t1, 1
m4:     li   t2, 1
        bne  t1, t2, m4a
        li   t1, 0
        j    m4b
m4a:    li   t1, 1
m4b:    addi t0, t0, -1
        bnez t0, m4
        add  s11, s11, t1

        # --- module 7: table-driven trig-like references ---
        li   t0, 24
        mv   t3, s0             # phase depends on iteration
m7:     andi t4, t3, 255
        slli t4, t4, 2
        la   t5, sintab
        add  t5, t5, t4
        lw   t6, 0(t5)          # sin(x)
        addi t4, t3, 64         # cos via phase shift
        andi t4, t4, 255
        slli t4, t4, 2
        la   t5, sintab
        add  t5, t5, t4
        lw   t2, 0(t5)          # cos(x)
        mul  t6, t6, t2
        srai t6, t6, 14         # sin*cos
        add  s11, s11, t6
        addi t3, t3, 7
        addi t0, t0, -1
        bnez t0, m7

        addi s0, s0, 1
        li   t0, LOOPS
        blt  s0, t0, iter
        ori  a0, s11, 1
        halt

# pa: six dependent fixed-point operations on (a0, a1), like whetstone's P3.
pa:     li   t5, THALF
        add  t6, a0, a1
        mul  t6, t6, t5
        srai a0, t6, 12
        sub  t6, a0, a1
        mul  t6, t6, t5
        srai a1, t6, 12
        add  t6, a0, a1
        mul  t6, t6, t5
        srai a0, t6, 12
        ret
"#,
        loops = loops,
        sine = sine,
    )
}
