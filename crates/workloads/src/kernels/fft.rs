//! 256-point radix-2 decimation-in-time fixed-point FFT, repeated over the
//! same input (bit-reversal copy + 8 butterfly stages per repetition).
//!
//! Twiddle factors are Q14; inputs are bounded to ±300 so intermediate
//! products stay within `i32` for typical stages (and the Rust reference
//! uses identical wrapping arithmetic either way).

use crate::gen::{bit_reverse_table, cosine_table_q14, sine_table_q14, words, XorShift32};

/// FFT length (fixed).
pub const N: usize = 256;
/// Repetitions of the whole transform at scale 1.
pub const REPS_PER_SCALE: u32 = 4;

pub(crate) fn input_re_im() -> (Vec<i64>, Vec<i64>) {
    let mut rng = XorShift32::new(0xff70_0002);
    let re = (0..N).map(|_| i64::from(rng.below(601)) - 300).collect();
    let im = (0..N).map(|_| i64::from(rng.below(601)) - 300).collect();
    (re, im)
}

/// Builds the kernel source.
#[must_use]
pub fn source(scale: u32) -> String {
    let reps = REPS_PER_SCALE * scale;
    let (re, im) = input_re_im();
    let src_re = words("src_re", &re);
    let src_im = words("src_im", &im);
    let rev = words("rev", &bit_reverse_table(N));
    // Twiddle for butterfly j at stage with `half`: index j * (128/half)
    // into half-cycle tables: w = exp(-2πi k / 256) for k in 0..128.
    let wr = words(
        "wr",
        &cosine_table_q14(N)[..N / 2],
    );
    let wi = words(
        "wi",
        &sine_table_q14(N)[..N / 2]
            .iter()
            .map(|&v| -v)
            .collect::<Vec<_>>(),
    );
    format!(
        r#"# FFT benchmark: {reps} x 256-point radix-2 DIT, Q14 twiddles.
        .equ REPS, {reps}
        .data
{src_re}
{src_im}
{rev}
{wr}
{wi}
re:     .space 1024
im:     .space 1024
        .text
main:   la   a2, re
        la   a3, im
        li   s0, 0              # repetition counter
reploop:
        # bit-reversed copy from src into working arrays
        li   t0, 0
brcopy: slli t1, t0, 2
        la   t2, rev
        add  t2, t2, t1
        lw   t3, 0(t2)
        slli t3, t3, 2
        la   t4, src_re
        add  t4, t4, t3
        lw   t5, 0(t4)
        add  t4, a2, t1
        sw   t5, 0(t4)
        la   t4, src_im
        add  t4, t4, t3
        lw   t5, 0(t4)
        add  t4, a3, t1
        sw   t5, 0(t4)
        addi t0, t0, 1
        li   t1, 256
        blt  t0, t1, brcopy

        li   s1, 2              # len
stage:  srli s2, s1, 1          # half
        li   s3, 128
        div  s3, s3, s2         # twiddle stride
        li   s4, 0              # group base i
grp:    li   s5, 0              # j
bfly:   add  t0, s4, s5         # idx1
        add  t1, t0, s2         # idx2
        mul  t2, s5, s3
        slli t2, t2, 2
        la   t3, wr
        add  t3, t3, t2
        lw   a4, 0(t3)          # wr
        la   t3, wi
        add  t3, t3, t2
        lw   a5, 0(t3)          # wi
        slli t2, t1, 2
        add  t3, a2, t2
        lw   a6, 0(t3)          # b_re
        add  t3, a3, t2
        lw   a7, 0(t3)          # b_im
        mul  t4, a4, a6
        mul  t6, a5, a7
        sub  t4, t4, t6
        srai t4, t4, 14         # t_re
        mul  t5, a4, a7
        mul  t6, a5, a6
        add  t5, t5, t6
        srai t5, t5, 14         # t_im
        slli t6, t0, 2
        add  t3, a2, t6
        lw   s6, 0(t3)          # a_re
        add  t3, a3, t6
        lw   s7, 0(t3)          # a_im
        sub  a6, s6, t4
        add  t3, a2, t2
        sw   a6, 0(t3)
        sub  a7, s7, t5
        add  t3, a3, t2
        sw   a7, 0(t3)
        add  a6, s6, t4
        add  t3, a2, t6
        sw   a6, 0(t3)
        add  a7, s7, t5
        add  t3, a3, t6
        sw   a7, 0(t3)
        addi s5, s5, 1
        blt  s5, s2, bfly
        add  s4, s4, s1
        li   t6, 256
        blt  s4, t6, grp
        slli s1, s1, 1
        li   t6, 256
        ble  s1, t6, stage

        addi s0, s0, 1
        li   t6, REPS
        blt  s0, t6, reploop

        # checksum over the final spectrum
        li   s11, 0
        li   t0, 0
cksum:  slli t1, t0, 2
        add  t2, a2, t1
        lw   t3, 0(t2)
        add  s11, s11, t3
        add  t2, a3, t1
        lw   t3, 0(t2)
        add  s11, s11, t3
        addi t0, t0, 1
        li   t1, 256
        blt  t0, t1, cksum
        ori  a0, s11, 1
        halt
"#,
        reps = reps,
        src_re = src_re,
        src_im = src_im,
        rev = rev,
        wr = wr,
        wi = wi,
    )
}

/// Rust reference model: the checksum the kernel must compute.
#[must_use]
pub fn reference_checksum() -> u32 {
    let (re0, im0) = input_re_im();
    let rev = bit_reverse_table(N);
    let wr: Vec<i32> = cosine_table_q14(N)[..N / 2].iter().map(|&v| v as i32).collect();
    let wi: Vec<i32> = sine_table_q14(N)[..N / 2].iter().map(|&v| -v as i32).collect();
    let mut re = vec![0i32; N];
    let mut im = vec![0i32; N];
    for i in 0..N {
        re[i] = re0[rev[i] as usize] as i32;
        im[i] = im0[rev[i] as usize] as i32;
    }
    let mut len = 2;
    while len <= N {
        let half = len / 2;
        let stride = 128 / half;
        let mut i = 0;
        while i < N {
            for j in 0..half {
                let w_re = wr[j * stride];
                let w_im = wi[j * stride];
                let b_re = re[i + j + half];
                let b_im = im[i + j + half];
                let t_re = w_re.wrapping_mul(b_re).wrapping_sub(w_im.wrapping_mul(b_im)) >> 14;
                let t_im = w_re.wrapping_mul(b_im).wrapping_add(w_im.wrapping_mul(b_re)) >> 14;
                let a_re = re[i + j];
                let a_im = im[i + j];
                re[i + j + half] = a_re.wrapping_sub(t_re);
                im[i + j + half] = a_im.wrapping_sub(t_im);
                re[i + j] = a_re.wrapping_add(t_re);
                im[i + j] = a_im.wrapping_add(t_im);
            }
            i += len;
        }
        len *= 2;
    }
    let mut checksum: u32 = 0;
    for i in 0..N {
        checksum = checksum.wrapping_add(re[i] as u32).wrapping_add(im[i] as u32);
    }
    checksum | 1
}
