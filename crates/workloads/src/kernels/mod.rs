//! The seven benchmark kernels, one module each. Every `source(scale)`
//! returns complete frv-lite assembly with embedded input data; all kernels
//! leave a checksum in `a0` and halt.

pub mod compress;
pub mod dct;
pub mod dhrystone;
pub mod fft;
pub mod jpeg;
pub mod mpeg2;
pub mod whetstone;
