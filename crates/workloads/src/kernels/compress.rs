//! LZW compression of a synthetic text corpus with an open-addressing hash
//! dictionary — the irregular, data-dependent D-cache probing pattern that
//! made `compress` a staple of cache studies. Verified against a Rust
//! reference implementation.

use crate::gen::{bytes, synthetic_text};

/// Input text bytes at scale 1.
pub const TEXT_PER_SCALE: u32 = 3072;
const HASH_SIZE: u32 = 4096;

pub(crate) fn input_text(scale: u32) -> Vec<u8> {
    synthetic_text((TEXT_PER_SCALE * scale) as usize, 0xc0de_0003)
}

/// Builds the kernel source.
#[must_use]
pub fn source(scale: u32) -> String {
    let text = input_text(scale);
    let len = text.len() as u32;
    let text_data = bytes("text", &text);
    format!(
        r#"# compress benchmark: LZW over {len} bytes, {hash} hash slots.
        .equ LEN, {len}
        .equ HMASK, {hmask}
        .data
{text_data}
        .align 2
hkey:   .space {hbytes}
hcode:  .space {hbytes}
outbuf: .space {obytes}
        .text
main:   # clear dictionary keys to -1
        la   t0, hkey
        li   t1, {hash}
        li   t2, -1
hinit:  sw   t2, 0(t0)
        addi t0, t0, 4
        addi t1, t1, -1
        bnez t1, hinit

        la   s1, text
        li   s2, 1              # i
        lbu  s3, 0(s1)          # w = text[0]
        li   s4, 256            # next_code
        la   s5, hkey
        la   s6, hcode
        la   s7, outbuf
        li   s11, 0             # checksum

byteloop:
        li   t0, LEN
        bge  s2, t0, flush
        add  t0, s1, s2
        lbu  s8, 0(t0)          # k = text[i]
        slli t1, s3, 8
        or   t1, t1, s8         # key = (w << 8) | k
        slli t2, s3, 5
        xor  t2, t2, s8
        andi t2, t2, HMASK      # h
probe:  slli t3, t2, 2
        add  t4, s5, t3
        lw   t5, 0(t4)          # hkey[h]
        beq  t5, t1, found
        li   t6, -1
        beq  t5, t6, vacant
        addi t2, t2, 1
        andi t2, t2, HMASK
        j    probe
found:  add  t4, s6, t3
        lw   s3, 0(t4)          # w = hcode[h]
        j    nextbyte
vacant: li   t6, {hash}
        bge  s4, t6, noinsert
        add  t4, s5, t3
        sw   t1, 0(t4)          # hkey[h] = key
        add  t4, s6, t3
        sw   s4, 0(t4)          # hcode[h] = next_code
        addi s4, s4, 1
noinsert:
        sw   s3, 0(s7)          # emit w
        add  s11, s11, s3
        addi s7, s7, 4
        mv   s3, s8             # w = k
nextbyte:
        addi s2, s2, 1
        j    byteloop
flush:  sw   s3, 0(s7)
        add  s11, s11, s3
        addi s7, s7, 4
        # fold in the emitted-code count
        la   t0, outbuf
        sub  t1, s7, t0
        srli t1, t1, 2
        slli t1, t1, 16
        add  s11, s11, t1
        ori  a0, s11, 1
        halt
"#,
        len = len,
        hash = HASH_SIZE,
        hmask = HASH_SIZE - 1,
        hbytes = HASH_SIZE * 4,
        obytes = (len + 1) * 4,
        text_data = text_data,
    )
}

/// Rust reference model: the checksum the kernel must leave in `a0`.
#[must_use]
pub fn reference_checksum(scale: u32) -> u32 {
    let text = input_text(scale.max(1));
    let mut hkey = vec![-1i64; HASH_SIZE as usize];
    let mut hcode = vec![0u32; HASH_SIZE as usize];
    let mut next_code: u32 = 256;
    let mut w = u32::from(text[0]);
    let mut checksum: u32 = 0;
    let mut emitted: u32 = 0;
    for &kb in &text[1..] {
        let k = u32::from(kb);
        let key = i64::from((w << 8) | k);
        let mut h = ((w << 5) ^ k) & (HASH_SIZE - 1);
        loop {
            let slot = hkey[h as usize];
            if slot == key {
                w = hcode[h as usize];
                break;
            }
            if slot == -1 {
                if next_code < HASH_SIZE {
                    hkey[h as usize] = key;
                    hcode[h as usize] = next_code;
                    next_code += 1;
                }
                checksum = checksum.wrapping_add(w);
                emitted += 1;
                w = k;
                break;
            }
            h = (h + 1) & (HASH_SIZE - 1);
        }
    }
    checksum = checksum.wrapping_add(w);
    emitted += 1;
    checksum = checksum.wrapping_add(emitted << 16);
    checksum | 1
}
