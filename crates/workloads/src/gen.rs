//! Deterministic input-data generation for the benchmark kernels.
//!
//! Kernels embed their input data as `.word`/`.byte` directives produced by
//! these helpers, so a benchmark's behaviour is a pure function of its
//! scale factor — no files, no environment.

use std::fmt::Write;

/// Minimal xorshift PRNG used to synthesize benchmark inputs.
///
/// Deliberately not `rand`-based for the data that defines benchmark
/// *identity*: the exact stream must stay stable across `rand` versions so
/// that golden checksums in tests never drift.
///
/// ```
/// use waymem_workloads::XorShift32;
///
/// let mut a = XorShift32::new(42);
/// let mut b = XorShift32::new(42);
/// assert_eq!(a.next_u32(), b.next_u32());
/// ```
#[derive(Debug, Clone)]
pub struct XorShift32 {
    state: u32,
}

impl XorShift32 {
    /// Creates a generator; a zero seed is remapped to a fixed non-zero one.
    #[must_use]
    pub fn new(seed: u32) -> Self {
        Self {
            state: if seed == 0 { 0x9e37_79b9 } else { seed },
        }
    }

    /// Next 32-bit value.
    pub fn next_u32(&mut self) -> u32 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        self.state = x;
        x
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u32) -> u32 {
        assert!(bound > 0, "bound must be positive");
        self.next_u32() % bound
    }
}

/// Emits a `.word` directive list (8 values per line) for `values`.
#[must_use]
pub fn words(label: &str, values: &[i64]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{label}:");
    for chunk in values.chunks(8) {
        let items: Vec<String> = chunk.iter().map(|v| v.to_string()).collect();
        let _ = writeln!(out, "        .word {}", items.join(", "));
    }
    if values.is_empty() {
        let _ = writeln!(out, "        .space 0");
    }
    out
}

/// Emits a `.byte` directive list (16 values per line) for `values`.
#[must_use]
pub fn bytes(label: &str, values: &[u8]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{label}:");
    for chunk in values.chunks(16) {
        let items: Vec<String> = chunk.iter().map(|v| v.to_string()).collect();
        let _ = writeln!(out, "        .byte {}", items.join(", "));
    }
    if values.is_empty() {
        let _ = writeln!(out, "        .space 0");
    }
    out
}

/// The 8×8 DCT-II coefficient matrix in Q6 fixed point (values scaled by
/// 64), row-major: `C[k][n] = s(k) * cos((2n+1) k π / 16) * 64`.
#[must_use]
pub fn dct8_coefficients_q6() -> Vec<i64> {
    let mut c = Vec::with_capacity(64);
    for k in 0..8 {
        let s = if k == 0 {
            (1.0f64 / 8.0).sqrt()
        } else {
            (2.0f64 / 8.0).sqrt()
        };
        for n in 0..8 {
            let v = s * ((2.0 * n as f64 + 1.0) * k as f64 * std::f64::consts::PI / 16.0).cos();
            c.push((v * 64.0).round() as i64);
        }
    }
    c
}

/// Sine table: `len` entries of `sin(2πi/len)` in Q14 fixed point.
#[must_use]
pub fn sine_table_q14(len: usize) -> Vec<i64> {
    (0..len)
        .map(|i| {
            let v = (2.0 * std::f64::consts::PI * i as f64 / len as f64).sin();
            (v * 16384.0).round() as i64
        })
        .collect()
}

/// Cosine table: `len` entries of `cos(2πi/len)` in Q14 fixed point.
#[must_use]
pub fn cosine_table_q14(len: usize) -> Vec<i64> {
    (0..len)
        .map(|i| {
            let v = (2.0 * std::f64::consts::PI * i as f64 / len as f64).cos();
            (v * 16384.0).round() as i64
        })
        .collect()
}

/// Bit-reversal permutation table for an `n`-point FFT (n a power of two).
///
/// # Panics
///
/// Panics if `n` is not a power of two.
#[must_use]
pub fn bit_reverse_table(n: usize) -> Vec<i64> {
    assert!(n.is_power_of_two(), "FFT size must be a power of two");
    let bits = n.trailing_zeros();
    (0..n)
        .map(|i| i64::from((i as u32).reverse_bits() >> (32 - bits)))
        .collect()
}

/// Synthetic English-like text for the compress benchmark: words sampled
/// from a small vocabulary with punctuation, `len` bytes.
#[must_use]
pub fn synthetic_text(len: usize, seed: u32) -> Vec<u8> {
    const VOCAB: [&str; 24] = [
        "the", "cache", "way", "tag", "power", "memo", "access", "line", "set", "index", "data",
        "buffer", "address", "energy", "miss", "hit", "processor", "branch", "link", "store",
        "load", "bank", "array", "clock",
    ];
    let mut rng = XorShift32::new(seed);
    let mut out = Vec::with_capacity(len + 16);
    while out.len() < len {
        let w = VOCAB[rng.below(VOCAB.len() as u32) as usize];
        out.extend_from_slice(w.as_bytes());
        match rng.below(12) {
            0 => out.extend_from_slice(b". "),
            1 => out.extend_from_slice(b", "),
            _ => out.push(b' '),
        }
    }
    out.truncate(len);
    out
}

/// A synthetic greyscale frame of `w`×`h` pixels with smooth gradients plus
/// noise — plausibly image-like for DCT/JPEG/MPEG kernels.
#[must_use]
pub fn synthetic_frame(w: usize, h: usize, seed: u32) -> Vec<u8> {
    let mut rng = XorShift32::new(seed);
    let mut px = Vec::with_capacity(w * h);
    for y in 0..h {
        for x in 0..w {
            let base = 96.0
                + 60.0 * ((x as f64) * 0.12).sin()
                + 40.0 * ((y as f64) * 0.2 + (x as f64) * 0.03).cos();
            let noise = (rng.below(17) as f64) - 8.0;
            px.push((base + noise).clamp(0.0, 255.0) as u8);
        }
    }
    px
}

/// Shifts `frame` by (`dx`, `dy`) with clamping and adds light noise —
/// the "next frame" for motion estimation.
#[must_use]
pub fn shifted_frame(frame: &[u8], w: usize, h: usize, dx: i32, dy: i32, seed: u32) -> Vec<u8> {
    let mut rng = XorShift32::new(seed);
    let mut out = Vec::with_capacity(w * h);
    for y in 0..h as i32 {
        for x in 0..w as i32 {
            let sx = (x + dx).clamp(0, w as i32 - 1) as usize;
            let sy = (y + dy).clamp(0, h as i32 - 1) as usize;
            let v = i32::from(frame[sy * w + sx]) + rng.below(5) as i32 - 2;
            out.push(v.clamp(0, 255) as u8);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xorshift_is_deterministic_and_nonzero() {
        let mut r = XorShift32::new(7);
        let seq: Vec<u32> = (0..8).map(|_| r.next_u32()).collect();
        let mut r2 = XorShift32::new(7);
        let seq2: Vec<u32> = (0..8).map(|_| r2.next_u32()).collect();
        assert_eq!(seq, seq2);
        assert!(seq.iter().all(|&v| v != 0));
        // Zero seed is remapped, not stuck at zero.
        assert_ne!(XorShift32::new(0).next_u32(), 0);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = XorShift32::new(3);
        for _ in 0..100 {
            assert!(r.below(10) < 10);
        }
    }

    #[test]
    fn words_formats_directives() {
        let s = words("tbl", &[1, -2, 3]);
        assert!(s.starts_with("tbl:\n"));
        assert!(s.contains(".word 1, -2, 3"));
    }

    #[test]
    fn dct_matrix_first_row_is_dc() {
        let c = dct8_coefficients_q6();
        // DC row: all entries equal 64 / sqrt(8) ≈ 22.6 -> 23.
        for (n, &v) in c.iter().take(8).enumerate() {
            assert_eq!(v, 23, "n={n}");
        }
        // Orthogonality-ish sanity: row 1 is symmetric negated.
        assert_eq!(c[8], -c[15]);
    }

    #[test]
    fn bit_reverse_table_is_an_involution() {
        let t = bit_reverse_table(256);
        for (i, &r) in t.iter().enumerate() {
            assert_eq!(t[r as usize], i as i64);
        }
    }

    #[test]
    fn sine_cosine_q14_bounds() {
        for v in sine_table_q14(128).iter().chain(cosine_table_q14(128).iter()) {
            assert!((-16384..=16384).contains(v));
        }
        assert_eq!(cosine_table_q14(128)[0], 16384);
        assert_eq!(sine_table_q14(128)[0], 0);
    }

    #[test]
    fn synthetic_text_looks_textual() {
        let t = synthetic_text(512, 1);
        assert_eq!(t.len(), 512);
        assert!(t.iter().all(|&b| b.is_ascii()));
        assert!(t.iter().filter(|&&b| b == b' ').count() > 20);
    }

    #[test]
    fn frames_have_expected_size_and_range() {
        let f = synthetic_frame(64, 32, 9);
        assert_eq!(f.len(), 64 * 32);
        let s = shifted_frame(&f, 64, 32, 2, 1, 10);
        assert_eq!(s.len(), f.len());
    }
}
