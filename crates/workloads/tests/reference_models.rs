//! Cross-checks three kernels against independent Rust reference models:
//! the assembly program's `a0` checksum must equal the value computed by a
//! straightforward Rust re-implementation of the same fixed-point
//! algorithm. This pins down not just determinism but *correctness* of the
//! assembler, the CPU and the kernels simultaneously.

use waymem_isa::{Cpu, NullSink};
use waymem_workloads::Benchmark;

fn run_checksum(b: Benchmark, scale: u32) -> u32 {
    let wl = b.workload(scale).expect("kernel assembles");
    let mut cpu = Cpu::new(&wl.program);
    let out = cpu.run(wl.max_steps, &mut NullSink).expect("kernel runs");
    assert!(out.halted(), "{b} must halt");
    cpu.reg(10)
}

#[test]
fn dct_matches_rust_reference() {
    // The reference re-implements Y = (C·X·Cᵀ) in the same Q6 arithmetic.
    let expected = waymem_workloads::reference::dct_checksum(1);
    assert_eq!(run_checksum(Benchmark::Dct, 1), expected);
}

#[test]
fn dct_matches_rust_reference_at_scale_2() {
    let expected = waymem_workloads::reference::dct_checksum(2);
    assert_eq!(run_checksum(Benchmark::Dct, 2), expected);
}

#[test]
fn fft_matches_rust_reference() {
    let expected = waymem_workloads::reference::fft_checksum();
    assert_eq!(run_checksum(Benchmark::Fft, 1), expected);
}

#[test]
fn compress_matches_rust_reference() {
    let expected = waymem_workloads::reference::compress_checksum(1);
    assert_eq!(run_checksum(Benchmark::Compress, 1), expected);
}

#[test]
fn compress_matches_rust_reference_at_scale_2() {
    let expected = waymem_workloads::reference::compress_checksum(2);
    assert_eq!(run_checksum(Benchmark::Compress, 2), expected);
}
