//! Pins the committed fixture log — the same file the CI end-to-end step
//! feeds the `ingest` bench bin — to its parsed shape, so a parser
//! regression shows up here before it shows up as a CI JSON diff.

use waymem_ingest::parse_path;
use waymem_isa::TraceEvent;

#[test]
fn the_committed_fixture_parses_to_a_stable_shape() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/lackey_small.log");
    let ing = parse_path(path).expect("fixture parses");
    assert_eq!(ing.lines, 1754);
    assert_eq!(ing.skipped, 7, "valgrind banner/trailer lines");
    assert!(!ing.trace.is_empty());
    assert_ne!(ing.source_hash, 0);

    let loads = ing
        .trace
        .data_events
        .iter()
        .filter(|e| matches!(e, TraceEvent::Load { .. }))
        .count();
    let stores = ing.trace.data_events.len() - loads;
    // The fixture models a blocked image blur: 2 loads + 1 store per
    // pixel (M pixels contribute one of each), plus prologue/epilogue
    // stack traffic.
    assert_eq!(ing.trace.fetch_events.len(), 1167);
    assert_eq!(loads, 2 * 192 + 64 + 2);
    assert_eq!(stores, 192 + 2);
    assert_eq!(ing.trace.cycles, ing.trace.fetch_events.len() as u64);

    // Parsing the same bytes twice is bit-identical (the CI warm-cache
    // invariant depends on this).
    let again = parse_path(path).expect("fixture parses");
    assert_eq!(ing, again);
}
