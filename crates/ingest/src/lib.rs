//! # waymem-ingest — run any real-world memory trace through every lookup scheme
//!
//! The simulator evaluated way memoization on seven built-in frv-lite
//! kernels. The MAB's payoff, though, depends entirely on the *locality
//! of the access stream* — so this crate opens the workbench to arbitrary
//! programs and to locality regimes the kernels miss:
//!
//! * [`lackey`] — a streaming, bounded-memory parser for the Valgrind
//!   Lackey `--trace-mem=yes` format (`I addr,size` / ` L …` / ` S …` /
//!   ` M …` lines, valgrind `==pid==`/`--pid--` banners skipped), the
//!   de-facto standard way to capture a real program's memory trace;
//! * [`csv`] — a trivial `op,addr[,size]` text format for traces coming
//!   out of custom tooling or spreadsheets;
//! * [`synth`] — deterministic, parameterized synthetic access-pattern
//!   generators (sequential stream, strided walk, pointer chase,
//!   zipf-like hot set) fabricated straight into
//!   [`RecordedTrace`]s.
//!
//! Every parsed or generated trace is a first-class `RecordedTrace`: it
//! flows through `waymem-sim::run_trace` / `run_trace_with_store` and the
//! parallel replay engine exactly like a kernel recording, is cached by
//! the [`TraceStore`](waymem_trace::TraceStore) under a
//! [`WorkloadId`] keyed by FNV-1a64 content
//! hash (external logs) or generator spec (synthetics), and lands in the
//! same `BENCH_results.json` rows as the paper's figures.
//!
//! Parsing never panics: every malformed line is a structured
//! [`ParseError`] carrying its 1-based line number and a reason, and the
//! parsers read line-by-line so memory stays bounded by the *output*
//! trace, never by the input text.
//!
//! ```
//! use std::io::Cursor;
//! use waymem_ingest::{parse, LogFormat};
//!
//! let log = "I  0023C790,2\n L 0025747C,4\n S BE80199C,8\n M 0025747C,4\n";
//! let ingested = parse(LogFormat::Lackey, Cursor::new(log)).unwrap();
//! assert_eq!(ingested.trace.fetch_events.len(), 1);
//! assert_eq!(ingested.trace.data_events.len(), 4); // M = load + store
//! assert_ne!(ingested.source_hash, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod csv;
pub mod lackey;
pub mod synth;

use std::fmt;
use std::io::{self, BufRead};
use std::path::Path;

use waymem_isa::{FetchKind, RecordedTrace, TraceEvent, TraceSink};
use waymem_trace::{fnv1a64_update, StreamError, StreamingEncoder, WorkloadId, FNV1A64_SEED};

/// The input grammars this crate understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogFormat {
    /// Valgrind Lackey `--trace-mem=yes` output (see [`lackey`]).
    Lackey,
    /// The simple `op,addr[,size]` text format (see [`csv`]).
    Csv,
}

impl LogFormat {
    /// Picks a format from a file name: `.csv` means [`LogFormat::Csv`],
    /// anything else the Lackey format (the common capture case).
    #[must_use]
    pub fn for_path(path: &Path) -> Self {
        match path.extension().and_then(|e| e.to_str()) {
            Some(ext) if ext.eq_ignore_ascii_case("csv") => LogFormat::Csv,
            _ => LogFormat::Lackey,
        }
    }
}

/// Why one line of a log failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// The line's leading record letter is not one the format defines.
    UnknownRecord(String),
    /// The record letter was not followed by an address.
    MissingAddress,
    /// The address field did not parse in the format's radix.
    BadAddress(String),
    /// The address was not followed by a `,size` field.
    MissingSize,
    /// The size field did not parse as a decimal integer.
    BadSize(String),
}

impl fmt::Display for ParseErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseErrorKind::UnknownRecord(tok) => write!(f, "unknown record type {tok:?}"),
            ParseErrorKind::MissingAddress => write!(f, "missing address field"),
            ParseErrorKind::BadAddress(tok) => write!(f, "malformed address {tok:?}"),
            ParseErrorKind::MissingSize => write!(f, "missing `,size` field"),
            ParseErrorKind::BadSize(tok) => write!(f, "malformed size {tok:?}"),
        }
    }
}

/// A structured parse failure: the offending line (1-based) and why.
/// Malformed input is always one of these — never a panic, never a
/// silently skipped access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based number of the offending line.
    pub line: u64,
    /// What was wrong with it.
    pub kind: ParseErrorKind,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.kind)
    }
}

impl std::error::Error for ParseError {}

/// Why an ingestion failed: the reader broke, or a line was malformed.
#[derive(Debug)]
pub enum IngestError {
    /// An I/O error from the underlying reader.
    Io(io::Error),
    /// A malformed line, with its position and reason.
    Parse(ParseError),
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::Io(e) => write!(f, "i/o error reading log: {e}"),
            IngestError::Parse(e) => write!(f, "malformed log: {e}"),
        }
    }
}

impl std::error::Error for IngestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IngestError::Io(e) => Some(e),
            IngestError::Parse(e) => Some(e),
        }
    }
}

impl From<io::Error> for IngestError {
    fn from(e: io::Error) -> Self {
        IngestError::Io(e)
    }
}

impl From<ParseError> for IngestError {
    fn from(e: ParseError) -> Self {
        IngestError::Parse(e)
    }
}

impl From<StreamError> for IngestError {
    fn from(e: StreamError) -> Self {
        match e {
            StreamError::Io(io) => IngestError::Io(io),
            StreamError::Codec(c) => {
                IngestError::Io(io::Error::new(io::ErrorKind::InvalidData, c))
            }
        }
    }
}

/// The provenance and shape of a parsed stream — everything [`Ingested`]
/// knows except the events themselves. This is what the sink-generic
/// entry points ([`parse_into`], [`parse_to_wmtr`]) return: the events
/// went wherever the caller's [`TraceSink`] sent them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestStats {
    /// FNV-1a64 of the log's raw bytes — the workload's identity *and*
    /// its staleness fingerprint (an edited log is a different hash).
    pub source_hash: u64,
    /// Total lines read, including skipped ones.
    pub lines: u64,
    /// Lines skipped as blanks, comments or valgrind banners.
    pub skipped: u64,
    /// Instruction fetches emitted.
    pub fetch_events: u64,
    /// Loads and stores emitted.
    pub data_events: u64,
    /// Cycle count for the trace: the fetch count, or the data count for
    /// data-only captures (CPI-1 stand-in for the power models).
    pub cycles: u64,
}

impl IngestStats {
    /// Total events emitted across both streams.
    #[must_use]
    pub fn events(&self) -> u64 {
        self.fetch_events + self.data_events
    }

    /// The store key this log caches under.
    #[must_use]
    pub fn workload_id(&self) -> WorkloadId {
        WorkloadId::External { hash: self.source_hash }
    }
}

/// A successfully ingested log: the trace plus its provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ingested {
    /// The reconstructed trace, ready for `waymem-sim::run_trace`.
    pub trace: RecordedTrace,
    /// FNV-1a64 of the log's raw bytes — the workload's identity *and*
    /// its staleness fingerprint (an edited log is a different hash).
    pub source_hash: u64,
    /// Total lines read, including skipped ones.
    pub lines: u64,
    /// Lines skipped as blanks, comments or valgrind banners.
    pub skipped: u64,
}

impl Ingested {
    /// The store key this log caches under.
    #[must_use]
    pub fn workload_id(&self) -> WorkloadId {
        WorkloadId::External { hash: self.source_hash }
    }
}

/// The memory operations a log line can describe, shared by all formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Op {
    /// An instruction fetch.
    Instr,
    /// A data load.
    Load,
    /// A data store.
    Store,
    /// A read-modify-write: one load then one store at the address.
    Modify,
}

/// The crate's collecting sink: splits the stream into the fetch/data
/// vectors a [`RecordedTrace`] holds. This is what the materializing
/// entry points ([`parse`], [`synth::generate`]) plug into the
/// sink-generic core.
#[derive(Debug, Default)]
pub(crate) struct SplitSink {
    pub(crate) fetch_events: Vec<TraceEvent>,
    pub(crate) data_events: Vec<TraceEvent>,
}

impl TraceSink for SplitSink {
    fn fetch(&mut self, pc: u32, kind: FetchKind) {
        self.fetch_events.push(TraceEvent::Fetch { pc, kind });
    }

    fn load(&mut self, base: u32, disp: i32, addr: u32, size: u8) {
        self.data_events.push(TraceEvent::Load { base, disp, addr, size });
    }

    fn store(&mut self, base: u32, disp: i32, addr: u32, size: u8) {
        self.data_events.push(TraceEvent::Store { base, disp, addr, size });
    }
}

/// The shared trace assembler behind both parsers (and the synthetic
/// generators): reconstructs fetch-kind provenance from the PC sequence,
/// hashes the raw input bytes as they stream through, and emits every
/// event straight into the caller's [`TraceSink`] — a collecting
/// [`SplitSink`] to materialize, a
/// [`StreamingEncoder`] to go straight to disk in bounded memory.
///
/// External logs carry no architectural base/displacement or control-flow
/// information, so the builder reconstructs the closest sound analogue:
/// a fetch that continues straight from the previous one (`pc == prev +
/// prev_size`) is [`FetchKind::Sequential`]; any other fetch is modelled
/// as a taken branch *from the previous instruction* —
/// `TakenBranch { base: prev_pc, disp: pc − prev_pc }` — which gives the
/// I-MAB a stable `(site, offset)` key per control transfer, exactly the
/// recurrence it memoizes on real hardware. Loads and stores use the
/// raw-address convention ([`TraceEvent::load_at`]). Addresses are
/// truncated to the simulated machine's 32 bits.
#[derive(Debug)]
pub(crate) struct TraceBuilder<S: TraceSink> {
    sink: S,
    last_fetch: Option<(u32, u32)>,
    hash: u64,
    lines: u64,
    skipped: u64,
    fetch_count: u64,
    data_count: u64,
}

impl<S: TraceSink> TraceBuilder<S> {
    pub(crate) fn new(sink: S) -> Self {
        TraceBuilder {
            sink,
            last_fetch: None,
            hash: FNV1A64_SEED,
            lines: 0,
            skipped: 0,
            fetch_count: 0,
            data_count: 0,
        }
    }

    /// Folds one raw input line (newline included) into the content hash
    /// and returns its 1-based line number.
    pub(crate) fn start_line(&mut self, raw: &str) -> u64 {
        self.hash = fnv1a64_update(self.hash, raw.as_bytes());
        self.lines += 1;
        self.lines
    }

    pub(crate) fn skip_line(&mut self) {
        self.skipped += 1;
    }

    pub(crate) fn push(&mut self, op: Op, addr: u64, size: u64) {
        // The simulated machine is 32-bit; 64-bit capture addresses keep
        // their cache-relevant low bits. Sizes only matter as metadata.
        let addr32 = addr as u32;
        let size8 = u8::try_from(size).unwrap_or(u8::MAX);
        match op {
            Op::Instr => {
                let kind = match self.last_fetch {
                    Some((prev, prev_size)) if addr32 == prev.wrapping_add(prev_size) => {
                        FetchKind::Sequential
                    }
                    Some((prev, _)) => FetchKind::TakenBranch {
                        base: prev,
                        disp: addr32.wrapping_sub(prev) as i32,
                    },
                    None => FetchKind::Sequential,
                };
                self.sink.fetch(addr32, kind);
                self.fetch_count += 1;
                self.last_fetch = Some((addr32, size8.max(1).into()));
            }
            Op::Load => {
                self.sink.load(addr32, 0, addr32, size8);
                self.data_count += 1;
            }
            Op::Store => {
                self.sink.store(addr32, 0, addr32, size8);
                self.data_count += 1;
            }
            Op::Modify => {
                self.sink.load(addr32, 0, addr32, size8);
                self.sink.store(addr32, 0, addr32, size8);
                self.data_count += 2;
            }
        }
    }

    pub(crate) fn finish(self) -> (IngestStats, S) {
        // Logs without fetch records (data-only captures) still need a
        // nonzero cycle count for the power models' per-cycle terms; the
        // data-access count is the CPI-1 stand-in.
        let cycles = if self.fetch_count == 0 { self.data_count } else { self.fetch_count };
        (
            IngestStats {
                source_hash: self.hash,
                lines: self.lines,
                skipped: self.skipped,
                fetch_events: self.fetch_count,
                data_events: self.data_count,
                cycles,
            },
            self.sink,
        )
    }
}

/// Assembles the materialized [`Ingested`] from a collecting run.
pub(crate) fn assemble(stats: IngestStats, sink: SplitSink) -> Ingested {
    Ingested {
        trace: RecordedTrace {
            fetch_events: sink.fetch_events,
            data_events: sink.data_events,
            cycles: stats.cycles,
        },
        source_hash: stats.source_hash,
        lines: stats.lines,
        skipped: stats.skipped,
    }
}

/// Parses a whole log in `format` from `reader`, streaming line-by-line
/// (memory stays bounded by the reconstructed trace, not the text).
///
/// # Errors
///
/// [`IngestError::Io`] if the reader fails; [`IngestError::Parse`] with
/// the 1-based line number and reason on the first malformed line.
pub fn parse<R: BufRead>(format: LogFormat, reader: R) -> Result<Ingested, IngestError> {
    match format {
        LogFormat::Lackey => lackey::parse(reader),
        LogFormat::Csv => csv::parse(reader),
    }
}

/// Parses a whole log in `format` from `reader`, emitting every event
/// into `sink` instead of materializing a trace — resident memory is
/// bounded by the line buffer and whatever the sink holds. Returns the
/// stream's provenance/shape plus the sink.
///
/// # Errors
///
/// As [`parse`].
pub fn parse_into<R: BufRead, S: TraceSink>(
    format: LogFormat,
    reader: R,
    sink: S,
) -> Result<(IngestStats, S), IngestError> {
    match format {
        LogFormat::Lackey => lackey::parse_into(reader, sink),
        LogFormat::Csv => csv::parse_into(reader, sink),
    }
}

/// Parses a whole log in `format` from `reader` straight into an encoded
/// `.wmtr` file at `out_path` — the fully streaming ingest path: no
/// event vector exists at any point, so a multi-GB capture costs O(64
/// KiB) resident memory.
///
/// # Errors
///
/// As [`parse`], plus I/O failures writing the encoded file.
pub fn parse_to_wmtr<R: BufRead>(
    format: LogFormat,
    reader: R,
    out_path: &Path,
) -> Result<IngestStats, IngestError> {
    let encoder = StreamingEncoder::create(out_path)?;
    let (stats, encoder) = parse_into(format, reader, encoder)?;
    encoder.finish(stats.cycles, stats.source_hash)?;
    Ok(stats)
}

/// Opens `path`, picks the format from its extension
/// ([`LogFormat::for_path`]) and parses it.
///
/// # Errors
///
/// As [`parse`], plus the open itself.
pub fn parse_path(path: impl AsRef<Path>) -> Result<Ingested, IngestError> {
    let path = path.as_ref();
    let file = std::fs::File::open(path)?;
    parse(LogFormat::for_path(path), io::BufReader::new(file))
}

/// Streams a file through FNV-1a64 in bounded chunks — the workload
/// identity of an external log ([`WorkloadId::External`]), computable
/// without parsing (or holding) the text. Equals the `source_hash` the
/// parsers compute while streaming, so a store-backed run can hash
/// first and skip the parse entirely on a warm cache hit.
///
/// # Errors
///
/// Any I/O error opening or reading the file.
pub fn hash_file(path: impl AsRef<Path>) -> io::Result<u64> {
    use std::io::Read;
    let mut file = std::fs::File::open(path)?;
    let mut hash = FNV1A64_SEED;
    let mut buf = [0u8; 64 * 1024];
    loop {
        let n = retry_interrupted(|| file.read(&mut buf))?;
        if n == 0 {
            return Ok(hash);
        }
        hash = fnv1a64_update(hash, &buf[..n]);
    }
}

/// How many consecutive transient (`Interrupted`/`WouldBlock`) errors a
/// read loop absorbs before surfacing the error. Real `EINTR` storms are
/// short; the bound keeps a wedged descriptor from spinning forever.
const MAX_TRANSIENT_RETRIES: u32 = 8;

/// Runs `op`, retrying transient errors a bounded number of times. A
/// transient failure is an environment hiccup, not malformed input — it
/// must never surface as a parse error.
fn retry_interrupted<T>(mut op: impl FnMut() -> io::Result<T>) -> io::Result<T> {
    let mut attempts = 0u32;
    loop {
        match op() {
            Ok(v) => return Ok(v),
            Err(e)
                if matches!(e.kind(), io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock)
                    && attempts < MAX_TRANSIENT_RETRIES =>
            {
                attempts += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

/// The shared line-pump both format modules drive: reads `reader` line
/// by line, hashes every raw byte, and hands each line to `parse_line`,
/// which either consumes it (pushing events into the builder, which
/// forwards them to `sink`), skips it, or rejects it with a
/// [`ParseErrorKind`].
///
/// Transient read errors are retried in place — `read_line` appends to
/// `raw`, so whatever partial line an interrupted call left behind is
/// completed by the retry, not discarded.
pub(crate) fn drive<R: BufRead, S: TraceSink>(
    mut reader: R,
    sink: S,
    mut parse_line: impl FnMut(&str, &mut TraceBuilder<S>) -> Result<bool, ParseErrorKind>,
) -> Result<(IngestStats, S), IngestError> {
    let mut builder = TraceBuilder::new(sink);
    let mut raw = String::new();
    loop {
        raw.clear();
        if retry_interrupted(|| reader.read_line(&mut raw))? == 0 {
            return Ok(builder.finish());
        }
        let line_no = builder.start_line(&raw);
        let line = raw.trim_end_matches(['\n', '\r']);
        match parse_line(line, &mut builder) {
            Ok(true) => {}
            Ok(false) => builder.skip_line(),
            Err(kind) => return Err(ParseError { line: line_no, kind }.into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn builder() -> TraceBuilder<SplitSink> {
        TraceBuilder::new(SplitSink::default())
    }

    fn finish(b: TraceBuilder<SplitSink>) -> Ingested {
        let (stats, sink) = b.finish();
        assemble(stats, sink)
    }

    #[test]
    fn format_detection_by_extension() {
        assert_eq!(LogFormat::for_path(Path::new("a/trace.csv")), LogFormat::Csv);
        assert_eq!(LogFormat::for_path(Path::new("a/trace.CSV")), LogFormat::Csv);
        assert_eq!(LogFormat::for_path(Path::new("a/trace.log")), LogFormat::Lackey);
        assert_eq!(LogFormat::for_path(Path::new("noext")), LogFormat::Lackey);
    }

    #[test]
    fn fetch_kind_reconstruction() {
        let mut b = builder();
        b.push(Op::Instr, 0x1000, 4); // first: sequential by convention
        b.push(Op::Instr, 0x1004, 4); // continues: sequential
        b.push(Op::Instr, 0x2000, 4); // jump: branch from 0x1004
        b.push(Op::Instr, 0x2004, 2);
        b.push(Op::Instr, 0x2006, 2); // 2-byte instr continues: sequential
        let t = finish(b).trace;
        assert!(matches!(t.fetch_events[0], TraceEvent::Fetch { kind: FetchKind::Sequential, .. }));
        assert!(matches!(t.fetch_events[1], TraceEvent::Fetch { kind: FetchKind::Sequential, .. }));
        assert!(matches!(
            t.fetch_events[2],
            TraceEvent::Fetch {
                pc: 0x2000,
                kind: FetchKind::TakenBranch { base: 0x1004, disp }
            } if disp == 0x2000 - 0x1004
        ));
        assert!(matches!(t.fetch_events[4], TraceEvent::Fetch { kind: FetchKind::Sequential, .. }));
        assert_eq!(t.cycles, 5);
    }

    #[test]
    fn data_only_logs_get_access_count_cycles() {
        let mut b = builder();
        b.push(Op::Load, 0x10, 4);
        b.push(Op::Modify, 0x20, 4);
        let ing = finish(b);
        assert_eq!(ing.trace.data_events.len(), 3);
        assert_eq!(ing.trace.cycles, 3);
    }

    #[test]
    fn addresses_truncate_to_32_bits() {
        let mut b = builder();
        b.push(Op::Load, 0x1234_5678_9abc_def0, 999);
        let t = finish(b).trace;
        assert_eq!(
            t.data_events[0],
            TraceEvent::Load { base: 0x9abc_def0, disp: 0, addr: 0x9abc_def0, size: u8::MAX }
        );
    }

    #[test]
    fn parse_dispatches_both_formats() {
        let lk = parse(LogFormat::Lackey, Cursor::new("I  1000,4\n")).unwrap();
        assert_eq!(lk.trace.fetch_events.len(), 1);
        let cv = parse(LogFormat::Csv, Cursor::new("L,0x1000,4\n")).unwrap();
        assert_eq!(cv.trace.data_events.len(), 1);
    }

    #[test]
    fn workload_id_uses_the_content_hash() {
        let ing = parse(LogFormat::Lackey, Cursor::new("I  1000,4\n")).unwrap();
        assert_eq!(ing.workload_id(), WorkloadId::External { hash: ing.source_hash });
    }

    #[test]
    fn parse_to_wmtr_matches_the_materializing_parse() {
        let log = "I  1000,4\n L 2000,8\nI  1004,4\n S 3000,4\n M 2000,4\n";
        let ing = parse(LogFormat::Lackey, Cursor::new(log)).unwrap();
        let dir = std::env::temp_dir()
            .join(format!("waymem-ingest-wmtr-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.wmtr");
        let stats = parse_to_wmtr(LogFormat::Lackey, Cursor::new(log), &path).unwrap();
        assert_eq!(stats.source_hash, ing.source_hash);
        assert_eq!(stats.workload_id(), ing.workload_id());
        assert_eq!((stats.lines, stats.skipped), (ing.lines, ing.skipped));
        assert_eq!(stats.events(), ing.trace.len() as u64);
        let st = waymem_trace::StreamingTrace::open(&path).unwrap();
        assert_eq!(st.source_hash(), ing.source_hash);
        assert_eq!(st.decode().unwrap(), ing.trace);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
