//! The simple CSV/text trace format.
//!
//! For traces that come out of custom tooling rather than valgrind, one
//! access per line:
//!
//! ```text
//! # comment lines and blanks are skipped
//! op,addr[,size]
//! ```
//!
//! * `op` — `I`/`F`/`fetch` (instruction fetch), `L`/`R`/`load`/`read`,
//!   `S`/`W`/`store`/`write`, `M`/`modify` (load + store); case-insensitive;
//! * `addr` — `0x`-prefixed hex or bare decimal;
//! * `size` — optional decimal byte count, default 4.
//!
//! Example:
//!
//! ```text
//! fetch,0x1000,4
//! load,0x20008
//! store,131084,8
//! ```
//!
//! As everywhere in this crate, a malformed line is a structured
//! [`ParseError`](crate::ParseError) with its 1-based line number, never
//! a panic and never a silently dropped access.

use std::io::BufRead;

use waymem_isa::TraceSink;

use crate::{assemble, drive, IngestError, IngestStats, Ingested, Op, ParseErrorKind, SplitSink};

fn parse_op(token: &str) -> Result<Op, ParseErrorKind> {
    // Case-insensitive, accepting both single letters and words.
    let t = token.trim();
    if t.eq_ignore_ascii_case("i") || t.eq_ignore_ascii_case("f") || t.eq_ignore_ascii_case("fetch")
    {
        Ok(Op::Instr)
    } else if t.eq_ignore_ascii_case("l")
        || t.eq_ignore_ascii_case("r")
        || t.eq_ignore_ascii_case("load")
        || t.eq_ignore_ascii_case("read")
    {
        Ok(Op::Load)
    } else if t.eq_ignore_ascii_case("s")
        || t.eq_ignore_ascii_case("w")
        || t.eq_ignore_ascii_case("store")
        || t.eq_ignore_ascii_case("write")
    {
        Ok(Op::Store)
    } else if t.eq_ignore_ascii_case("m") || t.eq_ignore_ascii_case("modify") {
        Ok(Op::Modify)
    } else {
        Err(ParseErrorKind::UnknownRecord(t.chars().take(16).collect()))
    }
}

fn parse_addr(token: &str) -> Result<u64, ParseErrorKind> {
    let t = token.trim();
    let bad = || ParseErrorKind::BadAddress(t.chars().take(16).collect());
    if t.is_empty() {
        return Err(bad());
    }
    if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).map_err(|_| bad())
    } else {
        t.parse().map_err(|_| bad())
    }
}

/// Parses the CSV trace format from `reader`, streaming line-by-line.
///
/// # Errors
///
/// [`IngestError::Io`] from the reader, or [`IngestError::Parse`] with
/// the 1-based line number on the first malformed line.
pub fn parse<R: BufRead>(reader: R) -> Result<Ingested, IngestError> {
    let (stats, sink) = parse_into(reader, SplitSink::default())?;
    Ok(assemble(stats, sink))
}

/// Parses the CSV trace format from `reader`, streaming each access
/// straight into `sink` without materializing a `Vec<TraceEvent>`.
///
/// # Errors
///
/// Same as [`parse`].
pub fn parse_into<R: BufRead, S: TraceSink>(
    reader: R,
    sink: S,
) -> Result<(IngestStats, S), IngestError> {
    drive(reader, sink, |line, builder| {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            return Ok(false);
        }
        let mut fields = trimmed.splitn(3, ',');
        let op = parse_op(fields.next().expect("splitn yields at least one field"))?;
        let addr = parse_addr(fields.next().ok_or(ParseErrorKind::MissingAddress)?)?;
        let size = match fields.next() {
            None => 4,
            Some(tok) => {
                let t = tok.trim();
                t.parse()
                    .map_err(|_| ParseErrorKind::BadSize(t.chars().take(16).collect()))?
            }
        };
        builder.push(op, addr, size);
        Ok(true)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ParseError, ParseErrorKind};
    use std::io::Cursor;
    use waymem_isa::TraceEvent;

    fn parse_str(s: &str) -> Result<Ingested, IngestError> {
        parse(Cursor::new(s.to_owned()))
    }

    /// A reader whose `read_line` fails with `Interrupted` before every
    /// line (see the sibling test in `lackey.rs`): the pump's retry must
    /// absorb the transient without miscounting or misparsing.
    struct InterruptingReader {
        inner: Cursor<String>,
        interrupt_next: bool,
    }

    impl std::io::Read for InterruptingReader {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            self.inner.read(buf)
        }
    }

    impl BufRead for InterruptingReader {
        fn fill_buf(&mut self) -> std::io::Result<&[u8]> {
            self.inner.fill_buf()
        }

        fn consume(&mut self, amt: usize) {
            self.inner.consume(amt);
        }

        fn read_line(&mut self, buf: &mut String) -> std::io::Result<usize> {
            self.interrupt_next = !self.interrupt_next;
            if self.interrupt_next {
                return Err(std::io::Error::new(std::io::ErrorKind::Interrupted, "EINTR"));
            }
            self.inner.read_line(buf)
        }
    }

    #[test]
    fn transient_interrupts_are_retried_not_errors() {
        let sample = "fetch,0x1000,4\nload,0x20008\nstore,131084,8\n";
        let interrupted = parse(InterruptingReader {
            inner: Cursor::new(sample.to_owned()),
            interrupt_next: false,
        })
        .expect("EINTR must be absorbed, not surfaced");
        let plain = parse_str(sample).expect("parses");
        assert_eq!(interrupted.trace, plain.trace);
        assert_eq!(interrupted.lines, plain.lines);
    }

    #[test]
    fn the_documented_grammar_parses() {
        let ing = parse_str(
            "# a comment\n\
             fetch,0x1000,4\n\
             load,0x20008\n\
             store,131084,8\n\
             M,0x20008,4\n",
        )
        .expect("parses");
        assert_eq!(ing.trace.fetch_events.len(), 1);
        assert_eq!(ing.trace.data_events.len(), 4);
        assert_eq!((ing.lines, ing.skipped), (5, 1));
        // Default size is 4; bare decimal addresses work.
        assert!(matches!(
            ing.trace.data_events[0],
            TraceEvent::Load { addr: 0x20008, size: 4, .. }
        ));
        assert!(matches!(
            ing.trace.data_events[1],
            TraceEvent::Store { addr: 131_084, size: 8, .. }
        ));
    }

    #[test]
    fn ops_are_case_insensitive_with_aliases() {
        for op in ["I", "i", "F", "fetch", "FETCH"] {
            let ing = parse_str(&format!("{op},0x10,4\n")).expect("parses");
            assert_eq!(ing.trace.fetch_events.len(), 1, "{op}");
        }
        for op in ["L", "r", "load", "READ"] {
            let ing = parse_str(&format!("{op},0x10,4\n")).expect("parses");
            assert!(matches!(ing.trace.data_events[0], TraceEvent::Load { .. }), "{op}");
        }
        for op in ["S", "w", "store", "Write"] {
            let ing = parse_str(&format!("{op},0x10,4\n")).expect("parses");
            assert!(matches!(ing.trace.data_events[0], TraceEvent::Store { .. }), "{op}");
        }
        let ing = parse_str("modify,0x10\n").expect("parses");
        assert_eq!(ing.trace.data_events.len(), 2);
    }

    #[test]
    fn every_malformation_is_a_structured_error() {
        let cases = [
            ("jump,0x10,4\n", 1, ParseErrorKind::UnknownRecord("jump".into())),
            ("L\n", 1, ParseErrorKind::MissingAddress),
            ("L,\n", 1, ParseErrorKind::BadAddress("".into())),
            ("L,0xzz,4\n", 1, ParseErrorKind::BadAddress("0xzz".into())),
            ("L,12a,4\n", 1, ParseErrorKind::BadAddress("12a".into())),
            ("L,0x10,big\n", 1, ParseErrorKind::BadSize("big".into())),
            ("L,0x10,4\nS,0x10,4,extra\n", 2, ParseErrorKind::BadSize("4,extra".into())),
        ];
        for (input, line, kind) in cases {
            match parse_str(input) {
                Err(IngestError::Parse(ParseError { line: l, kind: k })) => {
                    assert_eq!((l, &k), (line, &kind), "input {input:?}");
                }
                other => panic!("input {input:?}: expected parse error, got {other:?}"),
            }
        }
    }

    #[test]
    fn fetch_sequences_reconstruct_control_flow() {
        let ing = parse_str("I,0x1000,4\nI,0x1004,4\nI,0x2000,4\n").expect("parses");
        use waymem_isa::FetchKind;
        assert!(matches!(
            ing.trace.fetch_events[2],
            TraceEvent::Fetch { kind: FetchKind::TakenBranch { base: 0x1004, .. }, .. }
        ));
    }
}
