//! Parameterized synthetic access-pattern generators.
//!
//! The seven paper kernels cluster in a fairly friendly locality band —
//! blocked loops, small working sets. These generators fabricate
//! [`RecordedTrace`]s covering the regimes they miss, so the MAB (and
//! every ablation) can be measured where memoization is hostile, neutral
//! and ideal:
//!
//! * [`SynthPattern::Stream`] — pure sequential streaming, zero reuse:
//!   the worst case for any memoization structure;
//! * [`SynthPattern::Strided`] — fixed-stride walks over a wrapping
//!   1 MiB region: set-conflict traffic at a controllable rate;
//! * [`SynthPattern::PointerChase`] — a dependent chase over a shuffled
//!   node cycle (64 B apart): no spatial locality, perfect per-node
//!   temporal recurrence once the cycle wraps;
//! * [`SynthPattern::ZipfHotSet`] — a zipf-like skewed working set:
//!   ~90 % of accesses in a few hot lines, the rest scattered cold —
//!   the MAB's best case.
//!
//! Generation is **deterministic**: equal [`SynthSpec`]s produce
//! bit-identical traces (an xorshift32 stream seeded from the spec), so
//! the [`TraceStore`](waymem_trace::TraceStore) can cache them like any
//! other workload, keyed by the spec itself and fingerprinted by
//! [`source_hash`] (which folds in [`GENERATOR_VERSION`], so improving a
//! generator invalidates stale cached traces instead of replaying them).
//!
//! Every pattern drives its data stream from a modelled inner loop on
//! the fetch side — four sequential instructions then a backward branch
//! per access, the shape that dominates real kernels — so I-side schemes
//! see a realistic packet stream too.

use waymem_isa::RecordedTrace;
use waymem_trace::{fnv1a64, SynthPattern, SynthSpec, WorkloadId};

use crate::{Op, TraceBuilder};

/// Bumped whenever any generator's output changes for the same spec, so
/// cached traces from older generators read as stale, not current.
pub const GENERATOR_VERSION: u32 = 1;

/// Where the data region starts. Arbitrary but stable: changing it would
/// change every generated trace (and [`GENERATOR_VERSION`] would bump).
const DATA_BASE: u32 = 0x1000_0000;

/// Where the cold scatter region of [`SynthPattern::ZipfHotSet`] starts.
const COLD_BASE: u32 = 0x2000_0000;

/// The modelled inner loop sits here in the instruction space.
const LOOP_BASE: u32 = 0x0040_0000;

/// Instructions per modelled loop iteration (one data access each).
const LOOP_BODY: u32 = 4;

/// Pointer-chase node spacing: one 64-B line apart kills spatial reuse.
const NODE_STRIDE: u32 = 64;

/// Upper bound on pointer-chase cycle length, so a hostile spec cannot
/// demand an unbounded shuffle table (2^20 nodes ≈ 4 MiB of table).
const MAX_CHASE_NODES: u32 = 1 << 20;

/// The wrap region for strided walks: 1 MiB, comfortably larger than any
/// simulated cache.
const STRIDE_REGION: u32 = 1 << 20;

/// Deterministic xorshift32 — the same tiny RNG family the workload
/// generators use; private copy so this crate's output never shifts
/// under a neighbour's refactor.
struct XorShift32(u32);

impl XorShift32 {
    fn new(seed: u32) -> Self {
        // Zero is xorshift's fixed point; nudge it off.
        XorShift32(seed.max(1))
    }

    fn next(&mut self) -> u32 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        self.0 = x;
        x
    }

    fn below(&mut self, bound: u32) -> u32 {
        self.next() % bound.max(1)
    }
}

/// The spec's staleness fingerprint: FNV-1a64 over a canonical rendering
/// that folds in [`GENERATOR_VERSION`]. Stored in the `.wmtr` header so
/// a cache file produced by an older generator re-generates instead of
/// silently replaying.
#[must_use]
pub fn source_hash(spec: SynthSpec) -> u64 {
    let canonical = format!(
        "waymem-synth/v{GENERATOR_VERSION}/{}",
        WorkloadId::Synthetic(spec).file_name()
    );
    fnv1a64(canonical.as_bytes())
}

/// The four-pattern suite the `ingest` bench bin runs alongside any
/// ingested logs: one spec per locality regime, all at `accesses` data
/// accesses with a fixed seed (determinism across hosts).
#[must_use]
pub fn standard_suite(accesses: u32) -> Vec<SynthSpec> {
    [
        SynthPattern::Stream,
        SynthPattern::Strided { stride: 64 },
        SynthPattern::PointerChase { nodes: 4096 },
        SynthPattern::ZipfHotSet { hot_lines: 64 },
    ]
    .into_iter()
    .map(|pattern| SynthSpec { pattern, accesses, seed: 1 })
    .collect()
}

/// A single random cycle over `0..nodes` (Sattolo's algorithm): exactly
/// one orbit, so a chase visits every node before repeating.
fn chase_cycle(nodes: u32, rng: &mut XorShift32) -> Vec<u32> {
    let n = nodes.clamp(1, MAX_CHASE_NODES) as usize;
    let mut perm: Vec<u32> = (0..n as u32).collect();
    let mut i = n;
    while i > 1 {
        i -= 1;
        let j = rng.below(i as u32) as usize; // j < i: Sattolo, not Fisher-Yates
        perm.swap(i, j);
    }
    perm
}

/// Fabricates the trace a spec describes. Deterministic: equal specs
/// yield bit-identical traces. Memory scales with `spec.accesses`
/// (events are materialized, like any recorded trace).
#[must_use]
pub fn generate(spec: SynthSpec) -> RecordedTrace {
    let mut rng = XorShift32::new(spec.seed ^ 0x9e37_79b9);
    let mut builder = TraceBuilder::new();
    let mut chase = match spec.pattern {
        SynthPattern::PointerChase { nodes } => {
            let cycle = chase_cycle(nodes, &mut rng);
            Some((cycle, 0u32))
        }
        _ => None,
    };
    for i in 0..spec.accesses {
        // The modelled loop: LOOP_BODY sequential fetches; the next
        // iteration's first fetch is then inferred as the backward
        // branch, giving I-side schemes the recurrence real loops have.
        for k in 0..LOOP_BODY {
            builder.push(Op::Instr, u64::from(LOOP_BASE + 4 * k), 4);
        }
        let (op, addr) = match spec.pattern {
            SynthPattern::Stream => {
                // Streaming copy flavour: three sequential loads, then a
                // sequential store to a parallel output region.
                let addr = DATA_BASE.wrapping_add(4 * i);
                let op = if i % 4 == 3 { Op::Store } else { Op::Load };
                (op, addr)
            }
            SynthPattern::Strided { stride } => {
                let offset = (u64::from(i) * u64::from(stride.max(1))) % u64::from(STRIDE_REGION);
                (Op::Load, DATA_BASE + offset as u32)
            }
            SynthPattern::PointerChase { .. } => {
                let (cycle, cur) = chase.as_mut().expect("chase state initialized");
                let addr = DATA_BASE + *cur * NODE_STRIDE;
                *cur = cycle[*cur as usize];
                (Op::Load, addr)
            }
            SynthPattern::ZipfHotSet { hot_lines } => {
                let lines = hot_lines.max(1);
                if rng.below(10) < 9 {
                    // Hot: rank skewed toward line 0 (min of two uniform
                    // draws — a simple zipf-like bias), random word.
                    let rank = rng.below(lines).min(rng.below(lines));
                    let word = rng.below(8);
                    let op = if rng.below(8) == 0 { Op::Store } else { Op::Load };
                    (op, DATA_BASE + rank * 32 + word * 4)
                } else {
                    // Cold: uniform scatter over 4 MiB.
                    (Op::Load, COLD_BASE + rng.below(1 << 20) * 4)
                }
            }
        };
        builder.push(op, u64::from(addr), 4);
    }
    builder.finish().trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use waymem_isa::{FetchKind, TraceEvent};

    fn spec(pattern: SynthPattern) -> SynthSpec {
        SynthSpec { pattern, accesses: 1000, seed: 1 }
    }

    #[test]
    fn generation_is_deterministic() {
        for s in standard_suite(500) {
            assert_eq!(generate(s), generate(s), "{:?}", s.pattern);
        }
    }

    #[test]
    fn seeds_change_randomized_patterns() {
        let a = generate(SynthSpec { pattern: SynthPattern::ZipfHotSet { hot_lines: 64 }, accesses: 1000, seed: 1 });
        let b = generate(SynthSpec { pattern: SynthPattern::ZipfHotSet { hot_lines: 64 }, accesses: 1000, seed: 2 });
        assert_ne!(a, b);
    }

    #[test]
    fn every_pattern_produces_the_requested_accesses() {
        for s in standard_suite(1000) {
            let t = generate(s);
            assert_eq!(t.data_events.len(), 1000, "{:?}", s.pattern);
            assert_eq!(t.fetch_events.len(), 4000, "{:?}", s.pattern);
            assert_eq!(t.cycles, 4000, "{:?}", s.pattern);
        }
    }

    #[test]
    fn stream_is_sequential() {
        let t = generate(spec(SynthPattern::Stream));
        let addrs: Vec<u32> = t.data_events.iter().map(|e| e.primary_addr()).collect();
        assert!(addrs.windows(2).all(|w| w[1] == w[0] + 4));
    }

    #[test]
    fn strided_walk_wraps_the_region() {
        let t = generate(SynthSpec {
            pattern: SynthPattern::Strided { stride: STRIDE_REGION / 4 },
            accesses: 16,
            seed: 1,
        });
        let addrs: Vec<u32> = t.data_events.iter().map(|e| e.primary_addr()).collect();
        assert_eq!(addrs[0], DATA_BASE);
        assert_eq!(addrs[4], DATA_BASE, "stride of region/4 must wrap every 4 accesses");
        assert!(addrs.iter().all(|&a| a < DATA_BASE + STRIDE_REGION));
    }

    #[test]
    fn pointer_chase_visits_every_node_once_per_lap() {
        let nodes = 64;
        let t = generate(SynthSpec {
            pattern: SynthPattern::PointerChase { nodes },
            accesses: nodes * 2,
            seed: 3,
        });
        let addrs: Vec<u32> = t.data_events.iter().map(|e| e.primary_addr()).collect();
        let mut first_lap: Vec<u32> = addrs[..nodes as usize].to_vec();
        first_lap.sort_unstable();
        first_lap.dedup();
        assert_eq!(first_lap.len(), nodes as usize, "one full orbit before repeating");
        // Second lap repeats the first exactly (it is a cycle).
        assert_eq!(&addrs[..nodes as usize], &addrs[nodes as usize..]);
    }

    #[test]
    fn zipf_concentrates_in_the_hot_set() {
        let t = generate(spec(SynthPattern::ZipfHotSet { hot_lines: 64 }));
        let hot = t
            .data_events
            .iter()
            .filter(|e| e.primary_addr() < DATA_BASE + 64 * 32)
            .count();
        let frac = hot as f64 / t.data_events.len() as f64;
        assert!(frac > 0.8, "hot fraction {frac}");
        assert!(frac < 1.0, "some cold scatter must remain");
    }

    #[test]
    fn fetch_stream_models_a_loop() {
        let t = generate(spec(SynthPattern::Stream));
        // First iteration: all sequential. Second iteration opens with
        // the inferred backward branch from the loop's last instruction.
        assert!(matches!(t.fetch_events[0], TraceEvent::Fetch { kind: FetchKind::Sequential, .. }));
        assert!(matches!(
            t.fetch_events[4],
            TraceEvent::Fetch {
                pc,
                kind: FetchKind::TakenBranch { base, .. }
            } if pc == LOOP_BASE && base == LOOP_BASE + 4 * (LOOP_BODY - 1)
        ));
    }

    #[test]
    fn source_hash_distinguishes_specs_and_versions() {
        let a = source_hash(spec(SynthPattern::Stream));
        let b = source_hash(spec(SynthPattern::Strided { stride: 64 }));
        let c = source_hash(SynthSpec { pattern: SynthPattern::Stream, accesses: 1000, seed: 2 });
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, 0);
    }

    #[test]
    fn hostile_specs_stay_bounded() {
        // A huge node count clamps the shuffle table; the access count
        // still rules the trace size.
        let t = generate(SynthSpec {
            pattern: SynthPattern::PointerChase { nodes: u32::MAX },
            accesses: 10,
            seed: 1,
        });
        assert_eq!(t.data_events.len(), 10);
        let t = generate(SynthSpec {
            pattern: SynthPattern::Strided { stride: 0 },
            accesses: 10,
            seed: 1,
        });
        assert_eq!(t.data_events.len(), 10);
        let t = generate(SynthSpec {
            pattern: SynthPattern::ZipfHotSet { hot_lines: 0 },
            accesses: 10,
            seed: 1,
        });
        assert_eq!(t.data_events.len(), 10);
    }
}
