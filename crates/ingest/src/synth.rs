//! Parameterized synthetic access-pattern generators.
//!
//! The seven paper kernels cluster in a fairly friendly locality band —
//! blocked loops, small working sets. These generators fabricate
//! [`RecordedTrace`]s covering the regimes they miss, so the MAB (and
//! every ablation) can be measured where memoization is hostile, neutral
//! and ideal:
//!
//! * [`SynthPattern::Stream`] — pure sequential streaming, zero reuse:
//!   the worst case for any memoization structure;
//! * [`SynthPattern::Strided`] — fixed-stride walks over a wrapping
//!   1 MiB region: set-conflict traffic at a controllable rate;
//! * [`SynthPattern::PointerChase`] — a dependent chase over a shuffled
//!   node cycle (64 B apart): no spatial locality, perfect per-node
//!   temporal recurrence once the cycle wraps;
//! * [`SynthPattern::ZipfHotSet`] — a true zipf(α) skewed working set
//!   (alias-table sampled ranks, α exposed in centi-units): ~90 % of
//!   accesses in a few hot lines, the rest scattered cold — the MAB's
//!   best case;
//! * [`SynthPattern::PhaseChange`] — a hot set that *migrates* to a
//!   fresh region mid-trace, repeatedly: every migration cold-starts all
//!   memoized state at once, the regime sweeps between stable phases
//!   never show.
//! * [`SynthPattern::MultiLoop`] — execution rotates through many
//!   distinct inner loops at page-separated PC regions: one loop fits any
//!   I-MAB, dozens overflow its capacity — the I-side stress the shared
//!   single-loop fetch model cannot produce;
//! * [`SynthPattern::RwChase`] — a mixed read/write pointer chase: every
//!   visited node is read (next pointer) and written (payload word in the
//!   same line), the linked-list-update regime where stores recur over
//!   lines loads just touched.
//!
//! Generation is **deterministic**: equal [`SynthSpec`]s produce
//! bit-identical traces on a given host (an xorshift32 stream seeded
//! from the spec; integer arithmetic throughout, except the zipf alias
//! table whose weights go through libm `powf` once per trace), so the
//! [`TraceStore`](waymem_trace::TraceStore) can cache them like any
//! other workload, keyed by the spec itself and fingerprinted by
//! [`source_hash`] (which folds in [`GENERATOR_VERSION`] — so improving
//! a generator invalidates stale cached traces instead of replaying
//! them — and, for zipf specs, [`powf_fingerprint`], so cache dirs
//! shared between hosts with disagreeing libm re-generate rather than
//! silently replay).
//!
//! Every pattern drives its data stream from a modelled inner loop on
//! the fetch side — four sequential instructions then a backward branch
//! per access, the shape that dominates real kernels — so I-side schemes
//! see a realistic packet stream too.

use waymem_isa::{RecordedTrace, TraceSink};
use waymem_trace::{fnv1a64, SynthPattern, SynthSpec, WorkloadId};

use crate::{assemble, IngestStats, Op, SplitSink, TraceBuilder};

/// Bumped whenever any generator's output changes for the same spec, so
/// cached traces from older generators read as stale, not current.
/// v2: true alias-table zipf(α) sampling replaced the min-of-two-uniforms
/// skew hack, and the phase-change pattern joined the family.
pub const GENERATOR_VERSION: u32 = 2;

/// Where the data region starts. Arbitrary but stable: changing it would
/// change every generated trace (and [`GENERATOR_VERSION`] would bump).
const DATA_BASE: u32 = 0x1000_0000;

/// Where the cold scatter region of [`SynthPattern::ZipfHotSet`] starts.
const COLD_BASE: u32 = 0x2000_0000;

/// The modelled inner loop sits here in the instruction space.
const LOOP_BASE: u32 = 0x0040_0000;

/// Instructions per modelled loop iteration (one data access each).
const LOOP_BODY: u32 = 4;

/// Pointer-chase node spacing: one 64-B line apart kills spatial reuse.
const NODE_STRIDE: u32 = 64;

/// Upper bound on pointer-chase cycle length, so a hostile spec cannot
/// demand an unbounded shuffle table (2^20 nodes ≈ 4 MiB of table).
const MAX_CHASE_NODES: u32 = 1 << 20;

/// Upper bound on hot-set size for the zipf and phase-change patterns:
/// bounds the alias table and keeps `rank * 32` addressing inside u32.
const MAX_HOT_LINES: u32 = 1 << 20;

/// Distance between consecutive phase regions of
/// [`SynthPattern::PhaseChange`]: 1 MiB apart, so a migrated hot set
/// shares no lines (and in general no sets) with its predecessor.
const PHASE_STRIDE: u32 = 1 << 20;

/// Upper bound on phase count: `DATA_BASE + 255 · PHASE_STRIDE` plus a
/// full phase-sized hot set still sits below `COLD_BASE`, so no phase's
/// hot region can ever alias the cold-scatter window (or wrap).
const MAX_PHASES: u32 = 255;

/// Upper bound on a phase's hot-set size: one full [`PHASE_STRIDE`] of
/// 32-byte lines, so consecutive phase regions never overlap each other.
const MAX_PHASE_HOT_LINES: u32 = PHASE_STRIDE / 32;

/// The wrap region for strided walks: 1 MiB, comfortably larger than any
/// simulated cache.
const STRIDE_REGION: u32 = 1 << 20;

/// Distance between consecutive loop regions of
/// [`SynthPattern::MultiLoop`]: one 4 KiB page apart, so distinct loops
/// never share a cache line (and spread across sets).
const MLOOP_STRIDE: u32 = 4096;

/// Upper bound on [`SynthPattern::MultiLoop`] loop count: 4096 regions ×
/// [`MLOOP_STRIDE`] stays comfortably below [`DATA_BASE`], so the
/// instruction footprint never aliases the data region.
const MAX_LOOPS: u32 = 1 << 12;

/// Byte offset of the payload word a [`SynthPattern::RwChase`] store
/// writes within a visited node's line (the "next" pointer being read
/// sits at offset 0; both land in the same 64-B line).
const RW_PAYLOAD_OFFSET: u32 = 8;

/// Deterministic xorshift32 — the same tiny RNG family the workload
/// generators use; private copy so this crate's output never shifts
/// under a neighbour's refactor.
struct XorShift32(u32);

impl XorShift32 {
    fn new(seed: u32) -> Self {
        // Zero is xorshift's fixed point; nudge it off.
        XorShift32(seed.max(1))
    }

    fn next(&mut self) -> u32 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        self.0 = x;
        x
    }

    fn below(&mut self, bound: u32) -> u32 {
        self.next() % bound.max(1)
    }
}

/// The spec's staleness fingerprint: FNV-1a64 over a canonical rendering
/// that folds in [`GENERATOR_VERSION`]. Stored in the `.wmtr` header so
/// a cache file produced by an older generator re-generates instead of
/// silently replaying.
///
/// Zipf specs additionally fold in [`powf_fingerprint`]: their alias
/// table derives from libm `powf`, which is not guaranteed to round
/// identically across platforms, so a cache dir copied between hosts
/// whose libm disagrees reads as stale and re-generates instead of
/// silently replaying a trace the local generator would not reproduce.
#[must_use]
pub fn source_hash(spec: SynthSpec) -> u64 {
    let libm = match spec.pattern {
        SynthPattern::ZipfHotSet { .. } => powf_fingerprint(),
        _ => 0,
    };
    let canonical = format!(
        "waymem-synth/v{GENERATOR_VERSION}/l{libm:016x}/{}",
        WorkloadId::Synthetic(spec).file_name()
    );
    fnv1a64(canonical.as_bytes())
}

/// A fingerprint of this host's `f64::powf` rounding behaviour: the
/// FNV-1a64 of the result bits at a grid of probe points spanning the
/// zipf weight computation's domain ((k+1) bases, −α exponents).
/// Memoized for the process lifetime. Two hosts whose libm agrees on
/// the probes almost surely agree on every weight; ones that differ get
/// different zipf [`source_hash`]es and never share cached traces.
#[must_use]
pub fn powf_fingerprint() -> u64 {
    use std::sync::OnceLock;
    static FP: OnceLock<u64> = OnceLock::new();
    *FP.get_or_init(|| {
        let mut hash = waymem_trace::FNV1A64_SEED;
        for base in [2.0f64, 3.0, 5.0, 17.0, 1023.0, 65537.0, 1048576.0] {
            for alpha in [0.01f64, 0.37, 0.99, 1.0, 1.73, 2.41, 13.0, 99.0] {
                hash = waymem_trace::fnv1a64_update(
                    hash,
                    &base.powf(-alpha).to_bits().to_le_bytes(),
                );
            }
        }
        hash
    })
}

/// The seven-pattern suite the `ingest` bench bin runs alongside any
/// ingested logs: one spec per locality regime, all at `accesses` data
/// accesses with a fixed seed (deterministic per host; the zipf row's
/// cross-host caching is guarded by [`powf_fingerprint`]).
#[must_use]
pub fn standard_suite(accesses: u32) -> Vec<SynthSpec> {
    [
        SynthPattern::Stream,
        SynthPattern::Strided { stride: 64 },
        SynthPattern::PointerChase { nodes: 4096 },
        SynthPattern::ZipfHotSet { hot_lines: 64, alpha_centi: 100 },
        SynthPattern::PhaseChange { hot_lines: 64, phases: 4 },
        SynthPattern::MultiLoop { loops: 64, period: 4 },
        SynthPattern::RwChase { nodes: 4096 },
    ]
    .into_iter()
    .map(|pattern| SynthSpec { pattern, accesses, seed: 1 })
    .collect()
}

/// A Walker/Vose alias table over the zipf(α) rank distribution
/// p(k) ∝ 1/(k+1)^α for `n` ranks: O(n) to build, then O(1) *pure
/// integer* sampling — two RNG draws and one threshold compare — so the
/// f64 work happens once per trace, not once per access. Thresholds are
/// fixed-point (scaled to 2³²), making the sample path bit-deterministic
/// for a given table.
struct ZipfAlias {
    /// Per-slot acceptance threshold, scaled so 2³² = "always accept".
    threshold: Vec<u64>,
    /// The rank drawn when the slot's threshold rejects.
    alias: Vec<u32>,
}

impl ZipfAlias {
    /// Builds the table for `n` ranks (clamped to ≥ 1) at α =
    /// `alpha_centi` / 100. α = 0 degenerates to uniform.
    fn new(n: u32, alpha_centi: u32) -> Self {
        let n = n.max(1) as usize;
        let alpha = f64::from(alpha_centi) / 100.0;
        let weights: Vec<f64> = (0..n).map(|k| ((k + 1) as f64).powf(-alpha)).collect();
        let total: f64 = weights.iter().sum();
        // Vose's method: scale every probability by n (mean 1.0), pair
        // each under-full slot with an over-full donor.
        let mut scaled: Vec<f64> = weights.iter().map(|w| w / total * n as f64).collect();
        let mut small: Vec<usize> = Vec::new();
        let mut large: Vec<usize> = Vec::new();
        for (k, &s) in scaled.iter().enumerate() {
            if s < 1.0 {
                small.push(k);
            } else {
                large.push(k);
            }
        }
        let mut threshold = vec![1u64 << 32; n];
        let mut alias: Vec<u32> = (0..n as u32).collect();
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            threshold[s] = (scaled[s] * (1u64 << 32) as f64) as u64;
            alias[s] = l as u32;
            scaled[l] -= 1.0 - scaled[s];
            if scaled[l] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Slots left on either stack are exactly full (modulo rounding):
        // they keep the always-accept threshold.
        ZipfAlias { threshold, alias }
    }

    /// Draws one rank in `0..n`; rank 0 is the hottest.
    fn sample(&self, rng: &mut XorShift32) -> u32 {
        let slot = rng.below(self.threshold.len() as u32) as usize;
        if u64::from(rng.next()) < self.threshold[slot] {
            slot as u32
        } else {
            self.alias[slot]
        }
    }
}

/// A single random cycle over `0..nodes` (Sattolo's algorithm): exactly
/// one orbit, so a chase visits every node before repeating.
fn chase_cycle(nodes: u32, rng: &mut XorShift32) -> Vec<u32> {
    let n = nodes.clamp(1, MAX_CHASE_NODES) as usize;
    let mut perm: Vec<u32> = (0..n as u32).collect();
    let mut i = n;
    while i > 1 {
        i -= 1;
        let j = rng.below(i as u32) as usize; // j < i: Sattolo, not Fisher-Yates
        perm.swap(i, j);
    }
    perm
}

/// Fabricates the trace a spec describes. Deterministic: equal specs
/// yield bit-identical traces. Memory scales with `spec.accesses`
/// (events are materialized, like any recorded trace).
#[must_use]
pub fn generate(spec: SynthSpec) -> RecordedTrace {
    let (stats, sink) = generate_into(spec, SplitSink::default());
    assemble(stats, sink).trace
}

/// Fabricates the trace a spec describes, streaming every event straight
/// into `sink` — the bounded-memory path: with a
/// [`StreamingEncoder`](waymem_trace::StreamingEncoder) sink an
/// arbitrarily long synthetic trace costs O(1) resident memory. Same
/// deterministic event stream as [`generate`].
pub fn generate_into<S: TraceSink>(spec: SynthSpec, sink: S) -> (IngestStats, S) {
    let mut rng = XorShift32::new(spec.seed ^ 0x9e37_79b9);
    let mut builder = TraceBuilder::new(sink);
    let mut chase = match spec.pattern {
        SynthPattern::PointerChase { nodes } | SynthPattern::RwChase { nodes } => {
            let cycle = chase_cycle(nodes, &mut rng);
            Some((cycle, 0u32))
        }
        _ => None,
    };
    // The node the most recent RwChase load visited; the following store
    // writes its payload word (same 64-B line).
    let mut rw_visited = 0u32;
    let zipf = match spec.pattern {
        SynthPattern::ZipfHotSet { hot_lines, alpha_centi } => {
            Some(ZipfAlias::new(hot_lines.min(MAX_HOT_LINES), alpha_centi))
        }
        _ => None,
    };
    for i in 0..spec.accesses {
        // The modelled loop: LOOP_BODY sequential fetches; the next
        // iteration's first fetch is then inferred as the backward
        // branch, giving I-side schemes the recurrence real loops have.
        // MultiLoop rotates the loop's PC region round-robin, so the
        // region switch is inferred as a cross-region taken branch.
        let loop_base = match spec.pattern {
            SynthPattern::MultiLoop { loops, period } => {
                let idx = (i / period.max(1)) % loops.clamp(1, MAX_LOOPS);
                LOOP_BASE + idx * MLOOP_STRIDE
            }
            _ => LOOP_BASE,
        };
        for k in 0..LOOP_BODY {
            builder.push(Op::Instr, u64::from(loop_base + 4 * k), 4);
        }
        let (op, addr) = match spec.pattern {
            SynthPattern::Stream => {
                // Streaming copy flavour: three sequential loads, then a
                // sequential store to a parallel output region.
                let addr = DATA_BASE.wrapping_add(4 * i);
                let op = if i % 4 == 3 { Op::Store } else { Op::Load };
                (op, addr)
            }
            SynthPattern::Strided { stride } => {
                let offset = (u64::from(i) * u64::from(stride.max(1))) % u64::from(STRIDE_REGION);
                (Op::Load, DATA_BASE + offset as u32)
            }
            SynthPattern::PointerChase { .. } => {
                let (cycle, cur) = chase.as_mut().expect("chase state initialized");
                let addr = DATA_BASE + *cur * NODE_STRIDE;
                *cur = cycle[*cur as usize];
                (Op::Load, addr)
            }
            SynthPattern::RwChase { .. } => {
                // Visit = one load of the node's next pointer, then one
                // store to its payload word: alternating accesses chase
                // the same cycle at half speed with a 50/50 read/write
                // mix, every store recurring over the line the preceding
                // load just touched.
                let (cycle, cur) = chase.as_mut().expect("chase state initialized");
                if i % 2 == 0 {
                    rw_visited = *cur;
                    let addr = DATA_BASE + *cur * NODE_STRIDE;
                    *cur = cycle[*cur as usize];
                    (Op::Load, addr)
                } else {
                    (Op::Store, DATA_BASE + rw_visited * NODE_STRIDE + RW_PAYLOAD_OFFSET)
                }
            }
            SynthPattern::MultiLoop { .. } => {
                // The data side stays neutral — a pure sequential read
                // stream — so the rotating instruction footprint is the
                // only variable under test.
                (Op::Load, DATA_BASE.wrapping_add(4 * i))
            }
            SynthPattern::ZipfHotSet { .. } => {
                if rng.below(10) < 9 {
                    // Hot: true zipf(α) rank via the alias table (rank 0
                    // hottest), random word within the line.
                    let rank = zipf.as_ref().expect("zipf table initialized").sample(&mut rng);
                    let word = rng.below(8);
                    let op = if rng.below(8) == 0 { Op::Store } else { Op::Load };
                    (op, DATA_BASE + rank * 32 + word * 4)
                } else {
                    // Cold: uniform scatter over 4 MiB.
                    (Op::Load, COLD_BASE + rng.below(1 << 20) * 4)
                }
            }
            SynthPattern::PhaseChange { hot_lines, phases } => {
                // The hot set migrates to a fresh 1 MiB-apart region at
                // each phase boundary; within a phase it behaves like a
                // uniform hot set (the migration, not the skew, is the
                // regime under test). Both knobs are clamped so phase
                // regions can neither overlap each other nor reach the
                // cold-scatter window.
                let lines = hot_lines.clamp(1, MAX_PHASE_HOT_LINES);
                let phase_len = spec.accesses.div_ceil(phases.clamp(1, MAX_PHASES)).max(1);
                let base = DATA_BASE + (i / phase_len).min(MAX_PHASES - 1) * PHASE_STRIDE;
                if rng.below(10) < 9 {
                    let rank = rng.below(lines);
                    let word = rng.below(8);
                    let op = if rng.below(8) == 0 { Op::Store } else { Op::Load };
                    (op, base.wrapping_add(rank * 32 + word * 4))
                } else {
                    (Op::Load, COLD_BASE + rng.below(1 << 20) * 4)
                }
            }
        };
        builder.push(op, u64::from(addr), 4);
    }
    builder.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use waymem_isa::{FetchKind, TraceEvent};

    fn spec(pattern: SynthPattern) -> SynthSpec {
        SynthSpec { pattern, accesses: 1000, seed: 1 }
    }

    #[test]
    fn generation_is_deterministic() {
        for s in standard_suite(500) {
            assert_eq!(generate(s), generate(s), "{:?}", s.pattern);
        }
    }

    const ZIPF64: SynthPattern = SynthPattern::ZipfHotSet { hot_lines: 64, alpha_centi: 100 };

    #[test]
    fn seeds_change_randomized_patterns() {
        let a = generate(SynthSpec { pattern: ZIPF64, accesses: 1000, seed: 1 });
        let b = generate(SynthSpec { pattern: ZIPF64, accesses: 1000, seed: 2 });
        assert_ne!(a, b);
    }

    #[test]
    fn every_pattern_produces_the_requested_accesses() {
        for s in standard_suite(1000) {
            let t = generate(s);
            assert_eq!(t.data_events.len(), 1000, "{:?}", s.pattern);
            assert_eq!(t.fetch_events.len(), 4000, "{:?}", s.pattern);
            assert_eq!(t.cycles, 4000, "{:?}", s.pattern);
        }
    }

    #[test]
    fn stream_is_sequential() {
        let t = generate(spec(SynthPattern::Stream));
        let addrs: Vec<u32> = t.data_events.iter().map(|e| e.primary_addr()).collect();
        assert!(addrs.windows(2).all(|w| w[1] == w[0] + 4));
    }

    #[test]
    fn strided_walk_wraps_the_region() {
        let t = generate(SynthSpec {
            pattern: SynthPattern::Strided { stride: STRIDE_REGION / 4 },
            accesses: 16,
            seed: 1,
        });
        let addrs: Vec<u32> = t.data_events.iter().map(|e| e.primary_addr()).collect();
        assert_eq!(addrs[0], DATA_BASE);
        assert_eq!(addrs[4], DATA_BASE, "stride of region/4 must wrap every 4 accesses");
        assert!(addrs.iter().all(|&a| a < DATA_BASE + STRIDE_REGION));
    }

    #[test]
    fn pointer_chase_visits_every_node_once_per_lap() {
        let nodes = 64;
        let t = generate(SynthSpec {
            pattern: SynthPattern::PointerChase { nodes },
            accesses: nodes * 2,
            seed: 3,
        });
        let addrs: Vec<u32> = t.data_events.iter().map(|e| e.primary_addr()).collect();
        let mut first_lap: Vec<u32> = addrs[..nodes as usize].to_vec();
        first_lap.sort_unstable();
        first_lap.dedup();
        assert_eq!(first_lap.len(), nodes as usize, "one full orbit before repeating");
        // Second lap repeats the first exactly (it is a cycle).
        assert_eq!(&addrs[..nodes as usize], &addrs[nodes as usize..]);
    }

    #[test]
    fn zipf_concentrates_in_the_hot_set() {
        let t = generate(spec(ZIPF64));
        let hot = t
            .data_events
            .iter()
            .filter(|e| e.primary_addr() < DATA_BASE + 64 * 32)
            .count();
        let frac = hot as f64 / t.data_events.len() as f64;
        assert!(frac > 0.8, "hot fraction {frac}");
        assert!(frac < 1.0, "some cold scatter must remain");
    }

    #[test]
    fn zipf_alias_matches_the_analytic_distribution() {
        // Sample the alias table heavily and compare per-rank frequencies
        // against p(k) ∝ 1/(k+1)^α — the property the min-of-two-uniforms
        // hack failed.
        let (n, alpha_centi, draws) = (8u32, 100u32, 200_000u32);
        let table = ZipfAlias::new(n, alpha_centi);
        let mut counts = vec![0u64; n as usize];
        let mut rng = XorShift32::new(42);
        for _ in 0..draws {
            counts[table.sample(&mut rng) as usize] += 1;
        }
        let harmonic: f64 = (1..=n).map(|k| 1.0 / f64::from(k)).sum();
        for (k, &c) in counts.iter().enumerate() {
            let expect = 1.0 / (k as f64 + 1.0) / harmonic;
            let got = c as f64 / f64::from(draws);
            assert!(
                (got - expect).abs() < 0.01,
                "rank {k}: got {got:.4}, expected {expect:.4}"
            );
        }
    }

    #[test]
    fn zipf_alpha_controls_the_skew() {
        // Higher α concentrates more probability on rank 0; α = 0 is
        // uniform.
        let hot_share = |alpha_centi: u32| {
            let table = ZipfAlias::new(64, alpha_centi);
            let mut rng = XorShift32::new(7);
            let hits = (0..100_000).filter(|_| table.sample(&mut rng) == 0).count();
            hits as f64 / 100_000.0
        };
        let uniform = hot_share(0);
        let classic = hot_share(100);
        let steep = hot_share(200);
        assert!((uniform - 1.0 / 64.0).abs() < 0.005, "α=0 must be uniform, got {uniform}");
        assert!(classic > 2.0 * uniform, "α=1 skews to rank 0 ({classic} vs {uniform})");
        assert!(steep > classic, "α=2 skews harder ({steep} vs {classic})");
    }

    #[test]
    fn alpha_changes_the_generated_trace_and_its_hash() {
        let a = SynthSpec { pattern: ZIPF64, accesses: 1000, seed: 1 };
        let b = SynthSpec {
            pattern: SynthPattern::ZipfHotSet { hot_lines: 64, alpha_centi: 200 },
            accesses: 1000,
            seed: 1,
        };
        assert_ne!(generate(a), generate(b));
        assert_ne!(source_hash(a), source_hash(b));
    }

    #[test]
    fn phase_change_migrates_the_hot_set() {
        let accesses = 4000;
        let t = generate(SynthSpec {
            pattern: SynthPattern::PhaseChange { hot_lines: 64, phases: 4 },
            accesses,
            seed: 1,
        });
        // Each quarter's hot accesses must land in its own 1 MiB region.
        let phase_len = accesses as usize / 4;
        for phase in 0..4u32 {
            let base = DATA_BASE + phase * PHASE_STRIDE;
            let events = &t.data_events[phase as usize * phase_len..][..phase_len];
            let in_region = events
                .iter()
                .filter(|e| {
                    let a = e.primary_addr();
                    a >= base && a < base + 64 * 32
                })
                .count();
            let frac = in_region as f64 / phase_len as f64;
            assert!(frac > 0.8, "phase {phase}: hot fraction {frac}");
        }
        // And phase 1's hot region must be untouched during phase 0.
        let phase1_base = DATA_BASE + PHASE_STRIDE;
        assert!(
            t.data_events[..phase_len].iter().all(|e| {
                let a = e.primary_addr();
                a < phase1_base || a >= phase1_base + 64 * 32
            }),
            "phase 0 must not touch phase 1's hot set"
        );
    }

    #[test]
    fn multi_loop_rotates_page_separated_regions() {
        let (loops, period) = (8u32, 4u32);
        let t = generate(SynthSpec {
            pattern: SynthPattern::MultiLoop { loops, period },
            accesses: loops * period * 2, // two full rotations
            seed: 1,
        });
        // Every loop region is visited, each page-aligned relative to
        // LOOP_BASE, and the rotation switches exactly every `period`
        // iterations (LOOP_BODY fetches per iteration).
        let bases: Vec<u32> = t
            .fetch_events
            .iter()
            .map(|e| match e {
                TraceEvent::Fetch { pc, .. } => pc & !(MLOOP_STRIDE - 1),
                other => panic!("non-fetch in fetch stream: {other:?}"),
            })
            .collect();
        let mut distinct: Vec<u32> = bases.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(distinct.len(), loops as usize, "all {loops} regions visited");
        for (n, base) in bases.chunks((period * LOOP_BODY) as usize).enumerate() {
            let expect = LOOP_BASE + (n as u32 % loops) * MLOOP_STRIDE;
            assert!(base.iter().all(|&b| b == expect), "chunk {n} stays in its region");
        }
        // One loop degenerates to the shared single-loop model.
        let single = generate(SynthSpec {
            pattern: SynthPattern::MultiLoop { loops: 1, period },
            accesses: 100,
            seed: 1,
        });
        assert!(single.fetch_events.iter().all(|e| match e {
            TraceEvent::Fetch { pc, .. } => (LOOP_BASE..LOOP_BASE + 4 * LOOP_BODY).contains(pc),
            _ => false,
        }));
    }

    #[test]
    fn rw_chase_alternates_loads_and_stores_over_the_same_nodes() {
        let nodes = 64u32;
        let t = generate(SynthSpec {
            pattern: SynthPattern::RwChase { nodes },
            accesses: nodes * 4, // two full laps at two accesses per visit
            seed: 3,
        });
        let mut visited: Vec<u32> = Vec::new();
        for pair in t.data_events.chunks(2) {
            let (load, store) = (&pair[0], &pair[1]);
            assert!(matches!(load, TraceEvent::Load { .. }), "even access is the pointer read");
            assert!(matches!(store, TraceEvent::Store { .. }), "odd access is the payload write");
            // The store lands RW_PAYLOAD_OFFSET into the line the load
            // just read — same node, same 64-B line.
            assert_eq!(store.primary_addr(), load.primary_addr() + RW_PAYLOAD_OFFSET);
            visited.push((load.primary_addr() - DATA_BASE) / NODE_STRIDE);
        }
        let mut lap: Vec<u32> = visited[..nodes as usize].to_vec();
        lap.sort_unstable();
        lap.dedup();
        assert_eq!(lap.len(), nodes as usize, "one full orbit before repeating");
        assert_eq!(&visited[..nodes as usize], &visited[nodes as usize..]);
    }

    #[test]
    fn fetch_stream_models_a_loop() {
        let t = generate(spec(SynthPattern::Stream));
        // First iteration: all sequential. Second iteration opens with
        // the inferred backward branch from the loop's last instruction.
        assert!(matches!(t.fetch_events[0], TraceEvent::Fetch { kind: FetchKind::Sequential, .. }));
        assert!(matches!(
            t.fetch_events[4],
            TraceEvent::Fetch {
                pc,
                kind: FetchKind::TakenBranch { base, .. }
            } if pc == LOOP_BASE && base == LOOP_BASE + 4 * (LOOP_BODY - 1)
        ));
    }

    #[test]
    fn powf_fingerprint_is_stable_and_folded_into_zipf_hashes_only() {
        assert_eq!(powf_fingerprint(), powf_fingerprint());
        assert_ne!(powf_fingerprint(), 0);
        // Only zipf specs depend on powf; the integer-only generators'
        // hashes must not vary with the host's libm.
        let stream = spec(SynthPattern::Stream);
        let canonical = format!(
            "waymem-synth/v{GENERATOR_VERSION}/l{:016x}/{}",
            0,
            WorkloadId::Synthetic(stream).file_name()
        );
        assert_eq!(source_hash(stream), fnv1a64(canonical.as_bytes()));
    }

    #[test]
    fn source_hash_distinguishes_specs_and_versions() {
        let a = source_hash(spec(SynthPattern::Stream));
        let b = source_hash(spec(SynthPattern::Strided { stride: 64 }));
        let c = source_hash(SynthSpec { pattern: SynthPattern::Stream, accesses: 1000, seed: 2 });
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, 0);
    }

    #[test]
    fn hostile_specs_stay_bounded() {
        // A huge node count clamps the shuffle table; the access count
        // still rules the trace size.
        let t = generate(SynthSpec {
            pattern: SynthPattern::PointerChase { nodes: u32::MAX },
            accesses: 10,
            seed: 1,
        });
        assert_eq!(t.data_events.len(), 10);
        let t = generate(SynthSpec {
            pattern: SynthPattern::Strided { stride: 0 },
            accesses: 10,
            seed: 1,
        });
        assert_eq!(t.data_events.len(), 10);
        let t = generate(SynthSpec {
            pattern: SynthPattern::ZipfHotSet { hot_lines: 0, alpha_centi: u32::MAX },
            accesses: 10,
            seed: 1,
        });
        assert_eq!(t.data_events.len(), 10);
        // A huge hot set clamps the alias table; a huge phase count
        // degenerates to one migration per access — neither panics.
        let t = generate(SynthSpec {
            pattern: SynthPattern::ZipfHotSet { hot_lines: u32::MAX, alpha_centi: 100 },
            accesses: 10,
            seed: 1,
        });
        assert_eq!(t.data_events.len(), 10);
        let t = generate(SynthSpec {
            pattern: SynthPattern::PhaseChange { hot_lines: u32::MAX, phases: u32::MAX },
            accesses: 10,
            seed: 1,
        });
        assert_eq!(t.data_events.len(), 10);
        let t = generate(SynthSpec {
            pattern: SynthPattern::PhaseChange { hot_lines: 0, phases: 0 },
            accesses: 10,
            seed: 1,
        });
        assert_eq!(t.data_events.len(), 10);
        // A huge loop count clamps to MAX_LOOPS regions inside the
        // instruction space; a zero period rotates every iteration.
        let t = generate(SynthSpec {
            pattern: SynthPattern::MultiLoop { loops: u32::MAX, period: 0 },
            accesses: 10,
            seed: 1,
        });
        assert_eq!(t.data_events.len(), 10);
        assert!(t.fetch_events.iter().all(|e| match e {
            TraceEvent::Fetch { pc, .. } => *pc < DATA_BASE,
            _ => false,
        }));
        for nodes in [0, u32::MAX] {
            let t = generate(SynthSpec {
                pattern: SynthPattern::RwChase { nodes },
                accesses: 10,
                seed: 1,
            });
            assert_eq!(t.data_events.len(), 10);
        }
    }
}
