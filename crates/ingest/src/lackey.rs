//! The Valgrind Lackey `--trace-mem=yes` format.
//!
//! Capturing a real program's memory trace is one command:
//!
//! ```text
//! valgrind --tool=lackey --trace-mem=yes --log-file=prog.log ./prog
//! ```
//!
//! The log is line-oriented; each access line is a record letter, an
//! address in bare hex, a comma and a decimal size:
//!
//! ```text
//! I  0023C790,2        instruction fetch
//!  L 0025747C,4        data load
//!  S BE80199C,4        data store
//!  M 0025747C,1        modify (load + store at the address)
//! ```
//!
//! (Instruction lines start in column 0, memory lines are indented — the
//! parser accepts either indentation.) Valgrind interleaves its own
//! chatter into the same stream: `==pid==` / `--pid--` banner lines and
//! blanks are *skipped*, not errors, so a raw `--log-file` capture parses
//! without preprocessing. Anything else is a structured
//! [`ParseError`](crate::ParseError) with its line number — a garbled
//! access line never silently drops an access.

use std::io::BufRead;

use waymem_isa::TraceSink;

use crate::{assemble, drive, IngestError, IngestStats, Ingested, Op, ParseErrorKind, SplitSink};

/// Parses one access line already known not to be a banner/blank.
/// Returns the op, address and size.
fn parse_access(line: &str) -> Result<(Op, u64, u64), ParseErrorKind> {
    let trimmed = line.trim_start();
    let mut chars = trimmed.chars();
    let letter = chars.next().expect("caller skips blank lines");
    let op = match letter {
        'I' => Op::Instr,
        'L' => Op::Load,
        'S' => Op::Store,
        'M' => Op::Modify,
        other => {
            // Report the whole first token, not just its first char —
            // "Instruction" vs "I" garbling reads very differently.
            let token: String = trimmed.split_whitespace().next().unwrap_or_default().chars().take(16).collect();
            let _ = other;
            return Err(ParseErrorKind::UnknownRecord(token));
        }
    };
    let rest = chars.as_str().trim_start();
    if rest.is_empty() {
        return Err(ParseErrorKind::MissingAddress);
    }
    let (addr_part, size_part) = rest.split_once(',').ok_or(ParseErrorKind::MissingSize)?;
    let addr_part = addr_part.trim();
    let addr = u64::from_str_radix(addr_part, 16)
        .map_err(|_| ParseErrorKind::BadAddress(addr_part.chars().take(16).collect()))?;
    let size_part = size_part.trim();
    let size: u64 = size_part
        .parse()
        .map_err(|_| ParseErrorKind::BadSize(size_part.chars().take(16).collect()))?;
    Ok((op, addr, size))
}

/// Parses a Lackey log from `reader`, streaming line-by-line.
///
/// # Errors
///
/// [`IngestError::Io`] from the reader, or [`IngestError::Parse`] with
/// the 1-based line number on the first malformed access line.
pub fn parse<R: BufRead>(reader: R) -> Result<Ingested, IngestError> {
    let (stats, sink) = parse_into(reader, SplitSink::default())?;
    Ok(assemble(stats, sink))
}

/// Parses a Lackey log from `reader`, streaming each access straight into
/// `sink` — the bounded-memory path: with a
/// [`StreamingEncoder`](waymem_trace::StreamingEncoder) sink nothing is
/// ever materialized.
///
/// # Errors
///
/// Same as [`parse`].
pub fn parse_into<R: BufRead, S: TraceSink>(
    reader: R,
    sink: S,
) -> Result<(IngestStats, S), IngestError> {
    drive(reader, sink, |line, builder| {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with("==") || trimmed.starts_with("--") {
            return Ok(false); // valgrind banner / blank: skipped
        }
        let (op, addr, size) = parse_access(line)?;
        builder.push(op, addr, size);
        Ok(true)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ParseError, ParseErrorKind};
    use std::io::Cursor;
    use waymem_isa::TraceEvent;

    fn parse_str(s: &str) -> Result<Ingested, IngestError> {
        parse(Cursor::new(s.to_owned()))
    }

    /// A reader whose `read_line` fails with `Interrupted` before every
    /// line — the transient `EINTR` shape the shared line pump must
    /// retry in place rather than surface as a malformed-input error.
    struct InterruptingReader {
        inner: Cursor<String>,
        interrupt_next: bool,
    }

    impl std::io::Read for InterruptingReader {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            self.inner.read(buf)
        }
    }

    impl BufRead for InterruptingReader {
        fn fill_buf(&mut self) -> std::io::Result<&[u8]> {
            self.inner.fill_buf()
        }

        fn consume(&mut self, amt: usize) {
            self.inner.consume(amt);
        }

        fn read_line(&mut self, buf: &mut String) -> std::io::Result<usize> {
            self.interrupt_next = !self.interrupt_next;
            if self.interrupt_next {
                return Err(std::io::Error::new(std::io::ErrorKind::Interrupted, "EINTR"));
            }
            self.inner.read_line(buf)
        }
    }

    #[test]
    fn transient_interrupts_are_retried_not_errors() {
        let sample = "I  0023C790,2\n L 0025747C,4\n S BE80199C,4\n";
        let interrupted = parse(InterruptingReader {
            inner: Cursor::new(sample.to_owned()),
            interrupt_next: false,
        })
        .expect("EINTR must be absorbed, not surfaced");
        let plain = parse_str(sample).expect("parses");
        assert_eq!(interrupted.trace, plain.trace);
        assert_eq!(interrupted.lines, plain.lines);
    }

    #[test]
    fn the_documented_sample_parses() {
        let ing = parse_str("I  0023C790,2\n L 0025747C,4\n S BE80199C,4\n M 0025747C,1\n")
            .expect("parses");
        assert_eq!(ing.trace.fetch_events.len(), 1);
        assert_eq!(ing.trace.data_events.len(), 4);
        assert_eq!(ing.lines, 4);
        assert_eq!(ing.skipped, 0);
        assert!(matches!(ing.trace.data_events[0], TraceEvent::Load { addr: 0x0025_747C, .. }));
        assert!(matches!(ing.trace.data_events[1], TraceEvent::Store { addr: 0xBE80_199C, .. }));
        // M expands to load-then-store.
        assert!(matches!(ing.trace.data_events[2], TraceEvent::Load { addr: 0x0025_747C, .. }));
        assert!(matches!(ing.trace.data_events[3], TraceEvent::Store { addr: 0x0025_747C, .. }));
    }

    #[test]
    fn banners_and_blanks_are_skipped_not_errors() {
        let ing = parse_str(
            "==12345== Memcheck is not in use\n\
             --12345-- some verbose chatter\n\
             \n\
             I  1000,4\n",
        )
        .expect("parses");
        assert_eq!(ing.trace.fetch_events.len(), 1);
        assert_eq!((ing.lines, ing.skipped), (4, 3));
    }

    #[test]
    fn missing_newline_on_last_line_is_fine() {
        let ing = parse_str("I  1000,4").expect("parses");
        assert_eq!(ing.trace.fetch_events.len(), 1);
    }

    #[test]
    fn crlf_lines_parse() {
        let ing = parse_str("I  1000,4\r\n L 2000,8\r\n").expect("parses");
        assert_eq!(ing.trace.len(), 2);
    }

    #[test]
    fn every_malformation_is_a_structured_error() {
        let cases = [
            ("X  1000,4\n", 1, ParseErrorKind::UnknownRecord("X".into())),
            ("I  1000,4\nQ 2000,4\n", 2, ParseErrorKind::UnknownRecord("Q".into())),
            ("I\n", 1, ParseErrorKind::MissingAddress),
            ("I  1000\n", 1, ParseErrorKind::MissingSize),
            ("I  zzzz,4\n", 1, ParseErrorKind::BadAddress("zzzz".into())),
            ("I  ,4\n", 1, ParseErrorKind::BadAddress("".into())),
            ("I  1000,\n", 1, ParseErrorKind::BadSize("".into())),
            ("I  1000,four\n", 1, ParseErrorKind::BadSize("four".into())),
            ("I  1000,-3\n", 1, ParseErrorKind::BadSize("-3".into())),
        ];
        for (input, line, kind) in cases {
            match parse_str(input) {
                Err(IngestError::Parse(ParseError { line: l, kind: k })) => {
                    assert_eq!((l, &k), (line, &kind), "input {input:?}");
                }
                other => panic!("input {input:?}: expected parse error, got {other:?}"),
            }
        }
    }

    #[test]
    fn error_messages_name_the_line() {
        let err = parse_str("I  1000,4\nbogus\n").unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn identical_logs_hash_identically_and_edits_change_it() {
        let a = parse_str("I  1000,4\n L 2000,4\n").unwrap();
        let b = parse_str("I  1000,4\n L 2000,4\n").unwrap();
        let c = parse_str("I  1000,4\n L 2004,4\n").unwrap();
        assert_eq!(a.source_hash, b.source_hash);
        assert_ne!(a.source_hash, c.source_hash);
    }

    #[test]
    fn empty_input_yields_empty_trace() {
        let ing = parse_str("").expect("parses");
        assert!(ing.trace.is_empty());
        assert_eq!(ing.trace.cycles, 0);
    }
}
