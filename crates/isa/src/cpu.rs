use std::error::Error;
use std::fmt;

use waymem_cache::MainMemory;

use crate::inst::{AluImmOp, AluOp, MemWidth};
use crate::{FetchKind, Inst, Program, Reg, TraceSink, STACK_TOP};

/// Execution error raised by [`Cpu::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuError {
    /// The word at `pc` does not decode to an instruction.
    IllegalInstruction {
        /// Faulting PC.
        pc: u32,
        /// The undecodable word.
        word: u32,
    },
    /// A load/store address was not aligned to its access size.
    MisalignedAccess {
        /// PC of the memory instruction.
        pc: u32,
        /// The effective address.
        addr: u32,
        /// Access size in bytes.
        size: u8,
    },
}

impl fmt::Display for CpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            CpuError::IllegalInstruction { pc, word } => {
                write!(f, "illegal instruction {word:#010x} at pc {pc:#010x}")
            }
            CpuError::MisalignedAccess { pc, addr, size } => write!(
                f,
                "misaligned {size}-byte access to {addr:#010x} at pc {pc:#010x}"
            ),
        }
    }
}

impl Error for CpuError {}

/// Why [`Cpu::run`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The program executed `halt`.
    Halted {
        /// Instructions retired in this `run` call.
        steps: u64,
    },
    /// The step budget was exhausted before `halt`.
    StepLimit {
        /// Instructions retired in this `run` call (= the budget).
        steps: u64,
    },
}

impl RunOutcome {
    /// `true` when the program halted normally.
    #[must_use]
    pub fn halted(&self) -> bool {
        matches!(self, RunOutcome::Halted { .. })
    }
}

/// The frv-lite interpreter.
///
/// Executes one instruction per [`step`](Self::step), reporting fetches and
/// data accesses to a [`TraceSink`]. Register 0 reads as zero and ignores
/// writes; `div`/`rem` by zero follow the RISC-V convention (all-ones /
/// dividend) instead of trapping, so workloads never fault on data.
///
/// ```
/// use waymem_isa::{assemble, Cpu, NullSink};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let prog = assemble(".text\nmain: li a0, 7\n addi a0, a0, 1\n halt\n")?;
/// let mut cpu = Cpu::new(&prog);
/// let out = cpu.run(100, &mut NullSink)?;
/// assert!(out.halted());
/// assert_eq!(cpu.reg(10), 8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Cpu {
    regs: [u32; 32],
    pc: u32,
    mem: MainMemory,
    instret: u64,
    halted: bool,
    next_fetch_kind: FetchKind,
}

impl Cpu {
    /// Creates a CPU with `prog` loaded, PC at the entry point and the
    /// stack pointer at [`STACK_TOP`].
    #[must_use]
    pub fn new(prog: &Program) -> Self {
        let mut mem = MainMemory::new();
        prog.load_into(&mut mem);
        let mut regs = [0u32; 32];
        regs[Reg::SP.index()] = STACK_TOP;
        Self {
            regs,
            pc: prog.entry(),
            mem,
            instret: 0,
            halted: false,
            next_fetch_kind: FetchKind::Sequential,
        }
    }

    /// Current program counter.
    #[must_use]
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Reads register `index` (0 always returns 0).
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    #[must_use]
    pub fn reg(&self, index: usize) -> u32 {
        self.regs[index]
    }

    /// Writes register `index`; writes to register 0 are ignored.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    pub fn set_reg(&mut self, index: usize, value: u32) {
        if index != 0 {
            self.regs[index] = value;
        }
    }

    /// Instructions retired so far.
    #[must_use]
    pub fn instret(&self) -> u64 {
        self.instret
    }

    /// Whether the CPU has executed `halt`.
    #[must_use]
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// The CPU's memory.
    #[must_use]
    pub fn mem(&self) -> &MainMemory {
        &self.mem
    }

    /// Mutable access to the CPU's memory (test setup, I/O injection).
    pub fn mem_mut(&mut self) -> &mut MainMemory {
        &mut self.mem
    }

    fn rd(&self, r: Reg) -> u32 {
        self.regs[r.index()]
    }

    fn wr(&mut self, r: Reg, v: u32) {
        if r != Reg::ZERO {
            self.regs[r.index()] = v;
        }
    }

    /// Executes one instruction, reporting events to `sink`.
    ///
    /// Returns `Ok(true)` while running and `Ok(false)` once halted (a
    /// halted CPU stays halted and emits nothing).
    ///
    /// # Errors
    ///
    /// [`CpuError::IllegalInstruction`] on an undecodable word,
    /// [`CpuError::MisalignedAccess`] on unaligned data access.
    pub fn step(&mut self, sink: &mut impl TraceSink) -> Result<bool, CpuError> {
        if self.halted {
            return Ok(false);
        }
        let pc = self.pc;
        let word = self.mem.read_u32(pc);
        let kind = self.next_fetch_kind;
        sink.fetch(pc, kind);
        let inst = Inst::decode(word).ok_or(CpuError::IllegalInstruction { pc, word })?;

        let mut next_pc = pc.wrapping_add(4);
        let mut next_kind = FetchKind::Sequential;

        match inst {
            Inst::Alu { op, rd, rs1, rs2 } => {
                let a = self.rd(rs1);
                let b = self.rd(rs2);
                let v = alu(op, a, b);
                self.wr(rd, v);
            }
            Inst::AluImm { op, rd, rs1, imm } => {
                let a = self.rd(rs1);
                let v = alu_imm(op, a, imm);
                self.wr(rd, v);
            }
            Inst::Lui { rd, imm } => self.wr(rd, u32::from(imm) << 16),
            Inst::Load {
                width,
                signed,
                rd,
                rs1,
                imm,
            } => {
                let base = self.rd(rs1);
                let disp = i32::from(imm);
                let addr = base.wrapping_add(disp as u32);
                let size = width.bytes();
                check_align(pc, addr, size)?;
                sink.load(base, disp, addr, size);
                let v = match (width, signed) {
                    (MemWidth::Byte, false) => u32::from(self.mem.read_u8(addr)),
                    (MemWidth::Byte, true) => self.mem.read_u8(addr) as i8 as i32 as u32,
                    (MemWidth::Half, false) => u32::from(self.mem.read_u16(addr)),
                    (MemWidth::Half, true) => self.mem.read_u16(addr) as i16 as i32 as u32,
                    (MemWidth::Word, _) => self.mem.read_u32(addr),
                };
                self.wr(rd, v);
            }
            Inst::Store {
                width,
                rs2,
                rs1,
                imm,
            } => {
                let base = self.rd(rs1);
                let disp = i32::from(imm);
                let addr = base.wrapping_add(disp as u32);
                let size = width.bytes();
                check_align(pc, addr, size)?;
                sink.store(base, disp, addr, size);
                let v = self.rd(rs2);
                match width {
                    MemWidth::Byte => self.mem.write_u8(addr, v as u8),
                    MemWidth::Half => self.mem.write_u16(addr, v as u16),
                    MemWidth::Word => self.mem.write_u32(addr, v),
                }
            }
            Inst::Branch {
                cond,
                rs1,
                rs2,
                offset,
            } => {
                if cond.eval(self.rd(rs1), self.rd(rs2)) {
                    next_pc = pc.wrapping_add(offset as i32 as u32);
                    next_kind = FetchKind::TakenBranch {
                        base: pc,
                        disp: i32::from(offset),
                    };
                }
            }
            Inst::Jal { rd, offset } => {
                self.wr(rd, pc.wrapping_add(4));
                next_pc = pc.wrapping_add(offset as i32 as u32);
                next_kind = FetchKind::TakenBranch {
                    base: pc,
                    disp: i32::from(offset),
                };
            }
            Inst::Jalr { rd, rs1, imm } => {
                let base = self.rd(rs1);
                let target = base.wrapping_add(i32::from(imm) as u32) & !3;
                self.wr(rd, pc.wrapping_add(4));
                next_pc = target;
                next_kind = if rs1 == Reg::RA && imm == 0 {
                    FetchKind::LinkReturn { target }
                } else {
                    FetchKind::Indirect {
                        base,
                        disp: i32::from(imm),
                    }
                };
            }
            Inst::Halt => {
                self.halted = true;
                return Ok(false);
            }
        }

        self.instret += 1;
        self.pc = next_pc;
        self.next_fetch_kind = next_kind;
        Ok(true)
    }

    /// Runs until `halt` or until `max_steps` instructions retire.
    ///
    /// # Errors
    ///
    /// Propagates the first [`CpuError`] raised by [`step`](Self::step).
    pub fn run(
        &mut self,
        max_steps: u64,
        sink: &mut impl TraceSink,
    ) -> Result<RunOutcome, CpuError> {
        let mut steps = 0;
        while steps < max_steps {
            if !self.step(sink)? {
                return Ok(RunOutcome::Halted { steps });
            }
            steps += 1;
        }
        Ok(RunOutcome::StepLimit { steps })
    }
}

fn alu(op: AluOp, a: u32, b: u32) -> u32 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Sll => a.wrapping_shl(b & 31),
        AluOp::Srl => a.wrapping_shr(b & 31),
        AluOp::Sra => ((a as i32).wrapping_shr(b & 31)) as u32,
        AluOp::Slt => u32::from((a as i32) < (b as i32)),
        AluOp::Sltu => u32::from(a < b),
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Mulhu => ((u64::from(a) * u64::from(b)) >> 32) as u32,
        AluOp::Div => {
            if b == 0 {
                u32::MAX
            } else if a == 0x8000_0000 && b == u32::MAX {
                a // overflow: i32::MIN / -1 = i32::MIN per RISC-V
            } else {
                ((a as i32).wrapping_div(b as i32)) as u32
            }
        }
        AluOp::Rem => {
            if b == 0 {
                a
            } else if a == 0x8000_0000 && b == u32::MAX {
                0
            } else {
                ((a as i32).wrapping_rem(b as i32)) as u32
            }
        }
    }
}

fn alu_imm(op: AluImmOp, a: u32, imm: i16) -> u32 {
    let simm = i32::from(imm) as u32;
    // Logical immediates zero-extend (MIPS convention) so `li rd, imm32`
    // can expand to `lui` + `ori` without the low half smearing the top.
    let zimm = u32::from(imm as u16);
    match op {
        AluImmOp::Addi => a.wrapping_add(simm),
        AluImmOp::Andi => a & zimm,
        AluImmOp::Ori => a | zimm,
        AluImmOp::Xori => a ^ zimm,
        AluImmOp::Slti => u32::from((a as i32) < i32::from(imm)),
        AluImmOp::Slli => a.wrapping_shl(simm & 31),
        AluImmOp::Srli => a.wrapping_shr(simm & 31),
        AluImmOp::Srai => ((a as i32).wrapping_shr(simm & 31)) as u32,
    }
}

fn check_align(pc: u32, addr: u32, size: u8) -> Result<(), CpuError> {
    if !addr.is_multiple_of(u32::from(size)) {
        Err(CpuError::MisalignedAccess { pc, addr, size })
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NullSink, RecordingSink, TraceEvent, DATA_BASE, TEXT_BASE};

    fn run_asm(src: &str) -> Cpu {
        let prog = crate::assemble(src).expect("assembles");
        let mut cpu = Cpu::new(&prog);
        cpu.run(1_000_000, &mut NullSink).expect("runs");
        assert!(cpu.is_halted(), "program must halt");
        cpu
    }

    #[test]
    fn arithmetic_and_logic() {
        let cpu = run_asm(
            r#"
            .text
main:   li   t0, 6
        li   t1, 7
        mul  t2, t0, t1
        add  t3, t0, t1
        sub  t4, t0, t1
        and  t5, t0, t1
        or   t6, t0, t1
        halt
        "#,
        );
        assert_eq!(cpu.reg(7), 42); // t2
        assert_eq!(cpu.reg(28), 13); // t3
        assert_eq!(cpu.reg(29), -1i32 as u32); // t4
        assert_eq!(cpu.reg(30), 6); // t5
        assert_eq!(cpu.reg(31), 7); // t6
    }

    #[test]
    fn division_semantics() {
        let cpu = run_asm(
            r#"
            .text
main:   li   t0, -20
        li   t1, 6
        div  t2, t0, t1
        rem  t3, t0, t1
        li   t4, 0
        div  t5, t0, t4      # div by zero -> all ones
        rem  t6, t0, t4      # rem by zero -> dividend
        halt
        "#,
        );
        assert_eq!(cpu.reg(7) as i32, -3);
        assert_eq!(cpu.reg(28) as i32, -2);
        assert_eq!(cpu.reg(30), u32::MAX);
        assert_eq!(cpu.reg(31) as i32, -20);
    }

    #[test]
    fn loads_and_stores_round_trip() {
        let cpu = run_asm(
            r#"
            .data
buf:    .space 64
            .text
main:   la   t0, buf
        li   t1, 0x1234
        sw   t1, 0(t0)
        lw   t2, 0(t0)
        sh   t1, 8(t0)
        lhu  t3, 8(t0)
        sb   t1, 12(t0)
        lbu  t4, 12(t0)
        li   t5, -1
        sb   t5, 16(t0)
        lb   t6, 16(t0)
        halt
        "#,
        );
        assert_eq!(cpu.reg(7), 0x1234);
        assert_eq!(cpu.reg(28), 0x1234);
        assert_eq!(cpu.reg(29), 0x34);
        assert_eq!(cpu.reg(31), u32::MAX); // sign-extended -1
    }

    #[test]
    fn call_and_return_emit_link_events() {
        let prog = crate::assemble(
            r#"
            .text
main:   call  leaf
        halt
leaf:   li    a0, 99
        ret
        "#,
        )
        .unwrap();
        let mut cpu = Cpu::new(&prog);
        let mut sink = RecordingSink::default();
        cpu.run(100, &mut sink).unwrap();
        assert_eq!(cpu.reg(10), 99);
        let fetches: Vec<_> = sink
            .events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Fetch { pc, kind } => Some((*pc, *kind)),
                _ => None,
            })
            .collect();
        // main(call) -> leaf(li) via TakenBranch, leaf+4(ret), back via LinkReturn.
        assert!(matches!(fetches[1].1, FetchKind::TakenBranch { .. }));
        let ret_target = fetches.last().unwrap();
        assert!(matches!(ret_target.1, FetchKind::LinkReturn { .. }));
        assert_eq!(ret_target.0, TEXT_BASE + 4, "returns to after the call");
    }

    #[test]
    fn loop_branches_report_base_and_disp() {
        let prog = crate::assemble(
            r#"
            .text
main:   li   t0, 3
loop:   addi t0, t0, -1
        bnez t0, loop
        halt
        "#,
        )
        .unwrap();
        let mut cpu = Cpu::new(&prog);
        let mut sink = RecordingSink::default();
        cpu.run(100, &mut sink).unwrap();
        let taken: Vec<_> = sink
            .events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Fetch {
                    kind: FetchKind::TakenBranch { base, disp },
                    ..
                } => Some((*base, *disp)),
                _ => None,
            })
            .collect();
        assert_eq!(taken.len(), 2, "branch taken twice (t0: 2, 1)");
        for (base, disp) in taken {
            // `loop` sits one instruction (the one-word li) past TEXT_BASE.
            assert_eq!(base.wrapping_add(disp as u32), TEXT_BASE + 4);
            assert!(disp < 0);
        }
    }

    #[test]
    fn load_event_carries_base_and_disp() {
        let prog = crate::assemble(
            r#"
            .data
v:      .word 5
            .text
main:   la  t0, v
        lw  t1, 0(t0)
        halt
        "#,
        )
        .unwrap();
        let mut cpu = Cpu::new(&prog);
        let mut sink = RecordingSink::default();
        cpu.run(100, &mut sink).unwrap();
        let loads: Vec<_> = sink
            .events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Load {
                    base,
                    disp,
                    addr,
                    size,
                } => Some((*base, *disp, *addr, *size)),
                _ => None,
            })
            .collect();
        assert_eq!(loads, vec![(DATA_BASE, 0, DATA_BASE, 4)]);
        assert_eq!(cpu.reg(6), 5);
    }

    #[test]
    fn misaligned_word_access_faults() {
        let prog = Program::from_insts(&[
            Inst::AluImm {
                op: AluImmOp::Addi,
                rd: Reg::new(5).unwrap(),
                rs1: Reg::ZERO,
                imm: 2,
            },
            Inst::Load {
                width: MemWidth::Word,
                signed: true,
                rd: Reg::new(6).unwrap(),
                rs1: Reg::new(5).unwrap(),
                imm: 0,
            },
        ]);
        let mut cpu = Cpu::new(&prog);
        let err = cpu.run(10, &mut NullSink).unwrap_err();
        assert!(matches!(
            err,
            CpuError::MisalignedAccess { addr: 2, size: 4, .. }
        ));
    }

    #[test]
    fn illegal_instruction_faults_with_pc() {
        let prog = Program::from_parts(
            TEXT_BASE,
            vec![0xdead_beef],
            DATA_BASE,
            vec![],
            TEXT_BASE,
            Default::default(),
        );
        let mut cpu = Cpu::new(&prog);
        let err = cpu.step(&mut NullSink).unwrap_err();
        assert_eq!(
            err,
            CpuError::IllegalInstruction {
                pc: TEXT_BASE,
                word: 0xdead_beef
            }
        );
    }

    #[test]
    fn register_zero_is_immutable() {
        let cpu = run_asm(".text\nmain: li t0, 5\n add zero, t0, t0\n halt\n");
        assert_eq!(cpu.reg(0), 0);
    }

    #[test]
    fn halted_cpu_stays_halted() {
        let prog = Program::from_insts(&[Inst::Halt]);
        let mut cpu = Cpu::new(&prog);
        assert!(!cpu.step(&mut NullSink).unwrap());
        assert!(!cpu.step(&mut NullSink).unwrap());
        assert_eq!(cpu.instret(), 0, "halt itself does not retire");
    }

    #[test]
    fn step_limit_reported() {
        let prog = crate::assemble(".text\nmain: j main\n").unwrap();
        let mut cpu = Cpu::new(&prog);
        let out = cpu.run(50, &mut NullSink).unwrap();
        assert_eq!(out, RunOutcome::StepLimit { steps: 50 });
        assert!(!out.halted());
    }

    #[test]
    fn recursion_uses_stack() {
        // fib(10) via naive recursion exercises call/ret + stack traffic.
        let cpu = run_asm(
            r#"
            .text
main:   li   a0, 10
        call fib
        halt
fib:    li   t0, 2
        blt  a0, t0, base
        addi sp, sp, -12
        sw   ra, 0(sp)
        sw   a0, 4(sp)
        addi a0, a0, -1
        call fib
        sw   a0, 8(sp)       # fib(n-1)
        lw   a0, 4(sp)
        addi a0, a0, -2
        call fib
        lw   t1, 8(sp)
        add  a0, a0, t1
        lw   ra, 0(sp)
        addi sp, sp, 12
        ret
base:   ret
        "#,
        );
        assert_eq!(cpu.reg(10), 55);
    }
}
