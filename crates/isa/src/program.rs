use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use waymem_cache::MainMemory;

use crate::Inst;

/// Default base address of the text (code) segment.
pub const TEXT_BASE: u32 = 0x0001_0000;
/// Default base address of the data segment.
pub const DATA_BASE: u32 = 0x0004_0000;
/// Initial stack pointer (stack grows down).
pub const STACK_TOP: u32 = 0x000f_ff00;

/// An assembled frv-lite program: encoded text, initialized data, the entry
/// point and the symbol table.
///
/// ```
/// use waymem_isa::{assemble, TEXT_BASE};
///
/// # fn main() -> Result<(), waymem_isa::AsmError> {
/// let prog = assemble(".text\nmain: halt\n");
/// let prog = prog?;
/// assert_eq!(prog.entry(), TEXT_BASE);
/// assert_eq!(prog.symbol("main"), Some(TEXT_BASE));
/// assert_eq!(prog.text().len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Program {
    text_base: u32,
    text: Vec<u32>,
    data_base: u32,
    data: Vec<u8>,
    entry: u32,
    symbols: BTreeMap<String, u32>,
}

impl Program {
    /// Assembles the pieces into a program. Intended for the assembler and
    /// for tests that build programs from [`Inst`] lists directly.
    #[must_use]
    pub fn from_parts(
        text_base: u32,
        text: Vec<u32>,
        data_base: u32,
        data: Vec<u8>,
        entry: u32,
        symbols: BTreeMap<String, u32>,
    ) -> Self {
        Self {
            text_base,
            text,
            data_base,
            data,
            entry,
            symbols,
        }
    }

    /// Builds a minimal program from decoded instructions at
    /// [`TEXT_BASE`], entering at the first one. Handy in unit tests.
    #[must_use]
    pub fn from_insts(insts: &[Inst]) -> Self {
        Self::from_parts(
            TEXT_BASE,
            insts.iter().map(|i| i.encode()).collect(),
            DATA_BASE,
            Vec::new(),
            TEXT_BASE,
            BTreeMap::new(),
        )
    }

    /// Base address of the text segment.
    #[must_use]
    pub fn text_base(&self) -> u32 {
        self.text_base
    }

    /// Encoded instruction words.
    #[must_use]
    pub fn text(&self) -> &[u32] {
        &self.text
    }

    /// Base address of the data segment.
    #[must_use]
    pub fn data_base(&self) -> u32 {
        self.data_base
    }

    /// Initialized data bytes.
    #[must_use]
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Entry point (address of `main` when defined, else the text base).
    #[must_use]
    pub fn entry(&self) -> u32 {
        self.entry
    }

    /// Looks up a label's address.
    #[must_use]
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.symbols.get(name).copied()
    }

    /// All symbols, sorted by name.
    #[must_use]
    pub fn symbols(&self) -> &BTreeMap<String, u32> {
        &self.symbols
    }

    /// Size of the text segment in bytes.
    #[must_use]
    pub fn text_bytes(&self) -> u32 {
        (self.text.len() * 4) as u32
    }

    /// Loads text and data into `mem` at their base addresses.
    pub fn load_into(&self, mem: &mut MainMemory) {
        for (i, &word) in self.text.iter().enumerate() {
            mem.write_u32(self.text_base.wrapping_add((i * 4) as u32), word);
        }
        mem.load_image(self.data_base, &self.data);
    }

    /// Disassembles the text segment as `(address, instruction-or-word)`
    /// lines, for debugging workloads.
    #[must_use]
    pub fn disassemble(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let by_addr: BTreeMap<u32, &str> = self
            .symbols
            .iter()
            .map(|(name, &addr)| (addr, name.as_str()))
            .collect();
        for (i, &word) in self.text.iter().enumerate() {
            let addr = self.text_base + (i * 4) as u32;
            if let Some(name) = by_addr.get(&addr) {
                let _ = writeln!(out, "{name}:");
            }
            match Inst::decode(word) {
                Some(inst) => {
                    let _ = writeln!(out, "  {addr:#010x}: {inst}");
                }
                None => {
                    let _ = writeln!(out, "  {addr:#010x}: .word {word:#010x}");
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Reg;

    #[test]
    fn from_insts_round_trips_through_memory() {
        let prog = Program::from_insts(&[
            Inst::AluImm {
                op: crate::AluImmOp::Addi,
                rd: Reg::new(5).unwrap(),
                rs1: Reg::ZERO,
                imm: 42,
            },
            Inst::Halt,
        ]);
        let mut mem = MainMemory::new();
        prog.load_into(&mut mem);
        let w0 = mem.read_u32(TEXT_BASE);
        assert!(matches!(
            Inst::decode(w0),
            Some(Inst::AluImm { imm: 42, .. })
        ));
        assert_eq!(Inst::decode(mem.read_u32(TEXT_BASE + 4)), Some(Inst::Halt));
    }

    #[test]
    fn disassembly_contains_labels_and_mnemonics() {
        let mut symbols = BTreeMap::new();
        symbols.insert("main".to_owned(), TEXT_BASE);
        let prog = Program::from_parts(
            TEXT_BASE,
            vec![Inst::Halt.encode(), 0],
            DATA_BASE,
            vec![],
            TEXT_BASE,
            symbols,
        );
        let dis = prog.disassemble();
        assert!(dis.contains("main:"));
        assert!(dis.contains("halt"));
        assert!(dis.contains(".word"));
    }

    #[test]
    fn data_lands_at_data_base() {
        let prog = Program::from_parts(
            TEXT_BASE,
            vec![],
            DATA_BASE,
            vec![1, 2, 3],
            TEXT_BASE,
            BTreeMap::new(),
        );
        let mut mem = MainMemory::new();
        prog.load_into(&mut mem);
        assert_eq!(mem.read_u8(DATA_BASE + 2), 3);
        assert_eq!(prog.text_bytes(), 0);
    }
}
