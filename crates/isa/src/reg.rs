use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// One of the 32 general-purpose registers of frv-lite.
///
/// Register 0 is hard-wired to zero; register 1 is the link register (`ra`)
/// used by `call`/`ret`, which the I-MAB treats as its "link target" input
/// source. The ABI names follow the familiar RISC convention so the
/// assembly kernels read naturally.
///
/// ```
/// use waymem_isa::Reg;
///
/// assert_eq!("ra".parse::<Reg>().unwrap(), Reg::RA);
/// assert_eq!("x7".parse::<Reg>().unwrap().index(), 7);
/// assert_eq!(Reg::new(10).unwrap().to_string(), "a0");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Reg(u8);

impl Reg {
    /// The hard-wired zero register.
    pub const ZERO: Reg = Reg(0);
    /// The link (return address) register.
    pub const RA: Reg = Reg(1);
    /// The stack pointer.
    pub const SP: Reg = Reg(2);

    /// Creates a register from its index.
    #[must_use]
    pub fn new(index: u8) -> Option<Self> {
        (index < 32).then_some(Reg(index))
    }

    /// The register index, 0–31.
    #[must_use]
    pub fn index(self) -> usize {
        usize::from(self.0)
    }
}

const ABI_NAMES: [&str; 32] = [
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3", "a4",
    "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11", "t3", "t4",
    "t5", "t6",
];

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(ABI_NAMES[self.index()])
    }
}

/// Error parsing a register name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRegError(pub(crate) String);

impl fmt::Display for ParseRegError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown register name `{}`", self.0)
    }
}

impl std::error::Error for ParseRegError {}

impl FromStr for Reg {
    type Err = ParseRegError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some(pos) = ABI_NAMES.iter().position(|&n| n == s) {
            return Ok(Reg(pos as u8));
        }
        if let Some(num) = s.strip_prefix('x') {
            if let Ok(i) = num.parse::<u8>() {
                if i < 32 {
                    return Ok(Reg(i));
                }
            }
        }
        // s0 is also known as fp.
        if s == "fp" {
            return Ok(Reg(8));
        }
        Err(ParseRegError(s.to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abi_names_round_trip() {
        for i in 0..32u8 {
            let r = Reg::new(i).unwrap();
            let name = r.to_string();
            assert_eq!(name.parse::<Reg>().unwrap(), r, "{name}");
            assert_eq!(format!("x{i}").parse::<Reg>().unwrap(), r);
        }
    }

    #[test]
    fn fp_aliases_s0() {
        assert_eq!("fp".parse::<Reg>().unwrap().index(), 8);
        assert_eq!("s0".parse::<Reg>().unwrap().index(), 8);
    }

    #[test]
    fn out_of_range_rejected() {
        assert!("x32".parse::<Reg>().is_err());
        assert!("q1".parse::<Reg>().is_err());
        assert!(Reg::new(32).is_none());
    }

    #[test]
    fn well_known_registers() {
        assert_eq!(Reg::ZERO.index(), 0);
        assert_eq!(Reg::RA.index(), 1);
        assert_eq!(Reg::SP.index(), 2);
        assert_eq!(Reg::ZERO.to_string(), "zero");
    }
}
