//! # waymem-isa — the frv-lite ISA, assembler and interpreter
//!
//! The DATE 2005 paper evaluates way memoization on the Fujitsu FR-V VLIW
//! processor using its proprietary instruction-set simulator (Softune v6).
//! Neither is available, so this crate provides **frv-lite**: a compact
//! 32-bit RISC ISA with the three properties the MAB actually observes:
//!
//! 1. **loads/stores compute `base + displacement`** with a signed 16-bit
//!    displacement (so the D-MAB's small-displacement assumption can be
//!    exercised *and* violated),
//! 2. **PC-relative branches/calls** with small offsets and a **link
//!    register** for returns (the three I-MAB input sources of Fig. 2), and
//! 3. a **VLIW-style 8-byte fetch packet** (two 4-byte syllables), giving
//!    the `+8` sequential stride of the paper's Figure 2.
//!
//! The interpreter executes against a flat [`waymem_cache::MainMemory`] and
//! reports every instruction fetch and data access to a [`TraceSink`],
//! carrying the *architectural ingredients* (base register value and
//! displacement) rather than just the final address — exactly what a MAB
//! sitting beside the address generator would see.
//!
//! ```
//! use waymem_isa::{assemble, Cpu, CountingSink};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let prog = assemble(r#"
//!         .text
//! main:   li   t0, 5
//!         li   t1, 0
//! loop:   add  t1, t1, t0
//!         addi t0, t0, -1
//!         bnez t0, loop
//!         halt
//! "#)?;
//! let mut cpu = Cpu::new(&prog);
//! let mut sink = CountingSink::default();
//! cpu.run(10_000, &mut sink)?;
//! assert_eq!(cpu.reg(6), 15); // t1 = 5+4+3+2+1
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod asm;
mod cpu;
mod inst;
mod program;
mod reg;
mod trace;

pub use asm::{assemble, AsmError};
pub use cpu::{Cpu, CpuError, RunOutcome};
pub use inst::{AluImmOp, AluOp, BranchCond, Inst, MemWidth};
pub use program::{Program, DATA_BASE, STACK_TOP, TEXT_BASE};
pub use reg::Reg;
pub use trace::{
    CountingSink, FetchKind, NullSink, RecordedTrace, RecordingSink, TraceEvent, TraceSink,
};
