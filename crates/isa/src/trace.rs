use serde::{Deserialize, Serialize};

/// How control reached the instruction being fetched — the information the
/// I-MAB's input multiplexer needs (paper Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FetchKind {
    /// Fall-through from the previous instruction.
    Sequential,
    /// A taken PC-relative branch or `jal`: the MAB sees the branch's own
    /// PC as base and the encoded offset as displacement.
    TakenBranch {
        /// PC of the branch instruction.
        base: u32,
        /// Encoded signed byte offset.
        disp: i32,
    },
    /// A return through the link register (`jalr` with `rs1 = ra`,
    /// zero displacement): the MAB's input is the link value itself.
    LinkReturn {
        /// The address read from the link register.
        target: u32,
    },
    /// Any other indirect jump: base register value plus displacement.
    Indirect {
        /// Value of the base register.
        base: u32,
        /// Signed displacement.
        disp: i32,
    },
}

/// One architectural event emitted by the CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// An instruction fetch.
    Fetch {
        /// Address of the fetched instruction.
        pc: u32,
        /// How control arrived here.
        kind: FetchKind,
    },
    /// A data load.
    Load {
        /// Base register value (before addition).
        base: u32,
        /// Signed displacement from the instruction.
        disp: i32,
        /// The effective address `base + disp`.
        addr: u32,
        /// Access size in bytes (1, 2 or 4).
        size: u8,
    },
    /// A data store.
    Store {
        /// Base register value (before addition).
        base: u32,
        /// Signed displacement from the instruction.
        disp: i32,
        /// The effective address `base + disp`.
        addr: u32,
        /// Access size in bytes (1, 2 or 4).
        size: u8,
    },
}

/// Consumer of the CPU's event stream. Cache front-ends implement this; the
/// default methods ignore everything so a sink can subscribe selectively.
pub trait TraceSink {
    /// Called once per executed instruction with its fetch address and
    /// control-flow provenance.
    fn fetch(&mut self, pc: u32, kind: FetchKind) {
        let _ = (pc, kind);
    }

    /// Called for every load with the architectural base/displacement pair.
    fn load(&mut self, base: u32, disp: i32, addr: u32, size: u8) {
        let _ = (base, disp, addr, size);
    }

    /// Called for every store with the architectural base/displacement pair.
    fn store(&mut self, base: u32, disp: i32, addr: u32, size: u8) {
        let _ = (base, disp, addr, size);
    }
}

/// A sink that discards every event (pure functional runs).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {}

/// A sink that counts events without storing them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountingSink {
    /// Number of instruction fetches observed.
    pub fetches: u64,
    /// Number of loads observed.
    pub loads: u64,
    /// Number of stores observed.
    pub stores: u64,
}

impl TraceSink for CountingSink {
    fn fetch(&mut self, _pc: u32, _kind: FetchKind) {
        self.fetches += 1;
    }

    fn load(&mut self, _base: u32, _disp: i32, _addr: u32, _size: u8) {
        self.loads += 1;
    }

    fn store(&mut self, _base: u32, _disp: i32, _addr: u32, _size: u8) {
        self.stores += 1;
    }
}

/// A sink that records the full event stream (tests and trace dumps).
#[derive(Debug, Clone, Default)]
pub struct RecordingSink {
    /// The recorded events, in program order.
    pub events: Vec<TraceEvent>,
}

impl TraceSink for RecordingSink {
    fn fetch(&mut self, pc: u32, kind: FetchKind) {
        self.events.push(TraceEvent::Fetch { pc, kind });
    }

    fn load(&mut self, base: u32, disp: i32, addr: u32, size: u8) {
        self.events.push(TraceEvent::Load {
            base,
            disp,
            addr,
            size,
        });
    }

    fn store(&mut self, base: u32, disp: i32, addr: u32, size: u8) {
        self.events.push(TraceEvent::Store {
            base,
            disp,
            addr,
            size,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_sink_counts() {
        let mut s = CountingSink::default();
        s.fetch(0, FetchKind::Sequential);
        s.fetch(4, FetchKind::Sequential);
        s.load(0, 0, 0, 4);
        s.store(0, 0, 0, 1);
        assert_eq!((s.fetches, s.loads, s.stores), (2, 1, 1));
    }

    #[test]
    fn recording_sink_preserves_order() {
        let mut s = RecordingSink::default();
        s.load(10, -2, 8, 4);
        s.fetch(0x100, FetchKind::LinkReturn { target: 0x100 });
        assert_eq!(s.events.len(), 2);
        assert!(matches!(s.events[0], TraceEvent::Load { addr: 8, .. }));
        assert!(matches!(
            s.events[1],
            TraceEvent::Fetch {
                kind: FetchKind::LinkReturn { target: 0x100 },
                ..
            }
        ));
    }

    #[test]
    fn null_sink_compiles_with_defaults() {
        let mut s = NullSink;
        s.fetch(0, FetchKind::Sequential);
        s.load(0, 0, 0, 4);
        s.store(0, 0, 0, 4);
    }
}
