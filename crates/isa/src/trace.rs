use serde::{Deserialize, Serialize};

/// How control reached the instruction being fetched — the information the
/// I-MAB's input multiplexer needs (paper Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FetchKind {
    /// Fall-through from the previous instruction.
    Sequential,
    /// A taken PC-relative branch or `jal`: the MAB sees the branch's own
    /// PC as base and the encoded offset as displacement.
    TakenBranch {
        /// PC of the branch instruction.
        base: u32,
        /// Encoded signed byte offset.
        disp: i32,
    },
    /// A return through the link register (`jalr` with `rs1 = ra`,
    /// zero displacement): the MAB's input is the link value itself.
    LinkReturn {
        /// The address read from the link register.
        target: u32,
    },
    /// Any other indirect jump: base register value plus displacement.
    Indirect {
        /// Value of the base register.
        base: u32,
        /// Signed displacement.
        disp: i32,
    },
}

/// One architectural event emitted by the CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// An instruction fetch.
    Fetch {
        /// Address of the fetched instruction.
        pc: u32,
        /// How control arrived here.
        kind: FetchKind,
    },
    /// A data load.
    Load {
        /// Base register value (before addition).
        base: u32,
        /// Signed displacement from the instruction.
        disp: i32,
        /// The effective address `base + disp`.
        addr: u32,
        /// Access size in bytes (1, 2 or 4).
        size: u8,
    },
    /// A data store.
    Store {
        /// Base register value (before addition).
        base: u32,
        /// Signed displacement from the instruction.
        disp: i32,
        /// The effective address `base + disp`.
        addr: u32,
        /// Access size in bytes (1, 2 or 4).
        size: u8,
    },
}

impl TraceEvent {
    /// The event's primary address: the fetch PC or the effective
    /// load/store address. This is the value the `waymem-trace` codec's
    /// delta predictor chains from event to event, and a convenient
    /// handle for any address-stream analysis.
    #[must_use]
    pub fn primary_addr(self) -> u32 {
        match self {
            TraceEvent::Fetch { pc, .. } => pc,
            TraceEvent::Load { addr, .. } | TraceEvent::Store { addr, .. } => addr,
        }
    }

    /// A load at a raw effective address with no architectural
    /// base/displacement provenance: `base = addr`, `disp = 0`. This is
    /// the canonical encoding for events reconstructed from external
    /// sources (ingested logs, synthetic generators) that only know the
    /// address — the D-MAB then memoizes per effective address, the only
    /// sound key such a source supports.
    #[must_use]
    pub fn load_at(addr: u32, size: u8) -> Self {
        TraceEvent::Load { base: addr, disp: 0, addr, size }
    }

    /// A store at a raw effective address; see
    /// [`load_at`](Self::load_at) for the base/displacement convention.
    #[must_use]
    pub fn store_at(addr: u32, size: u8) -> Self {
        TraceEvent::Store { base: addr, disp: 0, addr, size }
    }
}

/// A benchmark's recorded trace, split into the two streams the two
/// front-end families consume, plus the retired instruction count the
/// power models need.
///
/// The split is the replay engine's key data-layout decision: I-fronts
/// only ever consume [`TraceEvent::Fetch`] and D-fronts only
/// [`TraceEvent::Load`]/[`TraceEvent::Store`], so storing one interleaved
/// stream would make every front walk (and branch over) the other
/// family's events — for a typical kernel ~90 % of the stream is fetches,
/// so a D-front would skip ten events for every one it consumes. Each
/// stream preserves program order, which is all a front-end can observe.
///
/// The type lives here (not in `waymem-sim`) so the `waymem-trace` codec
/// and store can speak it without depending on the simulator; `waymem-sim`
/// re-exports it under its old path.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecordedTrace {
    /// Every instruction fetch, in program order (the I-side stream).
    pub fetch_events: Vec<TraceEvent>,
    /// Every load/store, in program order (the D-side stream).
    pub data_events: Vec<TraceEvent>,
    /// Instructions retired (= cycles at CPI 1).
    pub cycles: u64,
}

impl RecordedTrace {
    /// Total recorded events across both streams.
    #[must_use]
    pub fn len(&self) -> usize {
        self.fetch_events.len() + self.data_events.len()
    }

    /// `true` when nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.fetch_events.is_empty() && self.data_events.is_empty()
    }

    /// The trace's in-memory footprint: event count ×
    /// `size_of::<TraceEvent>()`. The denominator of the codec's
    /// compression-ratio statistic.
    #[must_use]
    pub fn raw_size_bytes(&self) -> u64 {
        (self.len() as u64) * (std::mem::size_of::<TraceEvent>() as u64)
    }
}

/// Consumer of the CPU's event stream. Cache front-ends implement this; the
/// default methods ignore everything so a sink can subscribe selectively.
pub trait TraceSink {
    /// Called once per executed instruction with its fetch address and
    /// control-flow provenance.
    fn fetch(&mut self, pc: u32, kind: FetchKind) {
        let _ = (pc, kind);
    }

    /// Called for every load with the architectural base/displacement pair.
    fn load(&mut self, base: u32, disp: i32, addr: u32, size: u8) {
        let _ = (base, disp, addr, size);
    }

    /// Called for every store with the architectural base/displacement pair.
    fn store(&mut self, base: u32, disp: i32, addr: u32, size: u8) {
        let _ = (base, disp, addr, size);
    }

    /// Consumes a whole batch of recorded events at once.
    ///
    /// The default implementation dispatches each event to the per-event
    /// methods, so every existing sink keeps working; sinks on a hot path
    /// override this with a tight monomorphic loop, turning one virtual
    /// call per *event* into one per *batch*.
    fn events(&mut self, batch: &[TraceEvent]) {
        for &e in batch {
            match e {
                TraceEvent::Fetch { pc, kind } => self.fetch(pc, kind),
                TraceEvent::Load {
                    base,
                    disp,
                    addr,
                    size,
                } => self.load(base, disp, addr, size),
                TraceEvent::Store {
                    base,
                    disp,
                    addr,
                    size,
                } => self.store(base, disp, addr, size),
            }
        }
    }
}

/// Forwarding impl so producers generic over `S: TraceSink` can be
/// handed a mutable borrow (e.g. a parser feeding a caller-owned
/// streaming encoder) without an adapter type.
impl<T: TraceSink + ?Sized> TraceSink for &mut T {
    fn fetch(&mut self, pc: u32, kind: FetchKind) {
        (**self).fetch(pc, kind);
    }

    fn load(&mut self, base: u32, disp: i32, addr: u32, size: u8) {
        (**self).load(base, disp, addr, size);
    }

    fn store(&mut self, base: u32, disp: i32, addr: u32, size: u8) {
        (**self).store(base, disp, addr, size);
    }

    fn events(&mut self, batch: &[TraceEvent]) {
        (**self).events(batch);
    }
}

/// A sink that discards every event (pure functional runs).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn events(&mut self, _batch: &[TraceEvent]) {}
}

/// A sink that counts events without storing them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountingSink {
    /// Number of instruction fetches observed.
    pub fetches: u64,
    /// Number of loads observed.
    pub loads: u64,
    /// Number of stores observed.
    pub stores: u64,
}

impl TraceSink for CountingSink {
    fn fetch(&mut self, _pc: u32, _kind: FetchKind) {
        self.fetches += 1;
    }

    fn load(&mut self, _base: u32, _disp: i32, _addr: u32, _size: u8) {
        self.loads += 1;
    }

    fn store(&mut self, _base: u32, _disp: i32, _addr: u32, _size: u8) {
        self.stores += 1;
    }

    fn events(&mut self, batch: &[TraceEvent]) {
        for e in batch {
            match e {
                TraceEvent::Fetch { .. } => self.fetches += 1,
                TraceEvent::Load { .. } => self.loads += 1,
                TraceEvent::Store { .. } => self.stores += 1,
            }
        }
    }
}

/// A sink that records the full event stream — the front half of the
/// record-once / replay-many engine in `waymem-sim` (also handy for tests
/// and trace dumps).
#[derive(Debug, Clone, Default)]
pub struct RecordingSink {
    /// The recorded events, in program order.
    pub events: Vec<TraceEvent>,
}

impl RecordingSink {
    /// Upper bound on the capacity pre-allocated from a step budget, in
    /// events. Beyond this the `Vec` grows geometrically as usual; the
    /// cap only bounds the blind up-front allocation (~24 B/event, so
    /// ~12 MB at the cap). Step *budgets* are routinely 100× more
    /// generous than actual runs, so sizing must never trust them fully.
    pub const MAX_PREALLOC_EVENTS: usize = 1 << 19;

    /// Clamps an event-count estimate to a sane pre-allocation:
    /// [`MAX_PREALLOC_EVENTS`](Self::MAX_PREALLOC_EVENTS) at most, on
    /// overflow too. Shared by [`with_step_budget`](Self::with_step_budget)
    /// and the sim engine's split-stream recorder so the clamp logic
    /// cannot drift between them.
    #[must_use]
    pub fn prealloc_cap(estimated_events: u64) -> usize {
        usize::try_from(estimated_events)
            .unwrap_or(Self::MAX_PREALLOC_EVENTS)
            .min(Self::MAX_PREALLOC_EVENTS)
    }

    /// A sink sized for a run of at most `max_steps` instructions.
    ///
    /// Every retired instruction emits one fetch plus at most one
    /// load/store, so `2 * max_steps` bounds the stream; the typical mix
    /// is nearer 1.3 events per instruction. The pre-allocation uses the
    /// hard bound but clamps it via [`prealloc_cap`](Self::prealloc_cap),
    /// so a generous step budget (workloads commonly halt far below it)
    /// does not translate into a huge idle allocation.
    #[must_use]
    pub fn with_step_budget(max_steps: u64) -> Self {
        Self {
            events: Vec::with_capacity(Self::prealloc_cap(max_steps.saturating_mul(2))),
        }
    }
}

impl TraceSink for RecordingSink {
    fn fetch(&mut self, pc: u32, kind: FetchKind) {
        self.events.push(TraceEvent::Fetch { pc, kind });
    }

    fn load(&mut self, base: u32, disp: i32, addr: u32, size: u8) {
        self.events.push(TraceEvent::Load {
            base,
            disp,
            addr,
            size,
        });
    }

    fn store(&mut self, base: u32, disp: i32, addr: u32, size: u8) {
        self.events.push(TraceEvent::Store {
            base,
            disp,
            addr,
            size,
        });
    }

    fn events(&mut self, batch: &[TraceEvent]) {
        self.events.extend_from_slice(batch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_address_constructors_set_base_to_addr() {
        assert_eq!(
            TraceEvent::load_at(0x1234, 4),
            TraceEvent::Load { base: 0x1234, disp: 0, addr: 0x1234, size: 4 }
        );
        assert_eq!(
            TraceEvent::store_at(0xffff_fffc, 2),
            TraceEvent::Store { base: 0xffff_fffc, disp: 0, addr: 0xffff_fffc, size: 2 }
        );
    }

    #[test]
    fn counting_sink_counts() {
        let mut s = CountingSink::default();
        s.fetch(0, FetchKind::Sequential);
        s.fetch(4, FetchKind::Sequential);
        s.load(0, 0, 0, 4);
        s.store(0, 0, 0, 1);
        assert_eq!((s.fetches, s.loads, s.stores), (2, 1, 1));
    }

    #[test]
    fn recording_sink_preserves_order() {
        let mut s = RecordingSink::default();
        s.load(10, -2, 8, 4);
        s.fetch(0x100, FetchKind::LinkReturn { target: 0x100 });
        assert_eq!(s.events.len(), 2);
        assert!(matches!(s.events[0], TraceEvent::Load { addr: 8, .. }));
        assert!(matches!(
            s.events[1],
            TraceEvent::Fetch {
                kind: FetchKind::LinkReturn { target: 0x100 },
                ..
            }
        ));
    }

    #[test]
    fn null_sink_compiles_with_defaults() {
        let mut s = NullSink;
        s.fetch(0, FetchKind::Sequential);
        s.load(0, 0, 0, 4);
        s.store(0, 0, 0, 4);
    }

    /// Synthetic stream covering all three event kinds.
    fn sample_events() -> Vec<TraceEvent> {
        let mut rec = RecordingSink::default();
        rec.fetch(0x100, FetchKind::Sequential);
        rec.load(0x2000, 8, 0x2008, 4);
        rec.fetch(0x104, FetchKind::TakenBranch { base: 0x104, disp: -4 });
        rec.store(0x2000, 12, 0x200c, 2);
        rec.fetch(0x100, FetchKind::LinkReturn { target: 0x100 });
        rec.events
    }

    #[test]
    fn batched_dispatch_matches_per_event_dispatch() {
        let events = sample_events();
        let mut per_event = CountingSink::default();
        for &e in &events {
            match e {
                TraceEvent::Fetch { pc, kind } => per_event.fetch(pc, kind),
                TraceEvent::Load { base, disp, addr, size } => {
                    per_event.load(base, disp, addr, size);
                }
                TraceEvent::Store { base, disp, addr, size } => {
                    per_event.store(base, disp, addr, size);
                }
            }
        }
        let mut batched = CountingSink::default();
        batched.events(&events);
        assert_eq!(batched, per_event);
        assert_eq!((batched.fetches, batched.loads, batched.stores), (3, 1, 1));
    }

    #[test]
    fn recording_sink_round_trips_through_batches() {
        let events = sample_events();
        let mut replayed = RecordingSink::default();
        replayed.events(&events);
        assert_eq!(replayed.events, events);
    }

    #[test]
    fn step_budget_preallocation_is_capped() {
        let small = RecordingSink::with_step_budget(100);
        assert!(small.events.capacity() >= 200);
        let huge = RecordingSink::with_step_budget(u64::MAX);
        assert!(huge.events.capacity() <= RecordingSink::MAX_PREALLOC_EVENTS);
        assert!(huge.events.is_empty());
    }
}
