//! Two-pass assembler for frv-lite.
//!
//! Supports `.text`/`.data` sections, labels, the data directives `.word`,
//! `.half`, `.byte`, `.space`, `.align`, `.asciz`, the constant directive
//! `.equ`, and the pseudo-instructions `nop`, `mv`, `li`, `la`, `j`, `jr`,
//! `ret`, `call`, `beqz`, `bnez`, `bgt`, `ble`, `neg`, `not`. Comments start
//! with `#` or `;`.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use crate::inst::{AluImmOp, AluOp, MemWidth};
use crate::{BranchCond, Inst, Program, Reg, DATA_BASE, TEXT_BASE};

/// Assembly error with the 1-based source line where it occurred.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number in the source.
    pub line: usize,
    /// What went wrong.
    pub kind: AsmErrorKind,
}

/// The specific assembly failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmErrorKind {
    /// Mnemonic not recognized.
    UnknownMnemonic(String),
    /// Directive not recognized.
    UnknownDirective(String),
    /// Wrong operand count or malformed operand.
    BadOperand(String),
    /// A label was defined twice.
    DuplicateLabel(String),
    /// A referenced symbol was never defined.
    UndefinedSymbol(String),
    /// An immediate or offset does not fit its encoding field.
    OutOfRange(String),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: ", self.line)?;
        match &self.kind {
            AsmErrorKind::UnknownMnemonic(m) => write!(f, "unknown mnemonic `{m}`"),
            AsmErrorKind::UnknownDirective(d) => write!(f, "unknown directive `{d}`"),
            AsmErrorKind::BadOperand(msg) => write!(f, "bad operand: {msg}"),
            AsmErrorKind::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            AsmErrorKind::UndefinedSymbol(s) => write!(f, "undefined symbol `{s}`"),
            AsmErrorKind::OutOfRange(msg) => write!(f, "value out of range: {msg}"),
        }
    }
}

impl Error for AsmError {}

fn err(line: usize, kind: AsmErrorKind) -> AsmError {
    AsmError { line, kind }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Section {
    Text,
    Data,
}

#[derive(Debug)]
enum Item {
    Inst {
        line: usize,
        addr: u32,
        mnemonic: String,
        operands: Vec<String>,
    },
    DataExpr {
        line: usize,
        addr: u32,
        width: u32,
        exprs: Vec<String>,
    },
    Bytes {
        addr: u32,
        bytes: Vec<u8>,
    },
}

/// Assembles frv-lite source into a [`Program`].
///
/// # Errors
///
/// Returns a line-numbered [`AsmError`] for syntax errors, unknown
/// mnemonics, undefined or duplicate labels and out-of-range immediates.
///
/// ```
/// use waymem_isa::assemble;
///
/// let err = assemble(".text\nmain: j nowhere\n").unwrap_err();
/// assert_eq!(err.line, 2);
/// ```
pub fn assemble(src: &str) -> Result<Program, AsmError> {
    let mut symbols: BTreeMap<String, u32> = BTreeMap::new();
    let mut items: Vec<Item> = Vec::new();
    let mut section = Section::Text;
    let mut text_lc = TEXT_BASE;
    let mut data_lc = DATA_BASE;

    // Pass 1: layout, labels, pseudo-instruction sizing.
    for (idx, raw) in src.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_comment(raw).trim().to_owned();
        if line.is_empty() {
            continue;
        }
        let mut rest = line.as_str();
        // Labels (possibly several) at the start of the line.
        while let Some(colon) = find_label(rest) {
            let (label, tail) = rest.split_at(colon);
            let label = label.trim();
            let target = match section {
                Section::Text => text_lc,
                Section::Data => data_lc,
            };
            if symbols.insert(label.to_owned(), target).is_some() {
                return Err(err(line_no, AsmErrorKind::DuplicateLabel(label.to_owned())));
            }
            rest = tail[1..].trim_start();
        }
        if rest.is_empty() {
            continue;
        }
        if let Some(directive) = rest.strip_prefix('.') {
            let (name, args) = split_first_word(directive);
            match name {
                "text" => section = Section::Text,
                "data" => section = Section::Data,
                "equ" => {
                    let parts = split_operands(args);
                    if parts.len() != 2 {
                        return Err(err(
                            line_no,
                            AsmErrorKind::BadOperand(".equ name, value".into()),
                        ));
                    }
                    let value = parse_int(&parts[1])
                        .ok_or_else(|| err(line_no, AsmErrorKind::BadOperand(parts[1].clone())))?;
                    if symbols.insert(parts[0].clone(), value as u32).is_some() {
                        return Err(err(line_no, AsmErrorKind::DuplicateLabel(parts[0].clone())));
                    }
                }
                "word" | "half" | "byte" => {
                    let width = match name {
                        "word" => 4,
                        "half" => 2,
                        _ => 1,
                    };
                    if section != Section::Data {
                        return Err(err(
                            line_no,
                            AsmErrorKind::BadOperand("data directive outside .data".into()),
                        ));
                    }
                    let exprs = split_operands(args);
                    items.push(Item::DataExpr {
                        line: line_no,
                        addr: data_lc,
                        width,
                        exprs: exprs.clone(),
                    });
                    data_lc += width * exprs.len() as u32;
                }
                "space" => {
                    let n = parse_int(args.trim())
                        .ok_or_else(|| err(line_no, AsmErrorKind::BadOperand(args.into())))?;
                    data_lc += n as u32;
                }
                "align" => {
                    let n = parse_int(args.trim())
                        .ok_or_else(|| err(line_no, AsmErrorKind::BadOperand(args.into())))?;
                    let a = 1u32 << n;
                    match section {
                        Section::Data => data_lc = (data_lc + a - 1) & !(a - 1),
                        Section::Text => text_lc = (text_lc + a - 1) & !(a - 1),
                    }
                }
                "asciz" => {
                    let s = parse_string(args.trim())
                        .ok_or_else(|| err(line_no, AsmErrorKind::BadOperand(args.into())))?;
                    let mut bytes = s.into_bytes();
                    bytes.push(0);
                    let len = bytes.len() as u32;
                    items.push(Item::Bytes {
                        addr: data_lc,
                        bytes,
                    });
                    data_lc += len;
                }
                other => {
                    return Err(err(
                        line_no,
                        AsmErrorKind::UnknownDirective(other.to_owned()),
                    ))
                }
            }
            continue;
        }
        // Instruction (or pseudo). Determine its encoded size now.
        let (mnemonic, args) = split_first_word(rest);
        let operands = split_operands(args);
        let words = pseudo_size(mnemonic, &operands);
        items.push(Item::Inst {
            line: line_no,
            addr: text_lc,
            mnemonic: mnemonic.to_owned(),
            operands,
        });
        text_lc += 4 * words;
    }

    // Pass 2: encode.
    let mut text: Vec<u32> = Vec::new();
    let mut data: Vec<u8> = vec![0; (data_lc - DATA_BASE) as usize];
    for item in &items {
        match item {
            Item::Inst {
                line,
                addr,
                mnemonic,
                operands,
            } => {
                let insts = encode_inst(*line, *addr, mnemonic, operands, &symbols)?;
                debug_assert_eq!(insts.len() as u32, pseudo_size(mnemonic, operands));
                debug_assert_eq!(TEXT_BASE + 4 * text.len() as u32, *addr);
                text.extend(insts.iter().map(|i| i.encode()));
            }
            Item::DataExpr {
                line,
                addr,
                width,
                exprs,
            } => {
                let mut at = (*addr - DATA_BASE) as usize;
                for e in exprs {
                    let v = eval_expr(*line, e, &symbols)? as u32;
                    for b in 0..*width {
                        data[at] = (v >> (8 * b)) as u8;
                        at += 1;
                    }
                }
            }
            Item::Bytes { addr, bytes } => {
                let at = (*addr - DATA_BASE) as usize;
                data[at..at + bytes.len()].copy_from_slice(bytes);
            }
        }
    }

    let entry = symbols.get("main").copied().unwrap_or(TEXT_BASE);
    Ok(Program::from_parts(
        TEXT_BASE, text, DATA_BASE, data, entry, symbols,
    ))
}

fn strip_comment(line: &str) -> &str {
    // Respect string literals for .asciz.
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' | ';' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Finds the colon ending a leading label, ignoring colons inside operands.
fn find_label(s: &str) -> Option<usize> {
    let colon = s.find(':')?;
    let head = &s[..colon];
    head.chars()
        .all(|c| c.is_alphanumeric() || c == '_' || c == '.')
        .then_some(colon)
}

fn split_first_word(s: &str) -> (&str, &str) {
    match s.find(char::is_whitespace) {
        Some(i) => (&s[..i], s[i..].trim_start()),
        None => (s, ""),
    }
}

fn split_operands(s: &str) -> Vec<String> {
    if s.trim().is_empty() {
        return Vec::new();
    }
    s.split(',').map(|p| p.trim().to_owned()).collect()
}

fn parse_int(s: &str) -> Option<i64> {
    let s = s.trim();
    if let Some(rest) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        return i64::from_str_radix(rest, 16).ok();
    }
    if let Some(rest) = s.strip_prefix("-0x").or_else(|| s.strip_prefix("-0X")) {
        return i64::from_str_radix(rest, 16).ok().map(|v| -v);
    }
    if let Some(rest) = s.strip_prefix("0b") {
        return i64::from_str_radix(rest, 2).ok();
    }
    if s.len() == 3 && s.starts_with('\'') && s.ends_with('\'') {
        return Some(i64::from(s.as_bytes()[1]));
    }
    s.parse::<i64>().ok()
}

fn parse_string(s: &str) -> Option<String> {
    let inner = s.strip_prefix('"')?.strip_suffix('"')?;
    let mut out = String::new();
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next()? {
                'n' => out.push('\n'),
                't' => out.push('\t'),
                '0' => out.push('\0'),
                '\\' => out.push('\\'),
                '"' => out.push('"'),
                other => out.push(other),
            }
        } else {
            out.push(c);
        }
    }
    Some(out)
}

/// Number of encoded words a (pseudo-)instruction occupies.
fn pseudo_size(mnemonic: &str, operands: &[String]) -> u32 {
    match mnemonic {
        "li" => {
            // Fits addi? One word. Otherwise lui+ori.
            match operands.get(1).and_then(|s| parse_int(s)) {
                Some(v) if (-32768..=32767).contains(&v) => 1,
                _ => 2,
            }
        }
        "la" => 2,
        _ => 1,
    }
}

fn eval_expr(line: usize, expr: &str, symbols: &BTreeMap<String, u32>) -> Result<i64, AsmError> {
    let expr = expr.trim();
    if let Some(v) = parse_int(expr) {
        return Ok(v);
    }
    // label, label+int, label-int
    for (i, c) in expr.char_indices().skip(1) {
        if c == '+' || c == '-' {
            let (name, off) = expr.split_at(i);
            let base = lookup(line, name.trim(), symbols)?;
            let off = parse_int(off)
                .ok_or_else(|| err(line, AsmErrorKind::BadOperand(expr.to_owned())))?;
            return Ok(i64::from(base) + off);
        }
    }
    lookup(line, expr, symbols).map(i64::from)
}

fn lookup(line: usize, name: &str, symbols: &BTreeMap<String, u32>) -> Result<u32, AsmError> {
    symbols
        .get(name)
        .copied()
        .ok_or_else(|| err(line, AsmErrorKind::UndefinedSymbol(name.to_owned())))
}

fn parse_reg(line: usize, s: &str) -> Result<Reg, AsmError> {
    s.parse::<Reg>()
        .map_err(|e| err(line, AsmErrorKind::BadOperand(e.to_string())))
}

/// Parses `imm(reg)` / `(reg)` / `label(reg)` memory operands.
fn parse_mem(
    line: usize,
    s: &str,
    symbols: &BTreeMap<String, u32>,
) -> Result<(Reg, i16), AsmError> {
    let open = s
        .find('(')
        .ok_or_else(|| err(line, AsmErrorKind::BadOperand(format!("`{s}` is not imm(reg)"))))?;
    let close = s
        .rfind(')')
        .ok_or_else(|| err(line, AsmErrorKind::BadOperand(format!("`{s}` is not imm(reg)"))))?;
    let reg = parse_reg(line, s[open + 1..close].trim())?;
    let immpart = s[..open].trim();
    let imm = if immpart.is_empty() {
        0
    } else {
        eval_expr(line, immpart, symbols)?
    };
    let imm = i16::try_from(imm)
        .map_err(|_| err(line, AsmErrorKind::OutOfRange(format!("displacement {imm}"))))?;
    Ok((reg, imm))
}

fn to_i16(line: usize, v: i64, what: &str) -> Result<i16, AsmError> {
    i16::try_from(v).map_err(|_| err(line, AsmErrorKind::OutOfRange(format!("{what} {v}"))))
}

fn branch_offset(line: usize, addr: u32, target: i64) -> Result<i16, AsmError> {
    let off = target - i64::from(addr);
    if off % 4 != 0 {
        return Err(err(
            line,
            AsmErrorKind::OutOfRange(format!("unaligned branch offset {off}")),
        ));
    }
    to_i16(line, off, "branch offset")
}

fn encode_inst(
    line: usize,
    addr: u32,
    mnemonic: &str,
    ops: &[String],
    symbols: &BTreeMap<String, u32>,
) -> Result<Vec<Inst>, AsmError> {
    let want = |n: usize| -> Result<(), AsmError> {
        if ops.len() == n {
            Ok(())
        } else {
            Err(err(
                line,
                AsmErrorKind::BadOperand(format!(
                    "`{mnemonic}` expects {n} operands, got {}",
                    ops.len()
                )),
            ))
        }
    };
    let reg = |i: usize| parse_reg(line, &ops[i]);
    let imm16 = |i: usize| -> Result<i16, AsmError> {
        let v = eval_expr(line, &ops[i], symbols)?;
        to_i16(line, v, "immediate")
    };
    let target16 = |i: usize| -> Result<i16, AsmError> {
        let t = eval_expr(line, &ops[i], symbols)?;
        branch_offset(line, addr, t)
    };

    let alu = |op: AluOp| -> Result<Vec<Inst>, AsmError> {
        want(3)?;
        Ok(vec![Inst::Alu {
            op,
            rd: reg(0)?,
            rs1: reg(1)?,
            rs2: reg(2)?,
        }])
    };
    let alu_imm = |op: AluImmOp| -> Result<Vec<Inst>, AsmError> {
        want(3)?;
        Ok(vec![Inst::AluImm {
            op,
            rd: reg(0)?,
            rs1: reg(1)?,
            imm: imm16(2)?,
        }])
    };
    let load = |width: MemWidth, signed: bool| -> Result<Vec<Inst>, AsmError> {
        want(2)?;
        let (rs1, imm) = parse_mem(line, &ops[1], symbols)?;
        Ok(vec![Inst::Load {
            width,
            signed,
            rd: reg(0)?,
            rs1,
            imm,
        }])
    };
    let store = |width: MemWidth| -> Result<Vec<Inst>, AsmError> {
        want(2)?;
        let (rs1, imm) = parse_mem(line, &ops[1], symbols)?;
        Ok(vec![Inst::Store {
            width,
            rs2: reg(0)?,
            rs1,
            imm,
        }])
    };
    let branch = |cond: BranchCond, swap: bool| -> Result<Vec<Inst>, AsmError> {
        want(3)?;
        let (a, b) = if swap { (1, 0) } else { (0, 1) };
        Ok(vec![Inst::Branch {
            cond,
            rs1: reg(a)?,
            rs2: reg(b)?,
            offset: target16(2)?,
        }])
    };

    match mnemonic {
        "add" => alu(AluOp::Add),
        "sub" => alu(AluOp::Sub),
        "and" => alu(AluOp::And),
        "or" => alu(AluOp::Or),
        "xor" => alu(AluOp::Xor),
        "sll" => alu(AluOp::Sll),
        "srl" => alu(AluOp::Srl),
        "sra" => alu(AluOp::Sra),
        "slt" => alu(AluOp::Slt),
        "sltu" => alu(AluOp::Sltu),
        "mul" => alu(AluOp::Mul),
        "mulhu" => alu(AluOp::Mulhu),
        "div" => alu(AluOp::Div),
        "rem" => alu(AluOp::Rem),
        "addi" => alu_imm(AluImmOp::Addi),
        "andi" => alu_imm(AluImmOp::Andi),
        "ori" => alu_imm(AluImmOp::Ori),
        "xori" => alu_imm(AluImmOp::Xori),
        "slti" => alu_imm(AluImmOp::Slti),
        "slli" => alu_imm(AluImmOp::Slli),
        "srli" => alu_imm(AluImmOp::Srli),
        "srai" => alu_imm(AluImmOp::Srai),
        "lui" => {
            want(2)?;
            let v = eval_expr(line, &ops[1], symbols)?;
            let imm = u16::try_from(v)
                .map_err(|_| err(line, AsmErrorKind::OutOfRange(format!("lui immediate {v}"))))?;
            Ok(vec![Inst::Lui { rd: reg(0)?, imm }])
        }
        "lb" => load(MemWidth::Byte, true),
        "lbu" => load(MemWidth::Byte, false),
        "lh" => load(MemWidth::Half, true),
        "lhu" => load(MemWidth::Half, false),
        "lw" => load(MemWidth::Word, true),
        "sb" => store(MemWidth::Byte),
        "sh" => store(MemWidth::Half),
        "sw" => store(MemWidth::Word),
        "beq" => branch(BranchCond::Eq, false),
        "bne" => branch(BranchCond::Ne, false),
        "blt" => branch(BranchCond::Lt, false),
        "bge" => branch(BranchCond::Ge, false),
        "bltu" => branch(BranchCond::Ltu, false),
        "bgeu" => branch(BranchCond::Geu, false),
        "bgt" => branch(BranchCond::Lt, true),
        "ble" => branch(BranchCond::Ge, true),
        "jal" => {
            want(2)?;
            Ok(vec![Inst::Jal {
                rd: reg(0)?,
                offset: target16(1)?,
            }])
        }
        "jalr" => {
            want(2)?;
            let (rs1, imm) = parse_mem(line, &ops[1], symbols)?;
            Ok(vec![Inst::Jalr {
                rd: reg(0)?,
                rs1,
                imm,
            }])
        }
        "halt" => {
            want(0)?;
            Ok(vec![Inst::Halt])
        }
        // ---- pseudo-instructions ----
        "nop" => {
            want(0)?;
            Ok(vec![Inst::AluImm {
                op: AluImmOp::Addi,
                rd: Reg::ZERO,
                rs1: Reg::ZERO,
                imm: 0,
            }])
        }
        "mv" => {
            want(2)?;
            Ok(vec![Inst::AluImm {
                op: AluImmOp::Addi,
                rd: reg(0)?,
                rs1: reg(1)?,
                imm: 0,
            }])
        }
        "neg" => {
            want(2)?;
            Ok(vec![Inst::Alu {
                op: AluOp::Sub,
                rd: reg(0)?,
                rs1: Reg::ZERO,
                rs2: reg(1)?,
            }])
        }
        "not" => {
            want(2)?;
            Ok(vec![Inst::AluImm {
                op: AluImmOp::Xori,
                rd: reg(0)?,
                rs1: reg(1)?,
                imm: -1,
            }])
        }
        "li" => {
            want(2)?;
            let rd = reg(0)?;
            let v = eval_expr(line, &ops[1], symbols)?;
            let v32 = u32::try_from(v & 0xffff_ffff).unwrap_or(0);
            // Mirror pseudo_size exactly: only a *literal* small immediate
            // gets the one-word form, because pass 1 cannot see symbols.
            let literal_small = matches!(parse_int(&ops[1]), Some(x) if (-32768..=32767).contains(&x));
            if literal_small {
                Ok(vec![Inst::AluImm {
                    op: AluImmOp::Addi,
                    rd,
                    rs1: Reg::ZERO,
                    imm: v as i16,
                }])
            } else {
                if !(-(1i64 << 31)..(1i64 << 32)).contains(&v) {
                    return Err(err(
                        line,
                        AsmErrorKind::OutOfRange(format!("li immediate {v}")),
                    ));
                }
                let v32 = if v < 0 { v as i32 as u32 } else { v32 };
                Ok(vec![
                    Inst::Lui {
                        rd,
                        imm: (v32 >> 16) as u16,
                    },
                    Inst::AluImm {
                        op: AluImmOp::Ori,
                        rd,
                        rs1: rd,
                        imm: (v32 & 0xffff) as u16 as i16,
                    },
                ])
            }
        }
        "la" => {
            want(2)?;
            let rd = reg(0)?;
            let v = eval_expr(line, &ops[1], symbols)? as u32;
            Ok(vec![
                Inst::Lui {
                    rd,
                    imm: (v >> 16) as u16,
                },
                Inst::AluImm {
                    op: AluImmOp::Ori,
                    rd,
                    rs1: rd,
                    imm: (v & 0xffff) as u16 as i16,
                },
            ])
        }
        "j" => {
            want(1)?;
            let t = eval_expr(line, &ops[0], symbols)?;
            Ok(vec![Inst::Jal {
                rd: Reg::ZERO,
                offset: branch_offset(line, addr, t)?,
            }])
        }
        "call" => {
            want(1)?;
            let t = eval_expr(line, &ops[0], symbols)?;
            Ok(vec![Inst::Jal {
                rd: Reg::RA,
                offset: branch_offset(line, addr, t)?,
            }])
        }
        "jr" => {
            want(1)?;
            Ok(vec![Inst::Jalr {
                rd: Reg::ZERO,
                rs1: reg(0)?,
                imm: 0,
            }])
        }
        "ret" => {
            want(0)?;
            Ok(vec![Inst::Jalr {
                rd: Reg::ZERO,
                rs1: Reg::RA,
                imm: 0,
            }])
        }
        "beqz" => {
            want(2)?;
            let t = eval_expr(line, &ops[1], symbols)?;
            Ok(vec![Inst::Branch {
                cond: BranchCond::Eq,
                rs1: reg(0)?,
                rs2: Reg::ZERO,
                offset: branch_offset(line, addr, t)?,
            }])
        }
        "bnez" => {
            want(2)?;
            let t = eval_expr(line, &ops[1], symbols)?;
            Ok(vec![Inst::Branch {
                cond: BranchCond::Ne,
                rs1: reg(0)?,
                rs2: Reg::ZERO,
                offset: branch_offset(line, addr, t)?,
            }])
        }
        other => Err(err(line, AsmErrorKind::UnknownMnemonic(other.to_owned()))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_sections_resolve() {
        let prog = assemble(
            r#"
            .data
a:      .word 1, 2, 3
b:      .half 4
c:      .byte 5, 6
s:      .asciz "hi\n"
            .text
main:   la t0, a
        halt
        "#,
        )
        .unwrap();
        assert_eq!(prog.symbol("a"), Some(DATA_BASE));
        assert_eq!(prog.symbol("b"), Some(DATA_BASE + 12));
        assert_eq!(prog.symbol("c"), Some(DATA_BASE + 14));
        assert_eq!(prog.symbol("s"), Some(DATA_BASE + 16));
        assert_eq!(&prog.data()[..4], &[1, 0, 0, 0]);
        assert_eq!(&prog.data()[16..20], b"hi\n\0");
    }

    #[test]
    fn li_small_is_one_word_large_is_two() {
        let small = assemble(".text\nmain: li t0, 100\n halt\n").unwrap();
        assert_eq!(small.text().len(), 2);
        let large = assemble(".text\nmain: li t0, 0x12345678\n halt\n").unwrap();
        assert_eq!(large.text().len(), 3);
        let neg = assemble(".text\nmain: li t0, -40000\n halt\n").unwrap();
        assert_eq!(neg.text().len(), 3);
    }

    #[test]
    fn forward_references_work() {
        let prog = assemble(
            r#"
            .text
main:   j fwd
        nop
fwd:    halt
        "#,
        )
        .unwrap();
        let jal = Inst::decode(prog.text()[0]).unwrap();
        assert!(matches!(jal, Inst::Jal { offset: 8, .. }));
    }

    #[test]
    fn equ_constants() {
        let prog = assemble(
            r#"
            .equ SIZE, 64
            .data
buf:    .space 64
            .text
main:   li t0, SIZE
        halt
        "#,
        )
        .unwrap();
        // A symbolic immediate always takes the two-word lui+ori form.
        assert!(matches!(
            Inst::decode(prog.text()[0]),
            Some(Inst::Lui { imm: 0, .. })
        ));
        assert!(matches!(
            Inst::decode(prog.text()[1]),
            Some(Inst::AluImm { imm: 64, .. })
        ));
    }

    #[test]
    fn label_plus_offset() {
        let prog = assemble(
            r#"
            .data
tbl:    .word 0, 0, 7
            .text
main:   la t0, tbl+8
        lw t1, (t0)
        halt
        "#,
        )
        .unwrap();
        // la expands to lui+ori of DATA_BASE + 8.
        assert!(matches!(
            Inst::decode(prog.text()[1]),
            Some(Inst::AluImm { .. })
        ));
        assert_eq!(prog.symbol("tbl"), Some(DATA_BASE));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble(".text\nmain: frobnicate t0\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(matches!(e.kind, AsmErrorKind::UnknownMnemonic(_)));

        let e = assemble(".text\nmain: j nowhere\n").unwrap_err();
        assert!(matches!(e.kind, AsmErrorKind::UndefinedSymbol(_)));

        let e = assemble(".text\nx: nop\nx: nop\n").unwrap_err();
        assert!(matches!(e.kind, AsmErrorKind::DuplicateLabel(_)));

        let e = assemble(".text\nmain: addi t0, t1\n").unwrap_err();
        assert!(matches!(e.kind, AsmErrorKind::BadOperand(_)));

        let e = assemble(".text\nmain: addi t0, t1, 40000\n").unwrap_err();
        assert!(matches!(e.kind, AsmErrorKind::OutOfRange(_)));

        let e = assemble(".unknowndir\n").unwrap_err();
        assert!(matches!(e.kind, AsmErrorKind::UnknownDirective(_)));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let prog = assemble(
            "# full-line comment\n.text\nmain: nop ; trailing\n  \n halt # done\n",
        )
        .unwrap();
        assert_eq!(prog.text().len(), 2);
    }

    #[test]
    fn mem_operand_forms() {
        let prog = assemble(
            r#"
            .text
main:   lw t0, 8(sp)
        lw t1, (sp)
        lw t2, -4(sp)
        halt
        "#,
        )
        .unwrap();
        let imms: Vec<i16> = prog
            .text()
            .iter()
            .filter_map(|&w| match Inst::decode(w) {
                Some(Inst::Load { imm, .. }) => Some(imm),
                _ => None,
            })
            .collect();
        assert_eq!(imms, vec![8, 0, -4]);
    }

    #[test]
    fn entry_defaults_to_main_or_text_base() {
        let with_main = assemble(".text\nstart: nop\nmain: halt\n").unwrap();
        assert_eq!(with_main.entry(), with_main.symbol("main").unwrap());
        let without = assemble(".text\nstart: halt\n").unwrap();
        assert_eq!(without.entry(), TEXT_BASE);
    }

    #[test]
    fn char_and_radix_literals() {
        let prog = assemble(".text\nmain: li t0, 'A'\n li t1, 0b101\n halt\n").unwrap();
        let imms: Vec<i16> = prog
            .text()
            .iter()
            .filter_map(|&w| match Inst::decode(w) {
                Some(Inst::AluImm { imm, .. }) => Some(imm),
                _ => None,
            })
            .collect();
        assert_eq!(imms, vec![65, 5]);
    }
}
