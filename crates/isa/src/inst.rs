use std::fmt;

use serde::{Deserialize, Serialize};

use crate::Reg;

/// Register–register ALU operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum AluOp {
    Add,
    Sub,
    And,
    Or,
    Xor,
    Sll,
    Srl,
    Sra,
    Slt,
    Sltu,
    Mul,
    Mulhu,
    Div,
    Rem,
}

impl AluOp {
    const ALL: [AluOp; 14] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Sll,
        AluOp::Srl,
        AluOp::Sra,
        AluOp::Slt,
        AluOp::Sltu,
        AluOp::Mul,
        AluOp::Mulhu,
        AluOp::Div,
        AluOp::Rem,
    ];

    fn funct(self) -> u32 {
        Self::ALL.iter().position(|&o| o == self).unwrap() as u32
    }

    fn from_funct(f: u32) -> Option<Self> {
        Self::ALL.get(f as usize).copied()
    }

    fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Sll => "sll",
            AluOp::Srl => "srl",
            AluOp::Sra => "sra",
            AluOp::Slt => "slt",
            AluOp::Sltu => "sltu",
            AluOp::Mul => "mul",
            AluOp::Mulhu => "mulhu",
            AluOp::Div => "div",
            AluOp::Rem => "rem",
        }
    }
}

/// Register–immediate ALU operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum AluImmOp {
    Addi,
    Andi,
    Ori,
    Xori,
    Slti,
    Slli,
    Srli,
    Srai,
}

impl AluImmOp {
    fn opcode(self) -> u32 {
        match self {
            AluImmOp::Addi => 0x04,
            AluImmOp::Andi => 0x05,
            AluImmOp::Ori => 0x06,
            AluImmOp::Xori => 0x07,
            AluImmOp::Slti => 0x08,
            AluImmOp::Slli => 0x09,
            AluImmOp::Srli => 0x0a,
            AluImmOp::Srai => 0x0b,
        }
    }

    fn mnemonic(self) -> &'static str {
        match self {
            AluImmOp::Addi => "addi",
            AluImmOp::Andi => "andi",
            AluImmOp::Ori => "ori",
            AluImmOp::Xori => "xori",
            AluImmOp::Slti => "slti",
            AluImmOp::Slli => "slli",
            AluImmOp::Srli => "srli",
            AluImmOp::Srai => "srai",
        }
    }
}

/// Access width of a load or store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum MemWidth {
    Byte,
    Half,
    Word,
}

impl MemWidth {
    /// Width in bytes (1, 2 or 4).
    #[must_use]
    pub fn bytes(self) -> u8 {
        match self {
            MemWidth::Byte => 1,
            MemWidth::Half => 2,
            MemWidth::Word => 4,
        }
    }
}

/// Branch comparison condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum BranchCond {
    Eq,
    Ne,
    Lt,
    Ge,
    Ltu,
    Geu,
}

impl BranchCond {
    fn opcode(self) -> u32 {
        match self {
            BranchCond::Eq => 0x20,
            BranchCond::Ne => 0x21,
            BranchCond::Lt => 0x22,
            BranchCond::Ge => 0x23,
            BranchCond::Ltu => 0x24,
            BranchCond::Geu => 0x25,
        }
    }

    fn mnemonic(self) -> &'static str {
        match self {
            BranchCond::Eq => "beq",
            BranchCond::Ne => "bne",
            BranchCond::Lt => "blt",
            BranchCond::Ge => "bge",
            BranchCond::Ltu => "bltu",
            BranchCond::Geu => "bgeu",
        }
    }

    /// Evaluates the condition on two register values.
    #[must_use]
    pub fn eval(self, a: u32, b: u32) -> bool {
        match self {
            BranchCond::Eq => a == b,
            BranchCond::Ne => a != b,
            BranchCond::Lt => (a as i32) < (b as i32),
            BranchCond::Ge => (a as i32) >= (b as i32),
            BranchCond::Ltu => a < b,
            BranchCond::Geu => a >= b,
        }
    }
}

/// One frv-lite instruction.
///
/// The encoding is a fixed 32-bit word: opcode in bits \[31:26\], `rd` in
/// \[25:21\], `rs1` in \[20:16\], then either `rs2` \[15:11\] + function
/// code \[10:0\] or a 16-bit immediate \[15:0\]. A zero word is illegal by
/// construction (opcode 0 is unassigned) so a runaway PC traps quickly.
///
/// ```
/// use waymem_isa::Inst;
///
/// let word = Inst::Halt.encode();
/// assert_eq!(Inst::decode(word), Some(Inst::Halt));
/// assert_eq!(Inst::decode(0), None);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Inst {
    /// Register–register ALU operation: `rd = rs1 op rs2`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// First source.
        rs1: Reg,
        /// Second source.
        rs2: Reg,
    },
    /// Register–immediate ALU operation: `rd = rs1 op imm`.
    AluImm {
        /// Operation.
        op: AluImmOp,
        /// Destination register.
        rd: Reg,
        /// Source register.
        rs1: Reg,
        /// Sign-extended immediate (shift ops use the low 5 bits).
        imm: i16,
    },
    /// Load upper immediate: `rd = imm << 16`.
    Lui {
        /// Destination register.
        rd: Reg,
        /// Upper half-word.
        imm: u16,
    },
    /// Memory load: `rd = mem[rs1 + imm]`.
    Load {
        /// Access width.
        width: MemWidth,
        /// Sign-extend sub-word loads when `true`.
        signed: bool,
        /// Destination register.
        rd: Reg,
        /// Base address register.
        rs1: Reg,
        /// Signed displacement.
        imm: i16,
    },
    /// Memory store: `mem[rs1 + imm] = rs2`.
    Store {
        /// Access width.
        width: MemWidth,
        /// Data register.
        rs2: Reg,
        /// Base address register.
        rs1: Reg,
        /// Signed displacement.
        imm: i16,
    },
    /// Conditional PC-relative branch: `if cond(rs1, rs2) pc += offset`.
    Branch {
        /// Comparison condition.
        cond: BranchCond,
        /// First comparand.
        rs1: Reg,
        /// Second comparand.
        rs2: Reg,
        /// Signed byte offset from the branch's own PC.
        offset: i16,
    },
    /// Jump and link: `rd = pc + 4; pc += offset`.
    Jal {
        /// Link destination (often `ra`, or `zero` for a plain jump).
        rd: Reg,
        /// Signed byte offset from the jump's own PC.
        offset: i16,
    },
    /// Indirect jump and link: `rd = pc + 4; pc = rs1 + imm`.
    Jalr {
        /// Link destination.
        rd: Reg,
        /// Target base register (`ra` for a return).
        rs1: Reg,
        /// Signed displacement.
        imm: i16,
    },
    /// Stops the CPU.
    Halt,
}

const OP_ALU: u32 = 0x01;
const OP_LUI: u32 = 0x0c;
const OP_LB: u32 = 0x10;
const OP_LBU: u32 = 0x11;
const OP_LH: u32 = 0x12;
const OP_LHU: u32 = 0x13;
const OP_LW: u32 = 0x14;
const OP_SB: u32 = 0x18;
const OP_SH: u32 = 0x19;
const OP_SW: u32 = 0x1a;
const OP_JAL: u32 = 0x28;
const OP_JALR: u32 = 0x29;
const OP_HALT: u32 = 0x3f;

fn pack(opcode: u32, rd: u32, rs1: u32, low: u32) -> u32 {
    (opcode << 26) | (rd << 21) | (rs1 << 16) | (low & 0xffff)
}

impl Inst {
    /// Encodes the instruction into its 32-bit word.
    #[must_use]
    pub fn encode(self) -> u32 {
        match self {
            Inst::Alu { op, rd, rs1, rs2 } => pack(
                OP_ALU,
                rd.index() as u32,
                rs1.index() as u32,
                ((rs2.index() as u32) << 11) | op.funct(),
            ),
            Inst::AluImm { op, rd, rs1, imm } => pack(
                op.opcode(),
                rd.index() as u32,
                rs1.index() as u32,
                imm as u16 as u32,
            ),
            Inst::Lui { rd, imm } => pack(OP_LUI, rd.index() as u32, 0, u32::from(imm)),
            Inst::Load {
                width,
                signed,
                rd,
                rs1,
                imm,
            } => {
                let opcode = match (width, signed) {
                    (MemWidth::Byte, true) => OP_LB,
                    (MemWidth::Byte, false) => OP_LBU,
                    (MemWidth::Half, true) => OP_LH,
                    (MemWidth::Half, false) => OP_LHU,
                    (MemWidth::Word, _) => OP_LW,
                };
                pack(opcode, rd.index() as u32, rs1.index() as u32, imm as u16 as u32)
            }
            Inst::Store {
                width,
                rs2,
                rs1,
                imm,
            } => {
                let opcode = match width {
                    MemWidth::Byte => OP_SB,
                    MemWidth::Half => OP_SH,
                    MemWidth::Word => OP_SW,
                };
                pack(opcode, rs2.index() as u32, rs1.index() as u32, imm as u16 as u32)
            }
            Inst::Branch {
                cond,
                rs1,
                rs2,
                offset,
            } => pack(
                cond.opcode(),
                rs1.index() as u32,
                rs2.index() as u32,
                offset as u16 as u32,
            ),
            Inst::Jal { rd, offset } => {
                pack(OP_JAL, rd.index() as u32, 0, offset as u16 as u32)
            }
            Inst::Jalr { rd, rs1, imm } => pack(
                OP_JALR,
                rd.index() as u32,
                rs1.index() as u32,
                imm as u16 as u32,
            ),
            Inst::Halt => pack(OP_HALT, 0, 0, 0),
        }
    }

    /// Decodes a 32-bit word, or returns `None` for illegal encodings.
    #[must_use]
    pub fn decode(word: u32) -> Option<Inst> {
        let opcode = word >> 26;
        let rd = Reg::new(((word >> 21) & 0x1f) as u8)?;
        let rs1 = Reg::new(((word >> 16) & 0x1f) as u8)?;
        let imm = (word & 0xffff) as u16 as i16;
        let inst = match opcode {
            OP_ALU => {
                let rs2 = Reg::new(((word >> 11) & 0x1f) as u8)?;
                let op = AluOp::from_funct(word & 0x7ff)?;
                Inst::Alu { op, rd, rs1, rs2 }
            }
            0x04..=0x0b => {
                let op = match opcode {
                    0x04 => AluImmOp::Addi,
                    0x05 => AluImmOp::Andi,
                    0x06 => AluImmOp::Ori,
                    0x07 => AluImmOp::Xori,
                    0x08 => AluImmOp::Slti,
                    0x09 => AluImmOp::Slli,
                    0x0a => AluImmOp::Srli,
                    _ => AluImmOp::Srai,
                };
                Inst::AluImm { op, rd, rs1, imm }
            }
            OP_LUI => Inst::Lui {
                rd,
                imm: (word & 0xffff) as u16,
            },
            OP_LB | OP_LBU | OP_LH | OP_LHU | OP_LW => {
                let (width, signed) = match opcode {
                    OP_LB => (MemWidth::Byte, true),
                    OP_LBU => (MemWidth::Byte, false),
                    OP_LH => (MemWidth::Half, true),
                    OP_LHU => (MemWidth::Half, false),
                    _ => (MemWidth::Word, true),
                };
                Inst::Load {
                    width,
                    signed,
                    rd,
                    rs1,
                    imm,
                }
            }
            OP_SB | OP_SH | OP_SW => {
                let width = match opcode {
                    OP_SB => MemWidth::Byte,
                    OP_SH => MemWidth::Half,
                    _ => MemWidth::Word,
                };
                Inst::Store {
                    width,
                    rs2: rd,
                    rs1,
                    imm,
                }
            }
            0x20..=0x25 => {
                let cond = match opcode {
                    0x20 => BranchCond::Eq,
                    0x21 => BranchCond::Ne,
                    0x22 => BranchCond::Lt,
                    0x23 => BranchCond::Ge,
                    0x24 => BranchCond::Ltu,
                    _ => BranchCond::Geu,
                };
                Inst::Branch {
                    cond,
                    rs1: rd,
                    rs2: rs1,
                    offset: imm,
                }
            }
            OP_JAL => Inst::Jal { rd, offset: imm },
            OP_JALR => Inst::Jalr { rd, rs1, imm },
            OP_HALT if word & 0x03ff_ffff == 0 => Inst::Halt,
            _ => return None,
        };
        Some(inst)
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Inst::Alu { op, rd, rs1, rs2 } => {
                write!(f, "{} {rd}, {rs1}, {rs2}", op.mnemonic())
            }
            Inst::AluImm { op, rd, rs1, imm } => {
                write!(f, "{} {rd}, {rs1}, {imm}", op.mnemonic())
            }
            Inst::Lui { rd, imm } => write!(f, "lui {rd}, {:#x}", imm),
            Inst::Load {
                width,
                signed,
                rd,
                rs1,
                imm,
            } => {
                let m = match (width, signed) {
                    (MemWidth::Byte, true) => "lb",
                    (MemWidth::Byte, false) => "lbu",
                    (MemWidth::Half, true) => "lh",
                    (MemWidth::Half, false) => "lhu",
                    (MemWidth::Word, _) => "lw",
                };
                write!(f, "{m} {rd}, {imm}({rs1})")
            }
            Inst::Store {
                width,
                rs2,
                rs1,
                imm,
            } => {
                let m = match width {
                    MemWidth::Byte => "sb",
                    MemWidth::Half => "sh",
                    MemWidth::Word => "sw",
                };
                write!(f, "{m} {rs2}, {imm}({rs1})")
            }
            Inst::Branch {
                cond,
                rs1,
                rs2,
                offset,
            } => write!(f, "{} {rs1}, {rs2}, {offset}", cond.mnemonic()),
            Inst::Jal { rd, offset } => write!(f, "jal {rd}, {offset}"),
            Inst::Jalr { rd, rs1, imm } => write!(f, "jalr {rd}, {imm}({rs1})"),
            Inst::Halt => write!(f, "halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u8) -> Reg {
        Reg::new(i).unwrap()
    }

    fn all_samples() -> Vec<Inst> {
        let mut v = vec![
            Inst::Halt,
            Inst::Lui { rd: r(5), imm: 0xffff },
            Inst::Jal {
                rd: Reg::RA,
                offset: -4,
            },
            Inst::Jalr {
                rd: Reg::ZERO,
                rs1: Reg::RA,
                imm: 0,
            },
        ];
        for op in AluOp::ALL {
            v.push(Inst::Alu {
                op,
                rd: r(31),
                rs1: r(1),
                rs2: r(17),
            });
        }
        for op in [
            AluImmOp::Addi,
            AluImmOp::Andi,
            AluImmOp::Ori,
            AluImmOp::Xori,
            AluImmOp::Slti,
            AluImmOp::Slli,
            AluImmOp::Srli,
            AluImmOp::Srai,
        ] {
            v.push(Inst::AluImm {
                op,
                rd: r(2),
                rs1: r(3),
                imm: -32768,
            });
        }
        for (width, signed) in [
            (MemWidth::Byte, true),
            (MemWidth::Byte, false),
            (MemWidth::Half, true),
            (MemWidth::Half, false),
            (MemWidth::Word, true),
        ] {
            v.push(Inst::Load {
                width,
                signed,
                rd: r(9),
                rs1: r(10),
                imm: 32767,
            });
        }
        for width in [MemWidth::Byte, MemWidth::Half, MemWidth::Word] {
            v.push(Inst::Store {
                width,
                rs2: r(11),
                rs1: r(12),
                imm: -1,
            });
        }
        for cond in [
            BranchCond::Eq,
            BranchCond::Ne,
            BranchCond::Lt,
            BranchCond::Ge,
            BranchCond::Ltu,
            BranchCond::Geu,
        ] {
            v.push(Inst::Branch {
                cond,
                rs1: r(4),
                rs2: r(5),
                offset: 1024,
            });
        }
        v
    }

    #[test]
    fn encode_decode_round_trip() {
        for inst in all_samples() {
            let word = inst.encode();
            assert_eq!(Inst::decode(word), Some(inst), "word {word:#010x}");
        }
    }

    #[test]
    fn zero_word_is_illegal() {
        assert_eq!(Inst::decode(0), None);
        assert_eq!(Inst::decode(0xffff_ffff), None); // opcode 0x3f but junk fields
    }

    #[test]
    fn halt_with_junk_fields_rejected() {
        // OP_HALT with non-zero rd decodes as Halt? Our decoder ignores
        // fields for Halt; 0xffff_ffff has opcode 0x3f and decodes via
        // Reg::new(0x1f) fine... verify the actual behaviour is total.
        let w = Inst::Halt.encode();
        assert_eq!(w >> 26, 0x3f);
        assert_eq!(Inst::decode(w), Some(Inst::Halt));
    }

    #[test]
    fn branch_cond_semantics() {
        assert!(BranchCond::Eq.eval(5, 5));
        assert!(BranchCond::Ne.eval(5, 6));
        assert!(BranchCond::Lt.eval(-1i32 as u32, 0));
        assert!(!BranchCond::Ltu.eval(-1i32 as u32, 0));
        assert!(BranchCond::Ge.eval(0, -1i32 as u32));
        assert!(BranchCond::Geu.eval(-1i32 as u32, 0));
    }

    #[test]
    fn display_is_readable() {
        let i = Inst::Load {
            width: MemWidth::Word,
            signed: true,
            rd: r(10),
            rs1: Reg::SP,
            imm: -8,
        };
        assert_eq!(i.to_string(), "lw a0, -8(sp)");
        assert_eq!(Inst::Halt.to_string(), "halt");
    }

    #[test]
    fn immediate_extremes_survive() {
        for imm in [i16::MIN, -1, 0, 1, i16::MAX] {
            let i = Inst::AluImm {
                op: AluImmOp::Addi,
                rd: r(1),
                rs1: r(2),
                imm,
            };
            assert_eq!(Inst::decode(i.encode()), Some(i));
        }
    }
}
