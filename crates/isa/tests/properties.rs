//! Property-based tests for the frv-lite ISA: encoding totality,
//! display/parse agreement, and interpreter robustness under random
//! programs.

use proptest::prelude::*;
use waymem_isa::{
    assemble, AluImmOp, AluOp, BranchCond, Cpu, Inst, MemWidth, NullSink, Program, Reg,
};

fn regs() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(|i| Reg::new(i).expect("in range"))
}

fn alu_ops() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Sll),
        Just(AluOp::Srl),
        Just(AluOp::Sra),
        Just(AluOp::Slt),
        Just(AluOp::Sltu),
        Just(AluOp::Mul),
        Just(AluOp::Mulhu),
        Just(AluOp::Div),
        Just(AluOp::Rem),
    ]
}

fn alu_imm_ops() -> impl Strategy<Value = AluImmOp> {
    prop_oneof![
        Just(AluImmOp::Addi),
        Just(AluImmOp::Andi),
        Just(AluImmOp::Ori),
        Just(AluImmOp::Xori),
        Just(AluImmOp::Slti),
        Just(AluImmOp::Slli),
        Just(AluImmOp::Srli),
        Just(AluImmOp::Srai),
    ]
}

fn insts() -> impl Strategy<Value = Inst> {
    prop_oneof![
        (alu_ops(), regs(), regs(), regs())
            .prop_map(|(op, rd, rs1, rs2)| Inst::Alu { op, rd, rs1, rs2 }),
        (alu_imm_ops(), regs(), regs(), any::<i16>())
            .prop_map(|(op, rd, rs1, imm)| Inst::AluImm { op, rd, rs1, imm }),
        (regs(), any::<u16>()).prop_map(|(rd, imm)| Inst::Lui { rd, imm }),
        (regs(), regs(), any::<i16>(), any::<bool>(), 0u8..3).prop_map(
            |(rd, rs1, imm, signed, w)| Inst::Load {
                width: [MemWidth::Byte, MemWidth::Half, MemWidth::Word][w as usize],
                signed: w == 2 || signed,
                rd,
                rs1,
                imm,
            }
        ),
        (regs(), regs(), any::<i16>(), 0u8..3).prop_map(|(rs2, rs1, imm, w)| Inst::Store {
            width: [MemWidth::Byte, MemWidth::Half, MemWidth::Word][w as usize],
            rs2,
            rs1,
            imm,
        }),
        (regs(), regs(), any::<i16>(), 0u8..6).prop_map(|(rs1, rs2, offset, c)| {
            Inst::Branch {
                cond: [
                    BranchCond::Eq,
                    BranchCond::Ne,
                    BranchCond::Lt,
                    BranchCond::Ge,
                    BranchCond::Ltu,
                    BranchCond::Geu,
                ][c as usize],
                rs1,
                rs2,
                offset,
            }
        }),
        (regs(), any::<i16>()).prop_map(|(rd, offset)| Inst::Jal { rd, offset }),
        (regs(), regs(), any::<i16>()).prop_map(|(rd, rs1, imm)| Inst::Jalr { rd, rs1, imm }),
        Just(Inst::Halt),
    ]
}

proptest! {
    /// Every constructible instruction encodes and decodes losslessly.
    #[test]
    fn encode_decode_round_trip(inst in insts()) {
        prop_assert_eq!(Inst::decode(inst.encode()), Some(inst));
    }

    /// Decoding is total and never panics; decodable words re-encode to a
    /// word that decodes to the same instruction (canonicalization).
    #[test]
    fn decode_is_total_and_stable(word: u32) {
        if let Some(inst) = Inst::decode(word) {
            prop_assert_eq!(Inst::decode(inst.encode()), Some(inst));
        }
    }

    /// Non-control, non-memory instructions survive a display → assemble
    /// round trip (the disassembler speaks the assembler's syntax).
    #[test]
    fn display_reassembles(inst in insts()) {
        let reparseable = matches!(
            inst,
            Inst::Alu { .. } | Inst::AluImm { .. } | Inst::Load { .. } | Inst::Store { .. }
        );
        prop_assume!(reparseable);
        let src = format!(".text\nmain: {inst}\n");
        let prog = assemble(&src).expect("disassembly must be valid assembly");
        prop_assert_eq!(Inst::decode(prog.text()[0]), Some(inst));
    }

    /// The CPU never panics on random (even illegal) programs: it either
    /// halts, faults cleanly, or runs out of budget; and register 0 stays
    /// zero throughout.
    #[test]
    fn cpu_is_total_on_random_words(words in prop::collection::vec(any::<u32>(), 1..64)) {
        let prog = Program::from_parts(
            waymem_isa::TEXT_BASE,
            words,
            waymem_isa::DATA_BASE,
            vec![],
            waymem_isa::TEXT_BASE,
            Default::default(),
        );
        let mut cpu = Cpu::new(&prog);
        let _ = cpu.run(10_000, &mut NullSink);
        prop_assert_eq!(cpu.reg(0), 0);
    }

    /// Structured random ALU programs terminate with the same results as
    /// a direct Rust evaluation of the same operation sequence.
    #[test]
    fn alu_programs_match_reference(
        ops in prop::collection::vec((alu_ops(), 1u8..8, 1u8..8, 1u8..8), 1..40),
        seeds in prop::collection::vec(any::<u32>(), 8),
    ) {
        // Build: load seeds into x1..x8, run the op list, halt.
        let mut insts: Vec<Inst> = Vec::new();
        for (i, &seed) in seeds.iter().enumerate() {
            let rd = Reg::new(i as u8 + 1).unwrap();
            insts.push(Inst::Lui { rd, imm: (seed >> 16) as u16 });
            insts.push(Inst::AluImm {
                op: AluImmOp::Ori,
                rd,
                rs1: rd,
                imm: (seed & 0xffff) as u16 as i16,
            });
        }
        for &(op, rd, rs1, rs2) in &ops {
            insts.push(Inst::Alu {
                op,
                rd: Reg::new(rd).unwrap(),
                rs1: Reg::new(rs1).unwrap(),
                rs2: Reg::new(rs2).unwrap(),
            });
        }
        insts.push(Inst::Halt);
        let prog = Program::from_insts(&insts);
        let mut cpu = Cpu::new(&prog);
        let out = cpu.run(1000, &mut NullSink).expect("no faults");
        prop_assert!(out.halted());

        // Reference evaluation.
        let mut regs = [0u32; 9];
        regs[1..9].copy_from_slice(&seeds[..8]);
        for &(op, rd, rs1, rs2) in &ops {
            let (a, b) = (regs[rs1 as usize], regs[rs2 as usize]);
            regs[rd as usize] = reference_alu(op, a, b);
        }
        for (i, &want) in regs.iter().enumerate().skip(1) {
            prop_assert_eq!(cpu.reg(i), want, "register x{}", i);
        }
    }
}

fn reference_alu(op: AluOp, a: u32, b: u32) -> u32 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Sll => a.wrapping_shl(b & 31),
        AluOp::Srl => a.wrapping_shr(b & 31),
        AluOp::Sra => ((a as i32).wrapping_shr(b & 31)) as u32,
        AluOp::Slt => u32::from((a as i32) < (b as i32)),
        AluOp::Sltu => u32::from(a < b),
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Mulhu => ((u64::from(a) * u64::from(b)) >> 32) as u32,
        AluOp::Div => {
            if b == 0 {
                u32::MAX
            } else if a == 0x8000_0000 && b == u32::MAX {
                a
            } else {
                ((a as i32).wrapping_div(b as i32)) as u32
            }
        }
        AluOp::Rem => {
            if b == 0 {
                a
            } else if a == 0x8000_0000 && b == u32::MAX {
                0
            } else {
                ((a as i32).wrapping_rem(b as i32)) as u32
            }
        }
    }
}
