//! Chaos layer for the disk-backed trace store: under any seeded
//! [`FaultPlan`] — short reads/writes, `EINTR`, out-of-space, byte
//! corruption — every store operation must return either a structured
//! `Err` or a bit-identical result, never panic, and never leave the
//! cache directory in a state a fault-free store cannot recover from.
//!
//! The second half simulates a writer killed mid-record (a torn `.wmtr`
//! plus an orphaned temp file from a dead pid) and proves the next store
//! over the directory quarantines, sweeps and transparently re-records.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;
use waymem_isa::{FetchKind, RecordedTrace, RecordingSink, TraceEvent};
use waymem_trace::fault::TEMP_SUFFIX;
use waymem_trace::{
    codec, FaultPlan, StoreIo, StreamError, TraceStore, WorkloadId, QUARANTINE_DIR,
};

/// A scratch cache directory under the system temp dir, removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "waymem-chaos-{tag}-{}-{n}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A small but multi-window-exercising trace (distinct per `cycles` so
/// staleness bugs cannot alias two cases).
fn sample_trace(cycles: u64) -> RecordedTrace {
    RecordedTrace {
        fetch_events: (0..64)
            .map(|k| TraceEvent::Fetch { pc: 4 * k, kind: FetchKind::Sequential })
            .collect(),
        data_events: (0..64)
            .map(|k| TraceEvent::Load { base: 8 * k, disp: 4, addr: 8 * k + 4, size: 4 })
            .collect(),
        cycles,
    }
}

/// A store over `dir` whose every disk touch goes through a fault plan
/// seeded with `seed`.
fn armed_store(dir: &TempDir, seed: u64) -> TraceStore {
    TraceStore::with_cache_dir(&dir.0).with_io(StoreIo::with_plan(FaultPlan::new(seed)))
}

/// No `*.tmp` litter at the cache dir's top level: atomic writes either
/// rename into place or clean up after themselves, even under faults.
fn assert_no_temp_litter(dir: &TempDir) {
    if let Ok(entries) = std::fs::read_dir(&dir.0) {
        for entry in entries.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            assert!(!name.ends_with(TEMP_SUFFIX), "temp file {name} left behind");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The chaos contract, per seeded plan: (1) an armed store always
    /// serves the correct trace through `get_or_record` (disk faults are
    /// absorbed — retried, quarantined or re-recorded — never surfaced);
    /// (2) a second armed store over the same dir, exercising the disk
    /// path, returns a bit-identical trace; (3) `open_stream` + replay
    /// returns either a structured `Err` or exactly the encoded events;
    /// (4) a fault-free store over the leftover directory always
    /// succeeds — whatever the faults did, the dir is never poisoned.
    #[test]
    fn any_fault_plan_yields_err_or_identical_results_and_never_poisons(
        seed in any::<u64>(),
        hash in 1u64..=u64::MAX,
    ) {
        let dir = TempDir::new("plan");
        let key = WorkloadId::External { hash };
        let trace = sample_trace(hash % 1000);

        // (1) Armed store, cold record: must serve the exact trace.
        let store = armed_store(&dir, seed);
        let got = store
            .get_or_record(key, hash, || Ok::<_, StreamError>(trace.clone()))
            .expect("get_or_record absorbs disk faults");
        prop_assert_eq!(&*got, &trace);
        drop(store);

        // (2) Fresh armed store: the disk path (possibly a quarantine +
        // re-record) must still come back bit-identical.
        let store = armed_store(&dir, seed.wrapping_add(1));
        let again = store
            .get_or_record(key, hash, || Ok::<_, StreamError>(trace.clone()))
            .expect("warm/self-healing lookup absorbs disk faults");
        prop_assert_eq!(&*again, &trace);
        drop(store);

        // (3) Streaming open: structured Err or exactly the events.
        let store = armed_store(&dir, seed.wrapping_add(2));
        let encoded = codec::encode_with_hash(&trace, hash);
        match store.open_stream::<StreamError>(key, hash, |path| {
            std::fs::write(path, &encoded).map_err(StreamError::Io)
        }) {
            Ok(st) => {
                let mut rec = RecordingSink::default();
                match st.replay(&mut rec) {
                    Ok(n) => {
                        prop_assert_eq!(n as usize, trace.len());
                        let mut expected = trace.fetch_events.clone();
                        expected.extend_from_slice(&trace.data_events);
                        prop_assert_eq!(&rec.events, &expected);
                    }
                    Err(e) => prop_assert!(!e.to_string().is_empty()),
                }
            }
            Err(e) => prop_assert!(!e.to_string().is_empty()),
        }
        drop(store);

        // (4) Fault-free store over the same dir: always recovers.
        let clean = TraceStore::with_cache_dir(&dir.0);
        let healed = clean
            .get_or_record(key, hash, || Ok::<_, StreamError>(trace.clone()))
            .expect("fault-free reopen succeeds");
        prop_assert_eq!(&*healed, &trace);
        assert_no_temp_litter(&dir);
    }
}

/// A writer killed mid-record leaves a torn `.wmtr` and an orphaned
/// temp file behind. The next store over the directory must sweep the
/// orphan, quarantine the torn file, re-record transparently — and the
/// store after *that* must disk-hit the healed copy.
#[test]
fn kill_mid_record_heals_with_exactly_one_quarantine_and_re_record() {
    let dir = TempDir::new("kill");
    let key = WorkloadId::External { hash: 0xDEAD };
    let trace = sample_trace(9);

    // Seed a valid cache file, then tear it: keep a prefix long enough
    // to parse as a header but fail the checksum — the shape a SIGKILL
    // between write and rename-fsync leaves on disk.
    let full = codec::encode_with_hash(&trace, 0xDEAD);
    std::fs::create_dir_all(&dir.0).expect("mkdir");
    let wmtr = dir.0.join(key.file_name());
    std::fs::write(&wmtr, &full[..full.len() - 10]).expect("write torn file");
    // And the dead writer's half-finished temp (pid far above any real
    // one, so /proc declares it dead).
    let orphan = dir.0.join(format!("{}.p4294000000-0{TEMP_SUFFIX}", key.file_name()));
    std::fs::write(&orphan, b"partial").expect("write orphan");

    let store = TraceStore::with_cache_dir(&dir.0);
    let mut recordings = 0;
    let got = store
        .get_or_record(key, 0xDEAD, || {
            recordings += 1;
            Ok::<_, StreamError>(trace.clone())
        })
        .expect("recovery lookup succeeds");
    assert_eq!(&*got, &trace);
    assert_eq!(recordings, 1, "exactly one re-record");
    let stats = store.stats();
    assert_eq!(
        (stats.quarantined, stats.records, stats.recovered, stats.disk_hits),
        (1, 1, 1, 0),
        "exactly one quarantine + one recovery"
    );
    if std::path::Path::new("/proc/self").exists() {
        assert!(!orphan.exists(), "dead writer's temp file must be swept");
    }
    let qdir = dir.0.join(QUARANTINE_DIR);
    let quarantined = std::fs::read_dir(&qdir).map(|d| d.count()).unwrap_or(0);
    assert_eq!(quarantined, 1, "torn file moved into {QUARANTINE_DIR}/");
    drop(store);

    // The healed file is a normal disk hit for the next process.
    let next = TraceStore::with_cache_dir(&dir.0);
    let warm = next
        .get_or_record(key, 0xDEAD, || Ok::<_, StreamError>(sample_trace(999)))
        .expect("healed file serves");
    assert_eq!(&*warm, &trace);
    let stats = next.stats();
    assert_eq!((stats.disk_hits, stats.records, stats.quarantined), (1, 0, 0));
}

/// Faults counted on the I/O seam surface in the exported stats: an
/// armed store that had to retry reports a nonzero `io_retries`, and a
/// passthrough store reports zero.
#[test]
fn io_retries_surface_in_store_stats() {
    let clean = TraceStore::new();
    assert_eq!(clean.stats().io_retries, 0);

    // Period 1 injects on every opportunity; driving a batch of keys
    // through the save/load paths guarantees at least one transient gets
    // dealt (a single save can die early to a non-transient fault).
    let dir = TempDir::new("retries");
    let store = TraceStore::with_cache_dir(&dir.0)
        .with_io(StoreIo::with_plan(FaultPlan::new(3).with_period(1)));
    let trace = sample_trace(1);
    for hash in 1..=16u64 {
        let _ = store.get_or_record(WorkloadId::External { hash }, hash, || {
            Ok::<_, StreamError>(trace.clone())
        });
    }
    assert!(
        store.stats().io_retries > 0,
        "period-1 plan must force at least one retry"
    );
}
