//! Property-based tests for the trace codec: `encode → decode` is the
//! identity on arbitrary event streams, streaming replay agrees with
//! materializing, and malformed buffers (corrupt headers, truncations,
//! bit flips) always come back as `Err` — never a panic, never silently
//! wrong data.

use proptest::prelude::*;
use waymem_isa::{CountingSink, FetchKind, RecordedTrace, RecordingSink, TraceEvent, TraceSink};
use waymem_trace::{codec, CodecError};

fn fetch_kinds() -> impl Strategy<Value = FetchKind> {
    prop_oneof![
        Just(FetchKind::Sequential),
        (any::<u32>(), any::<i32>())
            .prop_map(|(base, disp)| FetchKind::TakenBranch { base, disp }),
        any::<u32>().prop_map(|target| FetchKind::LinkReturn { target }),
        (any::<u32>(), any::<i32>()).prop_map(|(base, disp)| FetchKind::Indirect { base, disp }),
    ]
}

fn events() -> impl Strategy<Value = TraceEvent> {
    prop_oneof![
        (any::<u32>(), fetch_kinds()).prop_map(|(pc, kind)| TraceEvent::Fetch { pc, kind }),
        (any::<u32>(), any::<i32>(), any::<u32>(), any::<u8>())
            .prop_map(|(base, disp, addr, size)| TraceEvent::Load { base, disp, addr, size }),
        (any::<u32>(), any::<i32>(), any::<u32>(), any::<u8>())
            .prop_map(|(base, disp, addr, size)| TraceEvent::Store { base, disp, addr, size }),
    ]
}

fn traces() -> impl Strategy<Value = RecordedTrace> {
    (
        prop::collection::vec(events(), 0..200),
        prop::collection::vec(events(), 0..200),
        any::<u64>(),
    )
        .prop_map(|(fetch_events, data_events, cycles)| RecordedTrace {
            fetch_events,
            data_events,
            cycles,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The fundamental codec contract: decode(encode(t)) == t for any
    /// stream — even "impossible" ones (stores in the fetch section,
    /// absurd sizes, addr ≠ base + disp). The codec must not assume the
    /// CPU's invariants.
    #[test]
    fn encode_decode_is_identity(trace in traces()) {
        let bytes = codec::encode(&trace);
        let decoded = codec::decode(&bytes).expect("valid encoding must decode");
        prop_assert_eq!(decoded, trace);
    }

    /// Streaming replay visits exactly the encoded events, in order,
    /// through the batched sink entry point.
    #[test]
    fn streaming_replay_equals_materialized_decode(trace in traces()) {
        let bytes = codec::encode(&trace);
        let dec = codec::Decoder::new(&bytes).expect("valid");
        let mut rec = RecordingSink::default();
        let replayed = dec.replay(&mut rec).expect("replays");
        prop_assert_eq!(replayed as usize, trace.len());
        let mut interleaved = trace.fetch_events.clone();
        interleaved.extend_from_slice(&trace.data_events);
        prop_assert_eq!(rec.events, interleaved);

        let mut counter = CountingSink::default();
        dec.replay(&mut counter).expect("replays");
        prop_assert_eq!(counter.fetches + counter.loads + counter.stores, trace.len() as u64);
    }

    /// Every strict prefix of a valid encoding is an error (truncated
    /// downloads, torn writes), and decoding it never panics.
    #[test]
    fn truncations_error_cleanly(trace in traces(), cut in any::<u16>()) {
        let bytes = codec::encode(&trace);
        let len = usize::from(cut) % bytes.len();
        prop_assert!(codec::decode(&bytes[..len]).is_err());
    }

    /// Any single corrupted byte is detected: the magic check catches
    /// the first four bytes, the FNV-1a checksum everything else.
    #[test]
    fn single_byte_corruption_is_detected(
        trace in traces(),
        at in any::<u32>(),
        flip in 1u8..=255,
    ) {
        let mut bytes = codec::encode(&trace);
        let at = (at as usize) % bytes.len();
        bytes[at] ^= flip;
        prop_assert!(codec::decode(&bytes).is_err(), "corruption at byte {} survived", at);
    }

    /// Arbitrary garbage never decodes to `Ok` by accident (the header
    /// alone makes that astronomically unlikely) and never panics.
    #[test]
    fn random_buffers_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        prop_assert!(codec::decode(&bytes).is_err(), "random bytes decoded");
    }
}

#[test]
fn corrupt_header_variants_map_to_specific_errors() {
    let trace = RecordedTrace {
        fetch_events: vec![TraceEvent::Fetch { pc: 8, kind: FetchKind::Sequential }],
        data_events: vec![],
        cycles: 1,
    };
    let good = codec::encode(&trace);

    let mut bad_magic = good.clone();
    bad_magic[1] = b'X';
    assert!(matches!(codec::decode(&bad_magic), Err(CodecError::BadMagic(_))));

    let mut bad_version = good.clone();
    bad_version[4] = 99;
    assert!(matches!(
        codec::decode(&bad_version),
        Err(CodecError::UnsupportedVersion(99))
    ));

    // Growing the buffer without touching the header is a length error.
    let mut padded = good.clone();
    padded.push(0);
    assert!(matches!(
        codec::decode(&padded),
        Err(CodecError::LengthMismatch { .. })
    ));

    // A payload flip (with lengths intact) is a checksum error.
    let mut flipped = good.clone();
    let payload_at = codec::HEADER_LEN; // first event's tag byte
    flipped[payload_at] ^= 0x40;
    assert!(matches!(
        codec::decode(&flipped),
        Err(CodecError::BadChecksum { .. })
    ));

    assert!(codec::decode(&good).is_ok(), "control: pristine buffer decodes");
}

/// The error type is part of the API: it must render and compose.
#[test]
fn codec_errors_display_and_source() {
    let err = codec::decode(&[]).expect_err("empty buffer");
    assert_eq!(err, CodecError::Truncated);
    let rendered = format!("{err}");
    assert!(rendered.contains("truncated"), "{rendered}");
    let boxed: Box<dyn std::error::Error> = Box::new(err);
    assert!(boxed.source().is_none());
}

/// A sink that panics on any event: proves error paths in replay are hit
/// before events are fabricated from corrupt sections.
struct PanicSink;

impl TraceSink for PanicSink {
    fn events(&mut self, batch: &[TraceEvent]) {
        assert!(batch.is_empty(), "corrupt section must not emit events");
    }
}

#[test]
fn corrupt_section_does_not_emit_phantom_events() {
    // Build a buffer whose header/checksum are valid but whose declared
    // event count exceeds the encoded events, by lying before sealing.
    let trace = RecordedTrace::default();
    let mut bytes = codec::encode(&trace);
    // Rewrite fetch_count to 5 and re-seal the checksum by re-encoding
    // manually: checksum covers bytes[4..len-4].
    bytes[8..16].copy_from_slice(&5u64.to_le_bytes());
    let inner = &bytes[4..bytes.len() - 4];
    let mut hash: u32 = 0x811c_9dc5;
    for &b in inner {
        hash ^= u32::from(b);
        hash = hash.wrapping_mul(0x0100_0193);
    }
    let len = bytes.len();
    bytes[len - 4..].copy_from_slice(&hash.to_le_bytes());
    // The decoder sees a self-consistent checksum but an impossible
    // count; it must error without handing any event to the sink.
    match codec::Decoder::new(&bytes) {
        Err(_) => {}
        Ok(dec) => {
            let mut sink = PanicSink;
            assert!(dec.replay(&mut sink).is_err());
        }
    }
}
