//! Property-based tests for the bounded-memory streaming layer: the
//! [`StreamingEncoder`] sink produces files byte-identical to the
//! materializing codec, [`StreamingTrace`] replay is invariant under the
//! batch size (including the off-by-one boundaries), and corrupt files
//! (truncations, bit flips, garbage) come back as structured `Err`s —
//! never a panic, never a partial replay.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;
use waymem_isa::{FetchKind, RecordedTrace, RecordingSink, TraceEvent, TraceSink};
use waymem_trace::{codec, Section, StreamError, StreamingEncoder, StreamingTrace};

/// A unique scratch path per test case; callers clean up best-effort,
/// the OS temp dir catches the rest.
fn scratch(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("waymem-stream-prop-{}-{n}-{tag}.wmtr", std::process::id()))
}

fn fetch_kinds() -> impl Strategy<Value = FetchKind> {
    prop_oneof![
        Just(FetchKind::Sequential),
        (any::<u32>(), any::<i32>())
            .prop_map(|(base, disp)| FetchKind::TakenBranch { base, disp }),
        any::<u32>().prop_map(|target| FetchKind::LinkReturn { target }),
        (any::<u32>(), any::<i32>()).prop_map(|(base, disp)| FetchKind::Indirect { base, disp }),
    ]
}

fn fetch_events() -> impl Strategy<Value = TraceEvent> {
    (any::<u32>(), fetch_kinds()).prop_map(|(pc, kind)| TraceEvent::Fetch { pc, kind })
}

fn data_events() -> impl Strategy<Value = TraceEvent> {
    (any::<u32>(), any::<i32>(), any::<u32>(), any::<u8>(), any::<bool>()).prop_map(
        |(base, disp, addr, size, is_store)| {
            if is_store {
                TraceEvent::Store { base, disp, addr, size }
            } else {
                TraceEvent::Load { base, disp, addr, size }
            }
        },
    )
}

/// Traces a [`StreamingEncoder`] can express: fetches in the fetch
/// section, loads/stores in the data section — the split every real
/// producer (CPU, parser, generator) emits.
fn traces() -> impl Strategy<Value = RecordedTrace> {
    (
        prop::collection::vec(fetch_events(), 0..200),
        prop::collection::vec(data_events(), 0..200),
        any::<u64>(),
    )
        .prop_map(|(fetch_events, data_events, cycles)| RecordedTrace {
            fetch_events,
            data_events,
            cycles,
        })
}

/// Pushes the trace through the sink interface in a program-order-ish
/// interleave (alternating sections), proving section routing — not
/// arrival order across sections — determines the file layout.
fn feed(sink: &mut StreamingEncoder, trace: &RecordedTrace) {
    let mut fetches = trace.fetch_events.iter();
    let mut data = trace.data_events.iter();
    loop {
        match (fetches.next(), data.next()) {
            (None, None) => return,
            (f, d) => {
                for &e in f.into_iter().chain(d) {
                    match e {
                        TraceEvent::Fetch { pc, kind } => sink.fetch(pc, kind),
                        TraceEvent::Load { base, disp, addr, size } => {
                            sink.load(base, disp, addr, size);
                        }
                        TraceEvent::Store { base, disp, addr, size } => {
                            sink.store(base, disp, addr, size);
                        }
                    }
                }
            }
        }
    }
}

/// The interleaved stream `StreamingTrace::replay` (fetch section, then
/// data section) must reproduce.
fn interleaved(trace: &RecordedTrace) -> Vec<TraceEvent> {
    let mut all = trace.fetch_events.clone();
    all.extend_from_slice(&trace.data_events);
    all
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The streaming sink's file is byte-identical to materializing the
    /// trace and encoding it in one shot — header, sections, checksum.
    #[test]
    fn streaming_sink_encode_matches_one_shot_encode(
        trace in traces(),
        source_hash in any::<u64>(),
    ) {
        let path = scratch("sink");
        let mut enc = StreamingEncoder::create(&path).expect("create encoder");
        feed(&mut enc, &trace);
        prop_assert_eq!(enc.event_count(), trace.len() as u64);
        let stats = enc.finish(trace.cycles, source_hash).expect("finish");
        let streamed = std::fs::read(&path).expect("read back");
        let _ = std::fs::remove_file(&path);
        prop_assert_eq!(stats.bytes, streamed.len() as u64);
        let one_shot = codec::encode_with_hash(&trace, source_hash);
        prop_assert_eq!(streamed, one_shot, "streamed file differs from one-shot encode");
    }

    /// Replay is invariant under the batch size: 1, len−1, len and
    /// len+extra all visit exactly the encoded events, in order, per
    /// section. (Batch 1 maximizes boundary crossings; len−1 leaves a
    /// one-event tail; > len must not over-read.)
    #[test]
    fn every_batch_size_replays_identically(trace in traces(), extra in 1usize..64) {
        let path = scratch("batch");
        let bytes = codec::encode_with_hash(&trace, 7);
        std::fs::write(&path, &bytes).expect("write file");
        let len = trace.len();
        let expected = interleaved(&trace);
        for batch in [1, len.saturating_sub(1).max(1), len.max(1), len + extra] {
            let st = StreamingTrace::open(&path).expect("open").with_batch(batch);
            let mut rec = RecordingSink::default();
            let replayed = st.replay(&mut rec).expect("replay");
            prop_assert_eq!(replayed as usize, len, "batch {}", batch);
            prop_assert_eq!(&rec.events, &expected, "batch {} changed the stream", batch);

            // Per-section replay must see exactly that section.
            let mut fetches = RecordingSink::default();
            st.replay_section(Section::Fetch, &mut fetches).expect("fetch section");
            prop_assert_eq!(&fetches.events, &trace.fetch_events);
            let mut data = RecordingSink::default();
            st.replay_section(Section::Data, &mut data).expect("data section");
            prop_assert_eq!(&data.events, &trace.data_events);
        }
        let _ = std::fs::remove_file(&path);
    }

    /// Every strict prefix of a valid file fails to open with a
    /// structured error — torn writes and truncated downloads cannot
    /// yield a handle that would replay a partial stream.
    #[test]
    fn truncations_error_cleanly(trace in traces(), cut in any::<u16>()) {
        let path = scratch("trunc");
        let bytes = codec::encode_with_hash(&trace, 3);
        let len = usize::from(cut) % bytes.len();
        std::fs::write(&path, &bytes[..len]).expect("write truncated");
        let err = StreamingTrace::open(&path).expect_err("truncation must not open");
        prop_assert!(!err.to_string().is_empty());
        let _ = std::fs::remove_file(&path);
    }

    /// Any single corrupted byte is rejected at open (magic or header
    /// check for the first bytes, the streamed FNV-1a checksum for the
    /// rest) — a flipped bit can never reach a front-end as an event.
    #[test]
    fn single_byte_corruption_is_detected(
        trace in traces(),
        at in any::<u32>(),
        flip in 1u8..=255,
    ) {
        let path = scratch("flip");
        let mut bytes = codec::encode_with_hash(&trace, 11);
        let at = (at as usize) % bytes.len();
        bytes[at] ^= flip;
        std::fs::write(&path, &bytes).expect("write corrupted");
        prop_assert!(
            StreamingTrace::open(&path).is_err(),
            "corruption at byte {} survived open",
            at
        );
        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn open_reports_structured_errors_for_missing_and_garbage_files() {
    let missing = StreamingTrace::open(std::path::Path::new(
        "/nonexistent/waymem-no-such-trace.wmtr",
    ))
    .expect_err("missing file");
    assert!(matches!(missing, StreamError::Io(_)), "{missing}");
    assert!(!missing.to_string().is_empty());

    let path = scratch("garbage");
    std::fs::write(&path, b"not a wmtr file at all").expect("write garbage");
    let err = StreamingTrace::open(&path).expect_err("garbage must not open");
    assert!(matches!(err, StreamError::Codec(_)), "{err}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn open_validates_the_whole_file_up_front() {
    // A checksum break far past the header is caught at open, before
    // any replay: the handle either exists and is fully validated, or
    // it never exists — there is no "opened but poisoned" state.
    let trace = RecordedTrace {
        fetch_events: (0..5_000)
            .map(|k| TraceEvent::Fetch { pc: 4 * k, kind: FetchKind::Sequential })
            .collect(),
        data_events: (0..1_000).map(|k| TraceEvent::load_at(8 * k, 4)).collect(),
        cycles: 5_000,
    };
    let mut bytes = codec::encode_with_hash(&trace, 1);
    let tail = bytes.len() - 16; // deep inside the data section
    bytes[tail] ^= 0x01;
    let path = scratch("deep-flip");
    std::fs::write(&path, &bytes).expect("write");
    assert!(StreamingTrace::open(&path).is_err(), "deep corruption survived");
    let _ = std::fs::remove_file(&path);
}
