//! # waymem-trace — trace storage for the way-memoization workbench
//!
//! The simulator's record-once/replay-in-parallel engine (PR 2) pays the
//! CPU-interpreter cost once *per `run_benchmark` call*. Sweeps call it
//! dozens of times with different cache geometries while the recorded
//! stream — which depends only on the benchmark and its scale — stays
//! identical. This crate makes traces first-class stored artifacts:
//!
//! * [`codec`] — a compact binary wire format for
//!   [`RecordedTrace`](waymem_isa::RecordedTrace) streams:
//!   delta-encoded addresses with varint lengths, split fetch/data
//!   sections, a versioned header with event counts and an FNV-1a
//!   integrity checksum. [`codec::encode_into`]/[`codec::decode`]
//!   materialize; [`codec::Decoder`] streams events straight into any
//!   [`TraceSink`](waymem_isa::TraceSink) through batched
//!   `events(&[TraceEvent])` calls without building a `Vec`.
//! * [`stream`] — the bounded-memory counterpart of the codec:
//!   [`StreamingEncoder`] sinks a producer's event stream straight to a
//!   `.wmtr` file (byte-identical to the slice encoder) and
//!   [`StreamingTrace`] replays from the file through a bounded window
//!   — neither ever holds the event vector, so multi-GB captures cost
//!   O(batch) resident memory.
//! * [`workload`] — [`WorkloadId`], the storage key: a built-in kernel at
//!   a scale, an external log identified by FNV-1a64 content hash, or a
//!   synthetic generator spec ([`SynthSpec`]) — plus the [`fnv1a64`]
//!   content-hash helpers everything shares.
//! * [`fault`] — the robustness seam: a seeded deterministic
//!   [`FaultPlan`] with an injecting I/O wrapper ([`FaultFile`]) and the
//!   [`StoreIo`] handle the store/stream disk paths route through —
//!   plus the crash-safety primitives (atomic temp+fsync+rename writes,
//!   bounded transient retry) production code uses whether or not a
//!   plan is armed.
//! * [`store`] — [`TraceStore`], a thread-safe cache keyed by
//!   [`WorkloadId`]: records on first miss, hands out shared
//!   `Arc` traces thereafter, counts hits/misses/bytes, detects *stale*
//!   cache files via the source hash the `.wmtr` v2 header embeds, and
//!   (optionally) persists recordings under a size-capped cache
//!   directory so repeated process invocations skip production entirely.
//!
//! `waymem-sim::run_benchmark_with_store` / `run_trace_with_store` and
//! `waymem-bench::run_suite_with_store` thread one store through whole
//! sweeps; the bench bins create one per process.
//!
//! ```
//! use waymem_trace::{codec, TraceStore, WorkloadId};
//! use waymem_isa::{FetchKind, RecordedTrace, TraceEvent};
//! use waymem_workloads::Benchmark;
//!
//! let trace = RecordedTrace {
//!     fetch_events: vec![TraceEvent::Fetch { pc: 0x100, kind: FetchKind::Sequential }],
//!     data_events: vec![],
//!     cycles: 1,
//! };
//!
//! // The codec round-trips exactly…
//! let bytes = codec::encode(&trace);
//! assert_eq!(codec::decode(&bytes).unwrap(), trace);
//!
//! // …and the store records each workload once.
//! let store = TraceStore::new();
//! let id = WorkloadId::kernel(Benchmark::Dct, 1);
//! for _ in 0..3 {
//!     store.get_or_record(id, 0, || Ok::<_, ()>(trace.clone())).unwrap();
//! }
//! assert_eq!(store.stats().records, 1);
//! assert_eq!(store.stats().hits, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod codec;
pub mod fault;
pub mod store;
pub mod stream;
pub mod workload;

pub use codec::{
    decode, encode, encode_into, encode_into_with_hash, encode_with_hash, CodecError, Decoder,
    Section,
};
pub use fault::{FaultFile, FaultPlan, StoreIo};
pub use store::{StoreStats, TraceStore, LOCK_SUFFIX, QUARANTINE_DIR};
pub use stream::{StreamError, StreamStats, StreamingEncoder, StreamingTrace};
pub use workload::{fnv1a64, fnv1a64_update, SynthPattern, SynthSpec, WorkloadId, FNV1A64_SEED};
