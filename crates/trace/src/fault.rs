//! Deterministic fault injection for the trace store's disk paths.
//!
//! The store and the streaming codec promise to degrade gracefully: a
//! torn write, a flipped byte, a transient `EINTR` or a full disk must
//! surface as a structured error (or heal transparently), never as a
//! panic or a silently wrong result. This module supplies the machinery
//! that *proves* it:
//!
//! * [`FaultPlan`] — a seeded, purely deterministic schedule of faults.
//!   The same seed always injects the same faults at the same operation
//!   indices, so a failing chaos run replays exactly.
//! * [`FaultFile`] — a `Read`/`Write`/`Seek` wrapper around a real
//!   [`File`] that consults the plan on every operation and can deal
//!   short reads/writes, [`io::ErrorKind::Interrupted`], and — on the
//!   write side, where the damage persists and is detectable —
//!   out-of-space errors and single-byte corruption at plan-chosen
//!   offsets.
//! * [`StoreIo`] — the narrow seam the store and the streaming codec
//!   route their file operations through. The default is a zero-cost
//!   passthrough; tests attach a plan with [`StoreIo::with_plan`], and
//!   the `WAYMEM_FAULT_PLAN` environment variable (format
//!   `<seed>[:<period>]`) arms every [`StoreIo::from_env`] store for CI
//!   chaos runs without touching any production code path.
//!
//! The seam also centralizes the two recovery primitives production code
//! wants anyway: [`StoreIo::retry`], a bounded retry-with-backoff for
//! transient errors (`Interrupted`/`WouldBlock`) that feeds the store's
//! `io_retries` statistic, and [`StoreIo::write_atomic`], the unique
//! temp-file + fsync + rename write that makes cache files crash-safe.

use std::fmt;
use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use waymem_obs::phase::Phase;

/// Suffix every in-flight file of the seam's atomic write path carries;
/// the store's orphan sweep recognizes (and reclaims) crashed leftovers
/// by it.
pub const TEMP_SUFFIX: &str = ".tmp";

/// Maximum attempts [`StoreIo::retry`] makes before surfacing a
/// transient error as-is. Bounded so a pathologically hostile plan (or a
/// genuinely wedged file descriptor) cannot spin forever.
const MAX_RETRIES: u32 = 8;

/// Consecutive `Interrupted` injections are capped at this, so code that
/// correctly retries transients always makes progress under any plan.
const MAX_CONSECUTIVE_INTERRUPTS: u32 = 2;

/// A seeded, deterministic schedule of I/O faults: roughly one fault per
/// [`period`](FaultPlan::period) wrapped operations, with the kind and
/// any corruption offset derived from the seed and the operation index
/// alone. Two runs with the same plan over the same operation sequence
/// inject identical faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed every per-operation decision is hashed from.
    pub seed: u64,
    /// Average operations per injected fault (minimum 1 — every
    /// operation faulted).
    pub period: u32,
}

impl FaultPlan {
    /// Fault-plan period used when none is given (one fault per ~8
    /// wrapped operations — dense enough that every chaos run exercises
    /// all fault kinds).
    pub const DEFAULT_PERIOD: u32 = 8;

    /// A plan with the default period.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        FaultPlan { seed, period: Self::DEFAULT_PERIOD }
    }

    /// Overrides the average operations-per-fault spacing (clamped to
    /// at least 1).
    #[must_use]
    pub fn with_period(mut self, period: u32) -> Self {
        self.period = period.max(1);
        self
    }

    /// Parses the `WAYMEM_FAULT_PLAN` wire format: `<seed>` or
    /// `<seed>:<period>`, both decimal. Returns `None` for anything
    /// unparsable (an unset or malformed variable disarms injection).
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        let s = s.trim();
        if s.is_empty() {
            return None;
        }
        let (seed, period) = match s.split_once(':') {
            Some((seed, period)) => (seed, Some(period)),
            None => (s, None),
        };
        let seed = seed.trim().parse::<u64>().ok()?;
        let plan = FaultPlan::new(seed);
        match period {
            Some(p) => Some(plan.with_period(p.trim().parse::<u32>().ok()?)),
            None => Some(plan),
        }
    }
}

/// What one operation is dealt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fault {
    /// The operation fails with [`io::ErrorKind::Interrupted`].
    Interrupted,
    /// Only part of the buffer is transferred (callers must loop).
    Short,
    /// One byte of the transferred data is XOR-flipped.
    Corrupt {
        /// Plan-chosen offset, reduced modulo the transfer length.
        offset: usize,
        /// Nonzero XOR mask applied to the byte.
        mask: u8,
    },
    /// A write fails with [`io::ErrorKind::StorageFull`].
    NoSpace,
}

/// SplitMix64: a well-mixed 64-bit hash of (seed, op index) — the whole
/// source of the plan's determinism.
fn mix(seed: u64, op: u64) -> u64 {
    let mut z = seed ^ op.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The live state a plan accumulates while injecting: a global operation
/// counter (shared by every file the same [`StoreIo`] opens, so the
/// schedule covers a whole store run) plus bookkeeping that keeps
/// injection bounded.
#[derive(Debug)]
struct FaultState {
    plan: FaultPlan,
    ops: AtomicU64,
    injected: AtomicU64,
    consecutive_interrupts: AtomicU32,
}

impl FaultState {
    fn new(plan: FaultPlan) -> Self {
        FaultState {
            plan,
            ops: AtomicU64::new(0),
            injected: AtomicU64::new(0),
            consecutive_interrupts: AtomicU32::new(0),
        }
    }

    /// Decides the fate of the next operation. `write` selects the
    /// write-side fault menu (out-of-space and corruption are write-only
    /// — see below); `len` is the transfer size (tiny transfers skip
    /// short-op faults — there is nothing to shorten).
    fn decide(&self, write: bool, len: usize) -> Option<Fault> {
        let op = self.ops.fetch_add(1, Ordering::Relaxed);
        let r = mix(self.plan.seed, op);
        if !r.is_multiple_of(u64::from(self.plan.period)) {
            self.consecutive_interrupts.store(0, Ordering::Relaxed);
            return None;
        }
        let fault = match ((r >> 32) % 8, write) {
            // Transients are the most common real-world fault; make them
            // the most common injected one so retry paths stay hot.
            (0..=2, _) => Fault::Interrupted,
            (3 | 4, _) if len > 1 => Fault::Short,
            (5, true) => Fault::NoSpace,
            // Corruption is write-only: corrupt bytes that land on disk
            // are persistent and detectable (the checksum pass catches
            // them at open). Dealing *transient* corruption to reads —
            // different bytes on each pass over the same region — would
            // model in-memory corruption, which no on-disk format can
            // defend against; reads take a short read instead.
            (6 | 7, true) => Fault::Corrupt {
                offset: usize::try_from(r >> 40).unwrap_or(0),
                mask: (((r >> 16) & 0xff) as u8) | 1,
            },
            (_, false) if len > 1 => Fault::Short,
            _ => Fault::Interrupted,
        };
        if fault == Fault::Interrupted {
            // Cap runs of Interrupted so bounded retry loops always win.
            let streak = self.consecutive_interrupts.fetch_add(1, Ordering::Relaxed);
            if streak >= MAX_CONSECUTIVE_INTERRUPTS {
                self.consecutive_interrupts.store(0, Ordering::Relaxed);
                return None;
            }
        } else {
            self.consecutive_interrupts.store(0, Ordering::Relaxed);
        }
        if self.injected.fetch_add(1, Ordering::Relaxed) == 0 {
            // An armed chaos run's first injection is the moment worth a
            // black box: everything after it runs under fault pressure.
            // Once per process — per-plan dumps would overwrite each
            // other with strictly less context.
            static FIRST_INJECTION: std::sync::Once = std::sync::Once::new();
            FIRST_INJECTION.call_once(|| {
                waymem_obs::flight::note(
                    "fault.first_injection",
                    &[
                        ("seed", self.plan.seed.to_string()),
                        ("period", self.plan.period.to_string()),
                    ],
                );
                waymem_obs::flight::dump_on_incident("fault.first_injection");
            });
        }
        Some(fault)
    }
}

/// A [`File`] wrapper that injects the faults its [`StoreIo`]'s plan
/// schedules. With no plan attached every operation is a direct
/// passthrough.
#[derive(Debug)]
pub struct FaultFile {
    inner: File,
    state: Option<Arc<FaultState>>,
    scratch: Vec<u8>,
}

impl FaultFile {
    /// Flushes file contents (and metadata) to the storage device —
    /// [`File::sync_all`] through the wrapper.
    ///
    /// # Errors
    ///
    /// Propagates the underlying fsync failure.
    pub fn sync_all(&self) -> io::Result<()> {
        self.inner.sync_all()
    }
}

fn interrupted() -> io::Error {
    io::Error::new(io::ErrorKind::Interrupted, "injected transient interrupt")
}

impl Read for FaultFile {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let fault = self.state.as_ref().and_then(|s| s.decide(false, buf.len()));
        match fault {
            Some(Fault::Interrupted) => Err(interrupted()),
            Some(Fault::Short) => {
                let cap = (buf.len() / 2).max(1);
                self.inner.read(&mut buf[..cap])
            }
            // NoSpace and Corrupt are write-only; `decide` never deals
            // them to reads.
            Some(Fault::Corrupt { .. } | Fault::NoSpace) | None => self.inner.read(buf),
        }
    }
}

impl Write for FaultFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let fault = self.state.as_ref().and_then(|s| s.decide(true, buf.len()));
        match fault {
            Some(Fault::Interrupted) => Err(interrupted()),
            Some(Fault::NoSpace) => Err(io::Error::new(
                io::ErrorKind::StorageFull,
                "injected out-of-space",
            )),
            Some(Fault::Short) => {
                let cap = (buf.len() / 2).max(1);
                self.inner.write(&buf[..cap])
            }
            Some(Fault::Corrupt { offset, mask }) => {
                if buf.is_empty() {
                    return self.inner.write(buf);
                }
                self.scratch.clear();
                self.scratch.extend_from_slice(buf);
                let at = offset % self.scratch.len();
                self.scratch[at] ^= mask;
                self.inner.write(&self.scratch)
            }
            None => self.inner.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

impl Seek for FaultFile {
    fn seek(&mut self, pos: SeekFrom) -> io::Result<u64> {
        self.inner.seek(pos)
    }
}

/// The file-operation seam the trace store and streaming codec run
/// through: a (possibly armed) fault plan plus the shared transient-retry
/// counter the store exports as `io_retries`.
///
/// Cloning is cheap and shares both the plan state and the counter, so
/// one seam threads through a store, its encoders and every streaming
/// handle it opens.
#[derive(Debug, Clone, Default)]
pub struct StoreIo {
    state: Option<Arc<FaultState>>,
    retries: Arc<AtomicU64>,
}

impl StoreIo {
    /// The production seam: no faults, zero per-operation overhead
    /// beyond an `Option` check.
    #[must_use]
    pub fn passthrough() -> Self {
        Self::default()
    }

    /// A seam armed with `plan` — every file opened through it injects
    /// the plan's fault schedule.
    #[must_use]
    pub fn with_plan(plan: FaultPlan) -> Self {
        StoreIo {
            state: Some(Arc::new(FaultState::new(plan))),
            retries: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The seam a process wires from its environment: armed with the
    /// `WAYMEM_FAULT_PLAN` plan (`<seed>[:<period>]`) when the variable
    /// is set and parsable, a passthrough otherwise. The variable is
    /// read once per process.
    #[must_use]
    pub fn from_env() -> Self {
        static PLAN: OnceLock<Option<FaultPlan>> = OnceLock::new();
        let plan = PLAN.get_or_init(|| {
            std::env::var("WAYMEM_FAULT_PLAN").ok().as_deref().and_then(FaultPlan::parse)
        });
        match plan {
            Some(p) => Self::with_plan(*p),
            None => Self::passthrough(),
        }
    }

    /// `true` when a fault plan is armed.
    #[must_use]
    pub fn is_armed(&self) -> bool {
        self.state.is_some()
    }

    /// Faults injected so far (0 for a passthrough seam).
    #[must_use]
    pub fn faults_injected(&self) -> u64 {
        self.state.as_ref().map_or(0, |s| s.injected.load(Ordering::Relaxed))
    }

    /// Transient-error retries performed by [`retry`](Self::retry) so
    /// far — the store's `io_retries` statistic.
    #[must_use]
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    fn wrap(&self, inner: File) -> FaultFile {
        FaultFile {
            inner,
            state: self.state.clone(),
            scratch: Vec::new(),
        }
    }

    /// Opens `path` read-only through the seam.
    ///
    /// # Errors
    ///
    /// Propagates the open failure (opens themselves are not faulted —
    /// the interesting failures live in the transfers).
    pub fn open(&self, path: &Path) -> io::Result<FaultFile> {
        Ok(self.wrap(File::open(path)?))
    }

    /// Creates (truncating) `path` for writing through the seam.
    ///
    /// # Errors
    ///
    /// Propagates the create failure.
    pub fn create(&self, path: &Path) -> io::Result<FaultFile> {
        Ok(self.wrap(File::create(path)?))
    }

    /// Runs `op`, retrying transient failures
    /// (`Interrupted`/`WouldBlock`) with a short exponential backoff, at
    /// most `MAX_RETRIES` extra attempts. Every retry is counted into
    /// [`retries`](Self::retries). Non-transient errors surface
    /// immediately.
    ///
    /// `op` must be restartable from scratch: it is re-invoked whole, so
    /// partial-progress operations (a half-advanced `read_exact`) do not
    /// belong here — use [`read_full`] for those.
    ///
    /// # Errors
    ///
    /// The first non-transient error, or the last transient one once the
    /// attempt budget is exhausted.
    pub fn retry<T>(&self, mut op: impl FnMut() -> io::Result<T>) -> io::Result<T> {
        let mut attempt = 0u32;
        loop {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) if is_transient(&e) && attempt < MAX_RETRIES => {
                    attempt += 1;
                    self.retries.fetch_add(1, Ordering::Relaxed);
                    if attempt > 2 {
                        std::thread::sleep(Duration::from_micros(100 << attempt.min(6)));
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Reads the whole file at `path` through the seam, retrying
    /// transient errors per-chunk.
    ///
    /// # Errors
    ///
    /// Any non-transient I/O error (or a transient one that outlives the
    /// retry budget).
    pub fn read_to_vec(&self, path: &Path) -> io::Result<Vec<u8>> {
        let _phase = waymem_obs::phase::enter(Phase::Io);
        let _span = waymem_obs::span!("store.io.read");
        let started = Instant::now();
        let result = (|| {
            let mut file = self.open(path)?;
            let mut out = Vec::new();
            let mut buf = [0u8; 64 * 1024];
            loop {
                let n = self.retry(|| file.read(&mut buf))?;
                if n == 0 {
                    return Ok(out);
                }
                out.extend_from_slice(&buf[..n]);
            }
        })();
        waymem_obs::histogram!("store.io.read_ns").record(elapsed_ns(started));
        result
    }

    /// A process-unique in-flight path for an atomic write targeting
    /// `path`: `<path>.p<pid>-<seq>.tmp`. The embedded pid lets the
    /// store's orphan sweep tell a crashed process's leftovers from a
    /// live writer's.
    #[must_use]
    pub fn temp_path(path: &Path) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        let mut os = path.as_os_str().to_owned();
        os.push(format!(".p{}-{n}{TEMP_SUFFIX}", std::process::id()));
        PathBuf::from(os)
    }

    /// Writes `bytes` to `path` crash-safely: a process-unique temp file
    /// in the same directory, fsync, then an atomic rename over the
    /// final name. A reader never observes a torn file — it sees the old
    /// contents or the new, nothing in between. Transient errors are
    /// retried; on any failure the temp file is removed.
    ///
    /// # Errors
    ///
    /// The first non-transient failure creating, writing, syncing or
    /// renaming.
    pub fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let _phase = waymem_obs::phase::enter(Phase::Io);
        let _span = waymem_obs::span!("store.io.write", bytes = bytes.len());
        let started = Instant::now();
        let tmp = Self::temp_path(path);
        let result = (|| {
            let mut file = self.create(&tmp)?;
            let mut written = 0usize;
            while written < bytes.len() {
                let n = self.retry(|| file.write(&bytes[written..]))?;
                if n == 0 {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "atomic write made no progress",
                    ));
                }
                written += n;
            }
            self.retry(|| file.flush())?;
            file.sync_all()?;
            drop(file);
            std::fs::rename(&tmp, path)
        })();
        if result.is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
        waymem_obs::histogram!("store.io.write_ns").record(elapsed_ns(started));
        result
    }
}

/// Nanoseconds since `started`, saturating — the latency-histogram unit.
fn elapsed_ns(started: Instant) -> u64 {
    u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// The writer pid a [`StoreIo::temp_path`] name embeds
/// (`<name>.p<pid>-<seq>.tmp`), or `None` for temp files that do not
/// follow the convention (e.g. a streaming encoder's section spools).
pub(crate) fn temp_owner_pid(name: &str) -> Option<u32> {
    let stem = name.strip_suffix(TEMP_SUFFIX)?;
    let at = stem.rfind(".p")?;
    let (pid, seq) = stem[at + 2..].split_once('-')?;
    if seq.is_empty() || !seq.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    pid.parse().ok()
}

/// Whether an I/O error is worth retrying in place.
#[must_use]
pub fn is_transient(e: &io::Error) -> bool {
    matches!(e.kind(), io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock)
}

/// Fills `buf` completely from `reader`, retrying transient errors
/// (counted into `io`'s retry statistic) and looping over short reads —
/// the partial-progress-safe sibling of [`StoreIo::retry`] +
/// `read_exact`.
///
/// # Errors
///
/// `UnexpectedEof` if the reader ends early; otherwise the first
/// non-transient read error.
pub fn read_full(reader: &mut impl Read, buf: &mut [u8], io: &StoreIo) -> io::Result<()> {
    let mut filled = 0usize;
    while filled < buf.len() {
        let n = io.retry(|| reader.read(&mut buf[filled..]))?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "file ended before the expected byte count",
            ));
        }
        filled += n;
    }
    Ok(())
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.seed, self.period)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_parse_round_trips() {
        assert_eq!(FaultPlan::parse("42"), Some(FaultPlan::new(42)));
        assert_eq!(FaultPlan::parse("42:5"), Some(FaultPlan::new(42).with_period(5)));
        assert_eq!(FaultPlan::parse(" 7 : 3 "), Some(FaultPlan::new(7).with_period(3)));
        assert_eq!(FaultPlan::parse(""), None);
        assert_eq!(FaultPlan::parse("nope"), None);
        assert_eq!(FaultPlan::parse("1:x"), None);
        let p = FaultPlan::new(9).with_period(0);
        assert_eq!(p.period, 1, "period clamps to at least 1");
        assert_eq!(FaultPlan::parse(&FaultPlan::new(3).with_period(4).to_string()),
            Some(FaultPlan::new(3).with_period(4)));
    }

    #[test]
    fn same_seed_same_schedule() {
        let a = FaultState::new(FaultPlan::new(0xdead).with_period(3));
        let b = FaultState::new(FaultPlan::new(0xdead).with_period(3));
        let seq_a: Vec<_> = (0..256).map(|_| a.decide(false, 64)).collect();
        let seq_b: Vec<_> = (0..256).map(|_| b.decide(false, 64)).collect();
        assert_eq!(seq_a, seq_b);
        assert!(seq_a.iter().any(Option::is_some), "a period-3 plan must fault");
        assert!(seq_a.iter().any(Option::is_none), "a period-3 plan must also pass ops");
    }

    #[test]
    fn interrupt_streaks_are_bounded() {
        // Whatever the seed, no schedule may deal more consecutive
        // Interrupted faults than a bounded retry loop tolerates.
        for seed in 0..32u64 {
            let s = FaultState::new(FaultPlan::new(seed).with_period(1));
            let mut streak = 0u32;
            for _ in 0..4096 {
                if s.decide(true, 64) == Some(Fault::Interrupted) {
                    streak += 1;
                    assert!(streak <= MAX_CONSECUTIVE_INTERRUPTS, "seed {seed}");
                } else {
                    streak = 0;
                }
            }
        }
    }

    #[test]
    fn temp_paths_embed_a_parsable_owner_pid() {
        let tmp = StoreIo::temp_path(Path::new("/cache/dct-s1.wmtr"));
        let name = tmp.file_name().and_then(|n| n.to_str()).expect("utf8 name");
        assert_eq!(temp_owner_pid(name), Some(std::process::id()));
        assert_eq!(temp_owner_pid("dct-s1.wmtr.fetch.tmp"), None);
        assert_eq!(temp_owner_pid("dct-s1.wmtr.p12-x.tmp"), None);
        assert_eq!(temp_owner_pid("plain.tmp"), None);
    }

    #[test]
    fn retry_counts_and_recovers() {
        let io = StoreIo::passthrough();
        let mut remaining = 3;
        let v = io
            .retry(|| {
                if remaining > 0 {
                    remaining -= 1;
                    Err(interrupted())
                } else {
                    Ok(42)
                }
            })
            .expect("recovers");
        assert_eq!(v, 42);
        assert_eq!(io.retries(), 3);
        // Non-transient errors surface immediately, uncounted.
        let err = io.retry(|| Err::<(), _>(io::Error::new(io::ErrorKind::NotFound, "gone")));
        assert_eq!(err.unwrap_err().kind(), io::ErrorKind::NotFound);
        assert_eq!(io.retries(), 3);
    }

    #[test]
    fn retry_budget_is_bounded() {
        let io = StoreIo::passthrough();
        let err = io.retry(|| Err::<(), _>(interrupted()));
        assert_eq!(err.unwrap_err().kind(), io::ErrorKind::Interrupted);
        assert_eq!(io.retries(), u64::from(MAX_RETRIES));
    }

    #[test]
    fn write_atomic_leaves_no_temp_and_round_trips() {
        let dir = std::env::temp_dir().join(format!("waymem-fault-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("x.bin");
        let io = StoreIo::passthrough();
        io.write_atomic(&path, b"hello").expect("writes");
        assert_eq!(std::fs::read(&path).expect("reads"), b"hello");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .expect("readdir")
            .flatten()
            .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn armed_seam_faults_and_passthrough_does_not() {
        let dir = std::env::temp_dir()
            .join(format!("waymem-fault-armed-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("y.bin");
        std::fs::write(&path, vec![0u8; 1 << 16]).expect("seed file");

        let quiet = StoreIo::passthrough();
        let bytes = quiet.read_to_vec(&path).expect("reads");
        assert_eq!(bytes.len(), 1 << 16);
        assert_eq!(quiet.faults_injected(), 0);

        // Every-op plan: reading the same file must inject something.
        let noisy = StoreIo::with_plan(FaultPlan::new(1).with_period(1));
        let _ = noisy.read_to_vec(&path);
        assert!(noisy.faults_injected() > 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
