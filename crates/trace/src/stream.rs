//! File-backed streaming encode and replay for `.wmtr` traces.
//!
//! The [`codec`] module works over in-memory byte slices:
//! good for cache round-trips, useless once a capture no longer fits in
//! RAM (a few minutes of Valgrind/Lackey output is gigabytes). This
//! module is the bounded-memory counterpart:
//!
//! * [`StreamingEncoder`] is a [`TraceSink`]: any producer — the CPU
//!   interpreter, a log parser, a synthetic generator — pushes events
//!   into it one at a time and they land on disk incrementally. Fetches
//!   spool into the fetch section, loads/stores into the data section,
//!   each through a small scratch buffer, so resident memory is O(buffer)
//!   no matter how long the stream runs. [`StreamingEncoder::finish`]
//!   then assembles the exact same v2 wire format as
//!   [`codec::encode_into_with_hash`]
//!   — byte for byte, checksum included — by splicing header, spooled
//!   sections and trailer together in one streamed pass.
//! * [`StreamingTrace`] is the read side: a validated handle to an
//!   encoded file that replays events into any [`TraceSink`] through a
//!   bounded window (refilling buffered reads, batched
//!   [`TraceSink::events`] calls) without ever materializing the event
//!   vector. Opening performs the same strictness as
//!   [`Decoder::new`](crate::codec::Decoder::new): magic, version,
//!   length arithmetic, and a full checksum pass over the file, so a
//!   corrupt or truncated capture is an `Err` before a single event is
//!   emitted. Replay takes `&self` and opens its own file handle per
//!   call, so one handle fans out to many concurrent per-front cursors.
//!
//! The memory contract, concretely: replay holds one 64 KiB read window
//! plus one batch of decoded events (default 4096 × 24 B ≈ 96 KiB) per
//! active cursor. The batch size is tunable per handle via
//! [`StreamingTrace::with_batch`] — the differential tests sweep it to
//! pin batch-boundary independence.

use std::fmt;
use std::fs;
use std::io::{self, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

use waymem_obs::phase::Phase;

use waymem_isa::{FetchKind, RecordedTrace, RecordingSink, TraceEvent, TraceSink};

use crate::codec::{
    self, CodecError, Section, FNV1A32_SEED, FORMAT_VERSION, HEADER_LEN, MAGIC, MAX_EVENT_WIRE,
    REPLAY_CHUNK, TRAILER_LEN,
};
use crate::fault::{read_full, FaultFile, StoreIo};

/// Scratch-buffer size for both the encoder's section spools and the
/// reader's refill window. Big enough that syscall overhead vanishes,
/// small enough that a dozen concurrent cursors stay cache-friendly.
const WINDOW_BYTES: usize = 64 * 1024;

/// Why a streamed trace file could not be written, opened, or replayed.
#[derive(Debug)]
pub enum StreamError {
    /// The underlying file I/O failed.
    Io(io::Error),
    /// The file's bytes are not a valid `.wmtr` stream.
    Codec(CodecError),
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Io(e) => write!(f, "trace stream I/O error: {e}"),
            StreamError::Codec(e) => write!(f, "trace stream decode error: {e}"),
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamError::Io(e) => Some(e),
            StreamError::Codec(e) => Some(e),
        }
    }
}

impl From<io::Error> for StreamError {
    fn from(e: io::Error) -> Self {
        StreamError::Io(e)
    }
}

impl From<CodecError> for StreamError {
    fn from(e: CodecError) -> Self {
        StreamError::Codec(e)
    }
}

/// What [`StreamingEncoder::finish`] wrote.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamStats {
    /// Events encoded into the fetch section.
    pub fetch_events: u64,
    /// Events encoded into the data section.
    pub data_events: u64,
    /// Total bytes of the finished file (header + sections + trailer).
    pub bytes: u64,
}

impl StreamStats {
    /// Total events across both sections.
    #[must_use]
    pub fn events(&self) -> u64 {
        self.fetch_events + self.data_events
    }
}

/// Removes its temp files when dropped, so an abandoned encode (producer
/// error, panic unwinding) does not leave section spools behind.
#[derive(Debug)]
struct TempGuard(Vec<PathBuf>);

impl Drop for TempGuard {
    fn drop(&mut self) {
        for p in &self.0 {
            let _ = fs::remove_file(p);
        }
    }
}

/// One section's spool: events encode into a scratch buffer that is
/// flushed to a temp file, keeping resident memory bounded.
#[derive(Debug)]
struct SectionSpool {
    path: PathBuf,
    file: BufWriter<FaultFile>,
    buf: Vec<u8>,
    bytes: u64,
    count: u64,
    prev: u32,
}

impl SectionSpool {
    fn create(path: PathBuf, io: &StoreIo) -> io::Result<Self> {
        let file = BufWriter::new(io.create(&path)?);
        Ok(SectionSpool {
            path,
            file,
            buf: Vec::with_capacity(WINDOW_BYTES + MAX_EVENT_WIRE),
            bytes: 0,
            count: 0,
            prev: 0,
        })
    }

    fn push(&mut self, e: TraceEvent) -> io::Result<()> {
        codec::encode_event(&mut self.buf, e, &mut self.prev);
        self.count += 1;
        if self.buf.len() >= WINDOW_BYTES {
            self.flush_buf()?;
        }
        Ok(())
    }

    fn flush_buf(&mut self) -> io::Result<()> {
        self.file.write_all(&self.buf)?;
        self.bytes += self.buf.len() as u64;
        self.buf.clear();
        Ok(())
    }

    /// Flushes everything to disk and closes the spool's writer.
    fn seal(mut self) -> io::Result<(PathBuf, u64, u64)> {
        self.flush_buf()?;
        self.file.flush()?;
        Ok((self.path, self.bytes, self.count))
    }
}

/// A [`TraceSink`] that encodes its event stream straight to a `.wmtr`
/// file with bounded resident memory.
///
/// Fetch events land in the fetch section, loads/stores in the data
/// section — the same split [`RecordedTrace`] maintains — so a producer
/// can stream events in program order and the finished file is
/// byte-identical to materializing the trace and calling
/// [`codec::encode_with_hash`].
///
/// `TraceSink` methods cannot return errors, so the encoder stashes the
/// first I/O failure and reports it from [`finish`](Self::finish); after
/// a failure every subsequent event is a no-op.
#[derive(Debug)]
pub struct StreamingEncoder {
    out_path: PathBuf,
    fetch: SectionSpool,
    data: SectionSpool,
    temps: TempGuard,
    error: Option<io::Error>,
    io: StoreIo,
}

impl StreamingEncoder {
    /// Opens an encoder that will write the finished stream to `path`,
    /// spooling sections into `<path>.fetch.tmp` / `<path>.data.tmp`
    /// alongside it in the meantime.
    ///
    /// # Errors
    ///
    /// Propagates failures creating the parent directory or temp files.
    pub fn create(path: &Path) -> io::Result<Self> {
        Self::create_with(path, StoreIo::passthrough())
    }

    /// [`create`](Self::create) with an explicit [`StoreIo`] seam —
    /// how the store threads its fault plan and retry accounting through
    /// an encode; production callers use `create`.
    ///
    /// # Errors
    ///
    /// As [`create`](Self::create).
    pub fn create_with(path: &Path, io: StoreIo) -> io::Result<Self> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        let side = |suffix: &str| {
            let mut os = path.as_os_str().to_owned();
            os.push(suffix);
            PathBuf::from(os)
        };
        let fetch_path = side(".fetch.tmp");
        let data_path = side(".data.tmp");
        let temps = TempGuard(vec![fetch_path.clone(), data_path.clone()]);
        Ok(StreamingEncoder {
            out_path: path.to_path_buf(),
            fetch: SectionSpool::create(fetch_path, &io)?,
            data: SectionSpool::create(data_path, &io)?,
            temps,
            error: None,
            io,
        })
    }

    /// Events pushed so far (both sections).
    #[must_use]
    pub fn event_count(&self) -> u64 {
        self.fetch.count + self.data.count
    }

    fn push(&mut self, section: Section, e: TraceEvent) {
        if self.error.is_some() {
            return;
        }
        let spool = match section {
            Section::Fetch => &mut self.fetch,
            Section::Data => &mut self.data,
        };
        if let Err(err) = spool.push(e) {
            self.error = Some(err);
        }
    }

    /// Seals the stream: writes the v2 header, splices both spooled
    /// sections through an incremental checksum, appends the trailer,
    /// and removes the temp spools. The result is byte-identical to
    /// [`codec::encode_with_hash`] on
    /// the materialized trace.
    ///
    /// The finished file appears **atomically**: everything is assembled
    /// in a process-unique `<path>.p<pid>-<n>.tmp` sibling, fsynced, and
    /// renamed over the final name — a crash mid-finish leaves only temp
    /// files (which the store's orphan sweep reclaims), never a torn
    /// `.wmtr`.
    ///
    /// # Errors
    ///
    /// The first I/O failure, whether stashed during event push or hit
    /// while assembling the final file.
    pub fn finish(self, cycles: u64, source_hash: u64) -> Result<StreamStats, StreamError> {
        let _phase = waymem_obs::phase::enter(Phase::Io);
        let _span = waymem_obs::span!("store.io.write", events = self.event_count());
        let StreamingEncoder {
            out_path,
            fetch,
            data,
            temps,
            error,
            io,
        } = self;
        if let Some(err) = error {
            return Err(StreamError::Io(err));
        }
        let (fetch_path, fetch_len, fetch_count) = fetch.seal()?;
        let (data_path, data_len, data_count) = data.seal()?;

        let mut header = Vec::with_capacity(HEADER_LEN);
        header.extend_from_slice(&MAGIC);
        header.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        header.extend_from_slice(&0u16.to_le_bytes()); // flags (reserved)
        header.extend_from_slice(&fetch_count.to_le_bytes());
        header.extend_from_slice(&data_count.to_le_bytes());
        header.extend_from_slice(&cycles.to_le_bytes());
        header.extend_from_slice(&fetch_len.to_le_bytes());
        header.extend_from_slice(&data_len.to_le_bytes());
        header.extend_from_slice(&source_hash.to_le_bytes());
        debug_assert_eq!(header.len(), HEADER_LEN);

        let final_tmp = StoreIo::temp_path(&out_path);
        let final_guard = TempGuard(vec![final_tmp.clone()]);
        let mut out = BufWriter::new(io.create(&final_tmp)?);
        out.write_all(&header)?;
        let mut checksum = codec::fnv1a32_update(FNV1A32_SEED, &header[MAGIC.len()..]);
        let mut splice = |path: &Path| -> io::Result<()> {
            let mut src = io.open(path)?;
            let mut buf = vec![0u8; WINDOW_BYTES];
            loop {
                let n = io.retry(|| src.read(&mut buf))?;
                if n == 0 {
                    return Ok(());
                }
                checksum = codec::fnv1a32_update(checksum, &buf[..n]);
                out.write_all(&buf[..n])?;
            }
        };
        splice(&fetch_path)?;
        splice(&data_path)?;
        out.write_all(&checksum.to_le_bytes())?;
        out.flush()?;
        out.get_ref().sync_all()?;
        drop(out);
        fs::rename(&final_tmp, &out_path)?;
        drop(final_guard); // renamed away; nothing left to remove
        drop(temps); // removes the section spools

        let bytes = (HEADER_LEN as u64) + fetch_len + data_len + (TRAILER_LEN as u64);
        Ok(StreamStats {
            fetch_events: fetch_count,
            data_events: data_count,
            bytes,
        })
    }
}

impl TraceSink for StreamingEncoder {
    fn fetch(&mut self, pc: u32, kind: FetchKind) {
        self.push(Section::Fetch, TraceEvent::Fetch { pc, kind });
    }

    fn load(&mut self, base: u32, disp: i32, addr: u32, size: u8) {
        self.push(Section::Data, TraceEvent::Load { base, disp, addr, size });
    }

    fn store(&mut self, base: u32, disp: i32, addr: u32, size: u8) {
        self.push(Section::Data, TraceEvent::Store { base, disp, addr, size });
    }
}

/// Encodes an already-materialized trace to `path` in one pass — the
/// spill bridge from the `Arc<RecordedTrace>` world into the streaming
/// one (e.g. a store serving a streaming open from its in-memory cache).
/// The file appears atomically (temp + fsync + rename). Returns the
/// number of bytes written.
///
/// # Errors
///
/// Propagates file-creation and write failures.
pub fn write_encoded(trace: &RecordedTrace, source_hash: u64, path: &Path) -> io::Result<u64> {
    write_encoded_with(trace, source_hash, path, &StoreIo::passthrough())
}

/// [`write_encoded`] through an explicit [`StoreIo`] seam (fault plan +
/// retry accounting); production callers use [`write_encoded`].
///
/// # Errors
///
/// As [`write_encoded`].
pub fn write_encoded_with(
    trace: &RecordedTrace,
    source_hash: u64,
    path: &Path,
    io: &StoreIo,
) -> io::Result<u64> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    let bytes = codec::encode_with_hash(trace, source_hash);
    io.write_atomic(path, &bytes)?;
    Ok(bytes.len() as u64)
}

/// A validated, replayable handle to an encoded trace file.
///
/// Holds the header fields and the path — never the events. See the
/// [module docs](self) for the memory contract.
#[derive(Debug)]
pub struct StreamingTrace {
    path: PathBuf,
    fetch_count: u64,
    data_count: u64,
    cycles: u64,
    source_hash: u64,
    version: u16,
    fetch_offset: u64,
    fetch_len: u64,
    data_len: u64,
    batch: usize,
    delete_on_drop: bool,
    io: StoreIo,
}

impl StreamingTrace {
    /// Opens and validates `path`: magic, version, length arithmetic,
    /// and a full streamed checksum pass — the same strictness as
    /// [`Decoder::new`](crate::codec::Decoder::new), so corruption or
    /// truncation is an `Err` here, before any replay starts.
    ///
    /// # Errors
    ///
    /// [`StreamError::Io`] if the file cannot be read,
    /// [`StreamError::Codec`] if its bytes are malformed.
    pub fn open(path: &Path) -> Result<Self, StreamError> {
        Self::open_with(path, StoreIo::passthrough())
    }

    /// [`open`](Self::open) with an explicit [`StoreIo`] seam: every
    /// read of the validation pass *and of later replays through this
    /// handle* goes through it, with transient errors retried (and
    /// counted). Production callers use `open`.
    ///
    /// # Errors
    ///
    /// As [`open`](Self::open).
    pub fn open_with(path: &Path, io: StoreIo) -> Result<Self, StreamError> {
        let _phase = waymem_obs::phase::enter(Phase::Io);
        let _span = waymem_obs::span!("store.io.open");
        let mut file = io.open(path)?;
        let file_len = io.retry(|| file.seek(SeekFrom::End(0)))?;
        file.seek(SeekFrom::Start(0))?;
        if file_len < (codec::HEADER_LEN_V1 + TRAILER_LEN) as u64 {
            return Err(CodecError::Truncated.into());
        }
        let mut header_bytes = [0u8; HEADER_LEN];
        let header_read = usize::try_from(file_len.min(HEADER_LEN as u64)).expect("bounded");
        read_full(&mut file, &mut header_bytes[..header_read], &io)?;
        let h = codec::parse_header(&header_bytes[..header_read])?;
        if file_len < (h.header_len + TRAILER_LEN) as u64 {
            return Err(CodecError::Truncated.into());
        }
        let expected = h.expected_total()?;
        if expected != file_len {
            return Err(CodecError::LengthMismatch { expected, found: file_len }.into());
        }
        if h.fetch_count > h.fetch_len || h.data_count > h.data_len {
            return Err(CodecError::SectionMismatch {
                declared: if h.fetch_count > h.fetch_len { h.fetch_count } else { h.data_count },
                decoded: 0,
            }
            .into());
        }

        // Full-file checksum pass (everything after the magic, up to the
        // trailer), streamed through a bounded buffer.
        file.seek(SeekFrom::Start(MAGIC.len() as u64))?;
        let mut covered = Read::by_ref(&mut file).take(file_len - (MAGIC.len() + TRAILER_LEN) as u64);
        let mut checksum = FNV1A32_SEED;
        let mut buf = vec![0u8; WINDOW_BYTES];
        loop {
            let n = io.retry(|| covered.read(&mut buf))?;
            if n == 0 {
                break;
            }
            checksum = codec::fnv1a32_update(checksum, &buf[..n]);
        }
        let mut trailer = [0u8; TRAILER_LEN];
        read_full(&mut file, &mut trailer, &io)?;
        let stored = u32::from_le_bytes(trailer);
        if stored != checksum {
            return Err(CodecError::BadChecksum { stored, computed: checksum }.into());
        }

        Ok(StreamingTrace {
            path: path.to_path_buf(),
            fetch_count: h.fetch_count,
            data_count: h.data_count,
            cycles: h.cycles,
            source_hash: h.source_hash,
            version: h.version,
            fetch_offset: h.header_len as u64,
            fetch_len: h.fetch_len,
            data_len: h.data_len,
            batch: REPLAY_CHUNK,
            delete_on_drop: false,
            io,
        })
    }

    /// Sets the replay batch size (events per [`TraceSink::events`]
    /// call), clamped to at least 1. Smaller batches shrink the scratch
    /// buffer; the default (4096) amortizes the per-batch virtual
    /// call. Replay results are batch-size independent — the
    /// differential tests sweep this knob to prove it.
    #[must_use]
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }

    /// Marks the underlying file for removal when this handle drops —
    /// the store-less temp-file path uses it so scratch captures clean
    /// themselves up.
    #[must_use]
    pub fn delete_on_drop(mut self) -> Self {
        self.delete_on_drop = true;
        self
    }

    /// The file this handle replays from.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Instructions retired by the recorded run.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// The source hash embedded in the header (0 = unknown / v1).
    #[must_use]
    pub fn source_hash(&self) -> u64 {
        self.source_hash
    }

    /// The header's format version.
    #[must_use]
    pub fn version(&self) -> u16 {
        self.version
    }

    /// Events in the fetch stream.
    #[must_use]
    pub fn fetch_count(&self) -> u64 {
        self.fetch_count
    }

    /// Events in the data stream.
    #[must_use]
    pub fn data_count(&self) -> u64 {
        self.data_count
    }

    /// Total events across both streams.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.fetch_count + self.data_count
    }

    /// `true` when the file holds no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Streams one section into `sink` through a bounded read window and
    /// batched [`TraceSink::events`] calls. Takes `&self` and opens its
    /// own file handle, so concurrent replays (one cursor per front) do
    /// not contend. Returns the number of events replayed.
    ///
    /// # Errors
    ///
    /// [`StreamError::Io`] on read failure, [`StreamError::Codec`] if the
    /// section's bytes are malformed (e.g. the file changed after
    /// [`open`](Self::open)); events already emitted before the error
    /// stand, exactly like
    /// [`Decoder::replay_section`](crate::codec::Decoder::replay_section).
    pub fn replay_section<S: TraceSink + ?Sized>(
        &self,
        section: Section,
        sink: &mut S,
    ) -> Result<u64, StreamError> {
        let (offset, len, declared) = match section {
            Section::Fetch => (self.fetch_offset, self.fetch_len, self.fetch_count),
            Section::Data => (self.fetch_offset + self.fetch_len, self.data_len, self.data_count),
        };
        let mut file = self.io.open(&self.path)?;
        file.seek(SeekFrom::Start(offset))?;
        let mut reader = file.take(len);

        let mut window = vec![0u8; WINDOW_BYTES.max(MAX_EVENT_WIRE)];
        let mut valid = 0usize; // bytes of section data in window[..valid]
        let mut start = 0usize; // consumed prefix of window[..valid]
        let mut exhausted = false; // reader hit EOF
        let mut consumed = 0u64; // section bytes decoded so far
        let mut decoded = 0u64;
        let mut prev = 0u32;
        let chunk_cap = self.batch.min(usize::try_from(declared).unwrap_or(self.batch)).max(1);
        let mut chunk: Vec<TraceEvent> = Vec::with_capacity(chunk_cap);

        loop {
            if decoded == declared && consumed == len {
                break; // clean finish: every declared event, every byte
            }
            // Compact the unconsumed tail to the front, then refill.
            window.copy_within(start..valid, 0);
            valid -= start;
            while valid < window.len() && !exhausted {
                let n = self.io.retry(|| reader.read(&mut window[valid..]))?;
                if n == 0 {
                    exhausted = true;
                } else {
                    valid += n;
                }
            }
            if valid == 0 || decoded == declared {
                // Out of bytes before the declared count, or bytes left
                // over past the final event: corrupt counts.
                return Err(CodecError::SectionMismatch { declared, decoded }.into());
            }
            let mut cur = codec::Cursor::new(&window[..valid]);
            // Decode while a whole event is guaranteed to fit in the
            // window (or the file is exhausted, in which case a
            // mid-event shortage is a genuine Truncated error).
            while decoded < declared
                && !cur.done()
                && (exhausted || cur.remaining() >= MAX_EVENT_WIRE)
            {
                chunk.push(codec::decode_event(&mut cur, &mut prev)?);
                decoded += 1;
                if chunk.len() == self.batch {
                    deliver_batch(sink, &chunk);
                    chunk.clear();
                }
            }
            start = cur.pos();
            consumed += start as u64;
        }
        if !chunk.is_empty() {
            deliver_batch(sink, &chunk);
        }
        Ok(decoded)
    }

    /// Streams both sections (fetches, then loads/stores) into `sink`.
    /// Returns the total number of events replayed.
    ///
    /// # Errors
    ///
    /// Propagates the first [`StreamError`] from either section.
    pub fn replay<S: TraceSink + ?Sized>(&self, sink: &mut S) -> Result<u64, StreamError> {
        Ok(self.replay_section(Section::Fetch, sink)? + self.replay_section(Section::Data, sink)?)
    }

    /// Materializes the full [`RecordedTrace`] — the bridge back for
    /// differential tests and small-trace callers.
    ///
    /// # Errors
    ///
    /// Propagates the first [`StreamError`] from either section.
    pub fn decode(&self) -> Result<RecordedTrace, StreamError> {
        let mut fetch = RecordingSink {
            events: Vec::with_capacity(RecordingSink::prealloc_cap(self.fetch_count)),
        };
        self.replay_section(Section::Fetch, &mut fetch)?;
        let mut data = RecordingSink {
            events: Vec::with_capacity(RecordingSink::prealloc_cap(self.data_count)),
        };
        self.replay_section(Section::Data, &mut data)?;
        Ok(RecordedTrace {
            fetch_events: fetch.events,
            data_events: data.events,
            cycles: self.cycles,
        })
    }
}

/// Hands one decoded batch to the sink, recording its latency into the
/// `replay.batch_ns` histogram — the per-batch cost the ROADMAP's
/// throughput work wants visible. Two `Instant` reads per default-size
/// (4096-event) batch: noise against the batch's replay cost.
fn deliver_batch<S: TraceSink + ?Sized>(sink: &mut S, chunk: &[TraceEvent]) {
    let started = Instant::now();
    sink.events(chunk);
    let ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
    waymem_obs::histogram!("replay.batch_ns").record(ns);
}

impl Drop for StreamingTrace {
    fn drop(&mut self) {
        if self.delete_on_drop {
            let _ = fs::remove_file(&self.path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::encode_with_hash;
    use waymem_isa::CountingSink;

    /// Self-cleaning scratch directory (mirrors the store tests' helper).
    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            let dir = std::env::temp_dir()
                .join(format!("waymem-stream-test-{}-{tag}", std::process::id()));
            fs::create_dir_all(&dir).expect("create temp dir");
            TempDir(dir)
        }

        fn path(&self, name: &str) -> PathBuf {
            self.0.join(name)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn sample_trace() -> RecordedTrace {
        let mut fetch_events = Vec::new();
        let mut data_events = Vec::new();
        for i in 0..10_000u32 {
            let pc = 0x1000 + 8 * i;
            let kind = if i % 97 == 0 && i > 0 {
                FetchKind::TakenBranch { base: pc.wrapping_sub(8), disp: -(i as i32 % 64) }
            } else {
                FetchKind::Sequential
            };
            fetch_events.push(TraceEvent::Fetch { pc, kind });
            if i % 3 == 0 {
                data_events.push(TraceEvent::Load {
                    base: 0x8000 + (i % 512),
                    disp: 4,
                    addr: 0x8004 + (i % 512),
                    size: 4,
                });
            }
        }
        RecordedTrace { fetch_events, data_events, cycles: 10_000 }
    }

    fn encode_streaming(trace: &RecordedTrace, source_hash: u64, path: &Path) -> StreamStats {
        let mut enc = StreamingEncoder::create(path).expect("create encoder");
        // Interleave sections the way a real producer would.
        let mut data = trace.data_events.iter();
        for (i, &e) in trace.fetch_events.iter().enumerate() {
            enc.events(&[e]);
            if i % 3 == 0 {
                if let Some(&d) = data.next() {
                    enc.events(&[d]);
                }
            }
        }
        for &d in data {
            enc.events(&[d]);
        }
        enc.finish(trace.cycles, source_hash).expect("finish")
    }

    #[test]
    fn streaming_encoder_is_byte_identical_to_slice_encoder() {
        let dir = TempDir::new("byte-identical");
        let trace = sample_trace();
        let path = dir.path("t.wmtr");
        let stats = encode_streaming(&trace, 0xabcd_ef01_2345_6789, &path);
        let streamed = fs::read(&path).expect("read");
        let sliced = encode_with_hash(&trace, 0xabcd_ef01_2345_6789);
        assert_eq!(streamed, sliced);
        assert_eq!(stats.bytes, sliced.len() as u64);
        assert_eq!(stats.fetch_events, trace.fetch_events.len() as u64);
        assert_eq!(stats.data_events, trace.data_events.len() as u64);
        // No temp spools left behind.
        assert!(!dir.path("t.wmtr.fetch.tmp").exists());
        assert!(!dir.path("t.wmtr.data.tmp").exists());
    }

    #[test]
    fn streaming_trace_replays_the_exact_trace() {
        let dir = TempDir::new("replay");
        let trace = sample_trace();
        let path = dir.path("t.wmtr");
        encode_streaming(&trace, 7, &path);
        let st = StreamingTrace::open(&path).expect("opens");
        assert_eq!(st.cycles(), trace.cycles);
        assert_eq!(st.source_hash(), 7);
        assert_eq!(st.fetch_count(), trace.fetch_events.len() as u64);
        assert_eq!(st.data_count(), trace.data_events.len() as u64);
        assert_eq!(st.decode().expect("decodes"), trace);
        let mut counts = CountingSink::default();
        let replayed = st.replay(&mut counts).expect("replays");
        assert_eq!(replayed, trace.len() as u64);
        assert_eq!(counts.fetches, trace.fetch_events.len() as u64);
        assert_eq!(counts.loads, trace.data_events.len() as u64);
    }

    #[test]
    fn batch_size_does_not_change_the_replay() {
        let dir = TempDir::new("batch");
        let trace = sample_trace();
        let path = dir.path("t.wmtr");
        encode_streaming(&trace, 0, &path);
        let n = trace.fetch_events.len();
        for batch in [1usize, 7, n - 1, n, n + 10] {
            let st = StreamingTrace::open(&path).expect("opens").with_batch(batch);
            assert_eq!(st.decode().expect("decodes"), trace, "batch {batch}");
        }
    }

    #[test]
    fn empty_stream_round_trips() {
        let dir = TempDir::new("empty");
        let path = dir.path("empty.wmtr");
        let enc = StreamingEncoder::create(&path).expect("create");
        let stats = enc.finish(0, 0).expect("finish");
        assert_eq!(stats.events(), 0);
        let st = StreamingTrace::open(&path).expect("opens");
        assert!(st.is_empty());
        assert_eq!(st.decode().expect("decodes"), RecordedTrace::default());
    }

    #[test]
    fn corrupt_and_truncated_files_error_at_open() {
        let dir = TempDir::new("corrupt");
        let trace = sample_trace();
        let path = dir.path("t.wmtr");
        encode_streaming(&trace, 0, &path);
        let bytes = fs::read(&path).expect("read");
        // Any single-byte flip fails the open-time checksum pass.
        for at in [0usize, 5, HEADER_LEN + 3, bytes.len() - 1] {
            let mut corrupt = bytes.clone();
            corrupt[at] ^= 0x01;
            let p = dir.path("corrupt.wmtr");
            fs::write(&p, &corrupt).expect("write");
            assert!(StreamingTrace::open(&p).is_err(), "flip at {at} opened");
        }
        // Truncations fail length or checksum validation.
        for len in [0usize, 10, HEADER_LEN, bytes.len() - 1] {
            let p = dir.path("trunc.wmtr");
            fs::write(&p, &bytes[..len]).expect("write");
            assert!(StreamingTrace::open(&p).is_err(), "prefix of {len} opened");
        }
    }

    #[test]
    fn delete_on_drop_removes_the_file() {
        let dir = TempDir::new("delete");
        let path = dir.path("t.wmtr");
        encode_streaming(&sample_trace(), 0, &path);
        {
            let st = StreamingTrace::open(&path).expect("opens").delete_on_drop();
            assert!(st.path().exists());
        }
        assert!(!path.exists());
    }

    #[test]
    fn write_encoded_matches_the_slice_encoder() {
        let dir = TempDir::new("spill");
        let trace = sample_trace();
        let path = dir.path("spill.wmtr");
        let bytes = write_encoded(&trace, 42, &path).expect("writes");
        let on_disk = fs::read(&path).expect("read");
        assert_eq!(bytes, on_disk.len() as u64);
        assert_eq!(on_disk, encode_with_hash(&trace, 42));
        let st = StreamingTrace::open(&path).expect("opens");
        assert_eq!(st.source_hash(), 42);
        assert_eq!(st.decode().expect("decodes"), trace);
    }
}
