//! Workload identity: what a stored trace is *of*.
//!
//! PR 3's store was keyed by `(Benchmark, scale)` — fine while the seven
//! built-in kernels were the only trace sources. The ingest subsystem
//! (`waymem-ingest`) adds two more: external memory-access logs (Valgrind
//! Lackey / CSV captures) and parameterized synthetic access patterns.
//! [`WorkloadId`] is the common key: every variant maps to a stable cache
//! file name and back, and every variant has a *source hash* — the
//! FNV-1a64 of whatever produced the trace (kernel assembly source, raw
//! log bytes, generator spec) — that the `.wmtr` v2 header embeds so
//! stale cache files are detected instead of silently replayed.

use waymem_workloads::Benchmark;

/// FNV-1a, 64-bit: the workspace's content-hash function. Used for
/// workload source hashes (kernel assembly text, raw log bytes, synthetic
/// generator specs); streamable via [`fnv1a64_update`].
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    fnv1a64_update(FNV1A64_SEED, bytes)
}

/// The FNV-1a64 offset basis: the accumulator a streaming hash starts
/// from before the first [`fnv1a64_update`] call.
pub const FNV1A64_SEED: u64 = 0xcbf2_9ce4_8422_2325;

/// Folds `bytes` into a running FNV-1a64 accumulator, so callers hashing
/// a stream chunk-by-chunk (e.g. a log file read line-by-line) get the
/// same digest as one [`fnv1a64`] call over the concatenation.
#[must_use]
pub fn fnv1a64_update(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A parameterized synthetic access pattern — the locality regimes the
/// seven kernels do not cover. The spec is pure data; `waymem-ingest`
/// turns it into an actual trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SynthPattern {
    /// Pure sequential streaming: every access one word past the last.
    /// Zero reuse — the regime where memoization buys the least.
    Stream,
    /// Fixed-stride walk over a wrapping region (`stride` in bytes).
    /// Models column-major matrix traffic; stresses set-conflict reuse.
    Strided {
        /// Distance between consecutive accesses, in bytes (≥ 1).
        stride: u32,
    },
    /// A dependent pointer chase over a shuffled cycle of `nodes` nodes.
    /// Low spatial locality, perfect per-node temporal recurrence.
    PointerChase {
        /// Number of nodes in the chased cycle (≥ 1).
        nodes: u32,
    },
    /// A zipf(α)-skewed working set: most accesses land in a hot set of
    /// `hot_lines` cache lines with true zipf rank probabilities
    /// (alias-table sampled), the rest scatter over a cold region. The
    /// MAB's best case.
    ZipfHotSet {
        /// Number of 32-byte lines in the hot set (≥ 1).
        hot_lines: u32,
        /// The zipf exponent α in centi-units (fixed point, so the spec
        /// stays `Eq`/`Hash`): rank `k` is drawn with probability
        /// ∝ 1/(k+1)^(α/100). 100 is the classic α = 1.0; 0 degenerates
        /// to a uniform hot set.
        alpha_centi: u32,
    },
    /// A phase-change workload: a zipf-hot working set that *migrates* to
    /// a fresh memory region `phases` times over the trace — the regime
    /// where memoized state goes cold all at once and must be relearned.
    PhaseChange {
        /// Number of 32-byte lines in each phase's hot set (≥ 1).
        hot_lines: u32,
        /// Number of distinct hot-set regions the trace walks through
        /// (≥ 1); the hot set migrates `phases − 1` times.
        phases: u32,
    },
    /// A multi-loop instruction footprint: execution rotates round-robin
    /// through `loops` distinct inner loops at well-separated PC regions,
    /// switching every `period` iterations. One loop fits any I-MAB; many
    /// loops overflow its capacity, so this is the I-side stress the
    /// single-loop model every other pattern shares cannot produce.
    MultiLoop {
        /// Number of distinct inner loops the trace rotates through
        /// (≥ 1); 1 degenerates to the shared single-loop model.
        loops: u32,
        /// Iterations spent in a loop before switching to the next
        /// (≥ 1). Short periods thrash memoized I-state fastest.
        period: u32,
    },
    /// A mixed read/write pointer chase: like
    /// [`PointerChase`](Self::PointerChase), but every visited node is
    /// read (the next pointer) *and* written (a payload word in the same
    /// line) — the linked-list-update regime where stores recur over the
    /// same lines loads just touched.
    RwChase {
        /// Number of nodes in the chased cycle (≥ 1).
        nodes: u32,
    },
}

impl SynthPattern {
    /// Compact token used in labels and cache file names, e.g.
    /// `stride64`, `chase512`, `zipf64a100`, `phase32p4`.
    #[must_use]
    pub fn token(self) -> String {
        match self {
            SynthPattern::Stream => "stream".to_owned(),
            SynthPattern::Strided { stride } => format!("stride{stride}"),
            SynthPattern::PointerChase { nodes } => format!("chase{nodes}"),
            SynthPattern::ZipfHotSet { hot_lines, alpha_centi } => {
                format!("zipf{hot_lines}a{alpha_centi}")
            }
            SynthPattern::PhaseChange { hot_lines, phases } => {
                format!("phase{hot_lines}p{phases}")
            }
            SynthPattern::MultiLoop { loops, period } => {
                format!("mloop{loops}p{period}")
            }
            SynthPattern::RwChase { nodes } => format!("rwchase{nodes}"),
        }
    }

    fn from_token(token: &str) -> Option<Self> {
        if token == "stream" {
            return Some(SynthPattern::Stream);
        }
        if let Some(v) = token.strip_prefix("stride") {
            return Some(SynthPattern::Strided { stride: v.parse().ok()? });
        }
        // `rwchase` before `chase`: both are chases, the prefix decides.
        if let Some(v) = token.strip_prefix("rwchase") {
            return Some(SynthPattern::RwChase { nodes: v.parse().ok()? });
        }
        if let Some(v) = token.strip_prefix("chase") {
            return Some(SynthPattern::PointerChase { nodes: v.parse().ok()? });
        }
        if let Some(v) = token.strip_prefix("mloop") {
            let (loops, period) = v.split_once('p')?;
            return Some(SynthPattern::MultiLoop {
                loops: loops.parse().ok()?,
                period: period.parse().ok()?,
            });
        }
        if let Some(v) = token.strip_prefix("zipf") {
            // `zipf{hot}a{alpha_centi}`; the pre-α token `zipf{hot}` is
            // deliberately rejected, so cache files from the skew-hack
            // generator read as foreign instead of current.
            let (hot, alpha) = v.split_once('a')?;
            return Some(SynthPattern::ZipfHotSet {
                hot_lines: hot.parse().ok()?,
                alpha_centi: alpha.parse().ok()?,
            });
        }
        if let Some(v) = token.strip_prefix("phase") {
            let (hot, phases) = v.split_once('p')?;
            return Some(SynthPattern::PhaseChange {
                hot_lines: hot.parse().ok()?,
                phases: phases.parse().ok()?,
            });
        }
        None
    }
}

/// A full synthetic-workload specification: the pattern plus how many
/// data accesses to fabricate and the RNG seed. Two equal specs generate
/// bit-identical traces (the generators are deterministic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SynthSpec {
    /// Which access pattern to fabricate.
    pub pattern: SynthPattern,
    /// Number of data accesses the generated trace contains.
    pub accesses: u32,
    /// Seed for the generator's deterministic RNG.
    pub seed: u32,
}

/// What a stored trace is a trace *of*: one of the seven built-in paper
/// kernels at a scale, an external log identified by its content hash, or
/// a synthetic generator spec. Everything else (geometry, scheme,
/// technology) only affects replay, never the recorded stream, so this is
/// the whole [`TraceStore`](crate::TraceStore) key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum WorkloadId {
    /// One of the paper's seven benchmark kernels at a workload scale.
    Kernel {
        /// The benchmark that produces the trace.
        benchmark: Benchmark,
        /// Its workload scale factor.
        scale: u32,
    },
    /// An ingested external log, identified by the FNV-1a64 of its raw
    /// bytes — a changed input file is a different workload, never a
    /// silent cache hit.
    External {
        /// Content hash of the source log.
        hash: u64,
    },
    /// A synthetic access-pattern generator run.
    Synthetic(SynthSpec),
}

impl WorkloadId {
    /// Convenience constructor for the kernel variant.
    #[must_use]
    pub fn kernel(benchmark: Benchmark, scale: u32) -> Self {
        WorkloadId::Kernel { benchmark, scale }
    }

    /// The benchmark, when this is a built-in kernel workload.
    #[must_use]
    pub fn benchmark(self) -> Option<Benchmark> {
        match self {
            WorkloadId::Kernel { benchmark, .. } => Some(benchmark),
            _ => None,
        }
    }

    /// Short display label: the paper's benchmark name for kernels (what
    /// every figure table prints), `ext-<hash16>` for external traces,
    /// the pattern token for synthetics.
    #[must_use]
    pub fn name(self) -> String {
        match self {
            WorkloadId::Kernel { benchmark, .. } => benchmark.name().to_owned(),
            WorkloadId::External { hash } => format!("ext-{hash:016x}"),
            WorkloadId::Synthetic(spec) => spec.pattern.token(),
        }
    }

    /// The key's on-disk cache file name. Kernel keys keep PR 3's
    /// `dct-s1.wmtr` shape (existing cache dirs stay addressable);
    /// external and synthetic keys get distinct prefixes.
    #[must_use]
    pub fn file_name(self) -> String {
        match self {
            WorkloadId::Kernel { benchmark, scale } => {
                format!("{}-s{}.wmtr", benchmark.name().to_lowercase(), scale)
            }
            WorkloadId::External { hash } => format!("ext-{hash:016x}.wmtr"),
            WorkloadId::Synthetic(SynthSpec { pattern, accesses, seed }) => {
                format!("synth-{}-a{accesses}-r{seed}.wmtr", pattern.token())
            }
        }
    }

    /// Parses a cache file name back into a key (the inverse of
    /// [`file_name`](Self::file_name)); `None` for foreign files.
    #[must_use]
    pub fn from_file_name(name: &str) -> Option<Self> {
        let stem = name.strip_suffix(".wmtr")?;
        if let Some(hex) = stem.strip_prefix("ext-") {
            if hex.len() != 16 {
                return None;
            }
            return Some(WorkloadId::External { hash: u64::from_str_radix(hex, 16).ok()? });
        }
        if let Some(rest) = stem.strip_prefix("synth-") {
            let (rest, seed_part) = rest.rsplit_once("-r")?;
            let (token, accesses_part) = rest.rsplit_once("-a")?;
            return Some(WorkloadId::Synthetic(SynthSpec {
                pattern: SynthPattern::from_token(token)?,
                accesses: accesses_part.parse().ok()?,
                seed: seed_part.parse().ok()?,
            }));
        }
        let (bench_name, scale_part) = stem.rsplit_once("-s")?;
        let scale: u32 = scale_part.parse().ok()?;
        let benchmark = Benchmark::ALL
            .into_iter()
            .find(|b| b.name().to_lowercase() == bench_name)?;
        Some(WorkloadId::Kernel { benchmark, scale })
    }
}

impl std::fmt::Display for WorkloadId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a 64-bit vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn streaming_hash_equals_one_shot() {
        let data = b"I  0023C790,2\n L 0025747C,4\n";
        let mut h = FNV1A64_SEED;
        for chunk in data.chunks(5) {
            h = fnv1a64_update(h, chunk);
        }
        assert_eq!(h, fnv1a64(data));
    }

    #[test]
    fn kernel_file_names_round_trip_and_match_pr3_shape() {
        for bench in Benchmark::ALL {
            for scale in [1, 2, 16] {
                let id = WorkloadId::kernel(bench, scale);
                assert_eq!(WorkloadId::from_file_name(&id.file_name()), Some(id));
            }
        }
        assert_eq!(WorkloadId::kernel(Benchmark::Dct, 1).file_name(), "dct-s1.wmtr");
    }

    #[test]
    fn external_and_synthetic_file_names_round_trip() {
        let ids = [
            WorkloadId::External { hash: 0 },
            WorkloadId::External { hash: u64::MAX },
            WorkloadId::External { hash: 0x0123_4567_89ab_cdef },
            WorkloadId::Synthetic(SynthSpec {
                pattern: SynthPattern::Stream,
                accesses: 1,
                seed: 0,
            }),
            WorkloadId::Synthetic(SynthSpec {
                pattern: SynthPattern::Strided { stride: 4096 },
                accesses: 200_000,
                seed: 7,
            }),
            WorkloadId::Synthetic(SynthSpec {
                pattern: SynthPattern::PointerChase { nodes: 512 },
                accesses: 100_000,
                seed: 1,
            }),
            WorkloadId::Synthetic(SynthSpec {
                pattern: SynthPattern::ZipfHotSet { hot_lines: 64, alpha_centi: 100 },
                accesses: u32::MAX,
                seed: u32::MAX,
            }),
            WorkloadId::Synthetic(SynthSpec {
                pattern: SynthPattern::PhaseChange { hot_lines: 32, phases: 4 },
                accesses: 100_000,
                seed: 9,
            }),
            WorkloadId::Synthetic(SynthSpec {
                pattern: SynthPattern::MultiLoop { loops: 16, period: 8 },
                accesses: 100_000,
                seed: 2,
            }),
            WorkloadId::Synthetic(SynthSpec {
                pattern: SynthPattern::RwChase { nodes: 4096 },
                accesses: 100_000,
                seed: 5,
            }),
        ];
        for id in ids {
            assert_eq!(WorkloadId::from_file_name(&id.file_name()), Some(id), "{id}");
        }
    }

    #[test]
    fn foreign_file_names_are_rejected() {
        for name in [
            "nope.wmtr",
            "dct-s1.txt",
            "dct-sX.wmtr",
            "ext-123.wmtr",             // hash not 16 hex digits
            "ext-zzzzzzzzzzzzzzzz.wmtr", // not hex
            "synth-stream.wmtr",        // missing params
            "synth-warp9-a1-r1.wmtr",   // unknown pattern
            "synth-stride-a1-r1.wmtr",  // missing stride value
            "synth-zipf64-a1-r1.wmtr",  // pre-α zipf token (stale generator)
            "synth-phase32-a1-r1.wmtr", // phase token missing phase count
            "synth-mloop16-a1-r1.wmtr", // mloop token missing period
            "synth-rwchase-a1-r1.wmtr", // missing node count
        ] {
            assert_eq!(WorkloadId::from_file_name(name), None, "{name}");
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(WorkloadId::kernel(Benchmark::Dct, 2).name(), "DCT");
        assert_eq!(WorkloadId::External { hash: 0xabc }.name(), "ext-0000000000000abc");
        let spec = SynthSpec {
            pattern: SynthPattern::ZipfHotSet { hot_lines: 64, alpha_centi: 100 },
            accesses: 10,
            seed: 1,
        };
        assert_eq!(WorkloadId::Synthetic(spec).name(), "zipf64a100");
        assert_eq!(WorkloadId::Synthetic(spec).to_string(), "zipf64a100");
        let spec = SynthSpec {
            pattern: SynthPattern::PhaseChange { hot_lines: 32, phases: 4 },
            accesses: 10,
            seed: 1,
        };
        assert_eq!(WorkloadId::Synthetic(spec).name(), "phase32p4");
    }
}
