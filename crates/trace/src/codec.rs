//! The compact binary trace format (`.wmtr`).
//!
//! A recorded benchmark trace is two program-order streams of
//! [`TraceEvent`]s (fetches apart from loads/stores — the layout the
//! replay engine consumes) plus a cycle count. In memory each event is
//! `size_of::<TraceEvent>()` (24 B) regardless of content; on the wire
//! almost every field is tiny — fetch PCs advance by the 8-byte packet
//! stride, load/store bases revisit the same few regions, displacements
//! are small by construction (the paper's whole premise). The codec
//! exploits that:
//!
//! * **delta-encoded addresses** — each section keeps a running
//!   predictor (the previous event's primary address); events encode the
//!   zigzagged difference as a LEB128 varint, so the common `+8`
//!   sequential fetch costs two bytes total;
//! * **varint lengths everywhere** — displacements and intra-event
//!   address offsets (branch base relative to the PC, effective address
//!   relative to `base + disp`) are zigzag varints too;
//! * **split sections** — the fetch and data streams are encoded
//!   back-to-back but independently, so a streaming consumer can replay
//!   one family without touching the other;
//! * **versioned header + checksum** — a fixed 56-byte header (magic,
//!   version, event counts, cycles, source hash, section lengths) and a
//!   trailing FNV-1a 32-bit checksum over everything after the magic, so
//!   a corrupt or truncated file is always an `Err`, never garbage data.
//!
//! ## Wire layout (version 2)
//!
//! ```text
//! offset  size  field
//! 0       4     magic "WMTR"
//! 4       2     format version (little-endian u16, currently 2)
//! 6       2     flags (reserved, 0)
//! 8       8     fetch-event count (u64)
//! 16      8     data-event count (u64)
//! 24      8     cycles (u64)
//! 32      8     fetch-section byte length (u64)
//! 40      8     data-section byte length (u64)
//! 48      8     source hash (FNV-1a64 of the workload source; 0 = none)
//! 56      …     fetch section, then data section
//! end−4   4     FNV-1a32 checksum of bytes [4, end−4)
//! ```
//!
//! Version 1 (PR 3) is the same layout without the source-hash field
//! (sections start at offset 48). V1 buffers still **decode** — existing
//! cache files stay readable — but the encoder only writes v2: the source
//! hash is what lets the [`TraceStore`](crate::TraceStore) tell a *stale*
//! cache file (same key, changed kernel source / changed input log) from
//! a current one, closing the staleness hole corruption checksums cannot
//! see.
//!
//! Every event starts with a one-byte tag (`0..=3` the four
//! [`FetchKind`]s, `4` load, `5` store) followed by its varint fields.
//! Decoding is strict: unknown tags, dangling varints, section byte
//! counts that disagree with the event counts, and trailing bytes are
//! all distinct [`CodecError`]s.

use waymem_isa::{FetchKind, RecordedTrace, RecordingSink, TraceEvent, TraceSink};

/// The four magic bytes every `.wmtr` buffer starts with.
pub const MAGIC: [u8; 4] = *b"WMTR";

/// The format version this build encodes. Decoding accepts this and
/// [`FORMAT_VERSION_V1`].
pub const FORMAT_VERSION: u16 = 2;

/// The PR 3 format version: no source-hash field. Decoded read-only —
/// the encoder never writes it.
pub const FORMAT_VERSION_V1: u16 = 1;

/// Fixed header length of the current format, in bytes (the payload
/// starts here).
pub const HEADER_LEN: usize = 56;

/// Header length of a version-1 buffer (no source-hash field).
pub const HEADER_LEN_V1: usize = 48;

/// Trailing checksum length in bytes.
pub(crate) const TRAILER_LEN: usize = 4;

/// Events per [`TraceSink::events`] batch during streaming replay: large
/// enough to amortize the virtual call, small enough that the scratch
/// buffer stays in cache (4096 × 24 B ≈ 96 kB).
pub(crate) const REPLAY_CHUNK: usize = 4096;

/// Upper bound on one event's wire size: a tag byte, up to three 5-byte
/// varints, and a size byte. The file-backed reader
/// ([`crate::stream::StreamingTrace`]) uses it to know when its buffered
/// window is guaranteed to hold at least one whole event.
pub(crate) const MAX_EVENT_WIRE: usize = 17;

const TAG_SEQUENTIAL: u8 = 0;
const TAG_TAKEN_BRANCH: u8 = 1;
const TAG_LINK_RETURN: u8 = 2;
const TAG_INDIRECT: u8 = 3;
const TAG_LOAD: u8 = 4;
const TAG_STORE: u8 = 5;

/// Why a buffer failed to decode. Every malformed input maps to one of
/// these — decoding never panics and never fabricates events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the field being read.
    Truncated,
    /// The first four bytes are not [`MAGIC`].
    BadMagic([u8; 4]),
    /// The header's version is neither [`FORMAT_VERSION`] nor
    /// [`FORMAT_VERSION_V1`].
    UnsupportedVersion(u16),
    /// The buffer length disagrees with the header's section lengths.
    LengthMismatch {
        /// Byte length the header implies.
        expected: u64,
        /// Actual buffer length.
        found: u64,
    },
    /// The trailing checksum does not match the buffer contents.
    BadChecksum {
        /// Checksum stored in the trailer.
        stored: u32,
        /// Checksum recomputed from the bytes.
        computed: u32,
    },
    /// An event started with an unknown tag byte.
    BadTag(u8),
    /// A varint ran past its maximum width (corrupt continuation bits).
    BadVarint,
    /// A section's byte length was consumed before its declared event
    /// count was reached, or held bytes beyond the final event.
    SectionMismatch {
        /// Events the header declared for the section.
        declared: u64,
        /// Events actually decoded before the section ended.
        decoded: u64,
    },
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "trace buffer truncated"),
            CodecError::BadMagic(m) => write!(f, "bad magic {m:02x?} (expected \"WMTR\")"),
            CodecError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported trace format version {v} (expected {FORMAT_VERSION_V1} or {FORMAT_VERSION})"
                )
            }
            CodecError::LengthMismatch { expected, found } => {
                write!(f, "buffer length {found} disagrees with header (expected {expected})")
            }
            CodecError::BadChecksum { stored, computed } => {
                write!(f, "checksum mismatch: stored {stored:#010x}, computed {computed:#010x}")
            }
            CodecError::BadTag(t) => write!(f, "unknown event tag {t}"),
            CodecError::BadVarint => write!(f, "malformed varint"),
            CodecError::SectionMismatch { declared, decoded } => {
                write!(f, "section declared {declared} events but decoded {decoded}")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// FNV-1a 32-bit offset basis — the accumulator's starting value for
/// [`fnv1a32_update`].
pub(crate) const FNV1A32_SEED: u32 = 0x811c_9dc5;

/// Folds `bytes` into a running FNV-1a32 accumulator, so callers that
/// see the data in pieces (the file-backed streaming encoder/reader)
/// compute the same checksum as a single [`fnv1a32`] pass.
pub(crate) fn fnv1a32_update(mut hash: u32, bytes: &[u8]) -> u32 {
    for &b in bytes {
        hash ^= u32::from(b);
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

/// FNV-1a, 32-bit — tiny, dependency-free, and plenty to catch the
/// corruption/truncation class of faults (this is an integrity check,
/// not an authenticity one).
fn fnv1a32(bytes: &[u8]) -> u32 {
    fnv1a32_update(FNV1A32_SEED, bytes)
}

/// Zigzag: maps small-magnitude signed values to small unsigned ones.
fn zigzag(v: i32) -> u32 {
    ((v << 1) ^ (v >> 31)) as u32
}

fn unzigzag(v: u32) -> i32 {
    ((v >> 1) as i32) ^ -((v & 1) as i32)
}

/// The zigzagged wrapping difference `to − from`: the codec's address
/// predictor residual. Exact for every `u32` pair.
fn addr_delta(to: u32, from: u32) -> u32 {
    zigzag(to.wrapping_sub(from) as i32)
}

fn apply_delta(from: u32, delta: u32) -> u32 {
    from.wrapping_add(unzigzag(delta) as u32)
}

fn push_varint(out: &mut Vec<u8>, mut v: u32) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// A bounds-checked reader over one section's bytes.
pub(crate) struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    pub(crate) fn done(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    /// Bytes consumed so far.
    pub(crate) fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes still unread.
    pub(crate) fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        let b = *self.bytes.get(self.pos).ok_or(CodecError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    fn varint(&mut self) -> Result<u32, CodecError> {
        let mut v: u32 = 0;
        for shift in (0..).step_by(7) {
            // A u32 varint is at most 5 bytes; the 5th may only carry
            // the top 4 bits.
            if shift > 28 {
                return Err(CodecError::BadVarint);
            }
            let b = self.u8()?;
            let payload = u32::from(b & 0x7f);
            if shift == 28 && payload > 0x0f {
                return Err(CodecError::BadVarint);
            }
            v |= payload << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
        }
        unreachable!("loop returns or errors within 5 iterations")
    }
}

/// Appends one event to `out`, chaining the section predictor `prev`
/// through [`TraceEvent::primary_addr`].
pub(crate) fn encode_event(out: &mut Vec<u8>, e: TraceEvent, prev: &mut u32) {
    match e {
        TraceEvent::Fetch { pc, kind } => match kind {
            FetchKind::Sequential => {
                out.push(TAG_SEQUENTIAL);
                push_varint(out, addr_delta(pc, *prev));
            }
            FetchKind::TakenBranch { base, disp } => {
                out.push(TAG_TAKEN_BRANCH);
                push_varint(out, addr_delta(pc, *prev));
                push_varint(out, addr_delta(base, pc));
                push_varint(out, zigzag(disp));
            }
            FetchKind::LinkReturn { target } => {
                out.push(TAG_LINK_RETURN);
                push_varint(out, addr_delta(pc, *prev));
                push_varint(out, addr_delta(target, pc));
            }
            FetchKind::Indirect { base, disp } => {
                out.push(TAG_INDIRECT);
                push_varint(out, addr_delta(pc, *prev));
                push_varint(out, addr_delta(base, pc));
                push_varint(out, zigzag(disp));
            }
        },
        TraceEvent::Load { base, disp, addr, size } => {
            encode_mem(out, TAG_LOAD, base, disp, addr, size, *prev);
        }
        TraceEvent::Store { base, disp, addr, size } => {
            encode_mem(out, TAG_STORE, base, disp, addr, size, *prev);
        }
    }
    *prev = e.primary_addr();
}

/// The shared load/store wire form: base delta, displacement, size, and
/// the effective-address residual (almost always zero — `addr` is
/// normally exactly `base + disp` — so it costs a single byte).
fn encode_mem(out: &mut Vec<u8>, tag: u8, base: u32, disp: i32, addr: u32, size: u8, prev: u32) {
    out.push(tag);
    push_varint(out, addr_delta(base, prev));
    push_varint(out, zigzag(disp));
    out.push(size);
    push_varint(out, addr_delta(addr, base.wrapping_add(disp as u32)));
}

pub(crate) fn decode_event(cur: &mut Cursor<'_>, prev: &mut u32) -> Result<TraceEvent, CodecError> {
    let tag = cur.u8()?;
    let e = match tag {
        TAG_SEQUENTIAL | TAG_TAKEN_BRANCH | TAG_LINK_RETURN | TAG_INDIRECT => {
            let pc = apply_delta(*prev, cur.varint()?);
            let kind = match tag {
                TAG_SEQUENTIAL => FetchKind::Sequential,
                TAG_TAKEN_BRANCH => FetchKind::TakenBranch {
                    base: apply_delta(pc, cur.varint()?),
                    disp: unzigzag(cur.varint()?),
                },
                TAG_LINK_RETURN => FetchKind::LinkReturn {
                    target: apply_delta(pc, cur.varint()?),
                },
                _ => FetchKind::Indirect {
                    base: apply_delta(pc, cur.varint()?),
                    disp: unzigzag(cur.varint()?),
                },
            };
            TraceEvent::Fetch { pc, kind }
        }
        TAG_LOAD | TAG_STORE => {
            let base = apply_delta(*prev, cur.varint()?);
            let disp = unzigzag(cur.varint()?);
            let size = cur.u8()?;
            let addr = apply_delta(base.wrapping_add(disp as u32), cur.varint()?);
            if tag == TAG_LOAD {
                TraceEvent::Load { base, disp, addr, size }
            } else {
                TraceEvent::Store { base, disp, addr, size }
            }
        }
        t => return Err(CodecError::BadTag(t)),
    };
    *prev = e.primary_addr();
    Ok(e)
}

fn encode_section(out: &mut Vec<u8>, events: &[TraceEvent]) {
    let mut prev = 0u32;
    for &e in events {
        encode_event(out, e, &mut prev);
    }
}

/// Decodes one section, handing events downstream in chunks of at most
/// [`REPLAY_CHUNK`] — the section is never materialized whole.
fn parse_section(
    bytes: &[u8],
    declared: u64,
    mut emit: impl FnMut(&[TraceEvent]),
) -> Result<(), CodecError> {
    let mut cur = Cursor::new(bytes);
    let mut prev = 0u32;
    let mut decoded = 0u64;
    let mut chunk = Vec::with_capacity(REPLAY_CHUNK.min(usize::try_from(declared).unwrap_or(REPLAY_CHUNK)));
    while decoded < declared {
        if cur.done() {
            return Err(CodecError::SectionMismatch { declared, decoded });
        }
        chunk.push(decode_event(&mut cur, &mut prev)?);
        decoded += 1;
        if chunk.len() == REPLAY_CHUNK {
            emit(&chunk);
            chunk.clear();
        }
    }
    if !chunk.is_empty() {
        emit(&chunk);
    }
    if !cur.done() {
        // Bytes left over after the declared events: corrupt counts.
        return Err(CodecError::SectionMismatch { declared, decoded });
    }
    Ok(())
}

/// Encodes `trace` into a fresh buffer with no source hash (0 = none).
/// Use [`encode_with_hash`] when the workload's source hash is known.
#[must_use]
pub fn encode(trace: &RecordedTrace) -> Vec<u8> {
    encode_with_hash(trace, 0)
}

/// Encodes `trace` into a fresh buffer, embedding `source_hash` (the
/// FNV-1a64 of whatever produced the trace) in the v2 header.
#[must_use]
pub fn encode_with_hash(trace: &RecordedTrace, source_hash: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + trace.len() * 3 + TRAILER_LEN);
    encode_into_with_hash(trace, source_hash, &mut out);
    out
}

/// Appends the encoding of `trace` to `out` with no source hash and
/// returns the number of bytes written.
pub fn encode_into(trace: &RecordedTrace, out: &mut Vec<u8>) -> usize {
    encode_into_with_hash(trace, 0, out)
}

/// Appends the encoding of `trace` to `out`, embedding `source_hash`,
/// and returns the number of bytes written. Encoding is total — every
/// `(RecordedTrace, source_hash)` pair has exactly one wire form.
pub fn encode_into_with_hash(trace: &RecordedTrace, source_hash: u64, out: &mut Vec<u8>) -> usize {
    let start = out.len();
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&0u16.to_le_bytes()); // flags (reserved)
    push_u64(out, trace.fetch_events.len() as u64);
    push_u64(out, trace.data_events.len() as u64);
    push_u64(out, trace.cycles);
    // Section lengths are back-patched once known.
    let lengths_at = out.len();
    push_u64(out, 0);
    push_u64(out, 0);
    push_u64(out, source_hash);
    debug_assert_eq!(out.len() - start, HEADER_LEN);

    let fetch_start = out.len();
    encode_section(out, &trace.fetch_events);
    let fetch_len = (out.len() - fetch_start) as u64;
    encode_section(out, &trace.data_events);
    let data_len = (out.len() - fetch_start) as u64 - fetch_len;
    out[lengths_at..lengths_at + 8].copy_from_slice(&fetch_len.to_le_bytes());
    out[lengths_at + 8..lengths_at + 16].copy_from_slice(&data_len.to_le_bytes());

    let checksum = fnv1a32(&out[start + MAGIC.len()..]);
    out.extend_from_slice(&checksum.to_le_bytes());
    out.len() - start
}

/// The fields of a parsed `.wmtr` header, shared by the slice-backed
/// [`Decoder`] and the file-backed [`crate::stream::StreamingTrace`] so
/// the two front doors validate identically.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Header {
    pub(crate) version: u16,
    pub(crate) header_len: usize,
    pub(crate) fetch_count: u64,
    pub(crate) data_count: u64,
    pub(crate) cycles: u64,
    pub(crate) fetch_len: u64,
    pub(crate) data_len: u64,
    pub(crate) source_hash: u64,
}

impl Header {
    /// Total byte length the header implies for the whole buffer/file
    /// (header + both sections + trailer), or `Truncated` on overflow.
    pub(crate) fn expected_total(&self) -> Result<u64, CodecError> {
        (self.header_len as u64)
            .checked_add(self.fetch_len)
            .and_then(|v| v.checked_add(self.data_len))
            .and_then(|v| v.checked_add(TRAILER_LEN as u64))
            .ok_or(CodecError::Truncated)
    }
}

/// Parses and validates the fixed header at the front of `bytes`
/// (magic, version, field extraction). `bytes` only needs to hold the
/// header itself; whole-buffer length and checksum checks are the
/// caller's job since they need the rest of the data.
pub(crate) fn parse_header(bytes: &[u8]) -> Result<Header, CodecError> {
    if bytes.len() < HEADER_LEN_V1 {
        return Err(CodecError::Truncated);
    }
    let magic: [u8; 4] = bytes[0..4].try_into().expect("4-byte slice");
    if magic != MAGIC {
        return Err(CodecError::BadMagic(magic));
    }
    let version = u16::from_le_bytes(bytes[4..6].try_into().expect("2-byte slice"));
    let header_len = match version {
        FORMAT_VERSION => HEADER_LEN,
        FORMAT_VERSION_V1 => HEADER_LEN_V1,
        v => return Err(CodecError::UnsupportedVersion(v)),
    };
    if bytes.len() < header_len {
        return Err(CodecError::Truncated);
    }
    let read_u64 = |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8-byte slice"));
    Ok(Header {
        version,
        header_len,
        fetch_count: read_u64(8),
        data_count: read_u64(16),
        cycles: read_u64(24),
        fetch_len: read_u64(32),
        data_len: read_u64(40),
        source_hash: if version == FORMAT_VERSION { read_u64(48) } else { 0 },
    })
}

/// Which of the two encoded streams to replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Section {
    /// The instruction-fetch stream (what I-front-ends consume).
    Fetch,
    /// The load/store stream (what D-front-ends consume).
    Data,
}

/// A validated view over an encoded trace, ready to stream events out.
///
/// Construction ([`Decoder::new`]) checks the header and the integrity
/// checksum up front; the per-event byte stream is still validated
/// lazily as it is walked, so even a checksum collision cannot make the
/// decoder emit out-of-spec data structures or panic.
#[derive(Debug, Clone, Copy)]
pub struct Decoder<'a> {
    fetch_section: &'a [u8],
    data_section: &'a [u8],
    fetch_count: u64,
    data_count: u64,
    cycles: u64,
    version: u16,
    source_hash: u64,
}

impl<'a> Decoder<'a> {
    /// Validates `bytes` (magic, version, lengths, checksum) and returns
    /// a decoder over its sections. Both the current format and the v1
    /// format (no source hash) are accepted.
    ///
    /// # Errors
    ///
    /// Any malformed buffer yields the matching [`CodecError`].
    pub fn new(bytes: &'a [u8]) -> Result<Self, CodecError> {
        // The version field sits inside the smaller v1 header, so this
        // minimum suffices to read it for either format.
        if bytes.len() < HEADER_LEN_V1 + TRAILER_LEN {
            return Err(CodecError::Truncated);
        }
        let h = parse_header(bytes)?;
        if bytes.len() < h.header_len + TRAILER_LEN {
            return Err(CodecError::Truncated);
        }
        let expected = h.expected_total()?;
        if expected != bytes.len() as u64 {
            return Err(CodecError::LengthMismatch {
                expected,
                found: bytes.len() as u64,
            });
        }
        let stored = u32::from_le_bytes(
            bytes[bytes.len() - TRAILER_LEN..].try_into().expect("4-byte slice"),
        );
        let computed = fnv1a32(&bytes[MAGIC.len()..bytes.len() - TRAILER_LEN]);
        if stored != computed {
            return Err(CodecError::BadChecksum { stored, computed });
        }
        // Every event costs at least one byte, so counts larger than the
        // section reject cheaply (and bound any pre-allocation).
        if h.fetch_count > h.fetch_len || h.data_count > h.data_len {
            return Err(CodecError::SectionMismatch {
                declared: if h.fetch_count > h.fetch_len { h.fetch_count } else { h.data_count },
                decoded: 0,
            });
        }
        let fetch_end =
            h.header_len + usize::try_from(h.fetch_len).map_err(|_| CodecError::Truncated)?;
        let data_end = fetch_end + usize::try_from(h.data_len).map_err(|_| CodecError::Truncated)?;
        Ok(Decoder {
            fetch_section: &bytes[h.header_len..fetch_end],
            data_section: &bytes[fetch_end..data_end],
            fetch_count: h.fetch_count,
            data_count: h.data_count,
            cycles: h.cycles,
            version: h.version,
            source_hash: h.source_hash,
        })
    }

    /// Instructions retired by the recorded run.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// The header's format version ([`FORMAT_VERSION`] or
    /// [`FORMAT_VERSION_V1`]).
    #[must_use]
    pub fn version(&self) -> u16 {
        self.version
    }

    /// The source hash embedded in the header: the FNV-1a64 of whatever
    /// produced the trace. Zero for v1 buffers (which predate the field)
    /// and for encoders that did not know it.
    #[must_use]
    pub fn source_hash(&self) -> u64 {
        self.source_hash
    }

    /// Events in the fetch stream.
    #[must_use]
    pub fn fetch_count(&self) -> u64 {
        self.fetch_count
    }

    /// Events in the data stream.
    #[must_use]
    pub fn data_count(&self) -> u64 {
        self.data_count
    }

    /// Streams one section straight into `sink` via batched
    /// [`TraceSink::events`] calls, using a bounded scratch buffer —
    /// the stream is never materialized whole. Returns the number of
    /// events replayed.
    ///
    /// # Errors
    ///
    /// [`CodecError`] if the section's bytes are malformed; events
    /// already emitted before the error stand (sinks that need
    /// all-or-nothing should decode first).
    pub fn replay_section<S: TraceSink + ?Sized>(
        &self,
        section: Section,
        sink: &mut S,
    ) -> Result<u64, CodecError> {
        let (bytes, declared) = match section {
            Section::Fetch => (self.fetch_section, self.fetch_count),
            Section::Data => (self.data_section, self.data_count),
        };
        parse_section(bytes, declared, |chunk| sink.events(chunk))?;
        Ok(declared)
    }

    /// Streams both sections (fetches, then loads/stores) into `sink`.
    /// Returns the total number of events replayed.
    ///
    /// # Errors
    ///
    /// Propagates the first [`CodecError`] from either section.
    pub fn replay<S: TraceSink + ?Sized>(&self, sink: &mut S) -> Result<u64, CodecError> {
        Ok(self.replay_section(Section::Fetch, sink)? + self.replay_section(Section::Data, sink)?)
    }

    /// Materializes the full [`RecordedTrace`].
    ///
    /// # Errors
    ///
    /// [`CodecError`] if either section's bytes are malformed.
    pub fn decode(&self) -> Result<RecordedTrace, CodecError> {
        let mut fetch_events = Vec::with_capacity(RecordingSink::prealloc_cap(self.fetch_count));
        parse_section(self.fetch_section, self.fetch_count, |chunk| {
            fetch_events.extend_from_slice(chunk);
        })?;
        let mut data_events = Vec::with_capacity(RecordingSink::prealloc_cap(self.data_count));
        parse_section(self.data_section, self.data_count, |chunk| {
            data_events.extend_from_slice(chunk);
        })?;
        Ok(RecordedTrace {
            fetch_events,
            data_events,
            cycles: self.cycles,
        })
    }
}

/// Decodes an encoded buffer back into a [`RecordedTrace`].
///
/// # Errors
///
/// Any malformed buffer yields the matching [`CodecError`]; decoding
/// never panics.
pub fn decode(bytes: &[u8]) -> Result<RecordedTrace, CodecError> {
    Decoder::new(bytes)?.decode()
}

#[cfg(test)]
mod tests {
    use super::*;
    use waymem_isa::CountingSink;

    fn sample_trace() -> RecordedTrace {
        RecordedTrace {
            fetch_events: vec![
                TraceEvent::Fetch { pc: 0x1000, kind: FetchKind::Sequential },
                TraceEvent::Fetch { pc: 0x1008, kind: FetchKind::Sequential },
                TraceEvent::Fetch {
                    pc: 0x0f00,
                    kind: FetchKind::TakenBranch { base: 0x1008, disp: -264 },
                },
                TraceEvent::Fetch { pc: 0x2000, kind: FetchKind::LinkReturn { target: 0x2000 } },
                TraceEvent::Fetch {
                    pc: 0x3000,
                    kind: FetchKind::Indirect { base: 0x2ff0, disp: 16 },
                },
            ],
            data_events: vec![
                TraceEvent::Load { base: 0x8000, disp: 4, addr: 0x8004, size: 4 },
                TraceEvent::Store { base: 0x8000, disp: -8, addr: 0x7ff8, size: 2 },
                TraceEvent::Load { base: 0, disp: 0, addr: u32::MAX, size: 1 },
            ],
            cycles: 12345,
        }
    }

    #[test]
    fn round_trips() {
        let trace = sample_trace();
        let bytes = encode(&trace);
        assert_eq!(decode(&bytes).expect("decodes"), trace);
    }

    #[test]
    fn empty_trace_round_trips() {
        let trace = RecordedTrace::default();
        let bytes = encode(&trace);
        assert_eq!(bytes.len(), HEADER_LEN + TRAILER_LEN);
        assert_eq!(decode(&bytes).expect("decodes"), trace);
    }

    #[test]
    fn sequential_fetches_cost_two_bytes() {
        let trace = RecordedTrace {
            fetch_events: (0..1000)
                .map(|i| TraceEvent::Fetch { pc: 0x1000 + 8 * i, kind: FetchKind::Sequential })
                .collect(),
            data_events: Vec::new(),
            cycles: 1000,
        };
        let bytes = encode(&trace);
        let payload = bytes.len() - HEADER_LEN - TRAILER_LEN;
        // Tag byte + one-byte varint delta (first event's delta is larger).
        assert!(payload <= 2 * 1000 + 2, "payload {payload}");
        assert!(bytes.len() * 8 < trace.raw_size_bytes() as usize, "no compression win");
    }

    #[test]
    fn encode_into_appends() {
        let trace = sample_trace();
        let mut buf = vec![0xAA, 0xBB];
        let written = encode_into(&trace, &mut buf);
        assert_eq!(buf.len(), 2 + written);
        assert_eq!(&buf[..2], &[0xAA, 0xBB]);
        assert_eq!(decode(&buf[2..]).expect("decodes"), trace);
    }

    #[test]
    fn streaming_replay_matches_counts() {
        let trace = sample_trace();
        let bytes = encode(&trace);
        let dec = Decoder::new(&bytes).expect("valid");
        assert_eq!(dec.cycles(), trace.cycles);
        let mut sink = CountingSink::default();
        let replayed = dec.replay(&mut sink).expect("replays");
        assert_eq!(replayed, trace.len() as u64);
        assert_eq!(sink.fetches, trace.fetch_events.len() as u64);
        assert_eq!(sink.loads + sink.stores, trace.data_events.len() as u64);
        let mut fetch_only = CountingSink::default();
        dec.replay_section(Section::Fetch, &mut fetch_only).expect("replays");
        assert_eq!(fetch_only.loads + fetch_only.stores, 0);
        assert_eq!(fetch_only.fetches, trace.fetch_events.len() as u64);
    }

    /// Builds a version-1 buffer (PR 3 layout: no source-hash field) so
    /// the read-only v1 decode path stays pinned without keeping old
    /// binaries around.
    fn encode_v1(trace: &RecordedTrace) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION_V1.to_le_bytes());
        out.extend_from_slice(&0u16.to_le_bytes());
        push_u64(&mut out, trace.fetch_events.len() as u64);
        push_u64(&mut out, trace.data_events.len() as u64);
        push_u64(&mut out, trace.cycles);
        let lengths_at = out.len();
        push_u64(&mut out, 0);
        push_u64(&mut out, 0);
        assert_eq!(out.len(), HEADER_LEN_V1);
        let fetch_start = out.len();
        encode_section(&mut out, &trace.fetch_events);
        let fetch_len = (out.len() - fetch_start) as u64;
        encode_section(&mut out, &trace.data_events);
        let data_len = (out.len() - fetch_start) as u64 - fetch_len;
        out[lengths_at..lengths_at + 8].copy_from_slice(&fetch_len.to_le_bytes());
        out[lengths_at + 8..lengths_at + 16].copy_from_slice(&data_len.to_le_bytes());
        let checksum = fnv1a32(&out[MAGIC.len()..]);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    #[test]
    fn source_hash_round_trips() {
        let trace = sample_trace();
        let bytes = encode_with_hash(&trace, 0xdead_beef_cafe_f00d);
        let dec = Decoder::new(&bytes).expect("valid");
        assert_eq!(dec.version(), FORMAT_VERSION);
        assert_eq!(dec.source_hash(), 0xdead_beef_cafe_f00d);
        assert_eq!(dec.decode().expect("decodes"), trace);
        // The plain encoder writes hash 0 ("unknown").
        let plain_bytes = encode(&trace);
        let plain = Decoder::new(&plain_bytes).expect("valid");
        assert_eq!(plain.source_hash(), 0);
    }

    #[test]
    fn different_source_hashes_change_the_bytes_only_in_the_header() {
        let trace = sample_trace();
        let a = encode_with_hash(&trace, 1);
        let b = encode_with_hash(&trace, 2);
        assert_eq!(a.len(), b.len());
        // Payload identical; header hash field and trailing checksum differ.
        assert_eq!(a[HEADER_LEN..a.len() - 4], b[HEADER_LEN..b.len() - 4]);
        assert_ne!(a, b);
    }

    #[test]
    fn v1_buffers_still_decode() {
        let trace = sample_trace();
        let bytes = encode_v1(&trace);
        let dec = Decoder::new(&bytes).expect("v1 decodes");
        assert_eq!(dec.version(), FORMAT_VERSION_V1);
        assert_eq!(dec.source_hash(), 0, "v1 predates the hash field");
        assert_eq!(dec.decode().expect("decodes"), trace);
        assert_eq!(decode(&bytes).expect("decodes"), trace);
        // Truncations and bit flips of a v1 buffer error like v2's.
        for len in 0..bytes.len() {
            assert!(decode(&bytes[..len]).is_err(), "v1 prefix of {len} decoded");
        }
        let mut corrupt = bytes.clone();
        corrupt[HEADER_LEN_V1] ^= 0x01;
        assert!(decode(&corrupt).is_err());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = encode(&sample_trace());
        bytes[0] = b'X';
        assert!(matches!(decode(&bytes), Err(CodecError::BadMagic(_))));
    }

    #[test]
    fn bad_version_is_rejected() {
        let mut bytes = encode(&sample_trace());
        bytes[4] = 0xFF;
        assert!(matches!(decode(&bytes), Err(CodecError::UnsupportedVersion(_))));
    }

    #[test]
    fn every_truncation_is_an_error() {
        let bytes = encode(&sample_trace());
        for len in 0..bytes.len() {
            assert!(decode(&bytes[..len]).is_err(), "prefix of {len} bytes decoded");
        }
    }

    #[test]
    fn every_single_byte_flip_is_an_error() {
        // The checksum covers everything after the magic, so any one-bit
        // corruption anywhere must surface as an Err.
        let bytes = encode(&sample_trace());
        for at in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[at] ^= 0x01;
            assert!(decode(&corrupt).is_err(), "flip at {at} decoded");
        }
    }

    #[test]
    fn zigzag_round_trips_extremes() {
        for v in [0, 1, -1, i32::MAX, i32::MIN, 12345, -54321] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }
}
