//! The cross-config trace cache.
//!
//! Multi-config sweeps (`assoc_sweep`, `ablation`, line-size sweeps) run
//! the same workloads under many cache geometries. The trace a workload
//! produces depends only on its [`WorkloadId`] — never on the geometry or
//! scheme being evaluated — so re-producing it per configuration is pure
//! waste. [`TraceStore`] memoizes the production: the first lookup for a
//! key runs the caller's recorder (CPU interpreter, log parser or
//! synthetic generator), and every later lookup (from any thread) shares
//! the same `Arc<RecordedTrace>`.
//!
//! With a cache directory configured, recordings also persist to disk in
//! the [`codec`](mod@crate::codec) wire format, so *separate process
//! invocations* skip the production too: a cold `headline` run records
//! and saves, a warm one loads and reports zero records.
//!
//! ## Staleness
//!
//! Every lookup carries the workload's *source hash* (FNV-1a64 of the
//! kernel assembly source, raw log bytes or generator spec). Cache files
//! embed it in the `.wmtr` v2 header; a file whose hash disagrees with
//! the caller's — the kernel generator changed, the input log was edited
//! in place — is treated as a **stale miss** and re-recorded instead of
//! silently replayed. Passing hash `0` means "unverified": any cached
//! copy is accepted (what bulk [`TraceStore::load`] preloading uses).
//! Legacy v1 files carry no hash, so a caller that *does* verify
//! re-records them once and upgrades the file to v2 in passing.
//!
//! ## Disk hygiene
//!
//! The cache dir would otherwise grow without bound — external traces in
//! particular are keyed by content hash, so every edited log leaves the
//! old file behind. An optional byte cap (see
//! [`TraceStore::with_cache_limit`] and the `WAYMEM_TRACE_CACHE_MAX_BYTES`
//! environment variable via [`TraceStore::cache_cap_from_env`]) evicts
//! oldest-mtime `.wmtr` files after each save, logging each eviction to
//! stderr.
//!
//! ## Crash safety and self-healing
//!
//! The cache dir survives hostile histories. Every file write is atomic
//! (a process-unique temp file, fsync, then rename — see
//! [`StoreIo::write_atomic`]), so a crash mid-save never leaves a torn
//! `.wmtr` behind, only an orphaned `*.tmp` that the next store over the
//! dir sweeps away. A file that is nonetheless unreadable or fails
//! decode — torn by an older writer, bit-flipped by the disk — is moved
//! into [`QUARANTINE_DIR`] and transparently re-recorded; the
//! `quarantined`/`recovered` statistics count those events and
//! `io_retries` counts transient errors absorbed by bounded retry. An
//! advisory `<file>.lock` (with dead-writer takeover) serializes two
//! *processes* racing to record the same [`WorkloadId`], mirroring what
//! the per-key slot mutex does for threads.

use std::collections::HashMap;
use std::fs::{self, OpenOptions};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, SystemTime};

use waymem_isa::RecordedTrace;
use waymem_obs::metrics::Stopwatch;

use crate::codec;
use crate::fault::{self, StoreIo};
use crate::stream::{self, StreamError, StreamingTrace};
use crate::workload::WorkloadId;

/// Subdirectory of the cache dir that corrupt or unreadable `.wmtr`
/// files are moved into (instead of being replayed or deleted), keeping
/// the evidence around for a post-mortem while the store re-records.
pub const QUARANTINE_DIR: &str = "quarantine";

/// Suffix of the advisory per-workload lock files that serialize
/// cross-process recording (`<workload file>.lock`, beside the file in
/// the cache dir).
pub const LOCK_SUFFIX: &str = ".lock";

/// A lock file this old whose writer pid cannot be confirmed alive is
/// considered abandoned and taken over.
const LOCK_STALE_AFTER: Duration = Duration::from_secs(30);

/// How long an acquirer waits (20 ms per attempt) on a live holder
/// before proceeding unlocked — the lock is advisory, and atomic writes
/// keep even unserialized racers safe.
const LOCK_WAIT_ATTEMPTS: u32 = 50;

/// An in-flight temp file this old whose writer pid cannot be confirmed
/// alive is swept as an orphan.
const ORPHAN_STALE_AFTER: Duration = Duration::from_secs(60);

/// A snapshot of a store's accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Total [`TraceStore::get_or_record`] calls.
    pub lookups: u64,
    /// Lookups served from memory.
    pub hits: u64,
    /// Lookups served by decoding a cache-dir file (no production).
    pub disk_hits: u64,
    /// [`TraceStore::open_stream`] calls served straight from an
    /// existing file or an in-memory spill — i.e. without running the
    /// producer and, crucially, without materializing the event vector.
    pub stream_opens: u64,
    /// Lookups that had to run the recorder (cold misses).
    pub records: u64,
    /// Cached copies rejected because their source hash disagreed with
    /// the caller's (stale kernel source / edited log / old v1 file).
    pub stale: u64,
    /// In-memory footprint of every trace recorded or loaded, in bytes
    /// (`events × size_of::<TraceEvent>()`).
    pub raw_bytes: u64,
    /// Wire-format footprint of the same traces, in bytes.
    pub encoded_bytes: u64,
    /// Cache files written (best-effort persistence).
    pub files_saved: u64,
    /// Cache files successfully decoded (on-miss loads plus
    /// [`TraceStore::load`]).
    pub files_loaded: u64,
    /// Cache files deleted by the size-cap eviction sweep.
    pub files_evicted: u64,
    /// Total bytes reclaimed by the size-cap eviction sweep.
    pub bytes_evicted: u64,
    /// Corrupt or unreadable cache files moved into
    /// [`QUARANTINE_DIR`] instead of being replayed.
    pub quarantined: u64,
    /// Lookups that re-recorded a workload right after quarantining its
    /// bad cache file — quarantines that healed in the same run.
    pub recovered: u64,
    /// Transient I/O errors (`Interrupted`/`WouldBlock`) absorbed by the
    /// store's bounded retry loop instead of failing an operation.
    pub io_retries: u64,
}

impl StoreStats {
    /// Fraction of lookups that skipped production (memory or disk),
    /// in `[0, 1]`; zero when nothing was looked up.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            (self.hits + self.disk_hits) as f64 / self.lookups as f64
        }
    }

    /// How much smaller the wire format is than the in-memory events:
    /// `raw_bytes / encoded_bytes`. Zero when nothing was encoded.
    #[must_use]
    pub fn compression_ratio(&self) -> f64 {
        if self.encoded_bytes == 0 {
            0.0
        } else {
            self.raw_bytes as f64 / self.encoded_bytes as f64
        }
    }

    /// Mirrors the snapshot into the global metrics registry as
    /// `store.*` gauges, so anything holding the registry — an exporter,
    /// a service endpoint — sees store state without threading
    /// `StoreStats` through its plumbing. [`TraceStore::stats`] calls
    /// this on every snapshot.
    #[allow(clippy::cast_precision_loss)]
    pub fn publish(&self) {
        let set = |name: &str, v: u64| waymem_obs::registry().gauge(name).set(v as f64);
        set("store.lookups", self.lookups);
        set("store.hits", self.hits);
        set("store.disk_hits", self.disk_hits);
        set("store.stream_opens", self.stream_opens);
        set("store.records", self.records);
        set("store.stale", self.stale);
        set("store.raw_bytes", self.raw_bytes);
        set("store.encoded_bytes", self.encoded_bytes);
        set("store.files_saved", self.files_saved);
        set("store.files_loaded", self.files_loaded);
        set("store.files_evicted", self.files_evicted);
        set("store.bytes_evicted", self.bytes_evicted);
        set("store.quarantined", self.quarantined);
        set("store.recovered", self.recovered);
        set("store.io_retries", self.io_retries);
        waymem_obs::registry().gauge("store.hit_rate").set(self.hit_rate());
    }
}

/// The store's live counters. Atomics so the hot accessors take no lock.
#[derive(Debug, Default)]
struct Counters {
    lookups: AtomicU64,
    hits: AtomicU64,
    disk_hits: AtomicU64,
    stream_opens: AtomicU64,
    records: AtomicU64,
    stale: AtomicU64,
    raw_bytes: AtomicU64,
    encoded_bytes: AtomicU64,
    files_saved: AtomicU64,
    files_loaded: AtomicU64,
    files_evicted: AtomicU64,
    bytes_evicted: AtomicU64,
    quarantined: AtomicU64,
    recovered: AtomicU64,
}

impl Counters {
    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    fn account_trace(&self, trace: &RecordedTrace, encoded_len: usize) {
        self.raw_bytes.fetch_add(trace.raw_size_bytes(), Ordering::Relaxed);
        self.encoded_bytes.fetch_add(encoded_len as u64, Ordering::Relaxed);
    }

    fn snapshot(&self) -> StoreStats {
        StoreStats {
            lookups: self.lookups.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            stream_opens: self.stream_opens.load(Ordering::Relaxed),
            records: self.records.load(Ordering::Relaxed),
            stale: self.stale.load(Ordering::Relaxed),
            raw_bytes: self.raw_bytes.load(Ordering::Relaxed),
            encoded_bytes: self.encoded_bytes.load(Ordering::Relaxed),
            files_saved: self.files_saved.load(Ordering::Relaxed),
            files_loaded: self.files_loaded.load(Ordering::Relaxed),
            files_evicted: self.files_evicted.load(Ordering::Relaxed),
            bytes_evicted: self.bytes_evicted.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            recovered: self.recovered.load(Ordering::Relaxed),
            // Lives on the I/O seam, not here; `TraceStore::stats` fills it.
            io_retries: 0,
        }
    }
}

/// What one key's slot holds once filled: the trace plus the source hash
/// it was produced from (0 = unverified), so in-memory hits can apply the
/// same staleness rule as disk loads.
type Cached = (u64, Arc<RecordedTrace>);

/// What the cache dir had to say about one key.
enum DiskLoad {
    /// A current file decoded successfully.
    Hit(Cached),
    /// A decodable file exists but its source hash is outdated.
    Stale,
    /// No usable file: none at all (`quarantined == false`), or a
    /// corrupt/unreadable one the store just moved aside
    /// (`quarantined == true` — the caller counts a `recovered` event
    /// once the re-record succeeds).
    Absent {
        /// Whether this miss quarantined a bad file on the way.
        quarantined: bool,
    },
}

/// One key's slot. The per-key mutex serializes *production* of that key
/// only: two threads racing on the same workload produce it once (the
/// loser blocks, then hits), while different keys record concurrently —
/// exactly what `run_suite`'s benchmark fan-out needs.
type Slot = Arc<Mutex<Option<Cached>>>;

/// A thread-safe, keyed cache of recorded traces with optional on-disk
/// persistence, staleness detection and a disk-size cap. See the
/// [module docs](self) for the role it plays.
#[derive(Debug, Default)]
pub struct TraceStore {
    slots: Mutex<HashMap<WorkloadId, Slot>>,
    cache_dir: Option<PathBuf>,
    max_cache_bytes: Option<u64>,
    counters: Counters,
    io: StoreIo,
    swept: AtomicBool,
}

impl TraceStore {
    /// An empty, memory-only store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A store that persists under `dir`: cold recordings are saved
    /// there (best-effort) and misses try to decode a saved file before
    /// falling back to the recorder. The directory is created on first
    /// save. No size cap; chain [`with_cache_limit`](Self::with_cache_limit)
    /// to add one.
    #[must_use]
    pub fn with_cache_dir(dir: impl Into<PathBuf>) -> Self {
        TraceStore {
            cache_dir: Some(dir.into()),
            ..Self::default()
        }
    }

    /// Caps the cache dir at `max_bytes` (None = unbounded): after each
    /// save, oldest-mtime `.wmtr` files are evicted until the directory
    /// fits, each eviction logged to stderr. The cap is best-effort
    /// advisory hygiene — it never fails a lookup.
    #[must_use]
    pub fn with_cache_limit(mut self, max_bytes: Option<u64>) -> Self {
        self.max_cache_bytes = max_bytes;
        self
    }

    /// Reads the `WAYMEM_TRACE_CACHE_MAX_BYTES` environment variable for
    /// binaries wiring up a capped store
    /// (`store.with_cache_limit(TraceStore::cache_cap_from_env())`).
    /// Unset, empty or unparsable values mean "no cap". Library code and
    /// tests should pass the cap explicitly instead — this reads global
    /// process state.
    #[must_use]
    pub fn cache_cap_from_env() -> Option<u64> {
        std::env::var("WAYMEM_TRACE_CACHE_MAX_BYTES")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
    }

    /// The store a process wires up from its environment:
    /// `WAYMEM_TRACE_CACHE=<dir>` enables persistence under `dir`,
    /// `WAYMEM_TRACE_CACHE_MAX_BYTES=<n>` caps that directory with
    /// oldest-mtime eviction. Unset variables mean a memory-only store /
    /// no cap. Library code and tests should configure the store
    /// explicitly instead — this reads global process state.
    #[must_use]
    pub fn from_env() -> Self {
        let store = match std::env::var_os("WAYMEM_TRACE_CACHE") {
            Some(dir) => TraceStore::with_cache_dir(PathBuf::from(dir))
                .with_cache_limit(Self::cache_cap_from_env()),
            None => TraceStore::new(),
        };
        store.with_io(StoreIo::from_env())
    }

    /// Replaces the store's I/O seam: chaos tests attach a fault plan
    /// (`store.with_io(StoreIo::with_plan(plan))`), production code
    /// keeps the default passthrough, and [`from_env`](Self::from_env)
    /// arms it from `WAYMEM_FAULT_PLAN` automatically.
    #[must_use]
    pub fn with_io(mut self, io: StoreIo) -> Self {
        self.io = io;
        self
    }

    /// The store's I/O seam — shared (faults, retry counter and all) by
    /// every streaming handle the store opens.
    #[must_use]
    pub fn io(&self) -> &StoreIo {
        &self.io
    }

    /// The persistence directory, if one was configured.
    #[must_use]
    pub fn cache_dir(&self) -> Option<&Path> {
        self.cache_dir.as_deref()
    }

    /// The configured cache-dir byte cap, if any.
    #[must_use]
    pub fn cache_limit(&self) -> Option<u64> {
        self.max_cache_bytes
    }

    /// Number of traces currently held in memory.
    ///
    /// # Panics
    ///
    /// Panics if a previous holder of the internal lock panicked.
    #[must_use]
    pub fn len(&self) -> usize {
        let slots = self.slots.lock().expect("trace store poisoned");
        slots
            .values()
            .filter(|s| s.lock().expect("trace slot poisoned").is_some())
            .count()
    }

    /// `true` when no trace is held in memory.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of the store's statistics.
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        let mut stats = self.counters.snapshot();
        stats.io_retries = self.io.retries();
        stats.publish();
        stats
    }

    fn slot(&self, key: WorkloadId) -> Slot {
        let mut slots = self.slots.lock().expect("trace store poisoned");
        slots.entry(key).or_default().clone()
    }

    fn file_path(&self, key: WorkloadId) -> Option<PathBuf> {
        self.cache_dir.as_ref().map(|d| d.join(key.file_name()))
    }

    /// Whether a cached copy produced from `found` satisfies a caller
    /// expecting `expected`. Hash 0 on the caller side means "don't
    /// verify"; hash 0 on the cached side means "provenance unknown"
    /// (v1 file / unverified save), which only an unverifying caller
    /// accepts.
    fn hash_current(expected: u64, found: u64) -> bool {
        expected == 0 || found == expected
    }

    /// Tries to serve `key` from the cache dir. A missing file is a
    /// plain miss; an unreadable or undecodable one is quarantined (a
    /// corrupt cache file must never break a run, and must not shadow
    /// the re-record either); a decodable file whose source hash
    /// disagrees with `expected_hash` is a [`DiskLoad::Stale`] miss
    /// (left in place — the re-record overwrites it). Staleness is
    /// *reported*, not counted here: the caller folds it into the
    /// per-lookup accounting (a lookup that rejects both a stale preload
    /// and its stale backing file is one stale event, not two).
    fn load_from_disk(&self, key: WorkloadId, expected_hash: u64) -> DiskLoad {
        self.sweep_orphans();
        let Some(path) = self.file_path(key) else {
            return DiskLoad::Absent { quarantined: false };
        };
        let bytes = match self.io.read_to_vec(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                return DiskLoad::Absent { quarantined: false };
            }
            Err(_) => {
                self.quarantine(&path);
                return DiskLoad::Absent { quarantined: true };
            }
        };
        let decoder = match codec::Decoder::new(&bytes) {
            Ok(decoder) => decoder,
            Err(_) => {
                self.quarantine(&path);
                return DiskLoad::Absent { quarantined: true };
            }
        };
        if !Self::hash_current(expected_hash, decoder.source_hash()) {
            return DiskLoad::Stale;
        }
        let Ok(trace) = decoder.decode() else {
            self.quarantine(&path);
            return DiskLoad::Absent { quarantined: true };
        };
        Counters::bump(&self.counters.files_loaded);
        self.counters.account_trace(&trace, bytes.len());
        DiskLoad::Hit((decoder.source_hash(), Arc::new(trace)))
    }

    /// Best-effort persistence: encoding feeds the compression stats
    /// even when the write itself fails or no dir is configured. The
    /// write is atomic (temp + fsync + rename), so racers and crashes
    /// never observe a torn file. A successful write triggers the
    /// size-cap sweep.
    fn save_to_disk(&self, key: WorkloadId, source_hash: u64, trace: &RecordedTrace) {
        let bytes = codec::encode_with_hash(trace, source_hash);
        self.counters.account_trace(trace, bytes.len());
        let Some(path) = self.file_path(key) else { return };
        let Some(dir) = self.cache_dir.as_ref() else { return };
        self.sweep_orphans();
        if fs::create_dir_all(dir).is_ok() && self.io.write_atomic(&path, &bytes).is_ok() {
            Counters::bump(&self.counters.files_saved);
            self.enforce_cache_cap(&path);
        }
    }

    /// Moves a bad cache file into [`QUARANTINE_DIR`] (falling back to
    /// deletion if the move itself fails) so it stops shadowing the
    /// re-record, and counts the event.
    fn quarantine(&self, path: &Path) {
        let moved = path.parent().and_then(|dir| {
            let qdir = dir.join(QUARANTINE_DIR);
            fs::create_dir_all(&qdir).ok()?;
            fs::rename(path, qdir.join(path.file_name()?)).ok()
        });
        if moved.is_none() {
            let _ = fs::remove_file(path);
        }
        Counters::bump(&self.counters.quarantined);
        waymem_obs::warn!("store.quarantine", path = path.display());
        // A quarantine is an incident: leave the black box next to the
        // bare warn line (no-op unless a dump path is configured).
        waymem_obs::flight::dump_on_incident("store.quarantine");
    }

    /// One hygiene pass per store over the cache dir: in-flight `*.tmp`
    /// files whose writer died (crashed mid-save) are removed so they
    /// never accumulate. Temps belonging to live writers — this process
    /// included — are left alone; when liveness cannot be decided (no
    /// `/proc`), only temps older than [`ORPHAN_STALE_AFTER`] go.
    fn sweep_orphans(&self) {
        if self.swept.swap(true, Ordering::Relaxed) {
            return;
        }
        let Some(dir) = self.cache_dir.as_ref() else { return };
        let Ok(entries) = fs::read_dir(dir) else { return };
        for entry in entries.flatten() {
            let path = entry.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else { continue };
            if !name.ends_with(fault::TEMP_SUFFIX) {
                continue;
            }
            let orphaned = match fault::temp_owner_pid(name) {
                Some(pid) => process_is_dead(pid).unwrap_or_else(|| entry_is_old(&entry)),
                None => entry_is_old(&entry),
            };
            if orphaned && fs::remove_file(&path).is_ok() {
                waymem_obs::info!("store.orphan_swept", path = path.display());
            }
        }
    }

    /// Acquires the advisory cross-process record lock for `path`
    /// (creating the cache dir if needed). Waits out a live holder for a
    /// bounded time, takes over a dead or stale one, and returns `None`
    /// — proceed unlocked — rather than ever deadlocking: the lock only
    /// prevents duplicated recording work, atomic writes already keep
    /// unserialized racers correct.
    fn lock_record(&self, path: &Path) -> Option<RecordLock> {
        let dir = self.cache_dir.as_ref()?;
        fs::create_dir_all(dir).ok()?;
        let lock = lock_path(path);
        let _wait = Stopwatch::new(waymem_obs::histogram!("store.lock.wait_ns"));
        for _ in 0..LOCK_WAIT_ATTEMPTS {
            match OpenOptions::new().write(true).create_new(true).open(&lock) {
                Ok(mut file) => {
                    let _ = write!(file, "{}", std::process::id());
                    return Some(RecordLock { path: lock });
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    if lock_is_stale(&lock) {
                        let _ = fs::remove_file(&lock);
                    } else {
                        std::thread::sleep(Duration::from_millis(20));
                    }
                }
                Err(_) => return None,
            }
        }
        None
    }

    /// Evicts oldest-mtime `.wmtr` files until the cache dir fits the
    /// configured cap, sparing `just_written` (evicting the file we just
    /// paid to encode would make the cap counter-productive). Every
    /// eviction is logged as a `store.evicted` info event
    /// (`WAYMEM_LOG=info` to see them). Best-effort throughout: racing
    /// processes or I/O errors degrade to "evict less", never to a
    /// failed lookup.
    fn enforce_cache_cap(&self, just_written: &Path) {
        let Some(cap) = self.max_cache_bytes else { return };
        let Some(dir) = self.cache_dir.as_ref() else { return };
        let Ok(entries) = fs::read_dir(dir) else { return };
        let mut files: Vec<(SystemTime, u64, PathBuf)> = entries
            .flatten()
            .filter(|e| e.path().extension().is_some_and(|x| x == "wmtr"))
            .filter_map(|e| {
                let meta = e.metadata().ok()?;
                let mtime = meta.modified().unwrap_or(SystemTime::UNIX_EPOCH);
                Some((mtime, meta.len(), e.path()))
            })
            .collect();
        let mut total: u64 = files.iter().map(|(_, len, _)| *len).sum();
        if total <= cap {
            return;
        }
        files.sort();
        for (_, len, path) in files {
            if total <= cap {
                break;
            }
            if path == just_written {
                continue;
            }
            if lock_path(&path).exists() {
                // A live writer holds this key: deleting beneath it
                // risks churning the file it just paid to record.
                continue;
            }
            match fs::remove_file(&path) {
                Ok(()) => {
                    total = total.saturating_sub(len);
                    Counters::bump(&self.counters.files_evicted);
                    self.counters.bytes_evicted.fetch_add(len, Ordering::Relaxed);
                    waymem_obs::info!(
                        "store.evicted",
                        path = path.display(),
                        bytes = len,
                        cap = cap,
                    );
                }
                Err(e) if e.kind() == io::ErrorKind::NotFound => {
                    // A racing process (eviction or quarantine) already
                    // removed it: the bytes are reclaimed either way.
                    total = total.saturating_sub(len);
                }
                Err(_) => {}
            }
        }
    }

    /// Returns the trace for `key`, running `record` only on a cold or
    /// stale miss (once per key per process, even under concurrent
    /// callers; racing threads on the same key block and then hit).
    /// With a cache dir, a miss first tries the saved file.
    ///
    /// `source_hash` is the FNV-1a64 of whatever produces the trace
    /// (kernel source text, raw log bytes, generator spec). Cached
    /// copies — on disk *or* preloaded in memory — whose hash disagrees
    /// are re-recorded, not replayed; pass `0` to skip verification.
    ///
    /// # Errors
    ///
    /// Propagates the recorder's error; nothing is cached for the key in
    /// that case, so a later call retries.
    ///
    /// # Panics
    ///
    /// Panics if a previous holder of the key's lock panicked.
    pub fn get_or_record<E>(
        &self,
        key: WorkloadId,
        source_hash: u64,
        record: impl FnOnce() -> Result<RecordedTrace, E>,
    ) -> Result<Arc<RecordedTrace>, E> {
        let _span = waymem_obs::span!("store.lookup", workload = key.name());
        let slot = self.slot(key);
        let mut guard = slot.lock().expect("trace slot poisoned");
        Counters::bump(&self.counters.lookups);
        let mut was_stale = false;
        if let Some((cached_hash, trace)) = guard.as_ref() {
            if Self::hash_current(source_hash, *cached_hash) {
                Counters::bump(&self.counters.hits);
                return Ok(Arc::clone(trace));
            }
            // A stale preload (bulk `load()` pulled in an outdated file).
            was_stale = true;
            *guard = None;
        }
        let mut needs_recovery = false;
        match self.load_from_disk(key, source_hash) {
            DiskLoad::Hit((hash, trace)) => {
                Counters::bump(&self.counters.disk_hits);
                *guard = Some((hash, Arc::clone(&trace)));
                return Ok(trace);
            }
            DiskLoad::Stale => was_stale = true,
            DiskLoad::Absent { quarantined } => needs_recovery = quarantined,
        }
        if was_stale {
            // One stale event per lookup, even when both the preloaded
            // copy and its backing file were rejected.
            Counters::bump(&self.counters.stale);
        }
        // Serialize cross-process recording of this key; a racer that
        // waited here usually finds the winner's file on the re-check
        // and skips its own production entirely.
        let lock = self.file_path(key).and_then(|path| self.lock_record(&path));
        if lock.is_some() {
            if let DiskLoad::Hit((hash, trace)) = self.load_from_disk(key, source_hash) {
                Counters::bump(&self.counters.disk_hits);
                *guard = Some((hash, Arc::clone(&trace)));
                return Ok(trace);
            }
        }
        let trace = record()?;
        Counters::bump(&self.counters.records);
        if needs_recovery {
            Counters::bump(&self.counters.recovered);
        }
        let trace = Arc::new(trace);
        *guard = Some((source_hash, Arc::clone(&trace)));
        // Account + persist outside the per-key lock: waiters queued on
        // this key proceed with the Arc immediately; the encode pass
        // only feeds the compression stats and the best-effort cache
        // file, so nothing downstream observes it. The record lock stays
        // held across the save (it drops at the end of this scope).
        drop(guard);
        self.save_to_disk(key, source_hash, &trace);
        Ok(trace)
    }

    /// A unique scratch path for a store-less streaming open; the
    /// returned [`StreamingTrace`] deletes it on drop.
    fn scratch_stream_path(key: WorkloadId) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "waymem-scratch-{}-{n}-{}",
            std::process::id(),
            key.file_name()
        ))
    }

    /// Returns a bounded-memory [`StreamingTrace`] handle for `key`,
    /// running `produce` (which must write a complete `.wmtr` file to
    /// the path it is given — e.g. through a
    /// [`StreamingEncoder`](crate::stream::StreamingEncoder)) only when
    /// no current copy exists.
    ///
    /// This is the streaming counterpart of
    /// [`get_or_record`](Self::get_or_record), with one crucial
    /// difference: a warm open **never re-materializes the event
    /// vector**. With a cache dir, an existing file whose source hash is
    /// current is validated and handed back directly (a `disk_hits` +
    /// `stream_opens` event, `records` and `raw_bytes` untouched); if the
    /// key's trace happens to sit in this process's memory already, it is
    /// spilled to disk once and streamed from there (`hits` +
    /// `stream_opens`). Without a cache dir the file lives under the
    /// system temp dir and deletes itself when the handle drops.
    ///
    /// Staleness follows the same rule as `get_or_record`: a file whose
    /// embedded hash disagrees with a nonzero `source_hash` is
    /// re-produced, not replayed.
    ///
    /// # Errors
    ///
    /// Propagates the producer's error; [`StreamError`]s from writing or
    /// validating the file are converted via `E: From<StreamError>`.
    ///
    /// # Panics
    ///
    /// Panics if a previous holder of the key's lock panicked.
    pub fn open_stream<E: From<StreamError>>(
        &self,
        key: WorkloadId,
        source_hash: u64,
        produce: impl FnOnce(&Path) -> Result<(), E>,
    ) -> Result<StreamingTrace, E> {
        let _span = waymem_obs::span!("store.open_stream", workload = key.name());
        let slot = self.slot(key);
        let guard = slot.lock().expect("trace slot poisoned");
        Counters::bump(&self.counters.lookups);
        let mut was_stale = false;
        let mut needs_recovery = false;

        let cached = guard
            .as_ref()
            .filter(|(h, _)| Self::hash_current(source_hash, *h))
            .map(|(h, t)| (*h, Arc::clone(t)));

        if let Some(path) = self.file_path(key) {
            self.sweep_orphans();
            // Warm file: validate and stream straight from it. A corrupt
            // or unreadable file is quarantined (same policy as
            // `load_from_disk`); a hash mismatch is a stale miss.
            if path.exists() {
                match StreamingTrace::open_with(&path, self.io.clone()) {
                    Ok(st) if Self::hash_current(source_hash, st.source_hash()) => {
                        Counters::bump(&self.counters.disk_hits);
                        Counters::bump(&self.counters.stream_opens);
                        return Ok(st);
                    }
                    Ok(_) => was_stale = true,
                    Err(StreamError::Io(e)) if e.kind() == io::ErrorKind::NotFound => {}
                    Err(_) => {
                        self.quarantine(&path);
                        needs_recovery = true;
                    }
                }
            }
            if let Some((hash, trace)) = cached {
                // The events are in memory anyway: spill them once and
                // stream from the file — still no production.
                stream::write_encoded_with(&trace, hash, &path, &self.io)
                    .map_err(|e| E::from(StreamError::Io(e)))?;
                Counters::bump(&self.counters.hits);
                Counters::bump(&self.counters.stream_opens);
                Counters::bump(&self.counters.files_saved);
                if needs_recovery {
                    Counters::bump(&self.counters.recovered);
                }
                drop(guard);
                self.enforce_cache_cap(&path);
                return StreamingTrace::open_with(&path, self.io.clone()).map_err(E::from);
            }
            if was_stale {
                Counters::bump(&self.counters.stale);
            }
            // Serialize cross-process production; a racer that waited
            // here usually finds the winner's file on the re-check.
            let lock = self.lock_record(&path);
            if lock.is_some() {
                if let Ok(st) = StreamingTrace::open_with(&path, self.io.clone()) {
                    if Self::hash_current(source_hash, st.source_hash()) {
                        Counters::bump(&self.counters.disk_hits);
                        Counters::bump(&self.counters.stream_opens);
                        return Ok(st);
                    }
                }
            }
            produce(&path)?;
            Counters::bump(&self.counters.records);
            Counters::bump(&self.counters.files_saved);
            if needs_recovery {
                Counters::bump(&self.counters.recovered);
            }
            drop(guard);
            self.enforce_cache_cap(&path);
            return match StreamingTrace::open_with(&path, self.io.clone()) {
                Ok(st) => Ok(st),
                Err(e) => {
                    // The freshly produced file failed validation (torn
                    // or fault-corrupted write): move it aside so the
                    // next lookup re-produces instead of replaying it.
                    self.quarantine(&path);
                    Err(E::from(e))
                }
            };
        }

        // Memory-only store: the file is scratch, cleaned up on drop.
        let path = Self::scratch_stream_path(key);
        if let Some((hash, trace)) = cached {
            stream::write_encoded_with(&trace, hash, &path, &self.io)
                .map_err(|e| E::from(StreamError::Io(e)))?;
            Counters::bump(&self.counters.hits);
            Counters::bump(&self.counters.stream_opens);
        } else {
            produce(&path)?;
            Counters::bump(&self.counters.records);
        }
        Ok(StreamingTrace::open_with(&path, self.io.clone()).map_err(E::from)?.delete_on_drop())
    }

    /// The trace for `key` if it is already in memory. Does not consult
    /// the disk cache, does not verify staleness and does not touch the
    /// lookup statistics.
    ///
    /// # Panics
    ///
    /// Panics if a previous holder of the key's lock panicked.
    #[must_use]
    pub fn get(&self, key: WorkloadId) -> Option<Arc<RecordedTrace>> {
        let slot = self.slot(key);
        let guard = slot.lock().expect("trace slot poisoned");
        guard.as_ref().map(|(_, t)| Arc::clone(t))
    }

    /// Writes every in-memory trace to the cache dir, returning how many
    /// files were written. Unlike the automatic on-record persistence
    /// this surfaces I/O errors, so callers invoking it deliberately
    /// (e.g. a `--save-cache` flag) see failures.
    ///
    /// # Errors
    ///
    /// `InvalidInput` if the store has no cache dir; otherwise the first
    /// I/O error encountered.
    ///
    /// # Panics
    ///
    /// Panics if a previous holder of an internal lock panicked.
    pub fn save(&self) -> io::Result<usize> {
        let dir = self.cache_dir.as_ref().ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "trace store has no cache dir")
        })?;
        fs::create_dir_all(dir)?;
        self.sweep_orphans();
        let entries: Vec<(WorkloadId, Cached)> = {
            let slots = self.slots.lock().expect("trace store poisoned");
            slots
                .iter()
                .filter_map(|(k, s)| {
                    s.lock()
                        .expect("trace slot poisoned")
                        .as_ref()
                        .map(|(h, t)| (*k, (*h, Arc::clone(t))))
                })
                .collect()
        };
        let mut written = 0;
        let mut last_path = None;
        for (key, (hash, trace)) in entries {
            let path = dir.join(key.file_name());
            self.io.write_atomic(&path, &codec::encode_with_hash(&trace, hash))?;
            written += 1;
            Counters::bump(&self.counters.files_saved);
            last_path = Some(path);
        }
        if let Some(path) = last_path {
            self.enforce_cache_cap(&path);
        }
        Ok(written)
    }

    /// Preloads every decodable `*.wmtr` file from the cache dir into
    /// memory, returning how many loaded. Files that fail to decode are
    /// skipped (corrupt caches must not break anything); keys already in
    /// memory are left untouched. Preloads are *unverified* — a later
    /// [`get_or_record`](Self::get_or_record) with a real source hash
    /// still applies the staleness check before replaying one.
    ///
    /// # Errors
    ///
    /// `InvalidInput` if the store has no cache dir; `NotFound`/other
    /// I/O errors from reading the directory itself.
    ///
    /// # Panics
    ///
    /// Panics if a previous holder of an internal lock panicked.
    pub fn load(&self) -> io::Result<usize> {
        let dir = self.cache_dir.clone().ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "trace store has no cache dir")
        })?;
        let mut loaded = 0;
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(key) = name.to_str().and_then(WorkloadId::from_file_name) else {
                continue;
            };
            let slot = self.slot(key);
            let mut guard = slot.lock().expect("trace slot poisoned");
            if guard.is_some() {
                continue;
            }
            if let DiskLoad::Hit(cached) = self.load_from_disk(key, 0) {
                *guard = Some(cached);
                loaded += 1;
            }
        }
        Ok(loaded)
    }
}

/// The advisory lock file guarding cross-process recording of `path`.
fn lock_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_owned();
    os.push(LOCK_SUFFIX);
    PathBuf::from(os)
}

/// `Some(dead?)` when pid liveness is decidable (trivially for our own
/// pid, via `/proc` elsewhere on Linux), `None` when it is not and the
/// caller should fall back to an age heuristic.
fn process_is_dead(pid: u32) -> Option<bool> {
    if pid == std::process::id() {
        return Some(false);
    }
    let proc_dir = Path::new("/proc");
    if proc_dir.is_dir() {
        Some(!proc_dir.join(pid.to_string()).exists())
    } else {
        None
    }
}

/// Whether a directory entry's mtime is older than the orphan threshold
/// (unknowable mtimes count as fresh — never reap what we cannot date).
fn entry_is_old(entry: &fs::DirEntry) -> bool {
    entry
        .metadata()
        .and_then(|m| m.modified())
        .ok()
        .and_then(|m| m.elapsed().ok())
        .is_some_and(|age| age > ORPHAN_STALE_AFTER)
}

/// Whether an existing lock file is abandoned: its recorded writer pid
/// is provably dead, or liveness is undecidable and the file has
/// outlived [`LOCK_STALE_AFTER`].
fn lock_is_stale(lock: &Path) -> bool {
    let pid = fs::read_to_string(lock).ok().and_then(|s| s.trim().parse::<u32>().ok());
    match pid.and_then(process_is_dead) {
        Some(dead) => dead,
        None => fs::metadata(lock)
            .and_then(|m| m.modified())
            .ok()
            .and_then(|m| m.elapsed().ok())
            .is_some_and(|age| age > LOCK_STALE_AFTER),
    }
}

/// RAII guard for the advisory record lock: dropping it releases (i.e.
/// removes) the lock file.
#[derive(Debug)]
struct RecordLock {
    path: PathBuf,
}

impl Drop for RecordLock {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{SynthPattern, SynthSpec};
    use waymem_isa::{FetchKind, TraceEvent};
    use waymem_workloads::Benchmark;

    fn tiny_trace(cycles: u64) -> RecordedTrace {
        RecordedTrace {
            fetch_events: vec![TraceEvent::Fetch { pc: 0x100, kind: FetchKind::Sequential }],
            data_events: vec![TraceEvent::Load { base: 8, disp: 4, addr: 12, size: 4 }],
            cycles,
        }
    }

    fn dct(scale: u32) -> WorkloadId {
        WorkloadId::kernel(Benchmark::Dct, scale)
    }

    /// A scratch directory under the system temp dir, removed on drop.
    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            let dir = std::env::temp_dir().join(format!(
                "waymem-trace-test-{tag}-{}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn records_once_then_hits() {
        let store = TraceStore::new();
        let mut recordings = 0;
        for _ in 0..3 {
            let t = store
                .get_or_record(dct(1), 0, || {
                    recordings += 1;
                    Ok::<_, ()>(tiny_trace(7))
                })
                .expect("records");
            assert_eq!(t.cycles, 7);
        }
        assert_eq!(recordings, 1);
        let s = store.stats();
        assert_eq!((s.lookups, s.records, s.hits, s.disk_hits), (3, 1, 2, 0));
        assert!((s.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn distinct_keys_record_separately() {
        let store = TraceStore::new();
        let t1 = store
            .get_or_record(dct(1), 0, || Ok::<_, ()>(tiny_trace(1)))
            .expect("records");
        let t2 = store
            .get_or_record(dct(2), 0, || Ok::<_, ()>(tiny_trace(2)))
            .expect("records");
        let t3 = store
            .get_or_record(WorkloadId::External { hash: 9 }, 9, || Ok::<_, ()>(tiny_trace(3)))
            .expect("records");
        let spec = SynthSpec { pattern: SynthPattern::Stream, accesses: 4, seed: 1 };
        let t4 = store
            .get_or_record(WorkloadId::Synthetic(spec), 0, || Ok::<_, ()>(tiny_trace(4)))
            .expect("records");
        assert_eq!((t1.cycles, t2.cycles, t3.cycles, t4.cycles), (1, 2, 3, 4));
        assert_eq!(store.stats().records, 4);
        assert_eq!(store.len(), 4);
    }

    #[test]
    fn recorder_errors_are_not_cached() {
        let store = TraceStore::new();
        let err = store.get_or_record(dct(1), 0, || Err::<RecordedTrace, _>("boom"));
        assert_eq!(err.unwrap_err(), "boom");
        let ok = store
            .get_or_record(dct(1), 0, || Ok::<_, &str>(tiny_trace(9)))
            .expect("retries");
        assert_eq!(ok.cycles, 9);
        assert_eq!(store.stats().records, 1);
    }

    #[test]
    fn concurrent_same_key_records_once() {
        let store = TraceStore::new();
        let recordings = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    let t = store
                        .get_or_record(WorkloadId::kernel(Benchmark::Fft, 1), 0, || {
                            recordings.fetch_add(1, Ordering::SeqCst);
                            Ok::<_, ()>(tiny_trace(42))
                        })
                        .expect("records");
                    assert_eq!(t.cycles, 42);
                });
            }
        });
        assert_eq!(recordings.load(Ordering::SeqCst), 1);
        let s = store.stats();
        assert_eq!((s.lookups, s.records, s.hits), (8, 1, 7));
    }

    #[test]
    fn persistence_round_trips_across_stores() {
        let tmp = TempDir::new("persist");
        let cold = TraceStore::with_cache_dir(&tmp.0);
        cold.get_or_record(dct(1), 0xfeed, || Ok::<_, ()>(tiny_trace(11)))
            .expect("records");
        assert_eq!(cold.stats().files_saved, 1);

        // A fresh store over the same dir: the lookup is a disk hit when
        // the expected hash matches what the file embeds.
        let warm = TraceStore::with_cache_dir(&tmp.0);
        let t = warm
            .get_or_record(dct(1), 0xfeed, || {
                panic!("must not re-record");
                #[allow(unreachable_code)]
                Ok::<_, ()>(tiny_trace(0))
            })
            .expect("loads");
        assert_eq!(t.cycles, 11);
        let s = warm.stats();
        assert_eq!((s.records, s.disk_hits, s.files_loaded, s.stale), (0, 1, 1, 0));
        assert!((s.hit_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stale_disk_files_are_re_recorded() {
        let tmp = TempDir::new("stale");
        let old = TraceStore::with_cache_dir(&tmp.0);
        old.get_or_record(dct(1), 0xaaaa, || Ok::<_, ()>(tiny_trace(1)))
            .expect("records");

        // Same key, changed source (different hash): the cached file is
        // stale — re-record rather than silently replay.
        let fresh = TraceStore::with_cache_dir(&tmp.0);
        let t = fresh
            .get_or_record(dct(1), 0xbbbb, || Ok::<_, ()>(tiny_trace(2)))
            .expect("re-records");
        assert_eq!(t.cycles, 2, "stale trace must not be replayed");
        let s = fresh.stats();
        assert_eq!((s.records, s.disk_hits, s.stale), (1, 0, 1));

        // The re-record overwrote the file: the new hash now disk-hits.
        let third = TraceStore::with_cache_dir(&tmp.0);
        let t = third
            .get_or_record(dct(1), 0xbbbb, || Ok::<_, &str>(tiny_trace(3)))
            .expect("loads");
        assert_eq!(t.cycles, 2);
        assert_eq!(third.stats().disk_hits, 1);
    }

    #[test]
    fn zero_expected_hash_accepts_any_file() {
        let tmp = TempDir::new("zerohash");
        let writer = TraceStore::with_cache_dir(&tmp.0);
        writer
            .get_or_record(dct(1), 0x1234, || Ok::<_, ()>(tiny_trace(5)))
            .expect("records");
        let reader = TraceStore::with_cache_dir(&tmp.0);
        let t = reader
            .get_or_record(dct(1), 0, || Err::<RecordedTrace, _>("must not record"))
            .expect("loads unverified");
        assert_eq!(t.cycles, 5);
    }

    #[test]
    fn stale_preloads_are_re_recorded() {
        let tmp = TempDir::new("stalepre");
        let writer = TraceStore::with_cache_dir(&tmp.0);
        writer
            .get_or_record(dct(1), 0xaaaa, || Ok::<_, ()>(tiny_trace(1)))
            .expect("records");

        let preloaded = TraceStore::with_cache_dir(&tmp.0);
        assert_eq!(preloaded.load().expect("preloads"), 1);
        // The preload is unverified; a verifying lookup with a different
        // hash must reject it even though it sits in memory.
        let t = preloaded
            .get_or_record(dct(1), 0xcccc, || Ok::<_, ()>(tiny_trace(9)))
            .expect("re-records");
        assert_eq!(t.cycles, 9);
        let s = preloaded.stats();
        // Exactly one stale event for the lookup, even though both the
        // preloaded copy and its backing file were rejected.
        assert_eq!(s.stale, 1, "{s:?}");
        assert_eq!(s.records, 1);
    }

    #[test]
    fn explicit_save_and_load() {
        let tmp = TempDir::new("explicit");
        let store = TraceStore::new();
        assert!(store.save().is_err(), "no cache dir configured");

        let saver = TraceStore::with_cache_dir(&tmp.0);
        saver
            .get_or_record(WorkloadId::kernel(Benchmark::Compress, 3), 0, || {
                Ok::<_, ()>(tiny_trace(5))
            })
            .expect("records");
        assert_eq!(saver.save().expect("saves"), 1);

        let loader = TraceStore::with_cache_dir(&tmp.0);
        assert_eq!(loader.load().expect("loads"), 1);
        assert_eq!(
            loader.get(WorkloadId::kernel(Benchmark::Compress, 3)).expect("in memory").cycles,
            5
        );
        // A corrupt extra file is skipped, not fatal.
        std::fs::write(tmp.0.join("dct-s1.wmtr"), b"garbage").expect("writes");
        let skipper = TraceStore::with_cache_dir(&tmp.0);
        assert_eq!(skipper.load().expect("loads"), 1);
        assert!(skipper.get(dct(1)).is_none());
    }

    #[test]
    fn cache_cap_evicts_oldest_first() {
        let tmp = TempDir::new("cap");
        // Files are ~60-80 B each; cap at ~1.5 files so the third save
        // must evict the oldest.
        let one_file = codec::encode_with_hash(&tiny_trace(0), 1).len() as u64;
        let store = TraceStore::with_cache_dir(&tmp.0).with_cache_limit(Some(one_file + one_file / 2));
        let keys = [dct(1), dct(2), dct(3)];
        for (i, key) in keys.iter().enumerate() {
            store
                .get_or_record(*key, 0, || Ok::<_, ()>(tiny_trace(i as u64)))
                .expect("records");
            // Distinct mtimes even on coarse-grained filesystems.
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        let on_disk: Vec<bool> = keys
            .iter()
            .map(|k| tmp.0.join(k.file_name()).exists())
            .collect();
        assert!(!on_disk[0], "oldest file must be evicted");
        assert!(on_disk[2], "just-written file must survive");
        let s = store.stats();
        assert!(s.files_evicted >= 1, "{s:?}");
        assert!(s.bytes_evicted >= one_file, "{s:?}");
        // Eviction only touches the disk cache: all three remain in memory.
        assert_eq!(store.len(), 3);
    }

    #[test]
    fn no_cap_means_no_eviction() {
        let tmp = TempDir::new("nocap");
        let store = TraceStore::with_cache_dir(&tmp.0);
        for scale in 1..=4 {
            store
                .get_or_record(dct(scale), 0, || Ok::<_, ()>(tiny_trace(u64::from(scale))))
                .expect("records");
        }
        assert_eq!(store.stats().files_evicted, 0);
        assert_eq!(std::fs::read_dir(&tmp.0).unwrap().count(), 4);
    }

    #[test]
    fn cache_cap_from_env_parses() {
        // Exercise the parse logic via a unique var name pattern: the
        // helper reads the fixed name, so only assert the unset case and
        // leave set-case coverage to the CI end-to-end smoke (mutating
        // process-global env in parallel tests races other tests).
        if std::env::var_os("WAYMEM_TRACE_CACHE_MAX_BYTES").is_none() {
            assert_eq!(TraceStore::cache_cap_from_env(), None);
        }
    }

    /// Writes `trace` as a `.wmtr` at `path` — the shape every
    /// `open_stream` producer has.
    fn produce_file(trace: &RecordedTrace, hash: u64, path: &Path) -> Result<(), StreamError> {
        stream::write_encoded(trace, hash, path)?;
        Ok(())
    }

    #[test]
    fn open_stream_produces_once_then_streams_without_materializing() {
        let tmp = TempDir::new("openstream");
        let store = TraceStore::with_cache_dir(&tmp.0);
        let cold = store
            .open_stream(dct(1), 0xfeed, |p| produce_file(&tiny_trace(4), 0xfeed, p))
            .expect("produces");
        assert_eq!(cold.cycles(), 4);
        assert_eq!(cold.decode().expect("decodes"), tiny_trace(4));
        let s = store.stats();
        assert_eq!((s.records, s.stream_opens, s.files_saved), (1, 0, 1));

        // Warm opens stream from the file: no production, no decode into
        // memory — records and raw_bytes must not move.
        let warm = store
            .open_stream(dct(1), 0xfeed, |_| -> Result<(), StreamError> {
                panic!("must not re-produce")
            })
            .expect("streams");
        assert_eq!(warm.decode().expect("decodes"), tiny_trace(4));
        let s = store.stats();
        assert_eq!((s.records, s.disk_hits, s.stream_opens), (1, 1, 1));
        assert_eq!(s.raw_bytes, 0, "warm streaming open must not materialize");
    }

    #[test]
    fn open_stream_re_produces_stale_files() {
        let tmp = TempDir::new("openstream-stale");
        let store = TraceStore::with_cache_dir(&tmp.0);
        store
            .open_stream(dct(1), 0xaaaa, |p| produce_file(&tiny_trace(1), 0xaaaa, p))
            .expect("produces");
        let fresh = store
            .open_stream(dct(1), 0xbbbb, |p| produce_file(&tiny_trace(2), 0xbbbb, p))
            .expect("re-produces");
        assert_eq!(fresh.cycles(), 2, "stale stream must not be replayed");
        let s = store.stats();
        assert_eq!((s.records, s.stale, s.stream_opens), (2, 1, 0));
    }

    #[test]
    fn open_stream_spills_an_in_memory_trace_instead_of_reproducing() {
        // Memory-only store: a prior get_or_record holds the trace, so a
        // streaming open spills it to scratch rather than re-producing.
        let store = TraceStore::new();
        store
            .get_or_record(dct(1), 0x77, || Ok::<_, StreamError>(tiny_trace(6)))
            .expect("records");
        let st = store
            .open_stream(dct(1), 0x77, |_| -> Result<(), StreamError> {
                panic!("must not re-produce")
            })
            .expect("spills");
        assert_eq!(st.cycles(), 6);
        let scratch = st.path().to_path_buf();
        assert!(scratch.exists());
        let s = store.stats();
        assert_eq!((s.records, s.hits, s.stream_opens), (1, 1, 1));
        drop(st);
        assert!(!scratch.exists(), "scratch stream must clean up on drop");
    }

    #[test]
    fn open_stream_without_store_dir_produces_self_cleaning_scratch() {
        let store = TraceStore::new();
        let st = store
            .open_stream(dct(2), 0, |p| produce_file(&tiny_trace(3), 0, p))
            .expect("produces");
        let scratch = st.path().to_path_buf();
        assert!(scratch.starts_with(std::env::temp_dir()));
        assert_eq!(st.decode().expect("decodes"), tiny_trace(3));
        assert_eq!(store.stats().records, 1);
        drop(st);
        assert!(!scratch.exists());
    }

    #[test]
    fn corrupt_warm_file_is_quarantined_and_re_recorded() {
        let tmp = TempDir::new("quarantine");
        // Point the flight recorder at a dump file: the quarantine below
        // is an incident and must leave a validating black box.
        let dump = tmp.0.join("flight.json");
        let restore = waymem_obs::flight::configured_dump_path();
        waymem_obs::flight::set_dump_path(Some(dump.clone()));
        let cold = TraceStore::with_cache_dir(&tmp.0);
        cold.get_or_record(dct(1), 0xfeed, || Ok::<_, ()>(tiny_trace(3))).expect("records");
        let path = tmp.0.join(dct(1).file_name());
        std::fs::write(&path, b"WMTRgarbage, not a real trace").expect("corrupts");

        let healed = TraceStore::with_cache_dir(&tmp.0);
        let t = healed
            .get_or_record(dct(1), 0xfeed, || Ok::<_, ()>(tiny_trace(3)))
            .expect("re-records through the corruption");
        assert_eq!(t.cycles, 3);
        let s = healed.stats();
        assert_eq!((s.quarantined, s.records, s.recovered, s.disk_hits), (1, 1, 1, 0), "{s:?}");
        assert!(
            tmp.0.join(QUARANTINE_DIR).join(dct(1).file_name()).exists(),
            "bad bytes preserved in quarantine"
        );

        // The dump validates and retains the quarantine event. Parallel
        // tests share the process-global recorder, so a later incident
        // may have re-dumped (overwriting the reason) — but rings are
        // copied, never drained, so the event itself must be present.
        let text = std::fs::read_to_string(&dump).expect("quarantine dumped a black box");
        let summary = waymem_obs::flight::validate_dump(&text).expect("dump validates");
        assert!(
            summary.has_event("store.quarantine"),
            "no store.quarantine among {:?}",
            summary.names
        );
        waymem_obs::flight::set_dump_path(restore);

        // The re-record replaced the file: a third store disk-hits.
        let warm = TraceStore::with_cache_dir(&tmp.0);
        let t = warm
            .get_or_record(dct(1), 0xfeed, || Err::<RecordedTrace, _>("must not record"))
            .expect("healed file serves");
        assert_eq!(t.cycles, 3);
        assert_eq!(warm.stats().disk_hits, 1);
    }

    #[test]
    fn open_stream_quarantines_corrupt_warm_file_and_recovers() {
        let tmp = TempDir::new("qstream");
        let store = TraceStore::with_cache_dir(&tmp.0);
        store
            .open_stream(dct(1), 0xfeed, |p| produce_file(&tiny_trace(4), 0xfeed, p))
            .expect("produces");
        let path = tmp.0.join(dct(1).file_name());
        let mut bytes = std::fs::read(&path).expect("reads");
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff; // break the checksum
        std::fs::write(&path, &bytes).expect("corrupts");

        let healed = TraceStore::with_cache_dir(&tmp.0);
        let st = healed
            .open_stream(dct(1), 0xfeed, |p| produce_file(&tiny_trace(4), 0xfeed, p))
            .expect("re-produces through the corruption");
        assert_eq!(st.decode().expect("decodes"), tiny_trace(4));
        let s = healed.stats();
        assert_eq!((s.quarantined, s.records, s.recovered), (1, 1, 1), "{s:?}");
    }

    #[test]
    fn orphaned_temps_are_swept_for_dead_writers_only() {
        if !Path::new("/proc").is_dir() {
            return; // pid liveness undecidable: the sweep is age-based there
        }
        let tmp = TempDir::new("orphans");
        std::fs::create_dir_all(&tmp.0).expect("mkdir");
        // pid 4294000000 is far beyond any real pid_max, i.e. dead.
        let dead = tmp.0.join("x.wmtr.p4294000000-0.tmp");
        let live = tmp.0.join(format!("y.wmtr.p{}-0.tmp", std::process::id()));
        std::fs::write(&dead, b"junk").expect("writes");
        std::fs::write(&live, b"junk").expect("writes");
        let store = TraceStore::with_cache_dir(&tmp.0);
        store.get_or_record(dct(1), 0, || Ok::<_, ()>(tiny_trace(1))).expect("records");
        assert!(!dead.exists(), "dead writer's temp must be reclaimed");
        assert!(live.exists(), "live writer's temp must be left alone");
    }

    #[test]
    fn eviction_skips_lock_held_files() {
        let tmp = TempDir::new("evictlock");
        let one_file = codec::encode_with_hash(&tiny_trace(0), 1).len() as u64;
        let store =
            TraceStore::with_cache_dir(&tmp.0).with_cache_limit(Some(one_file + one_file / 2));
        store.get_or_record(dct(1), 0, || Ok::<_, ()>(tiny_trace(1))).expect("records");
        // Another process "holds" the oldest file's record lock.
        let held = tmp.0.join(dct(1).file_name());
        std::fs::write(lock_path(&held), std::process::id().to_string()).expect("locks");
        for scale in 2..=3 {
            std::thread::sleep(std::time::Duration::from_millis(20));
            store
                .get_or_record(dct(scale), 0, || Ok::<_, ()>(tiny_trace(u64::from(scale))))
                .expect("records");
        }
        assert!(held.exists(), "lock-held file must survive eviction");
        std::fs::remove_file(lock_path(&held)).expect("unlocks");
    }

    #[test]
    fn stale_record_lock_is_taken_over_and_released() {
        if !Path::new("/proc").is_dir() {
            return; // takeover falls back to a long mtime heuristic there
        }
        let tmp = TempDir::new("stalelock");
        std::fs::create_dir_all(&tmp.0).expect("mkdir");
        let store = TraceStore::with_cache_dir(&tmp.0);
        let path = tmp.0.join(dct(1).file_name());
        // A crashed writer's leftover: dead pid, so acquisition takes it
        // over instead of waiting out the backoff.
        std::fs::write(lock_path(&path), "4294000000").expect("plants stale lock");
        let t = store.get_or_record(dct(1), 0, || Ok::<_, ()>(tiny_trace(8))).expect("records");
        assert_eq!(t.cycles, 8);
        assert!(!lock_path(&path).exists(), "lock released after the record");
        assert!(path.exists(), "record persisted normally");
    }

    #[test]
    fn armed_store_stays_correct_and_never_poisons_the_dir() {
        let tmp = TempDir::new("armedstore");
        let noisy = TraceStore::with_cache_dir(&tmp.0)
            .with_io(crate::fault::StoreIo::with_plan(crate::fault::FaultPlan::new(7)));
        let t = noisy
            .get_or_record(dct(1), 0x11, || Ok::<_, ()>(tiny_trace(5)))
            .expect("records through injected faults");
        assert_eq!(t.cycles, 5);
        assert_eq!(noisy.stats().io_retries, noisy.io().retries());

        // A fault-free store over the same dir must serve the workload —
        // from the file, or by quarantining a fault-corrupted write and
        // re-recording — never fail.
        let clean = TraceStore::with_cache_dir(&tmp.0);
        let t = clean
            .get_or_record(dct(1), 0x11, || Ok::<_, ()>(tiny_trace(5)))
            .expect("dir not poisoned");
        assert_eq!(t.cycles, 5);
    }

    #[test]
    fn compression_stats_accumulate() {
        let store = TraceStore::new();
        store
            .get_or_record(dct(1), 0, || Ok::<_, ()>(tiny_trace(1)))
            .expect("records");
        let s = store.stats();
        assert_eq!(s.raw_bytes, tiny_trace(1).raw_size_bytes());
        assert!(s.encoded_bytes > 0);
        assert!(s.compression_ratio() > 0.0);
    }
}
