//! The cross-config trace cache.
//!
//! Multi-config sweeps (`assoc_sweep`, `ablation`, line-size sweeps) run
//! the same seven benchmarks under many cache geometries. The trace a
//! benchmark produces depends only on `(Benchmark, scale)` — never on
//! the geometry or scheme being evaluated — so re-interpreting the
//! kernel per configuration is pure waste. [`TraceStore`] memoizes the
//! recording: the first lookup for a key runs the caller's recorder, and
//! every later lookup (from any thread) shares the same
//! `Arc<RecordedTrace>`.
//!
//! With a cache directory configured, recordings also persist to disk in
//! the [`codec`](crate::codec) wire format, so *separate process
//! invocations* skip interpretation too: a cold `headline` run records
//! and saves, a warm one loads and reports zero records.

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use waymem_isa::RecordedTrace;
use waymem_workloads::Benchmark;

use crate::codec;

/// What a stored trace is keyed by: the benchmark and its workload scale
/// factor. Everything else (geometry, scheme, technology) only affects
/// replay, not the recorded stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceKey {
    /// The benchmark that produced the trace.
    pub benchmark: Benchmark,
    /// The workload scale factor it ran at.
    pub scale: u32,
}

impl TraceKey {
    /// The key's on-disk file name, e.g. `dct-s1.wmtr`.
    #[must_use]
    pub fn file_name(self) -> String {
        format!("{}-s{}.wmtr", self.benchmark.name().to_lowercase(), self.scale)
    }

    /// Parses a cache file name back into a key (the inverse of
    /// [`file_name`](Self::file_name)); `None` for foreign files.
    #[must_use]
    pub fn from_file_name(name: &str) -> Option<Self> {
        let stem = name.strip_suffix(".wmtr")?;
        let (bench_name, scale_part) = stem.rsplit_once("-s")?;
        let scale: u32 = scale_part.parse().ok()?;
        let benchmark = Benchmark::ALL
            .into_iter()
            .find(|b| b.name().to_lowercase() == bench_name)?;
        Some(TraceKey { benchmark, scale })
    }
}

/// A snapshot of a store's accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Total [`TraceStore::get_or_record`] calls.
    pub lookups: u64,
    /// Lookups served from memory.
    pub hits: u64,
    /// Lookups served by decoding a cache-dir file (no interpretation).
    pub disk_hits: u64,
    /// Lookups that had to run the recorder (cold misses).
    pub records: u64,
    /// In-memory footprint of every trace recorded or loaded, in bytes
    /// (`events × size_of::<TraceEvent>()`).
    pub raw_bytes: u64,
    /// Wire-format footprint of the same traces, in bytes.
    pub encoded_bytes: u64,
    /// Cache files written (best-effort persistence).
    pub files_saved: u64,
    /// Cache files successfully decoded (on-miss loads plus
    /// [`TraceStore::load`]).
    pub files_loaded: u64,
}

impl StoreStats {
    /// Fraction of lookups that skipped interpretation (memory or disk),
    /// in `[0, 1]`; zero when nothing was looked up.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            (self.hits + self.disk_hits) as f64 / self.lookups as f64
        }
    }

    /// How much smaller the wire format is than the in-memory events:
    /// `raw_bytes / encoded_bytes`. Zero when nothing was encoded.
    #[must_use]
    pub fn compression_ratio(&self) -> f64 {
        if self.encoded_bytes == 0 {
            0.0
        } else {
            self.raw_bytes as f64 / self.encoded_bytes as f64
        }
    }
}

/// The store's live counters. Atomics so the hot accessors take no lock.
#[derive(Debug, Default)]
struct Counters {
    lookups: AtomicU64,
    hits: AtomicU64,
    disk_hits: AtomicU64,
    records: AtomicU64,
    raw_bytes: AtomicU64,
    encoded_bytes: AtomicU64,
    files_saved: AtomicU64,
    files_loaded: AtomicU64,
}

impl Counters {
    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    fn account_trace(&self, trace: &RecordedTrace, encoded_len: usize) {
        self.raw_bytes.fetch_add(trace.raw_size_bytes(), Ordering::Relaxed);
        self.encoded_bytes.fetch_add(encoded_len as u64, Ordering::Relaxed);
    }

    fn snapshot(&self) -> StoreStats {
        StoreStats {
            lookups: self.lookups.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            records: self.records.load(Ordering::Relaxed),
            raw_bytes: self.raw_bytes.load(Ordering::Relaxed),
            encoded_bytes: self.encoded_bytes.load(Ordering::Relaxed),
            files_saved: self.files_saved.load(Ordering::Relaxed),
            files_loaded: self.files_loaded.load(Ordering::Relaxed),
        }
    }
}

/// One key's slot. The per-key mutex serializes *recording* of that key
/// only: two threads racing on the same benchmark record it once (the
/// loser blocks, then hits), while different keys record concurrently —
/// exactly what `run_suite`'s benchmark fan-out needs.
type Slot = Arc<Mutex<Option<Arc<RecordedTrace>>>>;

/// A thread-safe, keyed cache of recorded traces with optional on-disk
/// persistence. See the [module docs](self) for the role it plays.
#[derive(Debug, Default)]
pub struct TraceStore {
    slots: Mutex<HashMap<TraceKey, Slot>>,
    cache_dir: Option<PathBuf>,
    counters: Counters,
}

impl TraceStore {
    /// An empty, memory-only store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A store that persists under `dir`: cold recordings are saved
    /// there (best-effort) and misses try to decode a saved file before
    /// falling back to the recorder. The directory is created on first
    /// save.
    #[must_use]
    pub fn with_cache_dir(dir: impl Into<PathBuf>) -> Self {
        TraceStore {
            cache_dir: Some(dir.into()),
            ..Self::default()
        }
    }

    /// The persistence directory, if one was configured.
    #[must_use]
    pub fn cache_dir(&self) -> Option<&Path> {
        self.cache_dir.as_deref()
    }

    /// Number of traces currently held in memory.
    ///
    /// # Panics
    ///
    /// Panics if a previous holder of the internal lock panicked.
    #[must_use]
    pub fn len(&self) -> usize {
        let slots = self.slots.lock().expect("trace store poisoned");
        slots
            .values()
            .filter(|s| s.lock().expect("trace slot poisoned").is_some())
            .count()
    }

    /// `true` when no trace is held in memory.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of the store's statistics.
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        self.counters.snapshot()
    }

    fn slot(&self, key: TraceKey) -> Slot {
        let mut slots = self.slots.lock().expect("trace store poisoned");
        slots.entry(key).or_default().clone()
    }

    fn file_path(&self, key: TraceKey) -> Option<PathBuf> {
        self.cache_dir.as_ref().map(|d| d.join(key.file_name()))
    }

    /// Tries to serve `key` from the cache dir. Any I/O or decode
    /// failure is treated as a plain miss — a stale or corrupt cache
    /// file must never break a run.
    fn load_from_disk(&self, key: TraceKey) -> Option<RecordedTrace> {
        let bytes = std::fs::read(self.file_path(key)?).ok()?;
        let trace = codec::decode(&bytes).ok()?;
        Counters::bump(&self.counters.files_loaded);
        self.counters.account_trace(&trace, bytes.len());
        Some(trace)
    }

    /// Best-effort persistence: encoding feeds the compression stats
    /// even when the write itself fails or no dir is configured.
    fn save_to_disk(&self, key: TraceKey, trace: &RecordedTrace) {
        let bytes = codec::encode(trace);
        self.counters.account_trace(trace, bytes.len());
        let Some(path) = self.file_path(key) else { return };
        let Some(dir) = self.cache_dir.as_ref() else { return };
        if std::fs::create_dir_all(dir).is_ok() && std::fs::write(&path, &bytes).is_ok() {
            Counters::bump(&self.counters.files_saved);
        }
    }

    /// Returns the trace for `(benchmark, scale)`, running `record` only
    /// on a cold miss (once per key per process, even under concurrent
    /// callers; racing threads on the same key block and then hit).
    /// With a cache dir, a miss first tries the saved file.
    ///
    /// # Errors
    ///
    /// Propagates the recorder's error; nothing is cached for the key in
    /// that case, so a later call retries.
    ///
    /// # Panics
    ///
    /// Panics if a previous holder of the key's lock panicked.
    pub fn get_or_record<E>(
        &self,
        benchmark: Benchmark,
        scale: u32,
        record: impl FnOnce() -> Result<RecordedTrace, E>,
    ) -> Result<Arc<RecordedTrace>, E> {
        let key = TraceKey { benchmark, scale };
        let slot = self.slot(key);
        let mut guard = slot.lock().expect("trace slot poisoned");
        Counters::bump(&self.counters.lookups);
        if let Some(trace) = guard.as_ref() {
            Counters::bump(&self.counters.hits);
            return Ok(Arc::clone(trace));
        }
        if let Some(trace) = self.load_from_disk(key) {
            Counters::bump(&self.counters.disk_hits);
            let trace = Arc::new(trace);
            *guard = Some(Arc::clone(&trace));
            return Ok(trace);
        }
        let trace = record()?;
        Counters::bump(&self.counters.records);
        let trace = Arc::new(trace);
        *guard = Some(Arc::clone(&trace));
        // Account + persist outside the per-key lock: waiters queued on
        // this key proceed with the Arc immediately; the encode pass
        // only feeds the compression stats and the best-effort cache
        // file, so nothing downstream observes it.
        drop(guard);
        self.save_to_disk(key, &trace);
        Ok(trace)
    }

    /// The trace for `(benchmark, scale)` if it is already in memory.
    /// Does not consult the disk cache and does not touch the lookup
    /// statistics.
    ///
    /// # Panics
    ///
    /// Panics if a previous holder of the key's lock panicked.
    #[must_use]
    pub fn get(&self, benchmark: Benchmark, scale: u32) -> Option<Arc<RecordedTrace>> {
        let slot = self.slot(TraceKey { benchmark, scale });
        let guard = slot.lock().expect("trace slot poisoned");
        guard.as_ref().map(Arc::clone)
    }

    /// Writes every in-memory trace to the cache dir, returning how many
    /// files were written. Unlike the automatic on-record persistence
    /// this surfaces I/O errors, so callers invoking it deliberately
    /// (e.g. a `--save-cache` flag) see failures.
    ///
    /// # Errors
    ///
    /// `InvalidInput` if the store has no cache dir; otherwise the first
    /// I/O error encountered.
    ///
    /// # Panics
    ///
    /// Panics if a previous holder of an internal lock panicked.
    pub fn save(&self) -> io::Result<usize> {
        let dir = self.cache_dir.as_ref().ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "trace store has no cache dir")
        })?;
        std::fs::create_dir_all(dir)?;
        let entries: Vec<(TraceKey, Arc<RecordedTrace>)> = {
            let slots = self.slots.lock().expect("trace store poisoned");
            slots
                .iter()
                .filter_map(|(k, s)| {
                    s.lock().expect("trace slot poisoned").as_ref().map(|t| (*k, Arc::clone(t)))
                })
                .collect()
        };
        let mut written = 0;
        for (key, trace) in entries {
            std::fs::write(dir.join(key.file_name()), codec::encode(&trace))?;
            written += 1;
            Counters::bump(&self.counters.files_saved);
        }
        Ok(written)
    }

    /// Preloads every decodable `*.wmtr` file from the cache dir into
    /// memory, returning how many loaded. Files that fail to decode are
    /// skipped (stale caches must not break anything); keys already in
    /// memory are left untouched.
    ///
    /// # Errors
    ///
    /// `InvalidInput` if the store has no cache dir; `NotFound`/other
    /// I/O errors from reading the directory itself.
    ///
    /// # Panics
    ///
    /// Panics if a previous holder of an internal lock panicked.
    pub fn load(&self) -> io::Result<usize> {
        let dir = self.cache_dir.clone().ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "trace store has no cache dir")
        })?;
        let mut loaded = 0;
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(key) = name.to_str().and_then(TraceKey::from_file_name) else {
                continue;
            };
            let slot = self.slot(key);
            let mut guard = slot.lock().expect("trace slot poisoned");
            if guard.is_some() {
                continue;
            }
            if let Some(trace) = self.load_from_disk(key) {
                *guard = Some(Arc::new(trace));
                loaded += 1;
            }
        }
        Ok(loaded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use waymem_isa::{FetchKind, TraceEvent};

    fn tiny_trace(cycles: u64) -> RecordedTrace {
        RecordedTrace {
            fetch_events: vec![TraceEvent::Fetch { pc: 0x100, kind: FetchKind::Sequential }],
            data_events: vec![TraceEvent::Load { base: 8, disp: 4, addr: 12, size: 4 }],
            cycles,
        }
    }

    /// A scratch directory under the system temp dir, removed on drop.
    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            let dir = std::env::temp_dir().join(format!(
                "waymem-trace-test-{tag}-{}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn records_once_then_hits() {
        let store = TraceStore::new();
        let mut recordings = 0;
        for _ in 0..3 {
            let t = store
                .get_or_record(Benchmark::Dct, 1, || {
                    recordings += 1;
                    Ok::<_, ()>(tiny_trace(7))
                })
                .expect("records");
            assert_eq!(t.cycles, 7);
        }
        assert_eq!(recordings, 1);
        let s = store.stats();
        assert_eq!((s.lookups, s.records, s.hits, s.disk_hits), (3, 1, 2, 0));
        assert!((s.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn distinct_keys_record_separately() {
        let store = TraceStore::new();
        let t1 = store
            .get_or_record(Benchmark::Dct, 1, || Ok::<_, ()>(tiny_trace(1)))
            .expect("records");
        let t2 = store
            .get_or_record(Benchmark::Dct, 2, || Ok::<_, ()>(tiny_trace(2)))
            .expect("records");
        let t3 = store
            .get_or_record(Benchmark::Fft, 1, || Ok::<_, ()>(tiny_trace(3)))
            .expect("records");
        assert_eq!((t1.cycles, t2.cycles, t3.cycles), (1, 2, 3));
        assert_eq!(store.stats().records, 3);
        assert_eq!(store.len(), 3);
    }

    #[test]
    fn recorder_errors_are_not_cached() {
        let store = TraceStore::new();
        let err = store.get_or_record(Benchmark::Dct, 1, || Err::<RecordedTrace, _>("boom"));
        assert_eq!(err.unwrap_err(), "boom");
        let ok = store
            .get_or_record(Benchmark::Dct, 1, || Ok::<_, &str>(tiny_trace(9)))
            .expect("retries");
        assert_eq!(ok.cycles, 9);
        assert_eq!(store.stats().records, 1);
    }

    #[test]
    fn concurrent_same_key_records_once() {
        let store = TraceStore::new();
        let recordings = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    let t = store
                        .get_or_record(Benchmark::Fft, 1, || {
                            recordings.fetch_add(1, Ordering::SeqCst);
                            Ok::<_, ()>(tiny_trace(42))
                        })
                        .expect("records");
                    assert_eq!(t.cycles, 42);
                });
            }
        });
        assert_eq!(recordings.load(Ordering::SeqCst), 1);
        let s = store.stats();
        assert_eq!((s.lookups, s.records, s.hits), (8, 1, 7));
    }

    #[test]
    fn persistence_round_trips_across_stores() {
        let tmp = TempDir::new("persist");
        let cold = TraceStore::with_cache_dir(&tmp.0);
        cold.get_or_record(Benchmark::Dct, 1, || Ok::<_, ()>(tiny_trace(11)))
            .expect("records");
        assert_eq!(cold.stats().files_saved, 1);

        // A fresh store over the same dir: the lookup is a disk hit.
        let warm = TraceStore::with_cache_dir(&tmp.0);
        let t = warm
            .get_or_record(Benchmark::Dct, 1, || {
                panic!("must not re-record");
                #[allow(unreachable_code)]
                Ok::<_, ()>(tiny_trace(0))
            })
            .expect("loads");
        assert_eq!(t.cycles, 11);
        let s = warm.stats();
        assert_eq!((s.records, s.disk_hits, s.files_loaded), (0, 1, 1));
        assert!((s.hit_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn explicit_save_and_load() {
        let tmp = TempDir::new("explicit");
        let store = TraceStore::new();
        assert!(store.save().is_err(), "no cache dir configured");

        let saver = TraceStore::with_cache_dir(&tmp.0);
        saver
            .get_or_record(Benchmark::Compress, 3, || Ok::<_, ()>(tiny_trace(5)))
            .expect("records");
        assert_eq!(saver.save().expect("saves"), 1);

        let loader = TraceStore::with_cache_dir(&tmp.0);
        assert_eq!(loader.load().expect("loads"), 1);
        assert_eq!(loader.get(Benchmark::Compress, 3).expect("in memory").cycles, 5);
        // A corrupt extra file is skipped, not fatal.
        std::fs::write(tmp.0.join("dct-s1.wmtr"), b"garbage").expect("writes");
        let skipper = TraceStore::with_cache_dir(&tmp.0);
        assert_eq!(skipper.load().expect("loads"), 1);
        assert!(skipper.get(Benchmark::Dct, 1).is_none());
    }

    #[test]
    fn file_names_round_trip() {
        for bench in Benchmark::ALL {
            for scale in [1, 2, 16] {
                let key = TraceKey { benchmark: bench, scale };
                assert_eq!(TraceKey::from_file_name(&key.file_name()), Some(key));
            }
        }
        assert_eq!(TraceKey::from_file_name("nope.wmtr"), None);
        assert_eq!(TraceKey::from_file_name("dct-s1.txt"), None);
        assert_eq!(TraceKey::from_file_name("dct-sX.wmtr"), None);
    }

    #[test]
    fn compression_stats_accumulate() {
        let store = TraceStore::new();
        store
            .get_or_record(Benchmark::Dct, 1, || Ok::<_, ()>(tiny_trace(1)))
            .expect("records");
        let s = store.stats();
        assert_eq!(s.raw_bytes, tiny_trace(1).raw_size_bytes());
        assert!(s.encoded_bytes > 0);
        assert!(s.compression_ratio() > 0.0);
    }
}
