//! The append-only run ledger behind `BENCH_LEDGER.jsonl`.
//!
//! Every `headline` / `ingest` invocation [appends](append_from_env) one
//! provenance-stamped record — git revision, dirty flag, host thread
//! count, wall-clock timestamp, the run's key perf numbers, and the full
//! metrics [`snapshot`](waymem_obs::snapshot) — as one JSON line, so the
//! bench trajectory survives the next run overwriting `BENCH_*.json`.
//! The `bench_diff` binary reads the tail back as the regression
//! baseline.
//!
//! Two policies keep the file useful instead of unbounded:
//!
//! * **dedup** — re-running at the same `(bin, git_rev, dirty)` replaces
//!   the tail record (bumping its `runs_at_rev` count) rather than
//!   stacking near-identical lines, so one line ≈ one code state;
//! * **rotation** — the file is trimmed to the newest
//!   [`DEFAULT_MAX_RECORDS`] lines (override with `WAYMEM_LEDGER_MAX`).
//!
//! Writes go through a temp file + rename, so a run killed mid-append
//! leaves the previous ledger intact — the same crash discipline as the
//! trace store.
//!
//! Record schema (`waymem/ledger/v1`), one object per line:
//!
//! ```json
//! {"schema":"waymem/ledger/v1","bin":"headline","git_rev":"20cd372a1b2c",
//!  "git_dirty":false,"unix_ts":1754650000,"host_threads":8,"runs_at_rev":1,
//!  "perf":{"warm_speedup":41.2,"...":0},"metrics":{"counters":{},"...":{}}}
//! ```

use std::io;
use std::path::{Path, PathBuf};
use std::process::Command;

use crate::json::{metrics_json, Json};
use waymem_obs::chrome::{self, Value};

/// Schema tag every ledger record carries.
pub const SCHEMA: &str = "waymem/ledger/v1";

/// Where records land when `WAYMEM_LEDGER` names no path.
pub const DEFAULT_PATH: &str = "BENCH_LEDGER.jsonl";

/// Records kept after rotation (override with `WAYMEM_LEDGER_MAX`).
pub const DEFAULT_MAX_RECORDS: usize = 512;

/// Where a run happened: the provenance stamp on every record.
#[derive(Debug, Clone)]
pub struct Provenance {
    /// Short git revision, or `"unknown"` outside a git checkout.
    pub git_rev: String,
    /// `true` when tracked files had uncommitted changes.
    pub git_dirty: bool,
    /// `std::thread::available_parallelism` at run time.
    pub host_threads: u64,
    /// Seconds since the Unix epoch.
    pub unix_ts: u64,
}

impl Provenance {
    /// Detects the current provenance: `git rev-parse` / `git status`
    /// (degrading to `"unknown"` / clean outside a checkout), host
    /// parallelism, and the wall clock.
    #[must_use]
    pub fn detect() -> Self {
        let git = |args: &[&str]| {
            Command::new("git")
                .args(args)
                .output()
                .ok()
                .filter(|o| o.status.success())
                .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_owned())
        };
        Provenance {
            git_rev: git(&["rev-parse", "--short=12", "HEAD"])
                .filter(|rev| !rev.is_empty())
                .unwrap_or_else(|| "unknown".to_owned()),
            git_dirty: git(&["status", "--porcelain", "--untracked-files=no"])
                .is_some_and(|s| !s.is_empty()),
            host_threads: std::thread::available_parallelism().map_or(1, |n| n.get() as u64),
            unix_ts: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map_or(0, |d| d.as_secs()),
        }
    }
}

/// What [`append_to`] did.
#[derive(Debug, Clone)]
pub struct LedgerOutcome {
    /// The ledger file written.
    pub path: PathBuf,
    /// Records in the file after the append.
    pub records: usize,
    /// This record's run count at its `(bin, git_rev, dirty)` state —
    /// 1 for a fresh state, incremented when the append deduped.
    pub runs_at_rev: u64,
    /// `true` when the append replaced the tail record instead of
    /// adding a line.
    pub deduped: bool,
}

/// `true` when `record` (a parsed ledger line) matches the dedup key.
fn same_state(record: &Value, bin: &str, prov: &Provenance) -> bool {
    record.get("bin").and_then(Value::as_str) == Some(bin)
        && record.get("git_rev").and_then(Value::as_str) == Some(prov.git_rev.as_str())
        && record.get("git_dirty") == Some(&Value::Bool(prov.git_dirty))
}

/// Appends one record for `bin` with this run's `perf` numbers and the
/// current metrics snapshot, deduping against the tail and rotating to
/// `max_records`. The write is atomic (temp file + rename).
///
/// # Errors
///
/// Propagates filesystem failures; a malformed existing ledger is not an
/// error (unparseable tail lines are kept verbatim and never deduped).
pub fn append_to(
    path: &Path,
    bin: &str,
    perf: Json,
    prov: &Provenance,
    max_records: usize,
) -> io::Result<LedgerOutcome> {
    let mut lines: Vec<String> = match std::fs::read_to_string(path) {
        Ok(text) => text.lines().filter(|l| !l.trim().is_empty()).map(str::to_owned).collect(),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    let mut runs_at_rev = 1u64;
    let mut deduped = false;
    if let Some(last) = lines.last() {
        if let Ok(record) = chrome::parse(last) {
            if same_state(&record, bin, prov) {
                runs_at_rev = record
                    .get("runs_at_rev")
                    .and_then(Value::as_num)
                    .map_or(1, |n| if n.is_finite() && n >= 1.0 { n as u64 } else { 1 })
                    .saturating_add(1);
                lines.pop();
                deduped = true;
            }
        }
    }
    let record = Json::object(vec![
        ("schema", Json::from(SCHEMA)),
        ("bin", Json::from(bin)),
        ("git_rev", Json::from(prov.git_rev.clone())),
        ("git_dirty", Json::from(prov.git_dirty)),
        ("unix_ts", Json::from(prov.unix_ts)),
        ("host_threads", Json::from(prov.host_threads)),
        ("runs_at_rev", Json::from(runs_at_rev)),
        ("perf", perf),
        ("metrics", metrics_json()),
    ]);
    lines.push(record.to_string());
    if lines.len() > max_records.max(1) {
        let drop = lines.len() - max_records.max(1);
        lines.drain(..drop);
    }
    let tmp = path.with_extension(format!("tmp-{}", std::process::id()));
    std::fs::write(&tmp, lines.join("\n") + "\n")?;
    std::fs::rename(&tmp, path)?;
    Ok(LedgerOutcome { path: path.to_owned(), records: lines.len(), runs_at_rev, deduped })
}

/// The env-wired [`append_to`] the bench binaries call after writing
/// their `BENCH_*.json`: path from `WAYMEM_LEDGER` (default
/// [`DEFAULT_PATH`]; `off` / `0` / `none` disables), rotation cap from
/// `WAYMEM_LEDGER_MAX`, provenance [detected](Provenance::detect) now.
/// Returns `None` when disabled; a failed write warns and returns
/// `None` rather than failing the run that produced the results.
pub fn append_from_env(bin: &str, perf: Json) -> Option<LedgerOutcome> {
    let path = match std::env::var("WAYMEM_LEDGER") {
        Ok(v) if matches!(v.trim().to_ascii_lowercase().as_str(), "off" | "0" | "none") => {
            return None;
        }
        Ok(v) if !v.trim().is_empty() => PathBuf::from(v),
        _ => PathBuf::from(DEFAULT_PATH),
    };
    let max_records = std::env::var("WAYMEM_LEDGER_MAX")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(DEFAULT_MAX_RECORDS);
    match append_to(&path, bin, perf, &Provenance::detect(), max_records) {
        Ok(outcome) => Some(outcome),
        Err(e) => {
            waymem_obs::warn!("ledger.append_failed", path = path.display(), error = e);
            None
        }
    }
}
