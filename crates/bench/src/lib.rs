//! # waymem-bench — regeneration harness for every table and figure
//!
//! One binary per published artifact:
//!
//! | binary     | regenerates                                        |
//! |------------|----------------------------------------------------|
//! | `table1`   | MAB area overhead (mm², % of cache)                |
//! | `table2`   | added-circuit delay (ns) vs the 2.5 ns cycle       |
//! | `table3`   | MAB power (mW), active and clock-gated             |
//! | `fig4`     | tag / way accesses per D-cache access              |
//! | `fig5`     | D-cache power (data / tag / MAB split)             |
//! | `fig6`     | tag / way accesses per I-cache access (MAB sweep)  |
//! | `fig7`     | I-cache power                                      |
//! | `fig8`     | total I+D power, ours vs original+\[4\]            |
//! | `headline` | the abstract's −40 % / −50 % / −30 % claims        |
//! | `ablation` | way-predict / two-phase / line-buffer hybrid sweep |
//! | `related_work` | Ma et al. link memoization \[11\] vs the MAB    |
//! | `consistency` | §3.3 LRU-consistency audit (unsound-hit counts)    |
//! | `assoc_sweep` | MAB payoff vs associativity (1–16 way) + scaled stress |
//! | `export`   | full results as CSV + `BENCH_results.json`             |
//! | `ingest`   | any external/synthetic trace through every scheme      |
//!
//! Run any of them with `cargo run --release -p waymem-bench --bin <name>`.
//! Every binary drives the same [`Experiment`](waymem_sim::Experiment) /
//! [`Suite`](waymem_sim::Suite) builder the library users get — e.g. the
//! full evaluation suite behind `fig4`:
//!
//! ```no_run
//! use waymem_bench::fig4_dschemes;
//! use waymem_sim::Suite;
//!
//! # fn main() -> Result<(), waymem_sim::RunError> {
//! let results = Suite::kernels().dschemes(fig4_dschemes()).run()?;
//! assert_eq!(results.len(), 7);
//! # Ok(())
//! # }
//! ```
//!
//! The library part of this crate re-exports the scheme presets
//! ([`fig4_dschemes`] / [`fig6_ischemes`] / [`full_dschemes`] /
//! [`full_ischemes`], now defined in `waymem_sim::presets`) plus the
//! env-wired [`store_from_env`], holds the tiny [`json`] writer behind
//! the `BENCH_*.json` exports, the append-only run [`ledger`] those
//! exports feed (`BENCH_LEDGER.jsonl`), and the perf-[`diff`] engine the
//! `bench_diff` regression gate runs on, and keeps the deprecated
//! `run_suite*` shims importable for downstream code that predates the
//! builder.

use waymem_sim::TraceStore;

pub mod diff;
pub mod json;
pub mod ledger;

pub use waymem_sim::presets::{fig4_dschemes, fig6_ischemes, full_dschemes, full_ischemes};
// The deprecated suite shims historically lived in this crate; they now
// forward to `waymem_sim::Suite` but stay importable here.
#[allow(deprecated)]
pub use waymem_sim::{run_suite, run_suite_serial, run_suite_with_store};

/// The per-process [`TraceStore`] the bench binaries share, wired from
/// the environment ([`TraceStore::from_env`]): `WAYMEM_TRACE_CACHE=<dir>`
/// enables persistence, `WAYMEM_TRACE_CACHE_MAX_BYTES=<n>` caps the
/// directory with oldest-mtime eviction. Unset variables mean a
/// memory-only store / no cap.
#[must_use]
pub fn store_from_env() -> TraceStore {
    TraceStore::from_env()
}

/// Geometric-mean helper for "on average" claims.
///
/// # Panics
///
/// Panics if `values` is empty or contains non-positive entries.
#[must_use]
pub fn geometric_mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geometric mean of nothing");
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geometric mean needs positive values");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_mean_of_equal_values() {
        assert!((geometric_mean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geometric_mean_mixed() {
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "nothing")]
    fn geometric_mean_empty_panics() {
        let _ = geometric_mean(&[]);
    }

    #[test]
    fn scheme_lists_have_expected_sizes() {
        assert_eq!(fig4_dschemes().len(), 3);
        assert_eq!(fig6_ischemes().len(), 4);
    }
}
