//! # waymem-bench — regeneration harness for every table and figure
//!
//! One binary per published artifact:
//!
//! | binary     | regenerates                                        |
//! |------------|----------------------------------------------------|
//! | `table1`   | MAB area overhead (mm², % of cache)                |
//! | `table2`   | added-circuit delay (ns) vs the 2.5 ns cycle       |
//! | `table3`   | MAB power (mW), active and clock-gated             |
//! | `fig4`     | tag / way accesses per D-cache access              |
//! | `fig5`     | D-cache power (data / tag / MAB split)             |
//! | `fig6`     | tag / way accesses per I-cache access (MAB sweep)  |
//! | `fig7`     | I-cache power                                      |
//! | `fig8`     | total I+D power, ours vs original+\[4\]            |
//! | `headline` | the abstract's −40 % / −50 % / −30 % claims        |
//! | `ablation` | way-predict / two-phase / line-buffer hybrid sweep |
//! | `related_work` | Ma et al. link memoization \[11\] vs the MAB    |
//! | `consistency` | §3.3 LRU-consistency audit (unsound-hit counts)    |
//! | `assoc_sweep` | MAB payoff vs cache associativity                  |
//! | `export`   | full results as CSV (per benchmark × scheme × cache)   |
//!
//! Run any of them with `cargo run --release -p waymem-bench --bin <name>`.
//! The library part of this crate holds the shared sweep drivers so the
//! binaries stay tiny and the integration tests can assert on the same
//! structured data the binaries print.

use waymem_sim::{run_benchmark, DScheme, IScheme, RunError, SimConfig, SimResult};
use waymem_workloads::Benchmark;

/// The D-cache schemes of Figures 4–5: original, set buffer \[14\], ours.
#[must_use]
pub fn fig4_dschemes() -> Vec<DScheme> {
    vec![
        DScheme::Original,
        DScheme::SetBuffer { entries: 1 },
        DScheme::WayMemo {
            tag_entries: 2,
            set_entries: 8,
        },
    ]
}

/// The I-cache schemes of Figures 6–7: approach \[4\] plus ours with 2×8,
/// 2×16 and 2×32 MABs.
#[must_use]
pub fn fig6_ischemes() -> Vec<IScheme> {
    vec![
        IScheme::IntraLine,
        IScheme::WayMemo {
            tag_entries: 2,
            set_entries: 8,
        },
        IScheme::WayMemo {
            tag_entries: 2,
            set_entries: 16,
        },
        IScheme::WayMemo {
            tag_entries: 2,
            set_entries: 32,
        },
    ]
}

/// Runs all seven benchmarks under the given schemes.
///
/// # Errors
///
/// Propagates the first [`RunError`]. The kernels are tested to assemble
/// and halt, so an error here indicates a build problem, not bad input.
pub fn run_suite(
    cfg: &SimConfig,
    dschemes: &[DScheme],
    ischemes: &[IScheme],
) -> Result<Vec<SimResult>, RunError> {
    Benchmark::ALL
        .iter()
        .map(|&b| run_benchmark(b, cfg, dschemes, ischemes))
        .collect()
}

/// Geometric-mean helper for "on average" claims.
///
/// # Panics
///
/// Panics if `values` is empty or contains non-positive entries.
#[must_use]
pub fn geometric_mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geometric mean of nothing");
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geometric mean needs positive values");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_mean_of_equal_values() {
        assert!((geometric_mean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geometric_mean_mixed() {
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "nothing")]
    fn geometric_mean_empty_panics() {
        let _ = geometric_mean(&[]);
    }

    #[test]
    fn scheme_lists_have_expected_sizes() {
        assert_eq!(fig4_dschemes().len(), 3);
        assert_eq!(fig6_ischemes().len(), 4);
    }
}
