//! # waymem-bench — regeneration harness for every table and figure
//!
//! One binary per published artifact:
//!
//! | binary     | regenerates                                        |
//! |------------|----------------------------------------------------|
//! | `table1`   | MAB area overhead (mm², % of cache)                |
//! | `table2`   | added-circuit delay (ns) vs the 2.5 ns cycle       |
//! | `table3`   | MAB power (mW), active and clock-gated             |
//! | `fig4`     | tag / way accesses per D-cache access              |
//! | `fig5`     | D-cache power (data / tag / MAB split)             |
//! | `fig6`     | tag / way accesses per I-cache access (MAB sweep)  |
//! | `fig7`     | I-cache power                                      |
//! | `fig8`     | total I+D power, ours vs original+\[4\]            |
//! | `headline` | the abstract's −40 % / −50 % / −30 % claims        |
//! | `ablation` | way-predict / two-phase / line-buffer hybrid sweep |
//! | `related_work` | Ma et al. link memoization \[11\] vs the MAB    |
//! | `consistency` | §3.3 LRU-consistency audit (unsound-hit counts)    |
//! | `assoc_sweep` | MAB payoff vs associativity (1–16 way) + scaled stress |
//! | `export`   | full results as CSV + `BENCH_results.json`             |
//! | `ingest`   | any external/synthetic trace through every scheme      |
//!
//! Run any of them with `cargo run --release -p waymem-bench --bin <name>`.
//! The library part of this crate holds the shared sweep drivers — the
//! parallel [`run_suite`], the store-backed [`run_suite_with_store`]
//! the multi-config bins thread one [`TraceStore`] through, and the
//! legacy [`run_suite_serial`] both are benchmarked against (see
//! `benches/replay.rs` and `benches/trace_store.rs`) — plus the full
//! scheme lists ([`full_dschemes`]/[`full_ischemes`]), the env-wired
//! [`store_from_env`], and the tiny [`json`] writer behind the
//! `BENCH_*.json` exports, so the binaries stay tiny and the integration
//! tests can assert on the same structured data the binaries print.

use waymem_sim::{
    run_benchmark, run_benchmark_fanout, run_benchmark_with_store, DScheme, IScheme, RunError,
    SimConfig, SimResult, TraceStore,
};
use waymem_workloads::Benchmark;

pub mod json;

/// The D-cache schemes of Figures 4–5: original, set buffer \[14\], ours.
#[must_use]
pub fn fig4_dschemes() -> Vec<DScheme> {
    vec![
        DScheme::Original,
        DScheme::SetBuffer { entries: 1 },
        DScheme::WayMemo {
            tag_entries: 2,
            set_entries: 8,
        },
    ]
}

/// The I-cache schemes of Figures 6–7: approach \[4\] plus ours with 2×8,
/// 2×16 and 2×32 MABs.
#[must_use]
pub fn fig6_ischemes() -> Vec<IScheme> {
    vec![
        IScheme::IntraLine,
        IScheme::WayMemo {
            tag_entries: 2,
            set_entries: 8,
        },
        IScheme::WayMemo {
            tag_entries: 2,
            set_entries: 16,
        },
        IScheme::WayMemo {
            tag_entries: 2,
            set_entries: 32,
        },
    ]
}

/// Every implemented D-cache lookup scheme — conventional, the paper's
/// way memoization, and all ablations — in presentation order. The
/// `export` and `ingest` bins run this full comparison so their JSON
/// rows cover the whole design space.
#[must_use]
pub fn full_dschemes() -> Vec<DScheme> {
    vec![
        DScheme::Original,
        DScheme::SetBuffer { entries: 1 },
        DScheme::FilterCache { lines: 4 },
        DScheme::WayPredict,
        DScheme::TwoPhase,
        DScheme::paper_way_memo(),
        DScheme::WayMemoLineBuffer {
            tag_entries: 2,
            set_entries: 8,
            line_entries: 2,
        },
    ]
}

/// Every implemented I-cache lookup scheme, in presentation order; the
/// I-side counterpart of [`full_dschemes`].
#[must_use]
pub fn full_ischemes() -> Vec<IScheme> {
    vec![
        IScheme::Original,
        IScheme::IntraLine,
        IScheme::LinkMemo,
        IScheme::ExtendedBtb { entries: 32 },
        IScheme::WayMemo {
            tag_entries: 2,
            set_entries: 8,
        },
        IScheme::WayMemo {
            tag_entries: 2,
            set_entries: 16,
        },
        IScheme::WayMemo {
            tag_entries: 2,
            set_entries: 32,
        },
    ]
}

/// The per-process [`TraceStore`] the bench binaries share, wired from
/// the environment: `WAYMEM_TRACE_CACHE=<dir>` enables persistence,
/// `WAYMEM_TRACE_CACHE_MAX_BYTES=<n>` caps the directory with
/// oldest-mtime eviction. Unset variables mean a memory-only store /
/// no cap.
#[must_use]
pub fn store_from_env() -> TraceStore {
    match std::env::var_os("WAYMEM_TRACE_CACHE") {
        Some(dir) => TraceStore::with_cache_dir(std::path::PathBuf::from(dir))
            .with_cache_limit(TraceStore::cache_cap_from_env()),
        None => TraceStore::new(),
    }
}

/// Runs all seven benchmarks under the given schemes, fanning the
/// benchmarks out across [`std::thread::scope`] workers; every worker in
/// turn records its benchmark's trace once and replays it through the
/// schemes in parallel ([`waymem_sim::run_benchmark`]).
///
/// Like the inner replay fan-out, the suite level is bounded: at most
/// [`std::thread::available_parallelism`] benchmark workers run, each
/// taking a contiguous chunk of [`Benchmark::ALL`]. (Both levels cap at
/// the core count independently, so a 7-benchmark × N-scheme suite
/// spawns at most `cores + cores·cores` short-lived compute threads and
/// far fewer in practice; small hosts are not drowned in one thread per
/// benchmark × scheme.)
///
/// Workers are joined in [`Benchmark::ALL`] order, so the result order
/// and the error reported are the same as a serial loop's.
///
/// # Errors
///
/// Propagates the first [`RunError`] in benchmark order. The kernels are
/// tested to assemble and halt, so an error here indicates a build
/// problem, not bad input.
pub fn run_suite(
    cfg: &SimConfig,
    dschemes: &[DScheme],
    ischemes: &[IScheme],
) -> Result<Vec<SimResult>, RunError> {
    run_suite_via(&|b| run_benchmark(b, cfg, dschemes, ischemes))
}

/// The shared suite fan-out behind [`run_suite`] and
/// [`run_suite_with_store`]: both drivers differ only in how one
/// benchmark is run, so the worker-count / chunking / join-order
/// contract lives exactly once.
fn run_suite_via(
    run_one: &(dyn Fn(Benchmark) -> Result<SimResult, RunError> + Sync),
) -> Result<Vec<SimResult>, RunError> {
    let workers = std::thread::available_parallelism().map_or(1, |n| n.get());
    // On a single-core host the workers would only interleave; run the
    // benchmarks inline instead (results are identical either way).
    if workers <= 1 {
        return Benchmark::ALL.iter().map(|&b| run_one(b)).collect();
    }
    let chunk = Benchmark::ALL.len().div_ceil(workers).max(1);
    std::thread::scope(|scope| {
        let handles: Vec<_> = Benchmark::ALL
            .chunks(chunk)
            .map(|group| {
                scope.spawn(move || group.iter().map(|&b| run_one(b)).collect::<Vec<_>>())
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("suite worker panicked"))
            .collect()
    })
}

/// [`run_suite`] with a shared [`TraceStore`]: each of the seven
/// benchmarks is interpreted at most once per `(benchmark, scale)` key
/// for the store's whole lifetime, so a multi-config sweep calling this
/// per geometry pays the interpreter exactly seven times for the entire
/// sweep (zero times, with a warm persistent store) instead of seven
/// times per configuration.
///
/// The fan-out and ordering guarantees are [`run_suite`]'s: at most
/// [`std::thread::available_parallelism`] benchmark workers, results in
/// [`Benchmark::ALL`] order, first error in benchmark order. Workers
/// racing on the same key serialize inside the store and record once.
///
/// # Errors
///
/// Propagates the first [`RunError`] in benchmark order.
pub fn run_suite_with_store(
    cfg: &SimConfig,
    dschemes: &[DScheme],
    ischemes: &[IScheme],
    store: &TraceStore,
) -> Result<Vec<SimResult>, RunError> {
    run_suite_via(&|b| run_benchmark_with_store(b, cfg, dschemes, ischemes, store))
}

/// The pre-record/replay suite driver: benchmarks run one after another,
/// each feeding every front-end per event through the serial fanout sink.
/// Kept so `headline` and the criterion benches can report the engine's
/// before/after wall-clock on identical work; results are bit-identical
/// to [`run_suite`]'s.
///
/// # Errors
///
/// Propagates the first [`RunError`], like [`run_suite`].
pub fn run_suite_serial(
    cfg: &SimConfig,
    dschemes: &[DScheme],
    ischemes: &[IScheme],
) -> Result<Vec<SimResult>, RunError> {
    Benchmark::ALL
        .iter()
        .map(|&b| run_benchmark_fanout(b, cfg, dschemes, ischemes))
        .collect()
}

/// Geometric-mean helper for "on average" claims.
///
/// # Panics
///
/// Panics if `values` is empty or contains non-positive entries.
#[must_use]
pub fn geometric_mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geometric mean of nothing");
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geometric mean needs positive values");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_mean_of_equal_values() {
        assert!((geometric_mean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geometric_mean_mixed() {
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "nothing")]
    fn geometric_mean_empty_panics() {
        let _ = geometric_mean(&[]);
    }

    #[test]
    fn scheme_lists_have_expected_sizes() {
        assert_eq!(fig4_dschemes().len(), 3);
        assert_eq!(fig6_ischemes().len(), 4);
    }
}
