//! A tiny hand-rolled JSON writer for the `BENCH_*.json` exports.
//!
//! The build environment is offline, so `serde_json` is unavailable (the
//! vendored `serde` is a no-op derive stub). The export binaries only
//! need to *emit* flat records — no parsing, no borrowing, no streaming —
//! so a ~100-line value tree with a `Display` impl covers everything and
//! keeps the machine-readable outputs dependency-free.

use std::fmt;

/// A JSON value. Build one with the constructors/`From` impls and print
/// it with `{}` (compact) — output is valid UTF-8 JSON.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (also the encoding of non-finite floats).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (counters).
    UInt(u64),
    /// A finite float (powers, seconds, ratios).
    Num(f64),
    /// A string.
    Str(String),
    /// An ordered array.
    Array(Vec<Json>),
    /// An object; key order is preserved as inserted.
    Object(Vec<(String, Json)>),
    /// Pre-rendered JSON spliced in verbatim — the bridge for values
    /// produced by another writer (the `waymem_obs` snapshot). The
    /// caller vouches that the string is valid JSON.
    Raw(String),
}

impl Json {
    /// An object from `(key, value)` pairs, preserving order.
    #[must_use]
    pub fn object<K: Into<String>>(pairs: Vec<(K, Json)>) -> Self {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::UInt(v)
    }
}

impl From<u32> for Json {
    fn from(v: u32) -> Self {
        Json::UInt(u64::from(v))
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_owned())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Self {
        Json::Array(v.into_iter().map(Into::into).collect())
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::UInt(n) => write!(f, "{n}"),
            Json::Num(x) => {
                if x.is_finite() {
                    // `{:?}` keeps a decimal point / exponent, so the value
                    // round-trips as a float rather than collapsing to an int.
                    write!(f, "{x:?}")
                } else {
                    f.write_str("null") // JSON has no NaN/Infinity
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Array(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Object(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
            Json::Raw(s) => f.write_str(s),
        }
    }
}

/// The `trace_store` object embedded in `BENCH_headline.json` and
/// `BENCH_results.json`: the store's hit/miss/bytes accounting plus the
/// codec's compression ratio against `size_of::<TraceEvent>()` events.
#[must_use]
pub fn store_stats_json(stats: &waymem_trace::StoreStats) -> Json {
    Json::object(vec![
        ("lookups", Json::from(stats.lookups)),
        ("hits", Json::from(stats.hits)),
        ("disk_hits", Json::from(stats.disk_hits)),
        ("stream_opens", Json::from(stats.stream_opens)),
        ("records", Json::from(stats.records)),
        ("hit_rate", Json::from(stats.hit_rate())),
        ("stale", Json::from(stats.stale)),
        ("raw_bytes", Json::from(stats.raw_bytes)),
        ("encoded_bytes", Json::from(stats.encoded_bytes)),
        ("compression_ratio", Json::from(stats.compression_ratio())),
        ("files_saved", Json::from(stats.files_saved)),
        ("files_loaded", Json::from(stats.files_loaded)),
        ("files_evicted", Json::from(stats.files_evicted)),
        ("bytes_evicted", Json::from(stats.bytes_evicted)),
        ("quarantined", Json::from(stats.quarantined)),
        ("recovered", Json::from(stats.recovered)),
        ("io_retries", Json::from(stats.io_retries)),
    ])
}

/// The `phases` object for `BENCH_headline.json` (schema v5): exclusive
/// wall-clock seconds the process spent in each engine phase — resolve
/// (store lookup / hashing), record (interpret / parse / generate), io
/// (store reads and writes), replay (front-end evaluation) — read from
/// the [`waymem_obs::phase`] accumulators.
#[must_use]
pub fn phases_json() -> Json {
    Json::object(
        waymem_obs::phase::snapshot()
            .into_iter()
            .map(|(name, seconds)| (name, Json::from(seconds)))
            .collect(),
    )
}

/// The `metrics` object for the `BENCH_*.json` exports: the whole
/// observability registry — counters, gauges, histogram percentiles —
/// plus the phase accounting, frozen now via
/// [`waymem_obs::snapshot::take`].
#[must_use]
pub fn metrics_json() -> Json {
    Json::Raw(waymem_obs::snapshot::take().to_json())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_report_all_four_keys() {
        let rendered = phases_json().to_string();
        for key in ["resolve", "record", "io", "replay"] {
            assert!(rendered.contains(&format!("\"{key}\":")), "missing {key} in {rendered}");
        }
    }

    #[test]
    fn store_stats_serialize_with_stable_keys() {
        let rendered = store_stats_json(&waymem_trace::StoreStats::default()).to_string();
        for key in [
            "lookups",
            "records",
            "stream_opens",
            "hit_rate",
            "stale",
            "compression_ratio",
            "encoded_bytes",
            "files_evicted",
            "bytes_evicted",
            "quarantined",
            "recovered",
            "io_retries",
        ] {
            assert!(rendered.contains(&format!("\"{key}\":")), "missing {key} in {rendered}");
        }
    }

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.to_string(), "null");
        assert_eq!(Json::from(true).to_string(), "true");
        assert_eq!(Json::from(42u64).to_string(), "42");
        assert_eq!(Json::from(1.5).to_string(), "1.5");
        assert_eq!(Json::from(2.0).to_string(), "2.0");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(Json::from("a\"b\\c\n").to_string(), r#""a\"b\\c\n""#);
        assert_eq!(Json::from("\u{1}").to_string(), "\"\\u0001\"");
    }

    #[test]
    fn raw_splices_verbatim_and_metrics_validate() {
        let v = Json::object(vec![("m", Json::Raw("{\"a\":1}".to_owned()))]);
        assert_eq!(v.to_string(), r#"{"m":{"a":1}}"#);
        let rendered = metrics_json().to_string();
        let parsed = waymem_obs::chrome::parse(&rendered).expect("metrics render as JSON");
        waymem_obs::snapshot::validate_metrics(&parsed).expect("metrics validate");
    }

    #[test]
    fn containers_preserve_order() {
        let v = Json::object(vec![
            ("b", Json::from(1u64)),
            ("a", Json::from(vec!["x", "y"])),
        ]);
        assert_eq!(v.to_string(), r#"{"b":1,"a":["x","y"]}"#);
    }
}
