//! Empirically tests the paper's §3.3 consistency argument: "as long as
//! the number of tag entries in the MAB is smaller than the number of
//! cache-ways, this guarantees the consistency between the MAB and the
//! cache" — i.e. no replacement-time invalidation is needed.
//!
//! The argument has a hole: MAB row recency is *global* while cache LRU is
//! *per set*, so a tag row refreshed through one set can outlive its line
//! in another set. This binary runs the paper's own configuration (2 tag
//! rows, 2-way cache) **without** invalidation and counts hits that would
//! have returned wrong data, on the real benchmarks and on a small cache
//! where conflict pressure amplifies the effect.

use waymem_cache::Geometry;
use waymem_sim::{DScheme, SimConfig, Suite};

fn main() {
    let schemes = [DScheme::WayMemoPaperLru {
        tag_entries: 2,
        set_entries: 8,
    }];

    println!("MAB without invalidation (paper's LRU argument), 2x8 / 2-way:");
    println!(
        "{:<12} {:>14} {:>14} {:>16}",
        "benchmark", "MAB hits", "unsound hits", "unsound fraction"
    );
    for (label, geometry) in [
        ("32 kB cache", Geometry::frv()),
        ("1 kB cache", Geometry::new(16, 2, 32).expect("valid")),
    ] {
        println!("--- {label} ---");
        let cfg = SimConfig {
            geometry,
            ..SimConfig::default()
        };
        let results = Suite::kernels()
            .config(cfg)
            .dschemes(schemes)
            .run()
            .expect("suite runs");
        for r in &results {
            let s = &r.dcache[0].stats;
            let frac = if s.mab_hits + s.unsound_hits == 0 {
                0.0
            } else {
                s.unsound_hits as f64 / (s.mab_hits + s.unsound_hits) as f64
            };
            println!(
                "{:<12} {:>14} {:>14} {:>15.4}%",
                r.workload.name(),
                s.mab_hits,
                s.unsound_hits,
                frac * 100.0
            );
        }
    }
    println!("\nany non-zero count is a correctness bug in hardware: a hit would have");
    println!("read the wrong way without any tag check to catch it. This repository's");
    println!("front-ends therefore invalidate matching MAB pairs on every fill.");
}
