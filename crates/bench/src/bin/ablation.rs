//! Ablation sweep beyond the paper's figures:
//!
//! * the alternative low-power D-cache schemes the related-work section
//!   discusses (MRU way prediction \[9\], two-phase lookup \[8\]) with
//!   their cycle penalties made explicit,
//! * the paper's future-work MAB + line-buffer hybrid, and
//! * a D-MAB geometry sweep (N_t × N_s) showing why 2×8 is the sweet spot.

use waymem_bench::geometric_mean;
use waymem_sim::{format_ratio_table, DScheme, FigureRow, Suite, TraceStore};

fn main() {
    // One store across ablation A and the 12-point geometry sweep B:
    // the seven kernels are interpreted once for the whole binary.
    let store = TraceStore::new();
    let schemes = [
        DScheme::Original,
        DScheme::WayPredict,
        DScheme::TwoPhase,
        DScheme::paper_way_memo(),
        DScheme::WayMemoLineBuffer {
            tag_entries: 2,
            set_entries: 8,
            line_entries: 2,
        },
    ];
    let results = Suite::kernels()
        .dschemes(schemes)
        .store(&store)
        .run()
        .expect("suite runs");

    println!("Ablation A: D-cache alternatives (power mW / extra cycles)");
    println!(
        "{:<12}  {:>22}  {:>22}  {:>22}  {:>22}  {:>24}",
        "benchmark",
        "original",
        "way_predict[9]",
        "two_phase[8]",
        "way_memo 2x8",
        "way_memo+lb"
    );
    for r in &results {
        print!("{:<12}", r.workload.name());
        for s in &r.dcache {
            print!(
                "  {:>13.2} mW/{:>6}",
                s.power.total_mw(),
                s.extra_cycles
            );
        }
        println!();
    }
    println!("note: way prediction and two-phase pay cycles; the MAB pays none.\n");

    // Geometry sweep: average power ratio vs original across benchmarks.
    println!("Ablation B: D-MAB geometry sweep (avg power vs original)");
    let mut sweep_rows = Vec::new();
    for nt in [1usize, 2, 4] {
        let mut values = Vec::new();
        for ns in [4usize, 8, 16, 32] {
            let schemes = [
                DScheme::Original,
                DScheme::WayMemo {
                    tag_entries: nt,
                    set_entries: ns,
                },
            ];
            let results = Suite::kernels()
                .dschemes(schemes)
                .store(&store)
                .run()
                .expect("suite runs");
            let ratios: Vec<f64> = results
                .iter()
                .map(|r| r.dcache[1].power.total_mw() / r.dcache[0].power.total_mw())
                .collect();
            values.push((format!("Ns={ns}"), geometric_mean(&ratios)));
        }
        sweep_rows.push(FigureRow {
            label: format!("Nt={nt}"),
            values,
        });
    }
    print!(
        "{}",
        format_ratio_table("ours/original power ratio (lower is better)", &sweep_rows)
    );
    println!("expected: improvements flatten past 2x8 while MAB power keeps rising —");
    println!("the paper's reason for picking 2x8 (D) and 2x16 (I).");
    let s = store.stats();
    println!(
        "\ntrace store: {} lookups, {} records — each kernel interpreted once across {} suite calls",
        s.lookups,
        s.records,
        s.lookups / 7
    );
}
