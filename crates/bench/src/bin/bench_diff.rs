//! The perf-regression gate: compares the current bench report against
//! a baseline and exits non-zero when a key figure degraded past the
//! tolerance.
//!
//! ```text
//! cargo run --release -p waymem-bench --bin bench_diff -- [OPTIONS]
//!
//! --current FILE    report to judge (default BENCH_headline.json)
//! --baseline FILE   explicit baseline report (a committed
//!                   BENCH_headline.json, say); exits 2 if unreadable
//! --ledger FILE     take the baseline from this BENCH_LEDGER.jsonl
//!                   instead (default BENCH_LEDGER.jsonl when neither
//!                   flag is given)
//! --bin NAME        which binary's ledger records to use (default
//!                   headline)
//! --keep-latest     compare against the ledger's newest matching
//!                   record; by default the newest is skipped, since a
//!                   run that just appended its own record would only
//!                   ever compare against itself
//! --tolerance PCT   allowed relative degradation before failing
//!                   (default 25)
//! ```
//!
//! Exit status: 0 = within tolerance (or no baseline yet — an empty
//! ledger must not fail a fresh checkout), 1 = regression detected,
//! 2 = bad usage or unreadable input.
//!
//! The deltas come from [`waymem_bench::diff`]: higher-better figures
//! (warm/cold speedup, events/sec, compression ratio, total saving)
//! fail when they fall below `baseline × (1 − tolerance)`; per-phase
//! wall-clocks fail when they exceed `baseline × (1 + tolerance)` *and*
//! grow past an absolute floor, so micro-phases can jitter freely.

use std::path::PathBuf;
use std::process::ExitCode;

use waymem_bench::diff::{compare, Delta};
use waymem_obs::chrome::{parse, Value};

struct Options {
    current: PathBuf,
    baseline: Option<PathBuf>,
    ledger: Option<PathBuf>,
    bin: String,
    keep_latest: bool,
    tolerance_pct: f64,
}

fn usage() -> ! {
    eprintln!(
        "usage: bench_diff [--current FILE] [--baseline FILE | --ledger FILE] \
         [--bin NAME] [--keep-latest] [--tolerance PCT]"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut opts = Options {
        current: PathBuf::from("BENCH_headline.json"),
        baseline: None,
        ledger: None,
        bin: "headline".to_owned(),
        keep_latest: false,
        tolerance_pct: 25.0,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--current" => match args.next() {
                Some(p) => opts.current = PathBuf::from(p),
                None => usage(),
            },
            "--baseline" => match args.next() {
                Some(p) => opts.baseline = Some(PathBuf::from(p)),
                None => usage(),
            },
            "--ledger" => match args.next() {
                Some(p) => opts.ledger = Some(PathBuf::from(p)),
                None => usage(),
            },
            "--bin" => match args.next() {
                Some(b) => opts.bin = b,
                None => usage(),
            },
            "--keep-latest" => opts.keep_latest = true,
            "--tolerance" => match args.next().and_then(|v| v.parse().ok()) {
                Some(t) => opts.tolerance_pct = t,
                None => usage(),
            },
            _ => usage(),
        }
    }
    if opts.baseline.is_some() && opts.ledger.is_some() {
        usage();
    }
    opts
}

fn read_json(path: &PathBuf) -> Result<Value, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// The newest ledger record for `bin` — or the one before it unless
/// `keep_latest`, since the current run has usually just appended its
/// own. `Ok(None)` means "no baseline yet", which is a pass.
fn ledger_baseline(
    path: &PathBuf,
    bin: &str,
    keep_latest: bool,
) -> Result<Option<(Value, String)>, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(format!("cannot read {}: {e}", path.display())),
    };
    let mut matching = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let record =
            parse(line).map_err(|e| format!("{} line {}: {e}", path.display(), i + 1))?;
        if record.get("bin").and_then(Value::as_str) == Some(bin) {
            let rev = record
                .get("git_rev")
                .and_then(Value::as_str)
                .unwrap_or("unknown")
                .to_owned();
            matching.push((record, rev));
        }
    }
    if !keep_latest {
        matching.pop();
    }
    Ok(matching.pop())
}

fn print_delta(d: &Delta) {
    let direction = if d.lower_better { "lower-better" } else { "higher-better" };
    let flag = if d.regressed { "  <-- REGRESSION" } else { "" };
    println!(
        "  {:<28} {:>14.4} -> {:>14.4}  ({:+.1}%, {direction}){flag}",
        d.metric, d.baseline, d.current, d.change_pct
    );
}

fn run(opts: &Options) -> Result<ExitCode, String> {
    let current = read_json(&opts.current)?;
    let (baseline, label) = if let Some(path) = &opts.baseline {
        (read_json(path)?, path.display().to_string())
    } else {
        let path = opts.ledger.clone().unwrap_or_else(|| PathBuf::from("BENCH_LEDGER.jsonl"));
        match ledger_baseline(&path, &opts.bin, opts.keep_latest)? {
            Some((record, rev)) => (record, format!("{} (bin {}, rev {rev})", path.display(), opts.bin)),
            None => {
                println!(
                    "bench_diff: no prior {} record in {} — nothing to compare, pass",
                    opts.bin,
                    path.display()
                );
                return Ok(ExitCode::SUCCESS);
            }
        }
    };
    let report = compare(&current, &baseline, opts.tolerance_pct)?;
    println!(
        "bench_diff: {} vs {label} (tolerance {:.0}%)",
        opts.current.display(),
        report.tolerance_pct
    );
    for delta in &report.deltas {
        print_delta(delta);
    }
    let regressions = report.regressions();
    if regressions.is_empty() {
        println!("bench_diff: {} metrics within tolerance — ok", report.deltas.len());
        Ok(ExitCode::SUCCESS)
    } else {
        eprintln!(
            "bench_diff: {} of {} metrics regressed past {:.0}%",
            regressions.len(),
            report.deltas.len(),
            report.tolerance_pct
        );
        Ok(ExitCode::FAILURE)
    }
}

fn main() -> ExitCode {
    let opts = parse_args();
    match run(&opts) {
        Ok(code) => code,
        Err(message) => {
            eprintln!("bench_diff: {message}");
            ExitCode::from(2)
        }
    }
}
