//! Regenerates Table 3: MAB power (mW) at 360 MHz / 1.3 V, active versus
//! clock-gated ("sleep"), for N_t ∈ {1,2} × N_s ∈ {4,8,16,32}.

use waymem_hwmodel::{mab_power_mw, MabShape, Technology};

fn main() {
    let tech = Technology::frv_0130();
    println!("Table 3: MAB power (mW), active / sleep");
    println!("paper:          Ns=4        Ns=8        Ns=16       Ns=32");
    println!("  Nt=1       1.95/0.24   2.37/0.40   3.39/0.76   6.25/1.37");
    println!("  Nt=2       2.34/0.40   3.07/0.68   4.56/1.28   7.93/2.26");
    println!("model:");
    for nt in [1u32, 2] {
        print!("  Nt={nt}     ");
        for ns in [4u32, 8, 16, 32] {
            let p = mab_power_mw(MabShape::frv(nt, ns), tech);
            print!("  {:.2}/{:.2} ", p.active_mw, p.sleep_mw);
        }
        println!();
    }
}
