//! Associativity and line-size sweeps (extension): the MAB's payoff
//! grows with the number of ways, since a hit disables `W` tag arrays
//! and `W-1` data ways. Sweeps 1- through 16-way 32 kB caches at
//! constant capacity for 16-, 32- and 64-byte lines and reports the
//! ours/original power ratio per benchmark, then repeats the highest
//! associativities on a larger 64 kB cache with doubled workloads
//! (`SimConfig::scale = 2`) — a deliberate stress scenario for the
//! parallel record/replay engine.
//!
//! All sweeps share one [`TraceStore`]: the trace depends only on
//! `(benchmark, scale)`, so the 15 scale-1 geometry columns replay seven
//! recordings made once — the interpreter runs 14 times total (7 per
//! scale) instead of once per benchmark × column.

use std::time::Instant;

use waymem_bench::geometric_mean;
use waymem_sim::{DScheme, SimConfig, Suite, TraceStore};

/// Runs the suite for each `(ways, label)` column of one table.
fn sweep(
    title: &str,
    capacity_bytes: u32,
    line_bytes: u32,
    ways_list: &[u32],
    scale: u32,
    store: &TraceStore,
) {
    println!("{title}");
    print!("{:<12}", "benchmark");
    for ways in ways_list {
        print!(" {:>7}-way", ways);
    }
    println!();
    let mut per_assoc: Vec<Vec<f64>> = vec![Vec::new(); ways_list.len()];
    let mut rows: Vec<(String, Vec<f64>)> = Vec::new();
    for (col, &ways) in ways_list.iter().enumerate() {
        let sets = capacity_bytes / (ways * line_bytes);
        let geometry = waymem_cache::Geometry::new(sets, ways, line_bytes).expect("valid");
        let cfg = SimConfig {
            geometry,
            scale,
            ..SimConfig::default()
        };
        let schemes = [DScheme::Original, DScheme::paper_way_memo()];
        let results = Suite::kernels()
            .config(cfg)
            .dschemes(schemes)
            .store(store)
            .run()
            .expect("suite runs");
        for r in &results {
            let ratio = r.dcache[1].power.total_mw() / r.dcache[0].power.total_mw();
            per_assoc[col].push(ratio);
            let name = r.workload.name();
            match rows.iter_mut().find(|(n, _)| *n == name) {
                Some((_, v)) => v.push(ratio),
                None => rows.push((name, vec![ratio])),
            }
        }
    }
    for (name, ratios) in &rows {
        print!("{name:<12}");
        for r in ratios {
            print!(" {r:>11.3}");
        }
        println!();
    }
    print!("{:<12}", "geo-mean");
    for col in &per_assoc {
        print!(" {:>11.3}", geometric_mean(col));
    }
    println!();
}

fn main() {
    let store = TraceStore::new();
    sweep(
        "D-cache power ratio ours/original vs associativity (32 kB, 32-B lines):",
        32 * 1024,
        32,
        &[1, 2, 4, 8, 16],
        1,
        &store,
    );
    println!();
    sweep(
        "line-size sweep: 16-B lines (32 kB) — shorter lines, more sets, wider tags:",
        32 * 1024,
        16,
        &[1, 2, 4, 8, 16],
        1,
        &store,
    );
    println!();
    sweep(
        "line-size sweep: 64-B lines (32 kB) — longer lines, fewer sets, better D-MAB locality:",
        32 * 1024,
        64,
        &[1, 2, 4, 8, 16],
        1,
        &store,
    );
    println!();
    let stress = Instant::now();
    sweep(
        "stress: 64 kB cache, scale-2 workloads (parallel replay under load):",
        64 * 1024,
        32,
        &[8, 16],
        2,
        &store,
    );
    println!("stress sweep wall-clock: {:.1} ms", stress.elapsed().as_secs_f64() * 1e3);
    let s = store.stats();
    println!(
        "trace store: {} lookups, {} records, {} hits ({:.0}% hit rate) — {} geometry columns replayed {} recordings",
        s.lookups,
        s.records,
        s.hits,
        s.hit_rate() * 100.0,
        s.lookups / 7,
        s.records
    );
    println!("\nexpected: monotone improvement with associativity — higher-way caches");
    println!("waste more parallel reads, so memoizing the way saves more. Even the");
    println!("direct-mapped column saves tag energy (a hit needs no tag check at all).");
    println!("Across line sizes the MAB keeps winning: longer lines raise intra-line");
    println!("locality (more D-MAB offset hits per entry), shorter lines raise the");
    println!("set count and tag width, making each skipped tag read worth more.");
}
