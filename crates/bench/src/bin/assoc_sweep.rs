//! Associativity sweep (extension): the MAB's payoff grows with the number
//! of ways, since a hit disables `W` tag arrays and `W-1` data ways.
//! Sweeps 1-, 2-, 4- and 8-way 32 kB caches at constant capacity and
//! reports the ours/original power ratio per benchmark.

use waymem_bench::{geometric_mean, run_suite};
use waymem_sim::{DScheme, SimConfig};

fn main() {
    println!("D-cache power ratio ours/original vs associativity (32 kB, 32-B lines):");
    println!(
        "{:<12} {:>8} {:>8} {:>8} {:>8}",
        "benchmark", "1-way", "2-way", "4-way", "8-way"
    );
    let mut per_assoc: Vec<Vec<f64>> = vec![Vec::new(); 4];
    let mut rows: Vec<(String, Vec<f64>)> = Vec::new();
    for (col, ways) in [1u32, 2, 4, 8].into_iter().enumerate() {
        let sets = 32 * 1024 / (ways * 32);
        let geometry = waymem_cache::Geometry::new(sets, ways, 32).expect("valid");
        let cfg = SimConfig {
            geometry,
            ..SimConfig::default()
        };
        let schemes = [DScheme::Original, DScheme::paper_way_memo()];
        let results = run_suite(&cfg, &schemes, &[]).expect("suite runs");
        for r in &results {
            let ratio = r.dcache[1].power.total_mw() / r.dcache[0].power.total_mw();
            per_assoc[col].push(ratio);
            match rows.iter_mut().find(|(n, _)| n == r.benchmark.name()) {
                Some((_, v)) => v.push(ratio),
                None => rows.push((r.benchmark.name().to_owned(), vec![ratio])),
            }
        }
    }
    for (name, ratios) in &rows {
        print!("{name:<12}");
        for r in ratios {
            print!(" {r:>8.3}");
        }
        println!();
    }
    print!("{:<12}", "geo-mean");
    for col in &per_assoc {
        print!(" {:>8.3}", geometric_mean(col));
    }
    println!();
    println!("\nexpected: monotone improvement with associativity — higher-way caches");
    println!("waste more parallel reads, so memoizing the way saves more. Even the");
    println!("direct-mapped column saves tag energy (a hit needs no tag check at all).");
}
