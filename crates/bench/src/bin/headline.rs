//! Checks the abstract's headline claims in one run:
//! * I-cache power reduced by ~40 % (vs conventional),
//! * D-cache power reduced by ~50 % (vs conventional, best case),
//! * total cache power reduced ~30 % on average / 40 % max,
//! * no performance penalty (zero extra cycles for the MAB schemes).
//!
//! It also times the 7-benchmark suite under four engines — the serial
//! per-event fanout ([`ExecPolicy::Serial`]), a cold pass through the
//! shared [`waymem_sim::TraceStore`] (records or disk-loads each trace),
//! a warm pass (pure in-memory store hits), and a bounded-memory
//! streaming pass replaying each trace from its on-disk `.wmtr` file in
//! batches — and writes the wall-clocks, the streaming events/sec, and
//! the store's hit/miss/compression accounting to `BENCH_headline.json`,
//! so the repository tracks its own performance trajectory.
//!
//! Set `WAYMEM_TRACE_CACHE=<dir>` to persist recorded traces across
//! invocations; a second run then reports `"records": 0` — the CI
//! cold-vs-warm smoke checks exactly that.

use std::time::Instant;

use waymem_bench::json::{metrics_json, phases_json, store_stats_json, Json};
use waymem_bench::{geometric_mean, ledger, store_from_env};
use waymem_sim::{DScheme, ExecPolicy, Experiment, IScheme, Suite};
use waymem_workloads::Benchmark;

fn main() {
    // Arm span capture (WAYMEM_SPANS=<path>) and resolve the log level
    // (WAYMEM_LOG) before any instrumented work runs.
    waymem_obs::init_from_env();
    let dschemes = [DScheme::Original, DScheme::paper_way_memo()];
    let ischemes = [IScheme::Original, IScheme::paper_way_memo()];
    let store = store_from_env();
    let suite = || Suite::kernels().dschemes(dschemes).ischemes(ischemes);

    let serial_start = Instant::now();
    let serial = suite()
        .policy(ExecPolicy::Serial)
        .run()
        .expect("serial suite runs");
    let serial_s = serial_start.elapsed().as_secs_f64();

    // Cold pass: every lookup misses in memory (records, or loads from a
    // warm cache dir); warm pass: every lookup is an in-memory hit.
    let cold_start = Instant::now();
    let results = suite().store(&store).run().expect("suite runs");
    let cold_s = cold_start.elapsed().as_secs_f64();
    let warm_start = Instant::now();
    let warm = suite().store(&store).run().expect("suite runs");
    let warm_s = warm_start.elapsed().as_secs_f64();

    // Streaming pass: each kernel's trace replays from its on-disk
    // `.wmtr` file in bounded batches — O(batch) resident memory, the
    // pipeline that keeps multi-GB captures feasible. Timed per whole
    // pass; the events/sec figure is the headline streaming number.
    let stream_start = Instant::now();
    let mut stream_events: u64 = 0;
    let mut streamed = Vec::with_capacity(Benchmark::ALL.len());
    for &bench in &Benchmark::ALL {
        let prepared = Experiment::kernel(bench)
            .dschemes(dschemes)
            .ischemes(ischemes)
            .store(&store)
            .streaming(true)
            .prepare()
            .expect("streaming prepare");
        stream_events += prepared.source().len();
        streamed.push(prepared.run().expect("streaming replay"));
    }
    let stream_s = stream_start.elapsed().as_secs_f64();
    let stream_eps = if stream_s > 0.0 { stream_events as f64 / stream_s } else { 0.0 };

    // The engines must agree exactly (tests pin this; cheap re-check).
    for (a, rest) in serial.iter().zip(results.iter().zip(warm.iter().zip(&streamed))) {
        let (b, (c, s)) = rest;
        assert_eq!(a.cycles, b.cycles, "{}: engines disagree", a.workload);
        assert_eq!(a.cycles, c.cycles, "{}: warm replay disagrees", a.workload);
        assert_eq!(a.cycles, s.cycles, "{}: streaming replay disagrees", a.workload);
        for (x, y) in a.dcache.iter().zip(&b.dcache).chain(a.icache.iter().zip(&b.icache)) {
            assert_eq!(x.stats, y.stats, "{}/{}: engines disagree", a.workload, x.name);
        }
        for (x, y) in a.dcache.iter().zip(&s.dcache).chain(a.icache.iter().zip(&s.icache)) {
            assert_eq!(x.stats, y.stats, "{}/{}: streaming disagrees", a.workload, x.name);
        }
    }

    println!("Headline claims (abstract): ours vs conventional caches");
    println!(
        "{:<12}  {:>10}  {:>10}  {:>10}  {:>12}",
        "benchmark", "D saving", "I saving", "total", "extra cycles"
    );
    let mut d_ratios = Vec::new();
    let mut i_ratios = Vec::new();
    let mut t_ratios = Vec::new();
    for r in &results {
        let d = r.dcache[1].power.total_mw() / r.dcache[0].power.total_mw();
        let i = r.icache[1].power.total_mw() / r.icache[0].power.total_mw();
        let t = (r.dcache[1].power.total_mw() + r.icache[1].power.total_mw())
            / (r.dcache[0].power.total_mw() + r.icache[0].power.total_mw());
        d_ratios.push(d);
        i_ratios.push(i);
        t_ratios.push(t);
        println!(
            "{:<12}  {:>9.1}%  {:>9.1}%  {:>9.1}%  {:>12}",
            r.workload.name(),
            (1.0 - d) * 100.0,
            (1.0 - i) * 100.0,
            (1.0 - t) * 100.0,
            r.dcache[1].extra_cycles
        );
    }
    let d_avg = (1.0 - geometric_mean(&d_ratios)) * 100.0;
    let i_avg = (1.0 - geometric_mean(&i_ratios)) * 100.0;
    let t_avg = (1.0 - geometric_mean(&t_ratios)) * 100.0;
    println!(
        "averages: D {d_avg:.1}% | I {i_avg:.1}% | total {t_avg:.1}%   (paper: D up to 50%, I up to 40%, total 30% avg)"
    );
    let max_saving = t_ratios
        .iter()
        .fold(f64::INFINITY, |acc, &r| acc.min(r));
    println!("maximum total saving: {:.1}%", (1.0 - max_saving) * 100.0);

    let stats = store.stats();
    println!(
        "\nsuite wall-clock: serial fanout {:.1} ms, store cold {:.1} ms ({:.2}x), store warm {:.1} ms ({:.2}x)",
        serial_s * 1e3,
        cold_s * 1e3,
        serial_s / cold_s,
        warm_s * 1e3,
        serial_s / warm_s
    );
    println!(
        "streaming replay: {:.1} ms for {} events ({:.0} events/s, O(batch) resident)",
        stream_s * 1e3,
        stream_events,
        stream_eps
    );
    println!(
        "trace store: {} lookups, {} hits, {} disk hits, {} records ({:.0}% hit rate), {:.2}x codec compression",
        stats.lookups,
        stats.hits,
        stats.disk_hits,
        stats.records,
        stats.hit_rate() * 100.0,
        stats.compression_ratio()
    );

    let phases = waymem_obs::phase::snapshot();
    println!(
        "engine phases (exclusive wall-clock): {}",
        phases
            .iter()
            .map(|(name, s)| format!("{name} {:.1} ms", s * 1e3))
            .collect::<Vec<_>>()
            .join(", ")
    );

    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let provenance = ledger::Provenance::detect();
    // The perf figures double as this run's ledger record: what the
    // report carries at its root, `bench_diff` reads back from
    // `BENCH_LEDGER.jsonl` under `perf`.
    let perf = vec![
        ("serial_fanout_seconds", Json::from(serial_s)),
        ("store_cold_seconds", Json::from(cold_s)),
        ("store_warm_seconds", Json::from(warm_s)),
        ("cold_speedup", Json::from(serial_s / cold_s)),
        ("warm_speedup", Json::from(serial_s / warm_s)),
        ("streaming_seconds", Json::from(stream_s)),
        ("streaming_events", Json::from(stream_events)),
        ("streaming_events_per_sec", Json::from(stream_eps)),
        ("trace_store", store_stats_json(&stats)),
        ("phases", phases_json()),
        ("d_saving_avg_pct", Json::from(d_avg)),
        ("i_saving_avg_pct", Json::from(i_avg)),
        ("total_saving_avg_pct", Json::from(t_avg)),
        ("total_saving_max_pct", Json::from((1.0 - max_saving) * 100.0)),
    ];
    let mut report = vec![
        ("schema", Json::from("waymem/headline/v5")),
        ("git_rev", Json::from(provenance.git_rev.clone())),
        ("host_threads", Json::from(host_threads as u64)),
        ("benchmarks", Json::from(results.len() as u64)),
        ("dschemes", Json::from(dschemes.len() as u64)),
        ("ischemes", Json::from(ischemes.len() as u64)),
    ];
    report.extend(perf.iter().cloned());
    report.push(("metrics", metrics_json()));
    let report = Json::object(report);
    std::fs::write("BENCH_headline.json", format!("{report}\n"))
        .expect("write BENCH_headline.json");
    eprintln!("wrote BENCH_headline.json");

    // Append this run to the durable trajectory (WAYMEM_LEDGER=off to
    // skip; see waymem_bench::ledger for the dedup/rotation policy).
    if let Some(outcome) = ledger::append_from_env("headline", Json::object(perf)) {
        eprintln!(
            "ledger: {} — {} records (run {} at rev {}{})",
            outcome.path.display(),
            outcome.records,
            outcome.runs_at_rev,
            provenance.git_rev,
            if provenance.git_dirty { ", dirty" } else { "" }
        );
    }

    // With WAYMEM_SPANS set, drain every thread's span buffer into the
    // Chrome trace-event file (open it at ui.perfetto.dev).
    match waymem_obs::span::flush() {
        Ok(Some((path, events))) => eprintln!("wrote {events} span events to {}", path.display()),
        Ok(None) => {}
        Err(e) => eprintln!("headline: failed to write span trace: {e}"),
    }
}
