//! Checks the abstract's headline claims in one run:
//! * I-cache power reduced by ~40 % (vs conventional),
//! * D-cache power reduced by ~50 % (vs conventional, best case),
//! * total cache power reduced ~30 % on average / 40 % max,
//! * no performance penalty (zero extra cycles for the MAB schemes).
//!
//! It also times the 7-benchmark suite under both engines — the legacy
//! serial per-event fanout and the record-once/replay-in-parallel
//! pipeline — and writes the wall-clocks to `BENCH_headline.json` so the
//! repository tracks its own performance trajectory.

use std::time::Instant;

use waymem_bench::json::Json;
use waymem_bench::{geometric_mean, run_suite, run_suite_serial};
use waymem_sim::{DScheme, IScheme, SimConfig};

fn main() {
    let cfg = SimConfig::default();
    let dschemes = [DScheme::Original, DScheme::paper_way_memo()];
    let ischemes = [IScheme::Original, IScheme::paper_way_memo()];

    let serial_start = Instant::now();
    let serial = run_suite_serial(&cfg, &dschemes, &ischemes).expect("serial suite runs");
    let serial_s = serial_start.elapsed().as_secs_f64();

    let parallel_start = Instant::now();
    let results = run_suite(&cfg, &dschemes, &ischemes).expect("suite runs");
    let parallel_s = parallel_start.elapsed().as_secs_f64();

    // The two engines must agree exactly (tests pin this; cheap re-check).
    for (a, b) in serial.iter().zip(&results) {
        assert_eq!(a.cycles, b.cycles, "{}: engines disagree", a.benchmark);
        for (x, y) in a.dcache.iter().zip(&b.dcache).chain(a.icache.iter().zip(&b.icache)) {
            assert_eq!(x.stats, y.stats, "{}/{}: engines disagree", a.benchmark, x.name);
        }
    }

    println!("Headline claims (abstract): ours vs conventional caches");
    println!(
        "{:<12}  {:>10}  {:>10}  {:>10}  {:>12}",
        "benchmark", "D saving", "I saving", "total", "extra cycles"
    );
    let mut d_ratios = Vec::new();
    let mut i_ratios = Vec::new();
    let mut t_ratios = Vec::new();
    for r in &results {
        let d = r.dcache[1].power.total_mw() / r.dcache[0].power.total_mw();
        let i = r.icache[1].power.total_mw() / r.icache[0].power.total_mw();
        let t = (r.dcache[1].power.total_mw() + r.icache[1].power.total_mw())
            / (r.dcache[0].power.total_mw() + r.icache[0].power.total_mw());
        d_ratios.push(d);
        i_ratios.push(i);
        t_ratios.push(t);
        println!(
            "{:<12}  {:>9.1}%  {:>9.1}%  {:>9.1}%  {:>12}",
            r.benchmark.name(),
            (1.0 - d) * 100.0,
            (1.0 - i) * 100.0,
            (1.0 - t) * 100.0,
            r.dcache[1].extra_cycles
        );
    }
    let d_avg = (1.0 - geometric_mean(&d_ratios)) * 100.0;
    let i_avg = (1.0 - geometric_mean(&i_ratios)) * 100.0;
    let t_avg = (1.0 - geometric_mean(&t_ratios)) * 100.0;
    println!(
        "averages: D {d_avg:.1}% | I {i_avg:.1}% | total {t_avg:.1}%   (paper: D up to 50%, I up to 40%, total 30% avg)"
    );
    let max_saving = t_ratios
        .iter()
        .fold(f64::INFINITY, |acc, &r| acc.min(r));
    println!("maximum total saving: {:.1}%", (1.0 - max_saving) * 100.0);

    println!(
        "\nsuite wall-clock: serial fanout {:.1} ms, record/replay {:.1} ms ({:.2}x)",
        serial_s * 1e3,
        parallel_s * 1e3,
        serial_s / parallel_s
    );

    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let report = Json::object(vec![
        ("schema", Json::from("waymem/headline/v1")),
        ("host_threads", Json::from(host_threads as u64)),
        ("benchmarks", Json::from(results.len() as u64)),
        ("dschemes", Json::from(dschemes.len() as u64)),
        ("ischemes", Json::from(ischemes.len() as u64)),
        ("serial_fanout_seconds", Json::from(serial_s)),
        ("record_replay_seconds", Json::from(parallel_s)),
        ("speedup", Json::from(serial_s / parallel_s)),
        ("d_saving_avg_pct", Json::from(d_avg)),
        ("i_saving_avg_pct", Json::from(i_avg)),
        ("total_saving_avg_pct", Json::from(t_avg)),
        ("total_saving_max_pct", Json::from((1.0 - max_saving) * 100.0)),
    ]);
    std::fs::write("BENCH_headline.json", format!("{report}\n"))
        .expect("write BENCH_headline.json");
    eprintln!("wrote BENCH_headline.json");
}
