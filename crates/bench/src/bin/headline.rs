//! Checks the abstract's headline claims in one run:
//! * I-cache power reduced by ~40 % (vs conventional),
//! * D-cache power reduced by ~50 % (vs conventional, best case),
//! * total cache power reduced ~30 % on average / 40 % max,
//! * no performance penalty (zero extra cycles for the MAB schemes).

use waymem_bench::{geometric_mean, run_suite};
use waymem_sim::{DScheme, IScheme, SimConfig};

fn main() {
    let cfg = SimConfig::default();
    let dschemes = [DScheme::Original, DScheme::paper_way_memo()];
    let ischemes = [IScheme::Original, IScheme::paper_way_memo()];
    let results = run_suite(&cfg, &dschemes, &ischemes).expect("suite runs");

    println!("Headline claims (abstract): ours vs conventional caches");
    println!(
        "{:<12}  {:>10}  {:>10}  {:>10}  {:>12}",
        "benchmark", "D saving", "I saving", "total", "extra cycles"
    );
    let mut d_ratios = Vec::new();
    let mut i_ratios = Vec::new();
    let mut t_ratios = Vec::new();
    for r in &results {
        let d = r.dcache[1].power.total_mw() / r.dcache[0].power.total_mw();
        let i = r.icache[1].power.total_mw() / r.icache[0].power.total_mw();
        let t = (r.dcache[1].power.total_mw() + r.icache[1].power.total_mw())
            / (r.dcache[0].power.total_mw() + r.icache[0].power.total_mw());
        d_ratios.push(d);
        i_ratios.push(i);
        t_ratios.push(t);
        println!(
            "{:<12}  {:>9.1}%  {:>9.1}%  {:>9.1}%  {:>12}",
            r.benchmark.name(),
            (1.0 - d) * 100.0,
            (1.0 - i) * 100.0,
            (1.0 - t) * 100.0,
            r.dcache[1].extra_cycles
        );
    }
    println!(
        "averages: D {:.1}% | I {:.1}% | total {:.1}%   (paper: D up to 50%, I up to 40%, total 30% avg)",
        (1.0 - geometric_mean(&d_ratios)) * 100.0,
        (1.0 - geometric_mean(&i_ratios)) * 100.0,
        (1.0 - geometric_mean(&t_ratios)) * 100.0,
    );
    let max_saving = t_ratios
        .iter()
        .fold(f64::INFINITY, |acc, &r| acc.min(r));
    println!("maximum total saving: {:.1}%", (1.0 - max_saving) * 100.0);
}
