//! Regenerates Figure 8: total (I-cache + D-cache) power, comparing
//! "original + approach \[4\]" (conventional D-cache, intra-line-memoized
//! I-cache) against ours (2×8 D-MAB + 2×16 I-MAB).

use waymem_bench::geometric_mean;
use waymem_sim::{DScheme, IScheme, Suite};

fn main() {
    let dschemes = [
        DScheme::Original,
        DScheme::WayMemo {
            tag_entries: 2,
            set_entries: 8,
        },
    ];
    let ischemes = [
        IScheme::IntraLine,
        IScheme::WayMemo {
            tag_entries: 2,
            set_entries: 16,
        },
    ];
    let results = Suite::kernels()
        .dschemes(dschemes)
        .ischemes(ischemes)
        .run()
        .expect("suite runs");

    println!("Figure 8: total I+D cache power (mW)");
    println!(
        "{:<12}  {:>14}  {:>14}  {:>8}",
        "benchmark", "orig+[4] mW", "ours mW", "saving"
    );
    let mut ratios = Vec::new();
    for r in &results {
        let baseline = r.dcache[0].power.total_mw() + r.icache[0].power.total_mw();
        let ours = r.dcache[1].power.total_mw() + r.icache[1].power.total_mw();
        let saving = 1.0 - ours / baseline;
        ratios.push(ours / baseline);
        println!(
            "{:<12}  {:>14.2}  {:>14.2}  {:>7.1}%",
            r.workload.name(),
            baseline,
            ours,
            saving * 100.0
        );
    }
    println!(
        "average saving: {:.1}% (paper: 30% average, 40% max, best on mpeg2enc)",
        (1.0 - geometric_mean(&ratios)) * 100.0
    );
}
