//! Regenerates Figure 5: D-cache power (mW) split into data-memory, tag-
//! memory and MAB components, for original / set buffer \[14\] / ours, per
//! benchmark, via Eq. (1).

use waymem_bench::{fig4_dschemes, geometric_mean};
use waymem_sim::{format_power_table, Suite};

fn main() {
    let results = Suite::kernels()
        .dschemes(fig4_dschemes())
        .run()
        .expect("suite runs");

    let mut savings = Vec::new();
    for r in &results {
        let entries: Vec<_> = r
            .dcache
            .iter()
            .map(|s| (s.name.clone(), s.power))
            .collect();
        print!(
            "{}",
            format_power_table(&format!("Figure 5: D-cache power — {}", r.workload), &entries)
        );
        let orig = r.dcache[0].power.total_mw();
        let ours = r.dcache[2].power.total_mw();
        savings.push(ours / orig);
    }
    let avg = geometric_mean(&savings);
    println!(
        "average D-cache power: ours/original = {:.2} (paper: ~0.65, i.e. 35% average reduction; up to 50%)",
        avg
    );
}
