//! Regenerates Figure 7: I-cache power (mW) for approach \[4\] versus way
//! memoization with 2×8 / 2×16 / 2×32 MABs, per benchmark, via Eq. (1).

use waymem_bench::{fig6_ischemes, geometric_mean};
use waymem_sim::{format_power_table, Suite};

fn main() {
    let results = Suite::kernels()
        .ischemes(fig6_ischemes())
        .run()
        .expect("suite runs");

    let mut ratios = Vec::new();
    for r in &results {
        let entries: Vec<_> = r
            .icache
            .iter()
            .map(|s| (s.name.clone(), s.power))
            .collect();
        print!(
            "{}",
            format_power_table(&format!("Figure 7: I-cache power — {}", r.workload), &entries)
        );
        let base = r.icache[0].power.total_mw(); // approach [4]
        let ours_2x16 = r.icache[2].power.total_mw();
        ratios.push(ours_2x16 / base);
    }
    println!(
        "average I-cache power, ours(2x16)/[4] = {:.2} (paper: ~0.75, i.e. 25% average reduction)",
        geometric_mean(&ratios)
    );
}
