//! Regenerates Table 2: critical-path delay (ns) of the added MAB circuit
//! for N_t ∈ {1,2} × N_s ∈ {4,8,16,32}, compared against the 2.5 ns CPU
//! cycle (400 MHz max clock) that backs the "no delay penalty" claim.

use waymem_hwmodel::{mab_delay_ns, MabShape, Technology};

fn main() {
    let tech = Technology::frv_0130();
    println!(
        "Table 2: MAB critical-path delay (ns); CPU cycle = {:.2} ns",
        tech.cycle_ns()
    );
    println!("paper (ns):     Ns=4   Ns=8   Ns=16  Ns=32");
    println!("  Nt=1          1.00   1.00   1.08   1.14");
    println!("  Nt=2          1.02   1.02   1.08   1.16");
    println!("model (ns):");
    for nt in [1u32, 2] {
        print!("  Nt={nt}        ");
        for ns in [4u32, 8, 16, 32] {
            let d = mab_delay_ns(MabShape::frv(nt, ns), tech);
            print!("  {d:.2} ");
        }
        println!();
    }
    println!("every configuration fits the cycle: no delay penalty.");
}
