//! I-cache related-work comparison beyond Figure 6: conventional,
//! Panwar & Rennels intra-line memoization \[4\], Ma et al. link-based way
//! memoization \[11\] and the paper's MAB — including the two costs the
//! paper says \[11\] pays and the MAB avoids: extra link bits read with
//! every instruction, and a link-invalidation scan on every replacement.

use waymem_sim::{IScheme, Suite};

fn main() {
    let schemes = [
        IScheme::Original,
        IScheme::IntraLine,
        IScheme::LinkMemo,
        IScheme::ExtendedBtb { entries: 32 },
        IScheme::paper_way_memo(),
    ];
    let results = Suite::kernels().ischemes(schemes).run().expect("suite runs");

    println!("Related work, I-cache (tags/access | power mW):");
    println!(
        "{:<12} {:>20} {:>20} {:>20} {:>20} {:>20}",
        "benchmark", "original", "intra_line[4]", "link_memo[11]", "ext_btb[12]", "way_memo 2x16"
    );
    for r in &results {
        print!("{:<12}", r.workload.name());
        for s in &r.icache {
            print!(
                " {:>11.3} | {:>5.2}",
                s.stats.tags_per_access(),
                s.power.total_mw()
            );
        }
        println!();
    }
    println!("\n[11]'s hidden costs (per benchmark):");
    println!(
        "{:<12} {:>18} {:>22}",
        "benchmark", "link-field reads", "link invalidations"
    );
    for r in &results {
        let link = &r.icache[2];
        println!(
            "{:<12} {:>18} {:>22}",
            r.workload.name(),
            link.energy.buffer_probes,
            "(replacement scans)"
        );
    }
    println!("\nthe MAB needs neither: no per-instruction bits, no replacement scan");
    println!("inside the cache arrays (its own invalidation is a 2x16 register file).");
}
