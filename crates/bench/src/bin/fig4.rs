//! Regenerates Figure 4: average number of tag accesses and way accesses
//! per D-cache access for original / set buffer \[14\] / way memoization,
//! over the seven benchmarks.

use waymem_bench::fig4_dschemes;
use waymem_sim::{format_ratio_table, FigureRow, Suite};

fn main() {
    let results = Suite::kernels()
        .dschemes(fig4_dschemes())
        .run()
        .expect("suite runs");

    let tag_rows: Vec<FigureRow> = results
        .iter()
        .map(|r| FigureRow {
            label: r.workload.name(),
            values: r
                .dcache
                .iter()
                .map(|s| (s.name.clone(), s.stats.tags_per_access()))
                .collect(),
        })
        .collect();
    print!(
        "{}",
        format_ratio_table("Figure 4 (top): # tag accesses / D-cache access", &tag_rows)
    );

    let way_rows: Vec<FigureRow> = results
        .iter()
        .map(|r| FigureRow {
            label: r.workload.name(),
            values: r
                .dcache
                .iter()
                .map(|s| (s.name.clone(), s.stats.ways_per_access()))
                .collect(),
        })
        .collect();
    print!(
        "{}",
        format_ratio_table(
            "Figure 4 (bottom): # ways accessed / D-cache access",
            &way_rows
        )
    );
    println!(
        "expected shape: original ~2.0 tags; ours ~90% fewer tags; ways > 1 for ours (at least one way per access); stores keep even the original below 2 ways."
    );
}
