//! Runs **any** memory trace — ingested Valgrind Lackey / CSV logs and
//! the built-in synthetic access patterns — through every implemented
//! lookup scheme (conventional, the paper's way memoization, and all
//! ablations), printing per-scheme tag/way activations and Eq. (1) power
//! per workload and exporting the rows into `BENCH_results.json`.
//!
//! ```text
//! cargo run --release -p waymem-bench --bin ingest -- [OPTIONS] [LOG...]
//!
//! LOG                  log files; `.csv` parses as the CSV grammar,
//!                      anything else as Valgrind Lackey --trace-mem=yes
//! --format lackey|csv  force one grammar for every log
//! --synth-accesses N   data accesses per synthetic pattern (default 200000)
//! --no-synth           skip the synthetic pattern suite
//! --stream             bounded-memory pipeline: parse straight to disk
//!                      and replay in batches — resident memory is
//!                      O(batch), not O(trace), so multi-GB captures fit
//! --out DIR            write BENCH_results.json there (default: cwd)
//! ```
//!
//! Capture a real program's trace and run it in two commands:
//!
//! ```text
//! valgrind --tool=lackey --trace-mem=yes --log-file=prog.log ./prog
//! cargo run --release -p waymem-bench --bin ingest -- prog.log
//! ```
//!
//! With `WAYMEM_TRACE_CACHE=<dir>` the parsed/generated traces persist
//! as `.wmtr` files keyed by content hash / generator spec, and
//! `WAYMEM_TRACE_CACHE_MAX_BYTES` caps that directory (oldest evicted
//! first) — ingested logs are exactly where unbounded growth would bite.

use std::path::PathBuf;
use std::process::ExitCode;

use waymem_bench::json::{metrics_json, phases_json, store_stats_json, Json};
use waymem_bench::{full_dschemes, full_ischemes, ledger, store_from_env};
use waymem_ingest::{synth, LogFormat};
use waymem_sim::{
    catch_worker, Experiment, FigureRow, Prepared, RunError, SchemeResult, SimConfig, SimResult,
    TraceSource, WorkloadId,
};

/// One evaluated workload: where it came from, what ran, how fast the
/// replay consumed its events.
struct Row {
    /// Human-readable label for tables and JSON (file name or pattern).
    label: String,
    /// Source description for the JSON metadata.
    source: Json,
    result: SimResult,
    /// `"streaming"` (bounded-memory disk replay) or `"materialized"`.
    source_mode: &'static str,
    /// Wall-clock seconds the replay took.
    replay_seconds: f64,
    /// Events (fetch + data) consumed per second of replay.
    events_per_sec: f64,
}

struct Options {
    logs: Vec<PathBuf>,
    forced_format: Option<LogFormat>,
    synth_accesses: u32,
    run_synth: bool,
    streaming: bool,
    out_dir: PathBuf,
}

fn usage() -> ! {
    eprintln!(
        "usage: ingest [--format lackey|csv] [--synth-accesses N] [--no-synth] [--stream] \
         [--out DIR] [LOG...]"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut opts = Options {
        logs: Vec::new(),
        forced_format: None,
        synth_accesses: 200_000,
        run_synth: true,
        streaming: false,
        out_dir: PathBuf::from("."),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => {
                opts.forced_format = match args.next().as_deref() {
                    Some("lackey") => Some(LogFormat::Lackey),
                    Some("csv") => Some(LogFormat::Csv),
                    _ => usage(),
                }
            }
            "--synth-accesses" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => opts.synth_accesses = n,
                None => usage(),
            },
            "--no-synth" => opts.run_synth = false,
            "--stream" => opts.streaming = true,
            "--out" => match args.next() {
                Some(dir) => opts.out_dir = PathBuf::from(dir),
                None => usage(),
            },
            "--help" | "-h" => usage(),
            flag if flag.starts_with('-') => usage(),
            log => opts.logs.push(PathBuf::from(log)),
        }
    }
    opts
}

/// Replays a prepared experiment, timing the replay and deriving the
/// streamed-events-per-second figure the JSON export reports first-class.
fn replay_row(
    prepared: Prepared,
    label: String,
    source: Json,
    streaming: bool,
) -> Result<Row, RunError> {
    let events = prepared.source().len();
    let start = std::time::Instant::now();
    let result = prepared.run()?;
    let replay_seconds = start.elapsed().as_secs_f64();
    Ok(Row {
        label,
        source,
        result,
        source_mode: if streaming { "streaming" } else { "materialized" },
        replay_seconds,
        events_per_sec: if replay_seconds > 0.0 {
            events as f64 / replay_seconds
        } else {
            0.0
        },
    })
}

fn scheme_json(side: &str, s: &SchemeResult, cycles: u64) -> Json {
    let st = &s.stats;
    let p = &s.power;
    Json::object(vec![
        ("cache", Json::from(side)),
        ("scheme", Json::from(s.name.clone())),
        ("cycles", Json::from(cycles)),
        ("accesses", Json::from(st.accesses)),
        ("tag_reads", Json::from(st.tag_reads)),
        ("way_reads", Json::from(st.way_reads)),
        ("hits", Json::from(st.hits)),
        ("misses", Json::from(st.misses)),
        ("mab_lookups", Json::from(st.mab_lookups)),
        ("mab_hits", Json::from(st.mab_hits)),
        ("tags_per_access", Json::from(st.tags_per_access())),
        ("ways_per_access", Json::from(st.ways_per_access())),
        ("total_mw", Json::from(p.total_mw())),
        ("tag_mw", Json::from(p.tag_mw)),
        ("data_mw", Json::from(p.data_mw)),
        ("mab_mw", Json::from(p.mab_mw)),
        ("buffer_mw", Json::from(p.buffer_mw)),
    ])
}

fn print_tables(row: &Row) {
    let r = &row.result;
    println!(
        "\n### workload {} ({}) — {} cycles, {} D accesses, {} I accesses \
         [{} replay: {:.0} events/s]",
        row.label,
        r.workload,
        r.cycles,
        r.dcache.first().map_or(0, |s| s.stats.accesses),
        r.icache.first().map_or(0, |s| s.stats.accesses),
        row.source_mode,
        row.events_per_sec,
    );
    for (title, side) in [("D-cache", &r.dcache), ("I-cache", &r.icache)] {
        if side.is_empty() {
            continue;
        }
        let tag_row = FigureRow {
            label: row.label.clone(),
            values: side.iter().map(|s| (s.name.clone(), s.stats.tags_per_access())).collect(),
        };
        let way_row = FigureRow {
            label: row.label.clone(),
            values: side.iter().map(|s| (s.name.clone(), s.stats.ways_per_access())).collect(),
        };
        let mw_row = FigureRow {
            label: row.label.clone(),
            values: side.iter().map(|s| (s.name.clone(), s.power.total_mw())).collect(),
        };
        print!("{}", waymem_sim::format_ratio_table(&format!("{title}: tag reads / access"), &[tag_row]));
        print!("{}", waymem_sim::format_ratio_table(&format!("{title}: way reads / access"), &[way_row]));
        print!("{}", waymem_sim::format_ratio_table(&format!("{title}: total power (mW)"), &[mw_row]));
    }
}

fn main() -> ExitCode {
    // Arm span capture (WAYMEM_SPANS=<path>) and resolve the log level
    // (WAYMEM_LOG) before any instrumented work runs.
    waymem_obs::init_from_env();
    let opts = parse_args();
    if opts.logs.is_empty() && !opts.run_synth {
        eprintln!("ingest: nothing to do (no logs and --no-synth)");
        return ExitCode::from(2);
    }
    let cfg = SimConfig::default();
    let dschemes = full_dschemes();
    let ischemes = full_ischemes();
    let store = store_from_env();
    let mut rows: Vec<Row> = Vec::new();
    // Per-workload failure isolation: one unreadable log (or a worker
    // panic) skips that workload and is reported, instead of discarding
    // every other result in the batch.
    let mut failures: Vec<(String, RunError)> = Vec::new();

    for path in &opts.logs {
        let format = opts.forced_format.unwrap_or_else(|| LogFormat::for_path(path));
        let label = path
            .file_name()
            .map_or_else(|| path.display().to_string(), |n| n.to_string_lossy().into_owned());
        // The experiment hashes the raw bytes first: with a warm trace
        // cache the `.wmtr` disk hit then skips parsing (and the event
        // materialization) entirely — for a multi-GB capture the parse
        // *is* the cost.
        let outcome = catch_worker(|| {
            let prepared = Experiment::ingest(path)
                .format(format)
                .config(cfg)
                .dschemes(dschemes.clone())
                .ischemes(ischemes.clone())
                .store(&store)
                .streaming(opts.streaming)
                .prepare()?;
            let hash = prepared.source_hash();
            let meta = prepared.ingest_meta();
            let (fetches, data) = match prepared.source() {
                TraceSource::Materialized(t) => {
                    (t.fetch_events.len() as u64, t.data_events.len() as u64)
                }
                TraceSource::Streaming(t) => (t.fetch_count(), t.data_count()),
            };
            match meta {
                Some(m) => eprintln!(
                    "ingest: {label}: {} lines ({} skipped), {fetches} fetches, {data} loads/stores, hash {hash:016x}",
                    m.lines, m.skipped,
                ),
                None => eprintln!(
                    "ingest: {label}: replayed cached trace ({fetches} fetches, {data} loads/stores), hash {hash:016x}",
                ),
            }
            let mut source = vec![
                ("kind".to_owned(), Json::from("external")),
                ("path".to_owned(), Json::from(path.display().to_string())),
                (
                    "format".to_owned(),
                    Json::from(if format == LogFormat::Csv { "csv" } else { "lackey" }),
                ),
                ("content_hash".to_owned(), Json::from(format!("{hash:016x}"))),
            ];
            if let Some(m) = meta {
                source.push(("lines".to_owned(), Json::from(m.lines)));
                source.push(("skipped_lines".to_owned(), Json::from(m.skipped)));
            }
            replay_row(prepared, label.clone(), Json::Object(source), opts.streaming)
        });
        match outcome {
            Ok(row) => rows.push(row),
            Err(e) => {
                waymem_obs::warn!(
                    "ingest.workload_failed",
                    workload = label,
                    error = e,
                    retryable = e.is_retryable(),
                );
                failures.push((label, e));
            }
        }
    }

    if opts.run_synth {
        for spec in synth::standard_suite(opts.synth_accesses) {
            let id = WorkloadId::Synthetic(spec);
            let prepared = Experiment::synthetic(spec)
                .config(cfg)
                .dschemes(dschemes.clone())
                .ischemes(ischemes.clone())
                .store(&store)
                .streaming(opts.streaming)
                .prepare();
            let source = Json::object(vec![
                ("kind", Json::from("synthetic")),
                ("pattern", Json::from(spec.pattern.token())),
                ("accesses", Json::from(spec.accesses)),
                ("seed", Json::from(spec.seed)),
                ("generator_version", Json::from(synth::GENERATOR_VERSION)),
            ]);
            let row = catch_worker(|| {
                prepared.and_then(|p| replay_row(p, id.name(), source, opts.streaming))
            });
            match row {
                Ok(row) => rows.push(row),
                Err(e) => {
                    waymem_obs::warn!(
                        "ingest.workload_failed",
                        workload = id.name(),
                        error = e,
                        retryable = e.is_retryable(),
                    );
                    failures.push((id.name(), e));
                }
            }
        }
    }

    for row in &rows {
        print_tables(row);
    }

    // One JSON row per (workload, cache side, scheme), plus per-workload
    // metadata — the same machine-readable contract as `export`, keyed
    // by workload instead of benchmark.
    let mut json_rows = Vec::new();
    let mut workloads = Vec::new();
    for row in &rows {
        let r = &row.result;
        workloads.push(Json::object(vec![
            ("workload", Json::from(row.label.clone())),
            ("id", Json::from(r.workload.name())),
            ("cycles", Json::from(r.cycles)),
            ("source_mode", Json::from(row.source_mode)),
            ("replay_seconds", Json::from(row.replay_seconds)),
            ("events_per_sec", Json::from(row.events_per_sec)),
            ("source", row.source.clone()),
        ]));
        for (side, schemes) in [("D", &r.dcache), ("I", &r.icache)] {
            for s in schemes.iter() {
                let mut pairs = vec![("workload".to_owned(), Json::from(row.label.clone()))];
                if let Json::Object(rest) = scheme_json(side, s, r.cycles) {
                    pairs.extend(rest);
                }
                json_rows.push(Json::Object(pairs));
            }
        }
    }
    let failure_rows: Vec<Json> = failures
        .iter()
        .map(|(workload, error)| {
            Json::object(vec![
                ("workload", Json::from(workload.clone())),
                ("error", Json::from(error.to_string())),
                ("retryable", Json::from(error.is_retryable())),
            ])
        })
        .collect();
    let json = Json::object(vec![
        ("schema", Json::from("waymem/ingest/v1")),
        (
            "geometry",
            Json::object(vec![
                ("sets", Json::from(cfg.geometry.sets())),
                ("ways", Json::from(cfg.geometry.ways())),
                ("line_bytes", Json::from(cfg.geometry.line_bytes())),
            ]),
        ),
        ("workloads", Json::Array(workloads)),
        ("failures", Json::Array(failure_rows)),
        ("trace_store", store_stats_json(&store.stats())),
        ("metrics", metrics_json()),
        ("rows", Json::Array(json_rows)),
    ]);
    let json_path = opts.out_dir.join("BENCH_results.json");
    if let Err(e) = std::fs::create_dir_all(&opts.out_dir) {
        eprintln!("ingest: cannot create {}: {e}", opts.out_dir.display());
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(&json_path, format!("{json}\n")) {
        eprintln!("ingest: cannot write {}: {e}", json_path.display());
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {}", json_path.display());

    // Append this batch to the durable trajectory (WAYMEM_LEDGER=off to
    // skip): aggregate replay throughput across the surviving rows plus
    // the store's compression accounting and the phase breakdown.
    let replay_seconds: f64 = rows.iter().map(|r| r.replay_seconds).sum();
    let replayed_events: f64 =
        rows.iter().map(|r| r.events_per_sec * r.replay_seconds).sum();
    let perf = vec![
        ("workloads", Json::from(rows.len() as u64)),
        ("failed_workloads", Json::from(failures.len() as u64)),
        ("replay_seconds", Json::from(replay_seconds)),
        (
            "events_per_sec",
            Json::from(if replay_seconds > 0.0 { replayed_events / replay_seconds } else { 0.0 }),
        ),
        ("trace_store", store_stats_json(&store.stats())),
        ("phases", phases_json()),
    ];
    if let Some(outcome) = ledger::append_from_env("ingest", Json::object(perf)) {
        eprintln!(
            "ledger: {} — {} records (run {})",
            outcome.path.display(),
            outcome.records,
            outcome.runs_at_rev
        );
    }
    if !failures.is_empty() {
        // Each failure was already warned as `ingest.workload_failed`
        // when it happened; the recap is one summary event.
        waymem_obs::warn!("ingest.batch_failures", count = failures.len());
    }
    match waymem_obs::span::flush() {
        Ok(Some((path, events))) => eprintln!("wrote {events} span events to {}", path.display()),
        Ok(None) => {}
        Err(e) => eprintln!("ingest: failed to write span trace: {e}"),
    }
    // Isolation, not indifference: partial results with failures noted
    // still exit 0, but a batch where *nothing* survived is a failure.
    if rows.is_empty() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
