//! CI gate for the observability exports: validates a span trace file
//! (written via `WAYMEM_SPANS=<path>`) as well-formed Chrome trace-event
//! JSON with balanced `B`/`E` pairs and spans covering the record, store
//! I/O, and replay phases — and, when a `BENCH_headline.json` is given,
//! checks its schema v4 `phases` breakdown.
//!
//! ```text
//! cargo run --release -p waymem-bench --bin obs_check -- spans.json [BENCH_headline.json]
//! ```
//!
//! Exits non-zero with a description of the first violation, so a CI
//! step is just the two commands: a `headline` run with `WAYMEM_SPANS`
//! set, then this check over what it wrote.

use std::process::ExitCode;

use waymem_obs::chrome::{parse, validate_trace};

/// Span-name prefixes a headline run must have recorded: trace
/// production, store disk I/O, and front-end replay.
const REQUIRED_SPAN_PREFIXES: [&str; 3] = ["record", "store.io", "replay"];

/// Keys the schema v4 `phases` object must carry.
const REQUIRED_PHASES: [&str; 4] = ["resolve", "record", "io", "replay"];

fn check_spans(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let summary = validate_trace(&text).map_err(|e| format!("{path}: {e}"))?;
    for prefix in REQUIRED_SPAN_PREFIXES {
        if !summary.has_span_prefix(prefix) {
            return Err(format!(
                "{path}: no span named {prefix}* among {:?}",
                summary.names
            ));
        }
    }
    println!(
        "obs_check: {path}: {} events across {} threads, {} distinct spans — ok",
        summary.events,
        summary.threads,
        summary.names.len()
    );
    Ok(())
}

fn check_headline(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let root = parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let schema = root
        .get("schema")
        .and_then(|v| v.as_str())
        .ok_or_else(|| format!("{path}: missing schema"))?;
    if schema != "waymem/headline/v4" {
        return Err(format!("{path}: schema is {schema}, expected waymem/headline/v4"));
    }
    let phases = root.get("phases").ok_or_else(|| format!("{path}: missing phases object"))?;
    for key in REQUIRED_PHASES {
        let seconds = phases
            .get(key)
            .and_then(|v| v.as_num())
            .ok_or_else(|| format!("{path}: phases.{key} missing or non-numeric"))?;
        if !(seconds.is_finite() && seconds >= 0.0) {
            return Err(format!("{path}: phases.{key} = {seconds} is not a valid duration"));
        }
    }
    // A headline run replays seven kernels; a breakdown where no phase
    // accumulated any time means the instrumentation came unthreaded.
    let total: f64 = REQUIRED_PHASES
        .iter()
        .filter_map(|k| phases.get(k).and_then(|v| v.as_num()))
        .sum();
    if total <= 0.0 {
        return Err(format!("{path}: all phases are zero"));
    }
    println!("obs_check: {path}: schema v4 with four-phase breakdown ({total:.3} s total) — ok");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (spans, headline) = match args.as_slice() {
        [spans] => (spans, None),
        [spans, headline] => (spans, Some(headline)),
        _ => {
            eprintln!("usage: obs_check SPANS_JSON [BENCH_HEADLINE_JSON]");
            return ExitCode::from(2);
        }
    };
    let outcome = check_spans(spans).and_then(|()| match headline {
        Some(path) => check_headline(path),
        None => Ok(()),
    });
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("obs_check: {message}");
            ExitCode::FAILURE
        }
    }
}
