//! CI gate for the observability exports: validates a span trace file
//! (written via `WAYMEM_SPANS=<path>`) as well-formed Chrome trace-event
//! JSON with balanced `B`/`E` pairs and spans covering the record, store
//! I/O, and replay phases — and, when a `BENCH_headline.json` is given,
//! checks its schema v5 `phases` breakdown and embedded `metrics`
//! snapshot (histogram percentiles monotone, phase totals non-negative).
//! `--flight FILE` validates a crash flight-recorder dump instead of /
//! as well as the span trace.
//!
//! ```text
//! cargo run --release -p waymem-bench --bin obs_check -- spans.json [BENCH_headline.json]
//! cargo run --release -p waymem-bench --bin obs_check -- --flight waymem-flight.json
//! ```
//!
//! Exits non-zero with a description of the first violation, so a CI
//! step is just the two commands: a `headline` run with `WAYMEM_SPANS`
//! set, then this check over what it wrote.

use std::process::ExitCode;

use waymem_obs::chrome::{parse, validate_trace};
use waymem_obs::flight::validate_dump;
use waymem_obs::snapshot::validate_metrics;

/// Span-name prefixes a headline run must have recorded: trace
/// production, store disk I/O, and front-end replay.
const REQUIRED_SPAN_PREFIXES: [&str; 3] = ["record", "store.io", "replay"];

/// Keys the schema v5 `phases` object must carry.
const REQUIRED_PHASES: [&str; 4] = ["resolve", "record", "io", "replay"];

fn check_spans(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let summary = validate_trace(&text).map_err(|e| format!("{path}: {e}"))?;
    for prefix in REQUIRED_SPAN_PREFIXES {
        if !summary.has_span_prefix(prefix) {
            return Err(format!(
                "{path}: no span named {prefix}* among {:?}",
                summary.names
            ));
        }
    }
    println!(
        "obs_check: {path}: {} events across {} threads, {} distinct spans — ok",
        summary.events,
        summary.threads,
        summary.names.len()
    );
    Ok(())
}

fn check_headline(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let root = parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let schema = root
        .get("schema")
        .and_then(|v| v.as_str())
        .ok_or_else(|| format!("{path}: missing schema"))?;
    if schema != "waymem/headline/v5" {
        return Err(format!("{path}: schema is {schema}, expected waymem/headline/v5"));
    }
    let phases = root.get("phases").ok_or_else(|| format!("{path}: missing phases object"))?;
    for key in REQUIRED_PHASES {
        let seconds = phases
            .get(key)
            .and_then(|v| v.as_num())
            .ok_or_else(|| format!("{path}: phases.{key} missing or non-numeric"))?;
        if !(seconds.is_finite() && seconds >= 0.0) {
            return Err(format!("{path}: phases.{key} = {seconds} is not a valid duration"));
        }
    }
    // A headline run replays seven kernels; a breakdown where no phase
    // accumulated any time means the instrumentation came unthreaded.
    let total: f64 = REQUIRED_PHASES
        .iter()
        .filter_map(|k| phases.get(k).and_then(|v| v.as_num()))
        .sum();
    if total <= 0.0 {
        return Err(format!("{path}: all phases are zero"));
    }
    // The embedded registry snapshot must be internally consistent:
    // counters non-negative, histogram percentiles monotone
    // (p50 ≤ p95 ≤ p99 ≤ max), phase totals non-negative.
    let metrics =
        root.get("metrics").ok_or_else(|| format!("{path}: missing metrics object"))?;
    validate_metrics(metrics).map_err(|e| format!("{path}: {e}"))?;
    println!(
        "obs_check: {path}: schema v5, four-phase breakdown ({total:.3} s total), \
         metrics snapshot consistent — ok"
    );
    Ok(())
}

fn check_flight(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let summary = validate_dump(&text).map_err(|e| format!("{path}: {e}"))?;
    println!(
        "obs_check: {path}: flight dump (reason {:?}) with {} events, {} distinct names, \
         metrics snapshot consistent — ok",
        summary.reason,
        summary.events,
        summary.names.len()
    );
    Ok(())
}

fn main() -> ExitCode {
    let mut positional: Vec<String> = Vec::new();
    let mut flights: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--flight" => match args.next() {
                Some(path) => flights.push(path),
                None => {
                    eprintln!("obs_check: --flight needs a path");
                    return ExitCode::from(2);
                }
            },
            flag if flag.starts_with('-') => {
                eprintln!("usage: obs_check [SPANS_JSON [BENCH_HEADLINE_JSON]] [--flight DUMP_JSON]");
                return ExitCode::from(2);
            }
            path => positional.push(path.to_owned()),
        }
    }
    let (spans, headline) = match positional.as_slice() {
        [] if !flights.is_empty() => (None, None),
        [spans] => (Some(spans.clone()), None),
        [spans, headline] => (Some(spans.clone()), Some(headline.clone())),
        _ => {
            eprintln!("usage: obs_check [SPANS_JSON [BENCH_HEADLINE_JSON]] [--flight DUMP_JSON]");
            return ExitCode::from(2);
        }
    };
    let outcome = spans
        .map_or(Ok(()), |path| check_spans(&path))
        .and_then(|()| headline.map_or(Ok(()), |path| check_headline(&path)))
        .and_then(|()| flights.iter().try_for_each(|path| check_flight(path)));
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("obs_check: {message}");
            ExitCode::FAILURE
        }
    }
}
