//! Regenerates Figure 6: average tag and way accesses per I-cache access
//! for approach \[4\] versus way memoization with 2×8 / 2×16 / 2×32 MABs.

use waymem_bench::fig6_ischemes;
use waymem_sim::{format_ratio_table, FigureRow, Suite};

fn main() {
    let results = Suite::kernels()
        .ischemes(fig6_ischemes())
        .run()
        .expect("suite runs");

    let tag_rows: Vec<FigureRow> = results
        .iter()
        .map(|r| FigureRow {
            label: r.workload.name(),
            values: r
                .icache
                .iter()
                .map(|s| (s.name.clone(), s.stats.tags_per_access()))
                .collect(),
        })
        .collect();
    print!(
        "{}",
        format_ratio_table("Figure 6 (top): # tag accesses / I-cache access", &tag_rows)
    );

    let way_rows: Vec<FigureRow> = results
        .iter()
        .map(|r| FigureRow {
            label: r.workload.name(),
            values: r
                .icache
                .iter()
                .map(|s| (s.name.clone(), s.stats.ways_per_access()))
                .collect(),
        })
        .collect();
    print!(
        "{}",
        format_ratio_table(
            "Figure 6 (bottom): # ways accessed / I-cache access",
            &way_rows
        )
    );
    println!(
        "expected shape: [4] removes ~60% of tag accesses (intra-line flow); ours removes most of the rest, improving with MAB size."
    );
}
