//! Regenerates Table 1: MAB area overhead (mm²) for N_t ∈ {1,2} ×
//! N_s ∈ {4,8,16,32}, plus the percentage of the 32 kB cache macro the
//! paper quotes in prose (≈ 3 % for 2×8, 7.5 % for 2×16, 27.5 % for 2×32).

use waymem_hwmodel::{cache_area_mm2, mab_area_mm2, CacheShape, MabShape, Technology};

fn main() {
    let tech = Technology::frv_0130();
    let cache = cache_area_mm2(CacheShape::frv(), tech);
    println!("Table 1: MAB area (mm^2); 32 kB 2-way cache macro = {cache:.3} mm^2");
    println!("paper (mm^2):   Ns=4    Ns=8    Ns=16   Ns=32");
    println!("  Nt=1         0.016   0.027   0.065   0.307");
    println!("  Nt=2         0.019   0.033   0.085   0.311");
    println!("model (mm^2, overhead %):");
    for nt in [1u32, 2] {
        print!("  Nt={nt}       ");
        for ns in [4u32, 8, 16, 32] {
            let a = mab_area_mm2(MabShape::frv(nt, ns), tech);
            print!("  {a:.3} ({:>4.1}%)", a / cache * 100.0);
        }
        println!();
    }
}
