//! Exports the full evaluation as CSV plus machine-readable JSON: one row
//! per (benchmark, cache, scheme) with tag/way/hit counters and the
//! Eq. (1) power decomposition — the raw data behind every figure, ready
//! for a plotting tool. With a directory argument, writes `results.csv`
//! and `BENCH_results.json` there; without one, prints the CSV to stdout
//! and drops `BENCH_results.json` in the current directory so the
//! machine-readable export is always produced.

use std::fmt::Write as _;
use std::path::Path;

use waymem_bench::json::{store_stats_json, Json};
use waymem_bench::{full_dschemes, full_ischemes, store_from_env};
use waymem_sim::{SchemeResult, SimConfig, SimResult, Suite};

fn row_json(r: &SimResult, side: &str, s: &SchemeResult) -> Json {
    let st = &s.stats;
    let p = &s.power;
    Json::object(vec![
        ("benchmark", Json::from(r.workload.name())),
        ("cache", Json::from(side)),
        ("scheme", Json::from(s.name.clone())),
        ("cycles", Json::from(r.cycles)),
        ("accesses", Json::from(st.accesses)),
        ("tag_reads", Json::from(st.tag_reads)),
        ("way_reads", Json::from(st.way_reads)),
        ("hits", Json::from(st.hits)),
        ("misses", Json::from(st.misses)),
        ("mab_lookups", Json::from(st.mab_lookups)),
        ("mab_hits", Json::from(st.mab_hits)),
        ("intra_line_skips", Json::from(st.intra_line_skips)),
        ("buffer_hits", Json::from(st.buffer_hits)),
        ("extra_cycles", Json::from(s.extra_cycles)),
        ("data_mw", Json::from(p.data_mw)),
        ("tag_mw", Json::from(p.tag_mw)),
        ("mab_mw", Json::from(p.mab_mw)),
        ("buffer_mw", Json::from(p.buffer_mw)),
        ("total_mw", Json::from(p.total_mw())),
    ])
}

fn main() {
    let out_dir = std::env::args().nth(1);
    let cfg = SimConfig::default();
    let store = store_from_env();
    let results = Suite::kernels()
        .config(cfg)
        .dschemes(full_dschemes())
        .ischemes(full_ischemes())
        .store(&store)
        .run()
        .expect("suite runs");

    let mut csv = String::from(
        "benchmark,cache,scheme,cycles,accesses,tag_reads,way_reads,hits,misses,\
         mab_lookups,mab_hits,intra_line_skips,buffer_hits,extra_cycles,\
         data_mw,tag_mw,mab_mw,buffer_mw,total_mw\n",
    );
    let mut rows = Vec::new();
    for r in &results {
        for (side, schemes) in [("D", &r.dcache), ("I", &r.icache)] {
            for s in schemes.iter() {
                let st = &s.stats;
                let p = &s.power;
                let _ = writeln!(
                    csv,
                    "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{:.4},{:.4},{:.4},{:.4},{:.4}",
                    r.workload.name(),
                    side,
                    s.name,
                    r.cycles,
                    st.accesses,
                    st.tag_reads,
                    st.way_reads,
                    st.hits,
                    st.misses,
                    st.mab_lookups,
                    st.mab_hits,
                    st.intra_line_skips,
                    st.buffer_hits,
                    s.extra_cycles,
                    p.data_mw,
                    p.tag_mw,
                    p.mab_mw,
                    p.buffer_mw,
                    p.total_mw(),
                );
                rows.push(row_json(r, side, s));
            }
        }
    }
    let json = Json::object(vec![
        ("schema", Json::from("waymem/results/v1")),
        ("geometry", Json::object(vec![
            ("sets", Json::from(cfg.geometry.sets())),
            ("ways", Json::from(cfg.geometry.ways())),
            ("line_bytes", Json::from(cfg.geometry.line_bytes())),
        ])),
        ("scale", Json::from(cfg.scale)),
        ("trace_store", store_stats_json(&store.stats())),
        ("rows", Json::Array(rows)),
    ]);

    let json_dir = out_dir.clone().unwrap_or_else(|| ".".to_owned());
    let json_path = Path::new(&json_dir).join("BENCH_results.json");
    std::fs::create_dir_all(&json_dir).expect("create output directory");
    std::fs::write(&json_path, format!("{json}\n")).expect("write BENCH_results.json");
    eprintln!("wrote {}", json_path.display());

    match out_dir {
        Some(dir) => {
            let path = Path::new(&dir).join("results.csv");
            std::fs::write(&path, csv).expect("write results.csv");
            eprintln!("wrote {}", path.display());
        }
        None => print!("{csv}"),
    }
}
