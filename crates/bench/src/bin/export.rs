//! Exports the full evaluation as CSV to stdout (or a directory given as
//! the first argument): one `figure4.csv` / `figure6.csv` row per
//! (benchmark, scheme) with tag/way/hit counters, and `power.csv` with the
//! Eq. (1) decomposition for every scheme on both caches — the raw data
//! behind every figure, ready for a plotting tool.

use std::fmt::Write as _;
use std::path::Path;

use waymem_bench::run_suite;
use waymem_sim::{DScheme, IScheme, SimConfig};

fn main() {
    let out_dir = std::env::args().nth(1);
    let cfg = SimConfig::default();
    let dschemes = [
        DScheme::Original,
        DScheme::SetBuffer { entries: 1 },
        DScheme::FilterCache { lines: 4 },
        DScheme::WayPredict,
        DScheme::TwoPhase,
        DScheme::paper_way_memo(),
        DScheme::WayMemoLineBuffer {
            tag_entries: 2,
            set_entries: 8,
            line_entries: 2,
        },
    ];
    let ischemes = [
        IScheme::Original,
        IScheme::IntraLine,
        IScheme::LinkMemo,
        IScheme::ExtendedBtb { entries: 32 },
        IScheme::WayMemo {
            tag_entries: 2,
            set_entries: 8,
        },
        IScheme::WayMemo {
            tag_entries: 2,
            set_entries: 16,
        },
        IScheme::WayMemo {
            tag_entries: 2,
            set_entries: 32,
        },
    ];
    let results = run_suite(&cfg, &dschemes, &ischemes).expect("suite runs");

    let mut csv = String::from(
        "benchmark,cache,scheme,cycles,accesses,tag_reads,way_reads,hits,misses,\
         mab_lookups,mab_hits,intra_line_skips,buffer_hits,extra_cycles,\
         data_mw,tag_mw,mab_mw,buffer_mw,total_mw\n",
    );
    for r in &results {
        for (side, schemes) in [("D", &r.dcache), ("I", &r.icache)] {
            for s in schemes.iter() {
                let st = &s.stats;
                let p = &s.power;
                let _ = writeln!(
                    csv,
                    "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{:.4},{:.4},{:.4},{:.4},{:.4}",
                    r.benchmark.name(),
                    side,
                    s.name,
                    r.cycles,
                    st.accesses,
                    st.tag_reads,
                    st.way_reads,
                    st.hits,
                    st.misses,
                    st.mab_lookups,
                    st.mab_hits,
                    st.intra_line_skips,
                    st.buffer_hits,
                    s.extra_cycles,
                    p.data_mw,
                    p.tag_mw,
                    p.mab_mw,
                    p.buffer_mw,
                    p.total_mw(),
                );
            }
        }
    }

    match out_dir {
        Some(dir) => {
            let path = Path::new(&dir).join("results.csv");
            std::fs::create_dir_all(&dir).expect("create output directory");
            std::fs::write(&path, csv).expect("write results.csv");
            eprintln!("wrote {}", path.display());
        }
        None => print!("{csv}"),
    }
}
