//! Perf-delta computation between two bench reports — the library
//! behind the `bench_diff` regression gate.
//!
//! [`extract`] pulls the comparable figures out of either report shape
//! (a `BENCH_headline.json` root or a `BENCH_LEDGER.jsonl` record,
//! whose figures live under `"perf"`): the throughput/quality metrics
//! in [`HIGHER_BETTER`], plus the per-phase wall-clock totals as
//! `phase.<name>` (lower is better). [`compare`] then pairs the metrics
//! both reports carry and flags regressions past a tolerance:
//!
//! * a higher-better metric regresses when it falls below
//!   `baseline × (1 − tolerance)`;
//! * a phase regresses when it exceeds `baseline × (1 + tolerance)`
//!   **and** grows by more than [`PHASE_ABS_FLOOR_SECONDS`] — tiny
//!   absolute phases jitter by large ratios without meaning anything.
//!
//! Metrics only one side carries are skipped (schema evolution must not
//! fail the gate), but zero shared metrics is an error — that means the
//! two files were never comparable at all.

use waymem_obs::chrome::Value;

/// Metrics where bigger is better, read from the report root (headline)
/// or its `perf` object (ledger records). `compression_ratio` also
/// resolves through `trace_store.compression_ratio`.
pub const HIGHER_BETTER: [&str; 6] = [
    "warm_speedup",
    "cold_speedup",
    "streaming_events_per_sec",
    "events_per_sec",
    "compression_ratio",
    "total_saving_avg_pct",
];

/// Seconds a phase must grow in absolute terms — on top of the relative
/// tolerance — before it counts as a regression.
pub const PHASE_ABS_FLOOR_SECONDS: f64 = 0.25;

/// One metric's baseline-vs-current comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct Delta {
    /// Metric name (`warm_speedup`, `phase.replay`, ...).
    pub metric: String,
    /// The baseline report's value.
    pub baseline: f64,
    /// The current report's value.
    pub current: f64,
    /// Signed relative change in percent (positive = current larger).
    pub change_pct: f64,
    /// `true` for `phase.*` metrics, where smaller is better.
    pub lower_better: bool,
    /// `true` when the change crossed the tolerance the wrong way.
    pub regressed: bool,
}

/// Every [`Delta`] from one [`compare`] call.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffReport {
    /// All compared metrics, in [`HIGHER_BETTER`]-then-phases order.
    pub deltas: Vec<Delta>,
    /// The tolerance the comparison ran with, in percent.
    pub tolerance_pct: f64,
}

impl DiffReport {
    /// The deltas that crossed the tolerance the wrong way.
    #[must_use]
    pub fn regressions(&self) -> Vec<&Delta> {
        self.deltas.iter().filter(|d| d.regressed).collect()
    }
}

/// Pulls the comparable `(name, value)` figures out of a parsed report:
/// headline roots directly, ledger records through their `perf` object.
/// Missing metrics are simply absent — [`compare`] works on the
/// intersection.
#[must_use]
pub fn extract(root: &Value) -> Vec<(String, f64)> {
    let perf = root.get("perf").unwrap_or(root);
    let mut out = Vec::new();
    for key in HIGHER_BETTER {
        let value = perf.get(key).and_then(Value::as_num).or_else(|| {
            (key == "compression_ratio")
                .then(|| perf.get("trace_store")?.get(key)?.as_num())
                .flatten()
        });
        if let Some(v) = value.filter(|v| v.is_finite()) {
            out.push((key.to_owned(), v));
        }
    }
    if let Some(Value::Obj(phases)) = perf.get("phases") {
        for (name, seconds) in phases {
            if let Some(s) = seconds.as_num().filter(|s| s.is_finite()) {
                out.push((format!("phase.{name}"), s));
            }
        }
    }
    out
}

/// Compares `current` against `baseline` with a symmetric relative
/// `tolerance_pct`, flagging each shared metric per the module rules.
///
/// # Errors
///
/// When the two reports share no comparable metric — the files were
/// not comparable bench reports.
pub fn compare(
    current: &Value,
    baseline: &Value,
    tolerance_pct: f64,
) -> Result<DiffReport, String> {
    let base = extract(baseline);
    let cur = extract(current);
    let tol = tolerance_pct.max(0.0) / 100.0;
    let mut deltas = Vec::new();
    for (metric, b) in base {
        let Some((_, c)) = cur.iter().find(|(name, _)| *name == metric) else {
            continue;
        };
        let c = *c;
        let lower_better = metric.starts_with("phase.");
        let change_pct = if b.abs() > f64::EPSILON { (c - b) / b * 100.0 } else { 0.0 };
        let regressed = if lower_better {
            c > b * (1.0 + tol) && (c - b) > PHASE_ABS_FLOOR_SECONDS
        } else {
            b > 0.0 && c < b * (1.0 - tol)
        };
        deltas.push(Delta { metric, baseline: b, current: c, change_pct, lower_better, regressed });
    }
    if deltas.is_empty() {
        return Err("reports share no comparable perf metric".into());
    }
    Ok(DiffReport { deltas, tolerance_pct })
}

#[cfg(test)]
mod tests {
    use super::*;
    use waymem_obs::chrome::parse;

    const REPORT: &str = r#"{"schema":"waymem/headline/v5","warm_speedup":40.0,
        "cold_speedup":2.0,"streaming_events_per_sec":1e7,
        "trace_store":{"compression_ratio":3.5},"total_saving_avg_pct":30.0,
        "phases":{"resolve":0.01,"record":1.0,"io":0.3,"replay":2.0}}"#;

    #[test]
    fn identical_reports_pass() {
        let v = parse(REPORT).unwrap();
        let report = compare(&v, &v, 25.0).unwrap();
        assert!(report.regressions().is_empty(), "{:?}", report.regressions());
        assert!(report.deltas.len() >= 8, "{:?}", report.deltas);
    }

    #[test]
    fn degraded_current_is_flagged() {
        let base = parse(REPORT).unwrap();
        let degraded = parse(
            r#"{"warm_speedup":10.0,"cold_speedup":2.0,"streaming_events_per_sec":1e7,
               "trace_store":{"compression_ratio":3.5},"total_saving_avg_pct":30.0,
               "phases":{"resolve":0.01,"record":1.0,"io":0.3,"replay":9.0}}"#,
        )
        .unwrap();
        let report = compare(&degraded, &base, 25.0).unwrap();
        let flagged: Vec<&str> =
            report.regressions().iter().map(|d| d.metric.as_str()).collect();
        assert!(flagged.contains(&"warm_speedup"), "{flagged:?}");
        assert!(flagged.contains(&"phase.replay"), "{flagged:?}");
        assert!(!flagged.contains(&"cold_speedup"), "{flagged:?}");
    }

    #[test]
    fn improvements_and_small_phase_jitter_pass() {
        let base = parse(REPORT).unwrap();
        // Better everywhere; phase "io" doubles but stays under the
        // absolute floor.
        let better = parse(
            r#"{"warm_speedup":80.0,"cold_speedup":4.0,"streaming_events_per_sec":2e7,
               "trace_store":{"compression_ratio":4.0},"total_saving_avg_pct":35.0,
               "phases":{"resolve":0.02,"record":1.0,"io":0.5,"replay":2.0}}"#,
        )
        .unwrap();
        let report = compare(&better, &base, 25.0).unwrap();
        assert!(report.regressions().is_empty(), "{:?}", report.regressions());
    }

    #[test]
    fn ledger_records_compare_through_their_perf_object() {
        let record = parse(&format!(
            r#"{{"schema":"waymem/ledger/v1","bin":"headline","perf":{}}}"#,
            REPORT
        ))
        .unwrap();
        let headline = parse(REPORT).unwrap();
        let report = compare(&headline, &record, 25.0).unwrap();
        assert!(report.regressions().is_empty());
    }

    #[test]
    fn disjoint_reports_are_an_error() {
        let a = parse(r#"{"warm_speedup":40.0}"#).unwrap();
        let b = parse(r#"{"events_per_sec":1e6}"#).unwrap();
        assert!(compare(&a, &b, 25.0).is_err());
    }
}
