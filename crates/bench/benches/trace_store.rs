//! Criterion benchmarks for the `waymem-trace` subsystem:
//!
//! * `trace_store/*` — the 7-benchmark suite driven cold (fresh store:
//!   every benchmark interpreted) vs warm (pre-warmed store: replay
//!   only). The gap is the interpreter cost the store amortizes across
//!   a sweep's configurations;
//! * `codec/*` — encode/decode/streaming-replay throughput of the
//!   compact binary format on a real recorded DCT trace.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use waymem_isa::CountingSink;
use waymem_sim::{record_trace, DScheme, IScheme, SimConfig, Suite, TraceStore};
use waymem_trace::{codec, Section};
use waymem_workloads::Benchmark;

fn suite_schemes() -> (Vec<DScheme>, Vec<IScheme>) {
    (
        vec![DScheme::Original, DScheme::paper_way_memo()],
        vec![IScheme::Original, IScheme::paper_way_memo()],
    )
}

fn suite(store: &TraceStore) -> Suite<'_> {
    let (d, i) = suite_schemes();
    Suite::kernels().dschemes(d).ischemes(i).store(store)
}

fn bench_store(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_store");
    group.sample_size(10);
    group.bench_function("suite_cold", |b| {
        // A fresh store per iteration: all seven kernels interpreted.
        b.iter(|| {
            let store = TraceStore::new();
            black_box(suite(&store).run().expect("runs").len())
        })
    });
    group.bench_function("suite_warm", |b| {
        // One pre-warmed store: every lookup hits, replay only. A warm
        // sweep iteration must beat the cold one — `tests/store.rs`
        // asserts the hit accounting, this shows the wall-clock.
        let store = TraceStore::new();
        suite(&store).run().expect("warm-up");
        b.iter(|| black_box(suite(&store).run().expect("runs").len()))
    });
    group.finish();
}

fn bench_codec(c: &mut Criterion) {
    let cfg = SimConfig::default();
    let trace = record_trace(Benchmark::Dct, &cfg).expect("records");
    let bytes = codec::encode(&trace);
    let mut group = c.benchmark_group("codec");
    group.sample_size(10);
    group.bench_function("encode", |b| {
        let mut out = Vec::with_capacity(bytes.len());
        b.iter(|| {
            out.clear();
            black_box(codec::encode_into(&trace, &mut out))
        })
    });
    group.bench_function("decode", |b| {
        b.iter(|| black_box(codec::decode(&bytes).expect("decodes").len()))
    });
    group.bench_function("replay_streaming", |b| {
        // Decode-and-dispatch without materializing the event Vecs: the
        // path a disk-cached trace takes into a front-end.
        b.iter(|| {
            let dec = codec::Decoder::new(&bytes).expect("valid");
            let mut sink = CountingSink::default();
            dec.replay_section(Section::Fetch, &mut sink).expect("replays");
            dec.replay_section(Section::Data, &mut sink).expect("replays");
            black_box(sink.fetches + sink.loads + sink.stores)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_store, bench_codec);
criterion_main!(benches);
