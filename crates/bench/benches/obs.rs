//! Criterion benchmarks pinning the cost of *disabled* instrumentation —
//! the contract that lets the obs hooks live on hot paths:
//!
//! * `obs_disabled/counter_inc` — one relaxed atomic add through a
//!   cached `counter!` handle;
//! * `obs_disabled/span_enter_exit` — a `span!` guard created and
//!   dropped with the tracer unarmed (one relaxed load, no allocation);
//! * `obs_disabled/span_args_enter_exit` — same, with an args closure
//!   that must NOT run while unarmed;
//! * `obs_disabled/histogram_record` — one bucketed record (always-on:
//!   histograms have no disable gate, so this is their live cost);
//! * `obs_disabled/log_suppressed` — a `debug!` below the configured
//!   level (fields must not format).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_disabled(c: &mut Criterion) {
    // The obs instruments are process-global: pin the disabled state
    // explicitly so the numbers mean what the group name claims.
    waymem_obs::span::disarm();
    waymem_obs::log::set_level(waymem_obs::log::Level::Warn);

    let mut group = c.benchmark_group("obs_disabled");
    group.bench_function("counter_inc", |b| {
        b.iter(|| {
            waymem_obs::counter!("bench.obs.counter").inc();
        })
    });
    group.bench_function("span_enter_exit", |b| {
        b.iter(|| {
            let guard = waymem_obs::span!("bench.obs.span");
            black_box(&guard);
        })
    });
    group.bench_function("span_args_enter_exit", |b| {
        b.iter(|| {
            let guard = waymem_obs::span!("bench.obs.span", n = black_box(42u64));
            black_box(&guard);
        })
    });
    group.bench_function("histogram_record", |b| {
        let mut v = 0u64;
        b.iter(|| {
            v = v.wrapping_add(1);
            waymem_obs::histogram!("bench.obs.histogram").record(black_box(v));
        })
    });
    group.bench_function("log_suppressed", |b| {
        b.iter(|| {
            waymem_obs::debug!("bench.obs.suppressed", value = black_box(7u64));
        })
    });
    group.finish();
}

criterion_group!(benches, bench_disabled);
criterion_main!(benches);
