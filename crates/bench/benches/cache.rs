//! Criterion micro-benchmarks of the cache substrate: hit-path access
//! throughput and the full D-cache front-end under the three Figure 4
//! schemes, on a synthetic strided address stream.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use waymem_cache::{AccessKind, Geometry, MainMemory, SetAssocCache};
use waymem_sim::DScheme;

fn bench_cache_hit_path(c: &mut Criterion) {
    let geom = Geometry::frv();
    let mut cache = SetAssocCache::new(geom);
    let mut mem = MainMemory::new();
    for i in 0..64u32 {
        cache.access(i * 32, AccessKind::Load, &mut mem);
    }
    c.bench_function("cache_hit_access", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 1) % 64;
            black_box(cache.access(black_box(i * 32), AccessKind::Load, &mut mem))
        })
    });
}

fn bench_dfront_schemes(c: &mut Criterion) {
    let mut group = c.benchmark_group("dfront");
    for scheme in [
        DScheme::Original,
        DScheme::SetBuffer { entries: 1 },
        DScheme::paper_way_memo(),
    ] {
        let mut front = scheme.build(Geometry::frv());
        group.bench_function(scheme.name(), |b| {
            let mut x = 0x4000_0000u32;
            b.iter(|| {
                x = x.wrapping_mul(0x9e37_79b9).wrapping_add(0x7f4a_7c15);
                let base = 0x0001_0000 + ((x >> 20) & 0x1fe0);
                let disp = ((x >> 8) & 0x7c) as i32;
                front.access(x & 7 == 0, base, disp, base.wrapping_add(disp as u32));
                black_box(&front);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cache_hit_path, bench_dfront_schemes);
criterion_main!(benches);
