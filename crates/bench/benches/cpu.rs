//! Criterion benchmark of the frv-lite interpreter: instructions per
//! second executing the DCT kernel end-to-end with a null sink and with
//! the full Figure 4/6 front-end fan-out attached — the cost of a whole
//! simulated experiment.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use waymem_isa::{Cpu, NullSink};
use waymem_sim::{DScheme, Experiment, IScheme};
use waymem_workloads::Benchmark;

fn bench_interpreter(c: &mut Criterion) {
    let wl = Benchmark::Dct.workload(1).expect("assembles");
    let mut group = c.benchmark_group("cpu");
    group.sample_size(10);
    group.bench_function("dct_null_sink", |b| {
        b.iter(|| {
            let mut cpu = Cpu::new(&wl.program);
            cpu.run(wl.max_steps, &mut NullSink).expect("runs");
            black_box(cpu.instret())
        })
    });
    group.finish();
}

fn bench_full_experiment(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiment");
    group.sample_size(10);
    group.bench_function("dct_three_d_three_i_schemes", |b| {
        b.iter(|| {
            let r = Experiment::kernel(Benchmark::Dct)
                .dschemes([
                    DScheme::Original,
                    DScheme::SetBuffer { entries: 1 },
                    DScheme::paper_way_memo(),
                ])
                .ischemes([
                    IScheme::Original,
                    IScheme::IntraLine,
                    IScheme::paper_way_memo(),
                ])
                .run()
                .expect("runs");
            black_box(r.cycles)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_interpreter, bench_full_experiment);
criterion_main!(benches);
