//! Criterion micro-benchmarks of the MAB structure itself: probe and
//! record throughput at the paper's configurations. The MAB sits on the
//! processor's address path, so its software model must be fast enough to
//! make whole-program simulation practical.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use waymem_cache::Geometry;
use waymem_core::{Mab, MabConfig};

fn bench_lookup_hit(c: &mut Criterion) {
    let mut group = c.benchmark_group("mab_lookup");
    for (nt, ns) in [(2usize, 8usize), (2, 16), (2, 32)] {
        let cfg = MabConfig::new(Geometry::frv(), nt, ns).expect("valid");
        let mut mab = Mab::new(cfg);
        // Warm every pair so probes hit.
        for t in 0..nt as u32 {
            for s in 0..ns as u32 {
                mab.record((t << 14) | (s << 5), 0, (t ^ s) & 1);
            }
        }
        group.bench_function(format!("hit_{nt}x{ns}"), |b| {
            let mut i = 0u32;
            b.iter(|| {
                let t = i % nt as u32;
                let s = i % ns as u32;
                i = i.wrapping_add(1);
                black_box(mab.lookup(black_box((t << 14) | (s << 5)), black_box(4)))
            })
        });
    }
    group.finish();
}

fn bench_record_churn(c: &mut Criterion) {
    let cfg = MabConfig::paper_dcache();
    let mut mab = Mab::new(cfg);
    c.bench_function("mab_record_churn_2x8", |b| {
        let mut x = 0x1234_5678u32;
        b.iter(|| {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            let base = x & 0x000f_ffe0;
            black_box(mab.record(black_box(base), black_box((x & 0x3f) as i32), x & 1))
        })
    });
}

fn bench_wide_bypass(c: &mut Criterion) {
    let mut mab = Mab::new(MabConfig::paper_dcache());
    c.bench_function("mab_wide_bypass", |b| {
        b.iter(|| black_box(mab.lookup(black_box(0x8000), black_box(1 << 20))))
    });
}

criterion_group!(benches, bench_lookup_hit, bench_record_churn, bench_wide_bypass);
criterion_main!(benches);
