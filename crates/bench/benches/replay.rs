//! Criterion benchmarks for the record/replay engine:
//!
//! * `engine/*` — one full DCT experiment (3 D- + 3 I-schemes) under the
//!   serial per-event fanout (`ExecPolicy::Serial`) vs the
//!   record-once/replay-in-parallel pipeline, plus the 7-benchmark suite
//!   under both policies;
//! * `sink_dispatch/*` — feeding a recorded DCT trace to a `dyn TraceSink`
//!   one virtual call per event vs one `events` batch call (the
//!   monomorphic slice loop the front-ends use).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use waymem_isa::{CountingSink, Cpu, RecordingSink, TraceEvent, TraceSink};
use waymem_sim::{
    record_trace, DScheme, ExecPolicy, Experiment, IScheme, SimConfig, Suite, WorkloadId,
};
use waymem_workloads::Benchmark;

fn paper_schemes() -> (Vec<DScheme>, Vec<IScheme>) {
    (
        vec![
            DScheme::Original,
            DScheme::SetBuffer { entries: 1 },
            DScheme::paper_way_memo(),
        ],
        vec![
            IScheme::Original,
            IScheme::IntraLine,
            IScheme::paper_way_memo(),
        ],
    )
}

fn bench_engine(c: &mut Criterion) {
    let cfg = SimConfig::default();
    let (d, i) = paper_schemes();
    let mut group = c.benchmark_group("engine");
    group.sample_size(10);
    let experiment = |policy| {
        Experiment::kernel(Benchmark::Dct)
            .dschemes(d.clone())
            .ischemes(i.clone())
            .policy(policy)
    };
    group.bench_function("dct_fanout_3d3i", |b| {
        // Serial policy on a store-less kernel = the per-event fanout
        // engine, trace never materialized.
        b.iter(|| {
            let r = experiment(ExecPolicy::Serial).run().expect("runs");
            black_box(r.cycles)
        })
    });
    group.bench_function("dct_replay_3d3i", |b| {
        // The record/replay engine, invoked explicitly via a recorded
        // trace so the bench measures it even on hosts where the Auto
        // policy would pick the fanout path (single-core).
        b.iter(|| {
            let trace = record_trace(Benchmark::Dct, &cfg).expect("records");
            let r = Experiment::recorded(WorkloadId::kernel(Benchmark::Dct, 1), trace)
                .dschemes(d.clone())
                .ischemes(i.clone())
                .run()
                .expect("replays");
            black_box(r.cycles)
        })
    });
    group.bench_function("dct_replay_only_3d3i", |b| {
        // Replay with the recording amortized away: the marginal cost of
        // one more scheme-set over an already-recorded trace.
        let trace = std::sync::Arc::new(record_trace(Benchmark::Dct, &cfg).expect("records"));
        b.iter(|| {
            let r = Experiment::recorded(WorkloadId::kernel(Benchmark::Dct, 1), trace.clone())
                .dschemes(d.clone())
                .ischemes(i.clone())
                .run()
                .expect("replays");
            black_box(r.cycles)
        })
    });
    let suite = |policy| {
        Suite::kernels()
            .dschemes(d.clone())
            .ischemes(i.clone())
            .policy(policy)
    };
    group.bench_function("suite_serial_fanout", |b| {
        b.iter(|| black_box(suite(ExecPolicy::Serial).run().expect("runs").len()))
    });
    group.bench_function("suite_parallel_replay", |b| {
        b.iter(|| black_box(suite(ExecPolicy::Auto).run().expect("runs").len()))
    });
    group.finish();
}

fn bench_sink_dispatch(c: &mut Criterion) {
    // One flat interleaved stream via the isa-level RecordingSink — the
    // general-purpose capture API (the sim engine records split streams).
    let wl = Benchmark::Dct.workload(1).expect("assembles");
    let mut rec = RecordingSink::with_step_budget(wl.max_steps);
    let mut cpu = Cpu::new(&wl.program);
    cpu.run(wl.max_steps, &mut rec).expect("runs");
    let events = rec.events.as_slice();
    let mut group = c.benchmark_group("sink_dispatch");
    group.sample_size(10);
    group.bench_function("per_event_dyn", |b| {
        b.iter(|| {
            let mut counter = CountingSink::default();
            let sink: &mut dyn TraceSink = &mut counter;
            for &e in events {
                match e {
                    TraceEvent::Fetch { pc, kind } => sink.fetch(pc, kind),
                    TraceEvent::Load {
                        base,
                        disp,
                        addr,
                        size,
                    } => sink.load(base, disp, addr, size),
                    TraceEvent::Store {
                        base,
                        disp,
                        addr,
                        size,
                    } => sink.store(base, disp, addr, size),
                }
            }
            black_box(counter.fetches + counter.loads + counter.stores)
        })
    });
    group.bench_function("batched_dyn", |b| {
        b.iter(|| {
            let mut counter = CountingSink::default();
            let sink: &mut dyn TraceSink = &mut counter;
            sink.events(events);
            black_box(counter.fetches + counter.loads + counter.stores)
        })
    });
    // Same comparison with a sink that stores the events: the batched
    // path collapses to one `extend_from_slice` (memcpy) instead of a
    // push per virtual call.
    group.bench_function("record_per_event_dyn", |b| {
        b.iter(|| {
            let mut rec = RecordingSink::with_step_budget(events.len() as u64);
            let sink: &mut dyn TraceSink = &mut rec;
            for &e in events {
                match e {
                    TraceEvent::Fetch { pc, kind } => sink.fetch(pc, kind),
                    TraceEvent::Load {
                        base,
                        disp,
                        addr,
                        size,
                    } => sink.load(base, disp, addr, size),
                    TraceEvent::Store {
                        base,
                        disp,
                        addr,
                        size,
                    } => sink.store(base, disp, addr, size),
                }
            }
            black_box(rec.events.len())
        })
    });
    group.bench_function("record_batched_dyn", |b| {
        b.iter(|| {
            let mut rec = RecordingSink::with_step_budget(events.len() as u64);
            let sink: &mut dyn TraceSink = &mut rec;
            sink.events(events);
            black_box(rec.events.len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_engine, bench_sink_dispatch);
criterion_main!(benches);
