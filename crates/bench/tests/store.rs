//! Suite-level guarantees of the shared trace store: one recording per
//! `(benchmark, scale)` per process regardless of how many
//! configurations replay it, results identical to the store-less
//! drivers, and persistence carrying traces across store instances the
//! way separate bench-bin invocations do.

use waymem_sim::{DScheme, Experiment, IScheme, SimConfig, SimResult, Suite, TraceStore};
use waymem_workloads::Benchmark;

fn schemes() -> (Vec<DScheme>, Vec<IScheme>) {
    (
        vec![DScheme::Original, DScheme::paper_way_memo()],
        vec![IScheme::Original, IScheme::paper_way_memo()],
    )
}

/// The kernel suite under the shared schemes at `cfg`, ready for an
/// optional `.store(..)`.
fn suite(cfg: &SimConfig) -> Suite<'static> {
    let (d, i) = schemes();
    Suite::kernels().config(*cfg).dschemes(d).ischemes(i)
}

fn assert_same_results(a: &[SimResult], b: &[SimResult]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.workload, y.workload);
        assert_eq!(x.cycles, y.cycles, "{}: cycles differ", x.workload);
        for (p, q) in x.dcache.iter().zip(&y.dcache).chain(x.icache.iter().zip(&y.icache)) {
            assert_eq!(p.name, q.name);
            assert_eq!(p.stats, q.stats, "{}/{}: stats differ", x.workload, p.name);
            assert_eq!(
                p.power.total_mw().to_bits(),
                q.power.total_mw().to_bits(),
                "{}/{}: power differs",
                x.workload,
                p.name
            );
        }
    }
}

#[test]
fn suite_records_each_benchmark_exactly_once_across_configs() {
    let store = TraceStore::new();
    let cfg = SimConfig::default();

    // Three suite passes over different geometries — the sweep pattern.
    let first = suite(&cfg).store(&store).run().expect("suite runs");
    let wide = SimConfig {
        geometry: waymem_cache::Geometry::new(128, 8, 32).expect("valid"),
        ..cfg
    };
    let _ = suite(&wide).store(&store).run().expect("suite runs");
    let long_lines = SimConfig {
        geometry: waymem_cache::Geometry::new(256, 2, 64).expect("valid"),
        ..cfg
    };
    let _ = suite(&long_lines).store(&store).run().expect("suite runs");

    let stats = store.stats();
    let n = Benchmark::ALL.len() as u64;
    assert_eq!(stats.records, n, "each (benchmark, scale) recorded exactly once");
    assert_eq!(stats.lookups, 3 * n);
    assert_eq!(stats.hits, 2 * n, "later configs replay cached traces");
    assert_eq!(stats.disk_hits, 0, "no cache dir configured");
    assert!(stats.compression_ratio() > 1.0, "codec must beat raw events");

    // A different scale is a different key: seven more recordings.
    let scaled = SimConfig { scale: 2, ..cfg };
    let _ = suite(&scaled).store(&store).run().expect("suite runs");
    assert_eq!(store.stats().records, 2 * n);

    // And the store-backed results match the store-less driver exactly.
    let plain = suite(&cfg).run().expect("suite runs");
    assert_same_results(&first, &plain);
}

#[test]
fn warm_suite_is_bit_identical_to_cold() {
    let store = TraceStore::new();
    let cfg = SimConfig::default();
    let cold = suite(&cfg).store(&store).run().expect("cold");
    let warm = suite(&cfg).store(&store).run().expect("warm");
    assert_same_results(&cold, &warm);
    assert_eq!(store.stats().records, Benchmark::ALL.len() as u64);
    // The SuiteResult's snapshot mirrors the live store accounting.
    assert_eq!(warm.store_stats.expect("store attached"), store.stats());
}

#[test]
fn persistent_store_skips_interpretation_on_the_second_instance() {
    let dir = std::env::temp_dir().join(format!("waymem-store-suite-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (d, i) = schemes();
    // Keep this test light: one benchmark, via the sim-level entry point.
    let cfg = SimConfig::default();

    let run_one = |store: &TraceStore| {
        Experiment::kernel(Benchmark::Dct)
            .config(cfg)
            .dschemes(d.clone())
            .ischemes(i.clone())
            .store(store)
            .run()
    };
    let cold_store = TraceStore::with_cache_dir(&dir);
    let cold = run_one(&cold_store).expect("cold run");
    assert_eq!(cold_store.stats().records, 1);
    assert_eq!(cold_store.stats().files_saved, 1);

    // A second store over the same dir — a fresh process invocation.
    let warm_store = TraceStore::with_cache_dir(&dir);
    let warm = run_one(&warm_store).expect("warm run");
    let stats = warm_store.stats();
    assert_eq!(stats.records, 0, "warm instance must not interpret");
    assert_eq!(stats.disk_hits, 1);
    assert!((stats.hit_rate() - 1.0).abs() < 1e-12, "100% store hits");
    assert_same_results(std::slice::from_ref(&cold), std::slice::from_ref(&warm));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn warm_streaming_opens_never_rematerialize_the_event_vector() {
    // The satellite fix this test pins: a warm streaming open over a
    // cache dir streams straight from the `.wmtr` file. It must not run
    // the producer (records stays 0) and — the actual bug — must not
    // decode the file back into a `Vec<TraceEvent>`: `raw_bytes` counts
    // the in-memory footprint of every materialized trace, so a warm
    // streaming instance has to finish with `raw_bytes == 0`.
    let dir = std::env::temp_dir().join(format!("waymem-store-stream-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (d, i) = schemes();
    let cfg = SimConfig::default();
    let run_one = |store: &TraceStore, streaming: bool| {
        Experiment::kernel(Benchmark::Dct)
            .config(cfg)
            .dschemes(d.clone())
            .ischemes(i.clone())
            .store(store)
            .streaming(streaming)
            .run()
    };

    // Cold streaming instance: produces the file once, straight through
    // the streaming encoder — no event vector exists even here.
    let cold_store = TraceStore::with_cache_dir(&dir);
    let cold = run_one(&cold_store, true).expect("cold streaming run");
    let stats = cold_store.stats();
    assert_eq!(stats.records, 1, "cold open produces the file");
    assert_eq!(stats.files_saved, 1);
    assert_eq!(stats.raw_bytes, 0, "streaming production must not materialize");

    // Warm instance over the same dir: open in place, replay in batches.
    let warm_store = TraceStore::with_cache_dir(&dir);
    let warm = run_one(&warm_store, true).expect("warm streaming run");
    let stats = warm_store.stats();
    assert_eq!(stats.records, 0, "warm open must not re-produce");
    assert_eq!(stats.stream_opens, 1, "served as a streaming open");
    assert_eq!(stats.disk_hits, 1, "counted as a disk hit");
    assert_eq!(stats.raw_bytes, 0, "warm open must not re-materialize");
    assert!((stats.hit_rate() - 1.0).abs() < 1e-12, "100% store hits");

    // Identical results to the materialized engine over the same store.
    let mat_store = TraceStore::with_cache_dir(&dir);
    let materialized = run_one(&mat_store, false).expect("materialized run");
    assert_same_results(
        std::slice::from_ref(&cold),
        std::slice::from_ref(&warm),
    );
    assert_same_results(
        std::slice::from_ref(&warm),
        std::slice::from_ref(&materialized),
    );
    assert!(
        mat_store.stats().raw_bytes > 0,
        "control: the materialized path does decode the vector"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
