//! The run ledger's durability contract: appends accumulate one JSONL
//! record per code state (dedup bumps `runs_at_rev` instead of stacking
//! lines), rotation bounds the file, and the records round-trip through
//! the `bench_diff` comparison engine.

use std::path::PathBuf;

use waymem_bench::diff;
use waymem_bench::json::Json;
use waymem_bench::ledger::{self, Provenance};
use waymem_obs::chrome::{parse, Value};

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("waymem-ledger-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

fn prov(rev: &str) -> Provenance {
    Provenance {
        git_rev: rev.to_owned(),
        git_dirty: false,
        host_threads: 8,
        unix_ts: 1_754_000_000,
    }
}

fn perf(warm_speedup: f64) -> Json {
    Json::object(vec![
        ("warm_speedup", Json::from(warm_speedup)),
        ("streaming_events_per_sec", Json::from(1.0e7)),
        (
            "phases",
            Json::object(vec![
                ("resolve", Json::from(0.01)),
                ("record", Json::from(1.0)),
                ("io", Json::from(0.3)),
                ("replay", Json::from(2.0)),
            ]),
        ),
    ])
}

fn records(path: &PathBuf) -> Vec<Value> {
    std::fs::read_to_string(path)
        .expect("ledger readable")
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| parse(l).expect("ledger line is one JSON record"))
        .collect()
}

#[test]
fn appends_dedup_per_code_state_and_stamp_provenance() {
    let path = tmp("dedup.jsonl");
    std::fs::remove_file(&path).ok();

    let first = ledger::append_to(&path, "headline", perf(40.0), &prov("aaa"), 512).unwrap();
    assert_eq!((first.records, first.runs_at_rev, first.deduped), (1, 1, false));

    // Same (bin, rev, dirty): the tail record is replaced, not stacked.
    let rerun = ledger::append_to(&path, "headline", perf(41.0), &prov("aaa"), 512).unwrap();
    assert_eq!((rerun.records, rerun.runs_at_rev, rerun.deduped), (1, 2, true));

    // A different bin at the same rev is a distinct state.
    let other = ledger::append_to(&path, "ingest", perf(5.0), &prov("aaa"), 512).unwrap();
    assert_eq!((other.records, other.deduped), (2, false));

    // A new revision appends.
    let bumped = ledger::append_to(&path, "headline", perf(42.0), &prov("bbb"), 512).unwrap();
    assert_eq!((bumped.records, bumped.runs_at_rev, bumped.deduped), (3, 1, false));

    let all = records(&path);
    assert_eq!(all.len(), 3);
    for record in &all {
        assert_eq!(
            record.get("schema").and_then(Value::as_str),
            Some(ledger::SCHEMA),
            "every line carries the schema tag"
        );
        let metrics = record.get("metrics").expect("full snapshot embedded");
        waymem_obs::snapshot::validate_metrics(metrics).expect("snapshot validates");
    }
    // The deduped record kept the latest perf numbers and the bump count.
    let deduped = &all[0];
    assert_eq!(deduped.get("runs_at_rev").and_then(Value::as_num), Some(2.0));
    assert_eq!(
        deduped.get("perf").and_then(|p| p.get("warm_speedup")).and_then(Value::as_num),
        Some(41.0)
    );
    assert_eq!(deduped.get("host_threads").and_then(Value::as_num), Some(8.0));
}

#[test]
fn rotation_keeps_only_the_newest_records() {
    let path = tmp("rotate.jsonl");
    std::fs::remove_file(&path).ok();
    for i in 0..7 {
        ledger::append_to(&path, "headline", perf(f64::from(i)), &prov(&format!("r{i}")), 4)
            .unwrap();
    }
    let all = records(&path);
    assert_eq!(all.len(), 4, "rotation trims to the cap");
    let revs: Vec<_> =
        all.iter().map(|r| r.get("git_rev").and_then(Value::as_str).unwrap().to_owned()).collect();
    assert_eq!(revs, ["r3", "r4", "r5", "r6"], "oldest records dropped first");
}

#[test]
fn ledger_records_feed_the_regression_gate() {
    let path = tmp("gate.jsonl");
    std::fs::remove_file(&path).ok();
    ledger::append_to(&path, "headline", perf(40.0), &prov("base"), 512).unwrap();
    let baseline = records(&path).pop().unwrap();

    // An identical run is within any tolerance.
    let same = parse(&format!(r#"{{"perf":{}}}"#, perf(40.0))).unwrap();
    let report = diff::compare(&same, &baseline, 25.0).unwrap();
    assert!(report.regressions().is_empty(), "{:?}", report.regressions());

    // A warm-speedup collapse past the tolerance is flagged.
    let degraded = parse(&format!(r#"{{"perf":{}}}"#, perf(10.0))).unwrap();
    let report = diff::compare(&degraded, &baseline, 25.0).unwrap();
    let flagged: Vec<&str> = report.regressions().iter().map(|d| d.metric.as_str()).collect();
    assert_eq!(flagged, ["warm_speedup"]);
}

#[test]
fn atomic_write_never_leaves_a_temp_behind() {
    let path = tmp("atomic.jsonl");
    std::fs::remove_file(&path).ok();
    ledger::append_to(&path, "headline", perf(40.0), &prov("aaa"), 512).unwrap();
    let dir = path.parent().unwrap();
    let temps: Vec<_> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(Result::ok)
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with("atomic") && n.contains("tmp"))
        .collect();
    assert!(temps.is_empty(), "leftover temps: {temps:?}");
}
