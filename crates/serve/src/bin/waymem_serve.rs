//! `waymem-serve` — the experiment daemon.
//!
//! Owns one warm trace store and serves experiment requests over the
//! length-prefixed TCP protocol until a client sends `Shutdown`, then
//! drains gracefully and exits 0.
//!
//! ```text
//! usage: waymem-serve [--addr HOST:PORT]
//!
//! env:   WAYMEM_SERVE_ADDR        listen address (default 127.0.0.1:7914)
//!        WAYMEM_SERVE_WORKERS     worker threads (default min(cores, 4))
//!        WAYMEM_SERVE_QUEUE       admission queue depth (default 64)
//!        WAYMEM_SERVE_TIMEOUT_MS  per-request budget (default 60000)
//!        WAYMEM_TRACE_DIR         persistent store directory (default in-memory)
//! ```
//!
//! The bound address is announced on stdout as `listening on ADDR` —
//! scripts bind port 0 and parse that line.

use std::io::Write;
use std::process::ExitCode;
use std::time::Duration;

use waymem_serve::server::{self, ServeConfig};
use waymem_trace::TraceStore;

fn usage() -> ! {
    eprintln!("usage: waymem-serve [--addr HOST:PORT]");
    std::process::exit(2);
}

fn main() -> ExitCode {
    waymem_obs::init_from_env();
    let mut cfg = ServeConfig::from_env();
    if cfg.addr == "127.0.0.1:0" && std::env::var("WAYMEM_SERVE_ADDR").is_err() {
        // Default to the well-known port unless the env chose one; the
        // flag below can still force an ephemeral bind.
        cfg.addr = "127.0.0.1:7914".to_owned();
    }
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(addr) => cfg.addr = addr,
                None => usage(),
            },
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }

    let store = TraceStore::from_env();
    let handle = match server::start(cfg, store) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("waymem-serve: cannot bind: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("listening on {}", handle.local_addr());
    let _ = std::io::stdout().flush();

    // No async signal handling in a forbid(unsafe_code) workspace: the
    // drain trigger is the protocol's Shutdown frame.
    while !handle.is_draining() {
        std::thread::sleep(Duration::from_millis(50));
    }
    handle.join();
    println!("drained");

    match waymem_obs::span::flush() {
        Ok(Some((path, events))) => eprintln!("wrote {events} span events to {}", path.display()),
        Ok(None) => {}
        Err(e) => eprintln!("waymem-serve: failed to write span trace: {e}"),
    }
    ExitCode::SUCCESS
}
