//! `loadgen` — hammers a running `waymem-serve` daemon with a mixed
//! request stream and reports latency percentiles + throughput.
//!
//! ```text
//! usage: loadgen [--addr HOST:PORT] [--requests N] [--clients N]
//!                [--accesses N] [--out DIR] [--shutdown]
//! ```
//!
//! Phase 1 is a deliberate *cold convoy*: every client fires the same
//! expensive cold workload at once, so all but one ride the leader's
//! single-flight execution — the dedup path under maximum contention.
//! Phase 2 is the steady-state hammer: a round-robin mix of synthetic
//! workloads (warm after first touch) with pings interleaved. Results
//! land in `BENCH_results.json` (schema `waymem/loadgen/v1`) with the
//! daemon's own `serve.*` snapshot embedded, and the run is appended to
//! the ledger as bin `loadgen`.

use std::io::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;
use std::time::Instant;

use waymem_bench::json::Json;
use waymem_bench::ledger;
use waymem_serve::client::{Client, ClientError};
use waymem_serve::proto::RunRequest;
use waymem_trace::{SynthPattern, SynthSpec, WorkloadId};

struct Options {
    addr: String,
    requests: usize,
    clients: usize,
    accesses: u32,
    out_dir: PathBuf,
    shutdown: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: loadgen [--addr HOST:PORT] [--requests N] [--clients N] [--accesses N] \
         [--out DIR] [--shutdown]"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut opts = Options {
        addr: "127.0.0.1:7914".to_owned(),
        requests: 2000,
        clients: 8,
        accesses: 10_000,
        out_dir: PathBuf::from("."),
        shutdown: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(addr) => opts.addr = addr,
                None => usage(),
            },
            "--requests" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => opts.requests = n,
                None => usage(),
            },
            "--clients" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n >= 1 => opts.clients = n,
                _ => usage(),
            },
            "--accesses" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => opts.accesses = n,
                None => usage(),
            },
            "--out" => match args.next() {
                Some(dir) => opts.out_dir = PathBuf::from(dir),
                None => usage(),
            },
            "--shutdown" => opts.shutdown = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    opts
}

/// The steady-state workload mix: distinct synthetics cycled
/// round-robin, so the store warms fast and repeats exercise the warm
/// path while near-simultaneous repeats exercise single-flight.
fn mix(accesses: u32) -> Vec<RunRequest> {
    let patterns = [
        SynthPattern::Stream,
        SynthPattern::Strided { stride: 64 },
        SynthPattern::PointerChase { nodes: 1024 },
        SynthPattern::RwChase { nodes: 1024 },
        SynthPattern::MultiLoop { loops: 16, period: 8 },
        SynthPattern::ZipfHotSet { hot_lines: 64, alpha_centi: 100 },
    ];
    patterns
        .iter()
        .flat_map(|&pattern| {
            [1u32, 2].map(|seed| {
                RunRequest::new(WorkloadId::Synthetic(SynthSpec { pattern, accesses, seed }))
            })
        })
        .collect()
}

/// Per-worker tallies, merged after the join.
#[derive(Default)]
struct Tally {
    latencies_us: Vec<u64>,
    ok: u64,
    shared: u64,
    refused: u64,
    transport_errors: u64,
}

fn worker(
    opts: &Options,
    worker_idx: usize,
    per_client: usize,
    barrier: &Barrier,
    convoy: &RunRequest,
    convoy_shared: &AtomicU64,
) -> Result<Tally, String> {
    let mut client = Client::connect(opts.addr.as_str())
        .map_err(|e| format!("connect {}: {e}", opts.addr))?;
    let mut tally = Tally::default();

    // Phase 1: the cold convoy. Everyone fires the identical request
    // the instant the barrier drops; the daemon must collapse them into
    // one execution.
    barrier.wait();
    let started = Instant::now();
    match client.run(convoy.clone()) {
        Ok(reply) => {
            tally.ok += 1;
            tally.latencies_us.push(elapsed_us(started));
            if reply.shared {
                tally.shared += 1;
                convoy_shared.fetch_add(1, Ordering::Relaxed);
            }
        }
        Err(ClientError::Refused { .. }) => tally.refused += 1,
        Err(e) => return Err(format!("convoy request: {e}")),
    }

    // Phase 2: the steady-state hammer. Offset each worker into the mix
    // so concurrent clients collide on the same workload only sometimes.
    let requests = mix(opts.accesses);
    for i in 0..per_client {
        if i % 16 == 15 {
            if client.ping().is_err() {
                tally.transport_errors += 1;
            }
            continue;
        }
        let request = requests[(worker_idx * 5 + i) % requests.len()].clone();
        let started = Instant::now();
        match client.run(request) {
            Ok(reply) => {
                tally.ok += 1;
                tally.shared += u64::from(reply.shared);
                tally.latencies_us.push(elapsed_us(started));
            }
            Err(ClientError::Refused { .. }) => tally.refused += 1,
            Err(_) => tally.transport_errors += 1,
        }
    }
    Ok(tally)
}

fn elapsed_us(started: Instant) -> u64 {
    u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX)
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

#[allow(clippy::too_many_lines)]
fn main() -> ExitCode {
    waymem_obs::init_from_env();
    let opts = parse_args();

    // The convoy workload is deliberately heavy: a long recording keeps
    // the leader busy while the followers arrive and attach.
    let convoy = RunRequest::new(WorkloadId::Synthetic(SynthSpec {
        pattern: SynthPattern::PhaseChange { hot_lines: 256, phases: 4 },
        accesses: opts.accesses.saturating_mul(50).max(500_000),
        seed: 42,
    }));

    let per_client = opts.requests / opts.clients.max(1);
    let barrier = Barrier::new(opts.clients);
    let convoy_shared = AtomicU64::new(0);
    let wall = Instant::now();
    let tallies: Vec<Result<Tally, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..opts.clients)
            .map(|idx| {
                let (opts, barrier, convoy, convoy_shared) =
                    (&opts, &barrier, &convoy, &convoy_shared);
                scope.spawn(move || worker(opts, idx, per_client, barrier, convoy, convoy_shared))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("loadgen worker panicked")).collect()
    });
    let wall_seconds = wall.elapsed().as_secs_f64();

    let mut merged = Tally::default();
    let mut worker_failures = Vec::new();
    for tally in tallies {
        match tally {
            Ok(t) => {
                merged.latencies_us.extend(t.latencies_us);
                merged.ok += t.ok;
                merged.shared += t.shared;
                merged.refused += t.refused;
                merged.transport_errors += t.transport_errors;
            }
            Err(e) => worker_failures.push(e),
        }
    }
    for failure in &worker_failures {
        eprintln!("loadgen: worker failed: {failure}");
    }

    merged.latencies_us.sort_unstable();
    let p50 = percentile(&merged.latencies_us, 0.50);
    let p99 = percentile(&merged.latencies_us, 0.99);
    let throughput = if wall_seconds > 0.0 { merged.ok as f64 / wall_seconds } else { 0.0 };

    // Pull the daemon's own view before (optionally) draining it.
    let daemon_snapshot = Client::connect(opts.addr.as_str())
        .ok()
        .and_then(|mut c| c.stats().ok());
    if opts.shutdown {
        match Client::connect(opts.addr.as_str()) {
            Ok(mut c) => {
                if let Err(e) = c.shutdown() {
                    eprintln!("loadgen: shutdown request failed: {e}");
                }
            }
            Err(e) => eprintln!("loadgen: cannot connect for shutdown: {e}"),
        }
    }

    println!(
        "loadgen: {} ok, {} refused, {} transport errors, dedup_shared={}, \
         p50={p50}us p99={p99}us, {throughput:.1} req/s over {wall_seconds:.2}s",
        merged.ok, merged.refused, merged.transport_errors, merged.shared
    );
    let _ = std::io::stdout().flush();

    let perf = Json::object(vec![
        ("requests_sent", Json::from(merged.ok + merged.refused + merged.transport_errors)),
        ("requests_ok", Json::from(merged.ok)),
        ("requests_refused", Json::from(merged.refused)),
        ("transport_errors", Json::from(merged.transport_errors)),
        ("dedup_shared", Json::from(merged.shared)),
        ("clients", Json::from(opts.clients as u64)),
        ("wall_seconds", Json::from(wall_seconds)),
        ("throughput_rps", Json::from(throughput)),
        ("latency_p50_us", Json::from(p50)),
        ("latency_p99_us", Json::from(p99)),
    ]);
    let json = Json::object(vec![
        ("schema", Json::from("waymem/loadgen/v1")),
        ("addr", Json::from(opts.addr.clone())),
        ("perf", perf.clone()),
        (
            "daemon",
            daemon_snapshot.clone().map_or(Json::Null, Json::Raw),
        ),
    ]);
    if let Err(e) = std::fs::create_dir_all(&opts.out_dir) {
        eprintln!("loadgen: cannot create {}: {e}", opts.out_dir.display());
        return ExitCode::FAILURE;
    }
    let json_path = opts.out_dir.join("BENCH_results.json");
    if let Err(e) = std::fs::write(&json_path, format!("{json}\n")) {
        eprintln!("loadgen: cannot write {}: {e}", json_path.display());
        return ExitCode::FAILURE;
    }
    eprintln!("wrote {}", json_path.display());

    if let Some(outcome) = ledger::append_from_env("loadgen", perf) {
        eprintln!(
            "ledger: {} — {} records (run {})",
            outcome.path.display(),
            outcome.records,
            outcome.runs_at_rev
        );
    }

    if merged.ok == 0 || !worker_failures.is_empty() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
