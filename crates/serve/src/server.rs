//! The daemon: one warm [`TraceStore`], a bounded worker pool, and the
//! connection machinery around them.
//!
//! The execution path is the same [`Experiment`](waymem_sim::Experiment)
//! builder every other driver uses — the server adds the *sharing*
//! mechanics a multi-client front door needs:
//!
//! - **Single-flight dedup.** Concurrent requests with the same
//!   [fingerprint](crate::proto::RunRequest::fingerprint) share one
//!   execution: the first becomes the leader and enqueues, the rest
//!   attach as followers and wait on the same flight. Combined with the
//!   store's own exactly-once `get_or_record`, N cold clients cost one
//!   recording and one replay.
//! - **Admission control.** A bounded [`mpsc::sync_channel`] is the run
//!   queue; when it is full the server answers `Overloaded` immediately
//!   instead of queueing unboundedly.
//! - **Per-request timeouts.** Waiters give up with a `Timeout` reply
//!   after the configured budget; the flight itself keeps running and
//!   warms the store for the retry.
//! - **Graceful drain.** A `Shutdown` frame stops admission, lets
//!   queued and in-flight work finish, then joins every worker — the
//!   daemon exits with nothing half-done.
//!
//! Everything is observable: `serve.*` counters/gauges/histograms land
//! in the same registry the snapshot freezes, and every request runs
//! under a span.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use waymem_bench::json::Json;
use waymem_obs::{counter, gauge, histogram, span};
use waymem_sim::{full_dschemes, full_ischemes, DScheme, IScheme, SimResult};
use waymem_trace::TraceStore;

use crate::proto::{
    self, ProtoError, Request, Response, RunRequest, SchemeSet, Status,
};

/// How the daemon is sized. Every knob has an environment override so
/// the binary stays flag-light.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, `host:port`. Port 0 binds an ephemeral port —
    /// the bound address is in [`ServerHandle::local_addr`].
    pub addr: String,
    /// Worker threads executing experiments.
    pub workers: usize,
    /// Admission queue depth; a full queue answers `Overloaded`.
    pub queue_depth: usize,
    /// Per-request wait budget before a `Timeout` reply.
    pub request_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism().map_or(2, std::num::NonZeroUsize::get);
        ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: cores.clamp(1, 4),
            queue_depth: 64,
            request_timeout: Duration::from_secs(60),
        }
    }
}

impl ServeConfig {
    /// Defaults overridden by `WAYMEM_SERVE_ADDR`,
    /// `WAYMEM_SERVE_WORKERS`, `WAYMEM_SERVE_QUEUE`, and
    /// `WAYMEM_SERVE_TIMEOUT_MS`. Unparseable values keep the default.
    #[must_use]
    pub fn from_env() -> Self {
        let mut cfg = ServeConfig::default();
        if let Ok(v) = std::env::var("WAYMEM_SERVE_ADDR") {
            if !v.trim().is_empty() {
                cfg.addr = v.trim().to_owned();
            }
        }
        if let Some(n) = env_usize("WAYMEM_SERVE_WORKERS") {
            cfg.workers = n.max(1);
        }
        if let Some(n) = env_usize("WAYMEM_SERVE_QUEUE") {
            cfg.queue_depth = n.max(1);
        }
        if let Some(ms) = env_usize("WAYMEM_SERVE_TIMEOUT_MS") {
            cfg.request_timeout = Duration::from_millis(ms as u64);
        }
        cfg
    }
}

fn env_usize(key: &str) -> Option<usize> {
    std::env::var(key).ok().and_then(|v| v.trim().parse().ok())
}

/// What one flight resolves to: the deterministic result JSON or a
/// stringified failure. Shared by the leader and every follower.
type FlightResult = Result<Arc<String>, String>;

/// One in-flight experiment all equal requests attach to.
struct Flight {
    slot: Mutex<Option<FlightResult>>,
    done: Condvar,
}

impl Flight {
    fn new() -> Self {
        Flight { slot: Mutex::new(None), done: Condvar::new() }
    }

    fn publish(&self, result: FlightResult) {
        *self.slot.lock().expect("flight slot poisoned") = Some(result);
        self.done.notify_all();
    }

    fn wait(&self, budget: Duration) -> Option<FlightResult> {
        let deadline = Instant::now() + budget;
        let mut slot = self.slot.lock().expect("flight slot poisoned");
        loop {
            if let Some(result) = slot.as_ref() {
                return Some(result.clone());
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (next, timed_out) = self
                .done
                .wait_timeout(slot, deadline - now)
                .expect("flight slot poisoned");
            slot = next;
            if timed_out.timed_out() && slot.is_none() {
                return None;
            }
        }
    }
}

/// One unit of queued work: the request plus the flight its result
/// lands in.
struct Job {
    fingerprint: u64,
    request: RunRequest,
    flight: Arc<Flight>,
}

/// State shared by the accept loop, connection handlers, and workers.
struct Shared {
    store: TraceStore,
    cfg: ServeConfig,
    /// Master sender; `take()`n at drain time so workers see the
    /// channel close once every connection's clone is gone too.
    queue: Mutex<Option<SyncSender<Job>>>,
    inflight: Mutex<HashMap<u64, Arc<Flight>>>,
    draining: AtomicBool,
    queued: AtomicUsize,
    connections: AtomicUsize,
}

impl Shared {
    fn queue_sender(&self) -> Option<SyncSender<Job>> {
        self.queue.lock().expect("queue sender poisoned").clone()
    }
}

/// A started daemon. Dropping the handle does **not** stop the server;
/// call [`ServerHandle::join`] after a drain, or leak it in tests.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The actually-bound listen address (resolves port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Starts a drain without a protocol frame — the test/embedder
    /// equivalent of sending `Shutdown`.
    pub fn begin_drain(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
    }

    /// Whether a drain has begun.
    #[must_use]
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// The daemon store's counters — how tests prove "N concurrent cold
    /// clients, one recording".
    #[must_use]
    pub fn store_stats(&self) -> waymem_trace::StoreStats {
        self.shared.store.stats()
    }

    /// Waits for the drain to complete: the accept loop exits, live
    /// connections wind down, queued and in-flight work finishes, and
    /// every worker joins. Call only after [`ServerHandle::begin_drain`]
    /// (or a client's `Shutdown`) — joining a serving daemon blocks
    /// forever by design.
    pub fn join(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        // The accept loop has exited; once the last connection drops its
        // queue clone and the master sender is taken, workers run the
        // queue dry and see the channel close.
        let deadline = Instant::now() + self.shared.cfg.request_timeout;
        while self.shared.connections.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        drop(self.shared.queue.lock().expect("queue sender poisoned").take());
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        waymem_obs::info!("serve.drained", addr = self.addr);
    }
}

/// Binds `cfg.addr`, spawns the worker pool and accept loop, and
/// returns the handle. `store` is the daemon's one warm trace store.
///
/// # Errors
///
/// Propagates the bind failure.
pub fn start(cfg: ServeConfig, store: TraceStore) -> std::io::Result<ServerHandle> {
    let listener = bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let (sender, receiver) = mpsc::sync_channel::<Job>(cfg.queue_depth);
    let shared = Arc::new(Shared {
        store,
        cfg,
        queue: Mutex::new(Some(sender)),
        inflight: Mutex::new(HashMap::new()),
        draining: AtomicBool::new(false),
        queued: AtomicUsize::new(0),
        connections: AtomicUsize::new(0),
    });

    let receiver = Arc::new(Mutex::new(receiver));
    let workers = (0..shared.cfg.workers.max(1))
        .map(|i| {
            let shared = Arc::clone(&shared);
            let receiver = Arc::clone(&receiver);
            std::thread::Builder::new()
                .name(format!("waymem-serve-worker-{i}"))
                .spawn(move || worker_loop(&shared, &receiver))
                .expect("spawn worker")
        })
        .collect();

    let accept = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("waymem-serve-accept".to_owned())
            .spawn(move || accept_loop(&listener, &shared))
            .expect("spawn accept loop")
    };

    waymem_obs::info!("serve.listening", addr = addr);
    Ok(ServerHandle { addr, shared, accept: Some(accept), workers })
}

fn bind(addr: &str) -> std::io::Result<TcpListener> {
    let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
    TcpListener::bind(&addrs[..])
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        if shared.draining.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, peer)) => {
                counter!("serve.connections").inc();
                shared.connections.fetch_add(1, Ordering::SeqCst);
                let conn_shared = Arc::clone(shared);
                let spawned = std::thread::Builder::new()
                    .name("waymem-serve-conn".to_owned())
                    .spawn(move || {
                        connection_loop(stream, &conn_shared);
                        conn_shared.connections.fetch_sub(1, Ordering::SeqCst);
                    });
                if let Err(e) = spawned {
                    shared.connections.fetch_sub(1, Ordering::SeqCst);
                    waymem_obs::warn!("serve.conn_spawn_failed", peer = peer, error = e);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => {
                waymem_obs::warn!("serve.accept_failed", error = e);
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

/// Serves one connection: frames in, frames out, until EOF, a
/// malformed frame, or drain. The socket read times out in short slices
/// so an idle connection notices a drain instead of pinning it.
fn connection_loop(stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let mut reader = stream.try_clone().expect("clone stream");
    let mut writer = stream;
    loop {
        let request = match proto::read_request(&mut reader) {
            Ok(req) => req,
            Err(ProtoError::Closed) => return,
            Err(ProtoError::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if shared.draining.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(e) if e.is_peer_fault() => {
                counter!("serve.bad_frames").inc();
                let reply = Response::Refused {
                    status: Status::BadRequest,
                    message: e.to_string(),
                };
                let _ = proto::write_response(&mut writer, &reply);
                // Framing may be out of sync; close rather than guess.
                return;
            }
            Err(_) => return,
        };
        counter!("serve.requests").inc();
        let _span = span!("serve.request");
        let reply = match request {
            Request::Ping => Response::Pong,
            Request::Stats => {
                // Publish the store's counters as gauges first, so the
                // snapshot carries `store.*` alongside `serve.*`.
                shared.store.stats().publish();
                Response::StatsOk { snapshot_json: waymem_obs::snapshot::take().to_json() }
            }
            Request::Shutdown => {
                shared.draining.store(true, Ordering::SeqCst);
                waymem_obs::info!("serve.drain_begun", reason = "shutdown frame");
                Response::ShutdownOk
            }
            Request::Run(run) => handle_run(shared, run),
        };
        let draining_ack = matches!(reply, Response::ShutdownOk);
        if proto::write_response(&mut writer, &reply).is_err() {
            return;
        }
        if draining_ack {
            return;
        }
    }
}

/// Admission + single-flight for one `Run` request. Returns the reply
/// to write, never panics into the connection thread.
fn handle_run(shared: &Arc<Shared>, run: RunRequest) -> Response {
    if shared.draining.load(Ordering::SeqCst) {
        counter!("serve.draining_rejects").inc();
        return Response::Refused {
            status: Status::Draining,
            message: "server is draining".to_owned(),
        };
    }
    let started = Instant::now();
    let fingerprint = run.fingerprint();
    let _span = span!("serve.run", workload = run.workload, fp = format!("{fingerprint:016x}"));

    // Single-flight: attach to an existing flight or lead a new one.
    // The map lock covers only the lookup/insert, never the execution.
    let (flight, leader) = {
        let mut inflight = shared.inflight.lock().expect("inflight map poisoned");
        if let Some(existing) = inflight.get(&fingerprint) {
            (Arc::clone(existing), false)
        } else {
            let fresh = Arc::new(Flight::new());
            inflight.insert(fingerprint, Arc::clone(&fresh));
            (fresh, true)
        }
    };

    if leader {
        let job = Job { fingerprint, request: run, flight: Arc::clone(&flight) };
        let sender = shared.queue_sender();
        let admitted = match sender {
            // Count the job *before* it becomes visible to workers —
            // the worker's decrement must never beat this increment.
            Some(sender) => {
                let depth = shared.queued.fetch_add(1, Ordering::SeqCst) + 1;
                gauge!("serve.queue_depth").set(depth as f64);
                match sender.try_send(job) {
                    Ok(()) => true,
                    Err(TrySendError::Full(_) | TrySendError::Disconnected(_)) => {
                        let depth = shared.queued.fetch_sub(1, Ordering::SeqCst) - 1;
                        gauge!("serve.queue_depth").set(depth as f64);
                        false
                    }
                }
            }
            None => false,
        };
        if !admitted {
            shared.inflight.lock().expect("inflight map poisoned").remove(&fingerprint);
            counter!("serve.overload_rejects").inc();
            return Response::Refused {
                status: Status::Overloaded,
                message: format!(
                    "admission queue full ({} deep); retry later",
                    shared.cfg.queue_depth
                ),
            };
        }
    } else {
        counter!("serve.dedup_hits").inc();
    }

    match flight.wait(shared.cfg.request_timeout) {
        Some(Ok(json)) => {
            let micros = started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
            histogram!("serve.request_latency_us").record(micros);
            Response::RunOk { shared: !leader, result_json: (*json).clone() }
        }
        Some(Err(message)) => Response::Refused { status: Status::Error, message },
        None => {
            counter!("serve.timeouts").inc();
            Response::Refused {
                status: Status::Timeout,
                message: format!(
                    "no result within {:?}; the run continues and warms the store",
                    shared.cfg.request_timeout
                ),
            }
        }
    }
}

fn worker_loop(shared: &Arc<Shared>, receiver: &Mutex<Receiver<Job>>) {
    loop {
        let job = {
            let guard = receiver.lock().expect("job receiver poisoned");
            guard.recv()
        };
        let Ok(job) = job else { return };
        let depth = shared.queued.fetch_sub(1, Ordering::SeqCst).saturating_sub(1);
        gauge!("serve.queue_depth").set(depth as f64);
        counter!("serve.runs").inc();
        let started = Instant::now();
        let result = execute(shared, &job.request);
        let micros = started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        histogram!("serve.run_us").record(micros);
        job.flight.publish(result);
        shared.inflight.lock().expect("inflight map poisoned").remove(&job.fingerprint);
    }
}

/// Runs one experiment through the shared store and renders the result.
/// Panics inside the builder are caught by `catch_worker`, so a hostile
/// workload answers `Error` instead of killing a pool thread.
fn execute(shared: &Arc<Shared>, run: &RunRequest) -> FlightResult {
    let (dschemes, ischemes): (Vec<DScheme>, Vec<IScheme>) = match run.schemes {
        SchemeSet::Paper => (
            vec![DScheme::Original, DScheme::paper_way_memo()],
            vec![IScheme::Original, IScheme::paper_way_memo()],
        ),
        SchemeSet::Full => (full_dschemes(), full_ischemes()),
        SchemeSet::Baseline => (vec![DScheme::Original], vec![IScheme::Original]),
    };
    let outcome = waymem_sim::catch_worker(|| {
        waymem_sim::Experiment::workload(run.workload)
            .geometry(run.geometry)
            .technology(run.technology)
            .dschemes(dschemes)
            .ischemes(ischemes)
            .store(&shared.store)
            .run()
    });
    match outcome {
        Ok(result) => Ok(Arc::new(result_json(&result).to_string())),
        Err(e) => Err(e.to_string()),
    }
}

/// Renders one [`SimResult`] as the deterministic JSON object `RunOk`
/// replies carry. Rendering goes through the bench [`Json`] writer, so
/// equal results produce byte-equal JSON — the property the dedup test
/// pins end to end.
#[must_use]
pub fn result_json(result: &SimResult) -> Json {
    let sides = [("dcache", &result.dcache), ("icache", &result.icache)];
    let mut schemes = Vec::new();
    for (side, results) in sides {
        for s in results {
            let st = &s.stats;
            let p = &s.power;
            schemes.push(Json::object(vec![
                ("cache", Json::from(side)),
                ("scheme", Json::from(s.name.clone())),
                ("accesses", Json::from(st.accesses)),
                ("hits", Json::from(st.hits)),
                ("misses", Json::from(st.misses)),
                ("tag_reads", Json::from(st.tag_reads)),
                ("way_reads", Json::from(st.way_reads)),
                ("mab_lookups", Json::from(st.mab_lookups)),
                ("mab_hits", Json::from(st.mab_hits)),
                ("extra_cycles", Json::from(s.extra_cycles)),
                ("total_mw", Json::from(p.total_mw())),
                ("tag_mw", Json::from(p.tag_mw)),
                ("data_mw", Json::from(p.data_mw)),
                ("mab_mw", Json::from(p.mab_mw)),
                ("buffer_mw", Json::from(p.buffer_mw)),
            ]));
        }
    }
    Json::object(vec![
        ("schema", Json::from("waymem/serve-result/v1")),
        ("workload", Json::from(result.workload.file_name())),
        ("cycles", Json::from(result.cycles)),
        ("schemes", Json::Array(schemes)),
    ])
}
