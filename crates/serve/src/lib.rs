//! `waymem_serve` — the simulator as a long-running experiment service.
//!
//! The paper's result tables come from sweeping workloads × cache
//! geometries × technologies. Run standalone, every sweep client pays
//! the cold trace-recording cost itself; run against this daemon, many
//! clients share **one hot [`TraceStore`](waymem_trace::TraceStore)**
//! and concurrent identical requests collapse into **one execution**
//! (single-flight dedup on the request
//! [fingerprint](proto::RunRequest::fingerprint), stacked on the
//! store's exactly-once `get_or_record`).
//!
//! Three layers:
//!
//! - [`proto`] — the versioned, length-prefixed binary frame format
//!   and its panic-free codec;
//! - [`server`] — the daemon: bounded worker pool, admission control
//!   with explicit overload rejection, per-request timeouts, graceful
//!   drain, `serve.*` observability;
//! - [`client`] — the blocking client the `loadgen` bin and the test
//!   suite drive.
//!
//! ```no_run
//! use waymem_serve::{client::Client, proto::RunRequest, server};
//! use waymem_trace::{SynthPattern, SynthSpec, TraceStore, WorkloadId};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let handle = server::start(server::ServeConfig::default(), TraceStore::new())?;
//! let mut client = Client::connect(handle.local_addr())?;
//! let reply = client.run(RunRequest::new(WorkloadId::Synthetic(SynthSpec {
//!     pattern: SynthPattern::Stream,
//!     accesses: 10_000,
//!     seed: 1,
//! })))?;
//! assert!(reply.result_json.contains("\"schema\":\"waymem/serve-result/v1\""));
//! client.shutdown()?;
//! handle.join();
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod proto;
pub mod server;

pub use client::{Client, ClientError, RunReply};
pub use proto::{Request, Response, RunRequest, SchemeSet, Status};
pub use server::{start, ServeConfig, ServerHandle};
