//! The wire protocol: versioned, length-prefixed binary frames.
//!
//! Every message — request or response — travels as one frame:
//!
//! ```text
//! [ len: u32 BE ][ payload: len bytes ]
//! payload = [ magic: u32 BE ][ version: u16 BE ][ kind: u8 ][ body ... ]
//! ```
//!
//! `len` counts the payload only. The magic word pins the stream as a
//! waymem-serve conversation (a stray HTTP client gets a structured
//! `BadRequest`, not a hang), the version gates compatibility, and the
//! kind byte selects the body grammar. All integers are big-endian;
//! strings are length-prefixed UTF-8; floats travel as IEEE-754 bit
//! patterns so results stay bit-identical across the wire.
//!
//! The codec is hand-rolled over `std::io` for the same reason the
//! bench JSON writer is: the build environment is offline and the
//! vendored `serde` is a no-op derive stub. Decoding never panics —
//! every malformed byte sequence becomes a [`ProtoError`] the server
//! answers with a structured error reply.

use std::fmt;
use std::io::{self, Read, Write};

use waymem_cache::Geometry;
use waymem_hwmodel::Technology;
use waymem_trace::WorkloadId;

/// Frame magic: `"WMS1"` as a big-endian word.
pub const MAGIC: u32 = 0x574D_5331;
/// Protocol version this build speaks.
pub const VERSION: u16 = 1;
/// Hard ceiling on a single frame's payload. Requests are tiny and
/// responses carry one experiment's JSON (a few KiB), so anything
/// larger is a framing error, not a big message.
pub const MAX_FRAME: u32 = 1 << 20;

/// Which scheme front-ends a [`RunRequest`] replays.
///
/// The wire carries a selector rather than free-form scheme lists: the
/// presets are the configurations the paper's tables use, and a closed
/// enum keeps version-1 requests unambiguous.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SchemeSet {
    /// `Original` + the paper's way-memoization point, both sides —
    /// the headline comparison. The default.
    #[default]
    Paper,
    /// All seven ablation points per side ([`waymem_sim::full_dschemes`]
    /// / [`waymem_sim::full_ischemes`]).
    Full,
    /// The conventional caches only — a baseline-measurement probe.
    Baseline,
}

impl SchemeSet {
    fn code(self) -> u8 {
        match self {
            SchemeSet::Paper => 0,
            SchemeSet::Full => 1,
            SchemeSet::Baseline => 2,
        }
    }

    fn from_code(code: u8) -> Result<Self, ProtoError> {
        match code {
            0 => Ok(SchemeSet::Paper),
            1 => Ok(SchemeSet::Full),
            2 => Ok(SchemeSet::Baseline),
            _ => Err(ProtoError::Malformed("unknown scheme-set code")),
        }
    }
}

/// One experiment: workload × geometry × technology × scheme set.
///
/// The workload travels in its [`WorkloadId::file_name`] form — the
/// same codec the trace store uses on disk, so every workload the
/// store can hold is expressible on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRequest {
    /// What to simulate.
    pub workload: WorkloadId,
    /// Cache geometry, both sides.
    pub geometry: Geometry,
    /// Process/voltage/frequency point for the power model.
    pub technology: Technology,
    /// Which scheme front-ends to replay.
    pub schemes: SchemeSet,
}

impl RunRequest {
    /// A request for `workload` at the paper's platform defaults
    /// (FR-V geometry, 0.13 µm technology, paper scheme pair).
    #[must_use]
    pub fn new(workload: WorkloadId) -> Self {
        RunRequest {
            workload,
            geometry: Geometry::frv(),
            technology: Technology::frv_0130(),
            schemes: SchemeSet::Paper,
        }
    }

    /// The single-flight identity: two requests with equal fingerprints
    /// are the same experiment and may share one execution. FNV-1a over
    /// the canonical body encoding, so the fingerprint is exactly as
    /// discriminating as the wire format itself.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut body = Vec::with_capacity(64);
        self.encode_body(&mut body);
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for b in body {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }

    fn encode_body(&self, out: &mut Vec<u8>) {
        put_str16(out, &self.workload.file_name());
        out.extend_from_slice(&self.geometry.sets().to_be_bytes());
        out.extend_from_slice(&self.geometry.ways().to_be_bytes());
        out.extend_from_slice(&self.geometry.line_bytes().to_be_bytes());
        out.extend_from_slice(&self.technology.feature_nm.to_be_bytes());
        out.extend_from_slice(&self.technology.vdd.to_bits().to_be_bytes());
        out.extend_from_slice(&self.technology.freq_hz.to_bits().to_be_bytes());
        out.extend_from_slice(&self.technology.max_freq_hz.to_bits().to_be_bytes());
        out.push(self.schemes.code());
    }

    fn decode_body(r: &mut Reader<'_>) -> Result<Self, ProtoError> {
        let name = r.str16()?;
        let workload = WorkloadId::from_file_name(&name)
            .ok_or(ProtoError::Malformed("unparseable workload id"))?;
        let sets = r.u32()?;
        let ways = r.u32()?;
        let line_bytes = r.u32()?;
        let geometry = Geometry::new(sets, ways, line_bytes)
            .map_err(|_| ProtoError::Malformed("invalid geometry"))?;
        let technology = Technology {
            feature_nm: r.u32()?,
            vdd: f64::from_bits(r.u64()?),
            freq_hz: f64::from_bits(r.u64()?),
            max_freq_hz: f64::from_bits(r.u64()?),
        };
        if !technology.vdd.is_finite()
            || !technology.freq_hz.is_finite()
            || !technology.max_freq_hz.is_finite()
            || technology.max_freq_hz <= 0.0
        {
            return Err(ProtoError::Malformed("invalid technology"));
        }
        let schemes = SchemeSet::from_code(r.u8()?)?;
        Ok(RunRequest { workload, geometry, technology, schemes })
    }
}

/// A client → server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe; answered with an empty `Ok`.
    Ping,
    /// Execute (or join) one experiment.
    Run(RunRequest),
    /// Fetch the daemon's observability snapshot as JSON.
    Stats,
    /// Begin graceful drain: in-flight work finishes, new runs are
    /// refused, the daemon exits once idle.
    Shutdown,
}

impl Request {
    fn kind(&self) -> u8 {
        match self {
            Request::Ping => 1,
            Request::Run(_) => 2,
            Request::Stats => 3,
            Request::Shutdown => 4,
        }
    }
}

/// A server → client reply status. The wire kind byte of a response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// The request succeeded; the body depends on the request kind.
    Ok,
    /// The frame was malformed (bad magic/version/body). The connection
    /// is closed after this reply — framing may be out of sync.
    BadRequest,
    /// The admission queue is full; retry later.
    Overloaded,
    /// The experiment did not finish within the server's per-request
    /// budget. The work keeps running and warms the store for a retry.
    Timeout,
    /// The experiment itself failed (a structured `RunError`).
    Error,
    /// The server is draining and accepts no new runs.
    Draining,
}

impl Status {
    fn code(self) -> u8 {
        match self {
            Status::Ok => 0,
            Status::BadRequest => 1,
            Status::Overloaded => 2,
            Status::Timeout => 3,
            Status::Error => 4,
            Status::Draining => 5,
        }
    }

    fn from_code(code: u8) -> Result<Self, ProtoError> {
        match code {
            0 => Ok(Status::Ok),
            1 => Ok(Status::BadRequest),
            2 => Ok(Status::Overloaded),
            3 => Ok(Status::Timeout),
            4 => Ok(Status::Error),
            5 => Ok(Status::Draining),
            _ => Err(ProtoError::Malformed("unknown status code")),
        }
    }
}

/// A server → client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// `Ping` succeeded.
    Pong,
    /// `Run` succeeded: the experiment's result JSON, plus whether this
    /// reply was deduplicated onto another request's execution.
    RunOk {
        /// `true` when single-flight dedup shared an in-flight
        /// execution instead of enqueueing a new one.
        shared: bool,
        /// The result, rendered as one compact JSON object. Rendering
        /// is deterministic, so byte-equal JSON means bit-equal results.
        result_json: String,
    },
    /// `Stats` succeeded: the daemon's obs snapshot JSON.
    StatsOk {
        /// [`waymem_obs::snapshot::Snapshot::to_json`] output.
        snapshot_json: String,
    },
    /// `Shutdown` acknowledged; drain has begun.
    ShutdownOk,
    /// Any non-`Ok` status, with a human-readable reason.
    Refused {
        /// Why the request was not served.
        status: Status,
        /// Diagnostic detail.
        message: String,
    },
}

/// Everything that can go wrong encoding, decoding, or transporting a
/// frame.
#[derive(Debug)]
pub enum ProtoError {
    /// The underlying socket failed.
    Io(io::Error),
    /// The peer closed the connection cleanly between frames.
    Closed,
    /// The frame did not start with [`MAGIC`].
    BadMagic(u32),
    /// The peer speaks a different protocol version.
    BadVersion(u16),
    /// The declared payload length exceeds [`MAX_FRAME`].
    Oversize(u32),
    /// The payload did not match its kind's grammar.
    Malformed(&'static str),
    /// A string field held invalid UTF-8.
    BadUtf8,
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "socket error: {e}"),
            ProtoError::Closed => write!(f, "connection closed"),
            ProtoError::BadMagic(m) => write!(f, "bad frame magic {m:#010x}"),
            ProtoError::BadVersion(v) => {
                write!(f, "protocol version {v} (this build speaks {VERSION})")
            }
            ProtoError::Oversize(n) => write!(f, "frame of {n} bytes exceeds {MAX_FRAME}"),
            ProtoError::Malformed(what) => write!(f, "malformed frame: {what}"),
            ProtoError::BadUtf8 => write!(f, "malformed frame: invalid UTF-8"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<io::Error> for ProtoError {
    fn from(e: io::Error) -> Self {
        ProtoError::Io(e)
    }
}

impl ProtoError {
    /// Whether the failure is the peer's fault (malformed bytes) rather
    /// than the transport's — the cases a server answers with
    /// [`Status::BadRequest`] before closing.
    #[must_use]
    pub fn is_peer_fault(&self) -> bool {
        matches!(
            self,
            ProtoError::BadMagic(_)
                | ProtoError::BadVersion(_)
                | ProtoError::Oversize(_)
                | ProtoError::Malformed(_)
                | ProtoError::BadUtf8
        )
    }
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

fn put_str16(out: &mut Vec<u8>, s: &str) {
    let len = u16::try_from(s.len()).unwrap_or(u16::MAX);
    let s = &s.as_bytes()[..usize::from(len)];
    out.extend_from_slice(&len.to_be_bytes());
    out.extend_from_slice(s);
}

fn put_str32(out: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    let len = u32::try_from(bytes.len()).unwrap_or(u32::MAX);
    out.extend_from_slice(&len.to_be_bytes());
    out.extend_from_slice(&bytes[..len as usize]);
}

fn frame(kind: u8, body: &[u8]) -> Vec<u8> {
    let payload_len = 4 + 2 + 1 + body.len();
    let mut out = Vec::with_capacity(4 + payload_len);
    out.extend_from_slice(&u32::try_from(payload_len).unwrap_or(u32::MAX).to_be_bytes());
    out.extend_from_slice(&MAGIC.to_be_bytes());
    out.extend_from_slice(&VERSION.to_be_bytes());
    out.push(kind);
    out.extend_from_slice(body);
    out
}

/// Writes `req` as one frame.
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_request(w: &mut impl Write, req: &Request) -> Result<(), ProtoError> {
    let mut body = Vec::new();
    if let Request::Run(run) = req {
        run.encode_body(&mut body);
    }
    w.write_all(&frame(req.kind(), &body))?;
    w.flush()?;
    Ok(())
}

/// Writes `resp` as one frame.
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_response(w: &mut impl Write, resp: &Response) -> Result<(), ProtoError> {
    let (status, mut body) = (response_status(resp), Vec::new());
    match resp {
        Response::Pong | Response::ShutdownOk => {}
        Response::RunOk { shared, result_json } => {
            body.push(u8::from(*shared));
            put_str32(&mut body, result_json);
        }
        Response::StatsOk { snapshot_json } => put_str32(&mut body, snapshot_json),
        Response::Refused { message, .. } => put_str16(&mut body, message),
    }
    w.write_all(&frame(status.code(), &body))?;
    w.flush()?;
    Ok(())
}

fn response_status(resp: &Response) -> Status {
    match resp {
        Response::Pong | Response::RunOk { .. } | Response::StatsOk { .. }
        | Response::ShutdownOk => Status::Ok,
        Response::Refused { status, .. } => *status,
    }
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        if self.buf.len() < n {
            return Err(ProtoError::Malformed("truncated payload"));
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ProtoError> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().expect("took 2")))
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().expect("took 4")))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().expect("took 8")))
    }

    fn str16(&mut self) -> Result<String, ProtoError> {
        let len = usize::from(self.u16()?);
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ProtoError::BadUtf8)
    }

    fn str32(&mut self) -> Result<String, ProtoError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ProtoError::BadUtf8)
    }

    fn done(&self) -> Result<(), ProtoError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(ProtoError::Malformed("trailing bytes"))
        }
    }
}

/// Reads one raw frame: returns the `(kind, body)` of a validated
/// payload. Fails fast on bad magic/version/length before reading the
/// body, so a garbage peer costs at most one header.
fn read_frame(r: &mut impl Read) -> Result<(u8, Vec<u8>), ProtoError> {
    let mut len_buf = [0u8; 4];
    if let Err(e) = r.read_exact(&mut len_buf) {
        return Err(if e.kind() == io::ErrorKind::UnexpectedEof {
            ProtoError::Closed
        } else {
            ProtoError::Io(e)
        });
    }
    let len = u32::from_be_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(ProtoError::Oversize(len));
    }
    if len < 7 {
        return Err(ProtoError::Malformed("payload shorter than header"));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    let mut rd = Reader { buf: &payload };
    let magic = rd.u32()?;
    if magic != MAGIC {
        return Err(ProtoError::BadMagic(magic));
    }
    let version = rd.u16()?;
    if version != VERSION {
        return Err(ProtoError::BadVersion(version));
    }
    let kind = rd.u8()?;
    Ok((kind, rd.buf.to_vec()))
}

/// Reads one request frame.
///
/// # Errors
///
/// [`ProtoError::Closed`] on clean EOF between frames; peer-fault
/// variants on malformed bytes; [`ProtoError::Io`] on transport
/// failures.
pub fn read_request(r: &mut impl Read) -> Result<Request, ProtoError> {
    let (kind, body) = read_frame(r)?;
    let mut rd = Reader { buf: &body };
    let req = match kind {
        1 => Request::Ping,
        2 => Request::Run(RunRequest::decode_body(&mut rd)?),
        3 => Request::Stats,
        4 => Request::Shutdown,
        _ => return Err(ProtoError::Malformed("unknown request kind")),
    };
    rd.done()?;
    Ok(req)
}

/// Reads one response frame. The caller supplies the request kind it is
/// an answer to, so `Ok` bodies decode under the right grammar.
///
/// # Errors
///
/// Same surface as [`read_request`].
pub fn read_response(r: &mut impl Read, answered: &Request) -> Result<Response, ProtoError> {
    let (code, body) = read_frame(r)?;
    let status = Status::from_code(code)?;
    let mut rd = Reader { buf: &body };
    let resp = if status == Status::Ok {
        match answered {
            Request::Ping => Response::Pong,
            Request::Run(_) => Response::RunOk {
                shared: rd.u8()? != 0,
                result_json: rd.str32()?,
            },
            Request::Stats => Response::StatsOk { snapshot_json: rd.str32()? },
            Request::Shutdown => Response::ShutdownOk,
        }
    } else {
        Response::Refused { status, message: rd.str16()? }
    };
    rd.done()?;
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use waymem_trace::{SynthPattern, SynthSpec};

    fn sample_run() -> RunRequest {
        RunRequest::new(WorkloadId::Synthetic(SynthSpec {
            pattern: SynthPattern::Stream,
            accesses: 1000,
            seed: 7,
        }))
    }

    fn round_trip_request(req: &Request) -> Request {
        let mut wire = Vec::new();
        write_request(&mut wire, req).expect("encode");
        read_request(&mut wire.as_slice()).expect("decode")
    }

    #[test]
    fn requests_round_trip_bit_exactly() {
        for req in [
            Request::Ping,
            Request::Stats,
            Request::Shutdown,
            Request::Run(sample_run()),
            Request::Run(RunRequest { schemes: SchemeSet::Full, ..sample_run() }),
        ] {
            assert_eq!(round_trip_request(&req), req);
        }
    }

    #[test]
    fn responses_round_trip_under_their_request_grammar() {
        let cases: Vec<(Request, Response)> = vec![
            (Request::Ping, Response::Pong),
            (Request::Shutdown, Response::ShutdownOk),
            (
                Request::Run(sample_run()),
                Response::RunOk { shared: true, result_json: "{\"x\":1}".into() },
            ),
            (Request::Stats, Response::StatsOk { snapshot_json: "{}".into() }),
            (
                Request::Run(sample_run()),
                Response::Refused { status: Status::Overloaded, message: "queue full".into() },
            ),
        ];
        for (req, resp) in cases {
            let mut wire = Vec::new();
            write_response(&mut wire, &resp).expect("encode");
            let got = read_response(&mut wire.as_slice(), &req).expect("decode");
            assert_eq!(got, resp);
        }
    }

    #[test]
    fn garbage_and_truncation_become_structured_errors_not_panics() {
        // An HTTP peer: wrong magic.
        let mut http = Vec::new();
        http.extend_from_slice(&20u32.to_be_bytes());
        http.extend_from_slice(b"GET / HTTP/1.1\r\nHost");
        assert!(matches!(read_request(&mut http.as_slice()), Err(ProtoError::BadMagic(_))));

        // A frame claiming more than MAX_FRAME.
        let huge = (MAX_FRAME + 1).to_be_bytes();
        assert!(matches!(read_request(&mut huge.as_slice()), Err(ProtoError::Oversize(_))));

        // A version from the future.
        let mut future = Vec::new();
        future.extend_from_slice(&7u32.to_be_bytes());
        future.extend_from_slice(&MAGIC.to_be_bytes());
        future.extend_from_slice(&9u16.to_be_bytes());
        future.push(1);
        assert!(matches!(read_request(&mut future.as_slice()), Err(ProtoError::BadVersion(9))));

        // Every truncation of a valid Run frame fails structurally.
        let mut wire = Vec::new();
        write_request(&mut wire, &Request::Run(sample_run())).expect("encode");
        for cut in 0..wire.len() {
            let got = read_request(&mut &wire[..cut]);
            assert!(got.is_err(), "truncation at {cut} must not decode");
        }

        // Trailing bytes after a complete body are rejected too.
        let mut padded = wire.clone();
        let len = u32::from_be_bytes(padded[..4].try_into().expect("len"));
        padded[..4].copy_from_slice(&(len + 1).to_be_bytes());
        padded.push(0xFF);
        assert!(matches!(
            read_request(&mut padded.as_slice()),
            Err(ProtoError::Malformed("trailing bytes"))
        ));
    }

    #[test]
    fn fingerprints_separate_every_request_dimension() {
        let base = sample_run();
        let mut variants = vec![base.clone()];
        variants.push(RunRequest { schemes: SchemeSet::Full, ..base.clone() });
        variants.push(RunRequest {
            geometry: Geometry::new(256, 4, 32).expect("geometry"),
            ..base.clone()
        });
        variants.push(RunRequest {
            technology: Technology { vdd: 1.1, ..Technology::frv_0130() },
            ..base.clone()
        });
        variants.push(RunRequest {
            workload: WorkloadId::Synthetic(SynthSpec {
                pattern: SynthPattern::Stream,
                accesses: 1001,
                seed: 7,
            }),
            ..base
        });
        let prints: Vec<u64> = variants.iter().map(RunRequest::fingerprint).collect();
        for (i, a) in prints.iter().enumerate() {
            for (j, b) in prints.iter().enumerate() {
                assert_eq!(a == b, i == j, "fingerprint collision between {i} and {j}");
            }
        }
        // And equality is stable: same request, same fingerprint.
        assert_eq!(variants[0].fingerprint(), sample_run().fingerprint());
    }
}
