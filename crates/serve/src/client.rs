//! A blocking client for the serve protocol — one `TcpStream`, one
//! frame out, one frame in. Used by `loadgen`, the test suite, and any
//! sweep driver that wants a warm store without linking the simulator.

use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::proto::{self, ProtoError, Request, Response, RunRequest, Status};

/// One connection to a waymem-serve daemon. Requests are serial per
/// client; open more clients for concurrency.
pub struct Client {
    stream: TcpStream,
}

/// A successful `Run` reply.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReply {
    /// Whether the server deduplicated this request onto an in-flight
    /// execution (single-flight follower).
    pub shared: bool,
    /// The experiment result as deterministic JSON.
    pub result_json: String,
}

/// Why a request did not produce an `Ok`.
#[derive(Debug)]
pub enum ClientError {
    /// Transport or framing failure.
    Proto(ProtoError),
    /// The server answered with a non-`Ok` status.
    Refused {
        /// The refusal status.
        status: Status,
        /// The server's diagnostic message.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Proto(e) => write!(f, "{e}"),
            ClientError::Refused { status, message } => {
                write!(f, "server refused ({status:?}): {message}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Proto(e)
    }
}

impl Client {
    /// Connects to `addr` with no I/O timeouts (requests block until
    /// the server replies or the connection drops).
    ///
    /// # Errors
    ///
    /// Propagates the connect failure.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Caps how long a single reply may take; `None` blocks forever.
    ///
    /// # Errors
    ///
    /// Propagates the socket option failure.
    pub fn set_reply_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    fn round_trip(&mut self, req: &Request) -> Result<Response, ClientError> {
        proto::write_request(&mut self.stream, req)?;
        Ok(proto::read_response(&mut self.stream, req)?)
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// [`ClientError::Proto`] on transport failure, [`ClientError::Refused`]
    /// on a non-`Ok` reply.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.round_trip(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(refused(other)),
        }
    }

    /// Executes (or joins) one experiment on the daemon.
    ///
    /// # Errors
    ///
    /// [`ClientError::Refused`] carries the server's status — including
    /// `Overloaded`, `Timeout`, and `Draining`, which callers may retry.
    pub fn run(&mut self, request: RunRequest) -> Result<RunReply, ClientError> {
        match self.round_trip(&Request::Run(request))? {
            Response::RunOk { shared, result_json } => Ok(RunReply { shared, result_json }),
            other => Err(refused(other)),
        }
    }

    /// Fetches the daemon's observability snapshot as JSON.
    ///
    /// # Errors
    ///
    /// Same surface as [`Client::ping`].
    pub fn stats(&mut self) -> Result<String, ClientError> {
        match self.round_trip(&Request::Stats)? {
            Response::StatsOk { snapshot_json } => Ok(snapshot_json),
            other => Err(refused(other)),
        }
    }

    /// Asks the daemon to drain and exit. The server acknowledges, then
    /// closes this connection.
    ///
    /// # Errors
    ///
    /// Same surface as [`Client::ping`].
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.round_trip(&Request::Shutdown)? {
            Response::ShutdownOk => Ok(()),
            other => Err(refused(other)),
        }
    }
}

fn refused(resp: Response) -> ClientError {
    match resp {
        Response::Refused { status, message } => ClientError::Refused { status, message },
        unexpected => ClientError::Proto(ProtoError::Malformed(match unexpected {
            Response::Pong => "unexpected pong",
            Response::RunOk { .. } => "unexpected run reply",
            Response::StatsOk { .. } => "unexpected stats reply",
            Response::ShutdownOk | Response::Refused { .. } => "unexpected reply",
        })),
    }
}
