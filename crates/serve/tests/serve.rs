//! End-to-end tests over real sockets: single-flight dedup under
//! maximum contention, admission control, per-request timeouts,
//! malformed-frame replies, and graceful drain.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Barrier;
use std::time::Duration;

use waymem_serve::client::{Client, ClientError};
use waymem_serve::proto::{self, Request, RunRequest, SchemeSet, Status};
use waymem_serve::server::{self, ServeConfig};
use waymem_trace::{SynthPattern, SynthSpec, TraceStore, WorkloadId};

fn test_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        queue_depth: 16,
        request_timeout: Duration::from_secs(120),
    }
}

fn synth(pattern: SynthPattern, accesses: u32, seed: u32) -> RunRequest {
    RunRequest::new(WorkloadId::Synthetic(SynthSpec { pattern, accesses, seed }))
}

/// The issue's headline guarantee: N concurrent clients requesting the
/// same cold workload observe exactly one store record and bit-identical
/// results.
#[test]
fn concurrent_cold_clients_share_one_recording_and_identical_results() {
    const CLIENTS: usize = 8;
    let handle = server::start(test_config(), TraceStore::new()).expect("start server");
    let addr = handle.local_addr();

    // Heavy enough that the leader is still recording while the other
    // seven requests arrive and attach to its flight.
    let request = synth(
        SynthPattern::PhaseChange { hot_lines: 256, phases: 4 },
        2_000_000,
        99,
    );
    let barrier = Barrier::new(CLIENTS);
    let replies: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let (request, barrier) = (request.clone(), &barrier);
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    barrier.wait();
                    client.run(request).expect("run")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });

    let stats = handle.store_stats();
    assert_eq!(stats.records, 1, "eight cold clients must cost exactly one recording");
    let first = &replies[0].result_json;
    assert!(first.contains("\"schema\":\"waymem/serve-result/v1\""));
    for reply in &replies {
        assert_eq!(
            &reply.result_json, first,
            "every client must observe byte-identical result JSON"
        );
    }
    assert!(
        replies.iter().filter(|r| r.shared).count() >= 1,
        "at least one follower must have ridden the leader's single flight"
    );

    handle.begin_drain();
    handle.join();
}

#[test]
fn a_full_admission_queue_answers_overloaded_not_silence() {
    let cfg = ServeConfig {
        workers: 1,
        queue_depth: 1,
        ..test_config()
    };
    let handle = server::start(cfg, TraceStore::new()).expect("start server");
    let addr = handle.local_addr();

    // Distinct heavy workloads: one occupies the single worker, one
    // fills the depth-1 queue, the third must bounce.
    let heavy =
        |seed| synth(SynthPattern::PhaseChange { hot_lines: 256, phases: 4 }, 2_000_000, seed);
    std::thread::scope(|scope| {
        // Staggered, so the first is already *in* the worker before the
        // second takes the single queue slot.
        let mut busy = Vec::new();
        for i in 0..2 {
            let request = heavy(i);
            busy.push(scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                client.run(request).expect("heavy run")
            }));
            std::thread::sleep(Duration::from_millis(200));
        }
        let mut client = Client::connect(addr).expect("connect");
        match client.run(heavy(7)) {
            Err(ClientError::Refused { status: Status::Overloaded, message }) => {
                assert!(message.contains("queue full"), "got: {message}");
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
        for b in busy {
            b.join().expect("heavy client");
        }
    });

    handle.begin_drain();
    handle.join();
}

#[test]
fn a_request_slower_than_the_budget_times_out_but_warms_the_store() {
    let cfg = ServeConfig {
        workers: 1,
        request_timeout: Duration::from_millis(1),
        ..test_config()
    };
    let handle = server::start(cfg, TraceStore::new()).expect("start server");
    let mut client = Client::connect(handle.local_addr()).expect("connect");

    let request = synth(SynthPattern::Stream, 500_000, 5);
    match client.run(request) {
        Err(ClientError::Refused { status: Status::Timeout, .. }) => {}
        other => panic!("expected Timeout, got {other:?}"),
    }

    // The flight kept running: once it lands in the store, the same
    // request under a sane budget is a warm hit.
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    while handle.store_stats().records == 0 {
        assert!(std::time::Instant::now() < deadline, "recording never landed");
        std::thread::sleep(Duration::from_millis(20));
    }

    handle.begin_drain();
    handle.join();
}

#[test]
fn malformed_frames_get_a_structured_bad_request_then_the_door() {
    let handle = server::start(test_config(), TraceStore::new()).expect("start server");
    let mut socket = TcpStream::connect(handle.local_addr()).expect("connect");

    // A frame with valid length but garbage magic — an HTTP client, say.
    let mut wire = Vec::new();
    wire.extend_from_slice(&16u32.to_be_bytes());
    wire.extend_from_slice(b"GET / HTTP/1.1\r\n");
    socket.write_all(&wire).expect("write garbage");

    let response =
        proto::read_response(&mut socket, &Request::Ping).expect("structured reply");
    match response {
        proto::Response::Refused { status: Status::BadRequest, message } => {
            assert!(message.contains("magic"), "got: {message}");
        }
        other => panic!("expected BadRequest, got {other:?}"),
    }
    // After a framing error the server closes the connection.
    let mut rest = Vec::new();
    socket
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    let closed = socket.read_to_end(&mut rest);
    assert!(matches!(closed, Ok(0)), "connection must be closed, got {closed:?}");

    handle.begin_drain();
    handle.join();
}

#[test]
fn ping_stats_and_scheme_sets_work_end_to_end() {
    let handle = server::start(test_config(), TraceStore::new()).expect("start server");
    let mut client = Client::connect(handle.local_addr()).expect("connect");

    client.ping().expect("ping");

    let full = RunRequest {
        schemes: SchemeSet::Full,
        ..synth(SynthPattern::Strided { stride: 64 }, 20_000, 3)
    };
    let reply = client.run(full).expect("full run");
    // Seven ablation points per side land in the JSON.
    assert_eq!(reply.result_json.matches("\"cache\":\"dcache\"").count(), 7);
    assert_eq!(reply.result_json.matches("\"cache\":\"icache\"").count(), 7);

    let baseline = RunRequest {
        schemes: SchemeSet::Baseline,
        ..synth(SynthPattern::Strided { stride: 64 }, 20_000, 3)
    };
    let reply = client.run(baseline).expect("baseline run");
    assert_eq!(reply.result_json.matches("\"scheme\":").count(), 2);

    let snapshot = client.stats().expect("stats");
    assert!(snapshot.contains("\"serve.requests\""), "snapshot: {snapshot}");
    assert!(snapshot.contains("\"store.records\""), "snapshot: {snapshot}");

    handle.begin_drain();
    handle.join();
}

#[test]
fn shutdown_drains_gracefully_and_refuses_new_runs() {
    let handle = server::start(test_config(), TraceStore::new()).expect("start server");
    let addr = handle.local_addr();

    // Warm one workload so the drain has completed work behind it.
    let mut client = Client::connect(addr).expect("connect");
    client.run(synth(SynthPattern::Stream, 20_000, 1)).expect("warm run");

    // A second connection is mid-conversation when the drain begins:
    // its next run must be refused with Draining, not hung or dropped.
    let mut open_conn = Client::connect(addr).expect("connect");
    open_conn.ping().expect("ping before drain");

    let mut closer = Client::connect(addr).expect("connect");
    closer.shutdown().expect("shutdown");
    assert!(handle.is_draining());

    match open_conn.run(synth(SynthPattern::Stream, 20_000, 2)) {
        Err(ClientError::Refused { status: Status::Draining, .. }) => {}
        // The drain may already have closed the connection under us —
        // also a clean refusal, never a hang.
        Err(ClientError::Proto(_)) => {}
        Ok(_) => panic!("a run admitted during drain"),
        Err(other) => panic!("expected Draining, got {other}"),
    }
    drop(open_conn);

    // join() returning at all is the graceful-exit assertion: accept
    // loop down, workers joined, nothing half-done.
    handle.join();
}
