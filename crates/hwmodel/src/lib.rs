//! # waymem-hwmodel — analytical CMOS area / delay / power models
//!
//! The paper evaluates its circuits with SYNOPSYS Design Compiler (area,
//! delay; Tables 1–2), NanoSim/SPICE (MAB power; Table 3) and per-access
//! SRAM energies for Eq. (1), all on Fujitsu's 0.13 µm / 1.3 V process at
//! 360 MHz. None of those tools or libraries are available, so this crate
//! provides **first-order analytical models** of the same quantities:
//!
//! * flip-flop/comparator/adder area with an `N³` selection-network term
//!   (the replacement/selection logic of an `N`-entry LRU structure grows
//!   superlinearly — this is what makes the paper's 32-entry column blow
//!   up to 0.31 mm²),
//! * a carry-lookahead-adder + comparator critical path with a fan-out
//!   term for wide entry arrays,
//! * clocked active power (per-bit) plus leakage sleep power, and
//! * bitline/sense-amp SRAM array read energy for the cache's data ways
//!   and tag arrays.
//!
//! Every constant is *fitted once* against the published tables; the unit
//! tests pin each model to the paper's numbers within tolerance, so the
//! regenerated Tables 1–3 keep the published shape. The models are
//! parametric in the structure's geometry, which is what the ablation
//! sweeps need.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod area;
mod delay;
mod energy;
mod power;
mod shapes;
mod technology;

pub use area::{cache_area_mm2, mab_area_mm2};
pub use delay::mab_delay_ns;
pub use energy::{cache_energies, CacheEnergies, EnergyCounts, PowerBreakdown};
pub use power::{mab_power_mw, MabPower};
pub use shapes::{CacheShape, MabShape};
pub use technology::Technology;
