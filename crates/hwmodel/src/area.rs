//! Area models, calibrated against the paper's Table 1 (MAB area in mm²
//! from Design Compiler synthesis at 0.13 µm).

use crate::{CacheShape, MabShape, Technology};

/// Area of one flip-flop bit, mm² (≈ 100 µm² at 0.13 µm, including local
/// clocking).
const A_FLOP: f64 = 1.0e-4;
/// Area of one comparator bit (XNOR + share of the AND tree), mm².
const A_CMP_BIT: f64 = 6.0e-5;
/// Area per adder bit (carry-lookahead), mm².
const A_ADD_BIT: f64 = 1.5e-4;
/// Selection-network area coefficient, mm² per entry³. True-LRU state,
/// its update matrix and the entry-select multiplexing grow superlinearly
/// with entry count; an `N³` term reproduces the factor-4.7 jump from 16
/// to 32 set-index entries in the paper's Table 1.
const A_SELECT: f64 = 6.75e-6;
/// Routing/overhead multiplier on the summed cell area.
const WIRING: f64 = 1.1;

/// MAB area in mm², per the fitted Table 1 model.
///
/// ```
/// use waymem_hwmodel::{mab_area_mm2, MabShape, Technology};
///
/// let tech = Technology::frv_0130();
/// let a_2x8 = mab_area_mm2(MabShape::frv(2, 8), tech);
/// assert!((0.02..0.05).contains(&a_2x8)); // paper: 0.033 mm²
/// ```
#[must_use]
pub fn mab_area_mm2(shape: MabShape, tech: Technology) -> f64 {
    let s = tech.scale_from_130().powi(2);
    let flops = f64::from(shape.total_bits()) * A_FLOP;
    let cmps = f64::from(shape.comparator_bits()) * A_CMP_BIT;
    let adder = f64::from(shape.adder_bits) * A_ADD_BIT;
    let select = (f64::from(shape.tag_entries).powi(3) + f64::from(shape.set_entries).powi(3))
        * A_SELECT;
    (flops + cmps + adder + select) * WIRING * s
}

/// SRAM cell area, mm² per bit (6T cell plus array overhead at 0.13 µm).
const A_SRAM_BIT: f64 = 2.6e-6;
/// Periphery (decoders, sense amps, control) fraction of the array area.
const PERIPHERY: f64 = 1.35;

/// Total cache macro area in mm² (data + tag arrays + periphery), used to
/// express MAB area as the overhead percentage the paper quotes (≈ 3 % for
/// the 2×8 D-MAB).
///
/// ```
/// use waymem_hwmodel::{cache_area_mm2, CacheShape, Technology};
///
/// let a = cache_area_mm2(CacheShape::frv(), Technology::frv_0130());
/// assert!((0.8..1.5).contains(&a)); // ~1 mm² for 32 kB at 0.13 µm
/// ```
#[must_use]
pub fn cache_area_mm2(shape: CacheShape, tech: Technology) -> f64 {
    let s = tech.scale_from_130().powi(2);
    let data_bits = shape.capacity_bytes() as f64 * 8.0;
    let tag_bits = f64::from(shape.sets) * f64::from(shape.ways) * f64::from(shape.tag_read_bits());
    (data_bits + tag_bits) * A_SRAM_BIT * PERIPHERY * s
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Paper Table 1, mm²: rows N_t ∈ {1, 2}, columns N_s ∈ {4, 8, 16, 32}.
    const TABLE1: [[f64; 4]; 2] = [
        [0.016, 0.027, 0.065, 0.307],
        [0.019, 0.033, 0.085, 0.311],
    ];

    #[test]
    fn table1_reproduced_within_tolerance() {
        let tech = Technology::frv_0130();
        for (r, &nt) in [1u32, 2].iter().enumerate() {
            for (c, &ns) in [4u32, 8, 16, 32].iter().enumerate() {
                let model = mab_area_mm2(MabShape::frv(nt, ns), tech);
                let paper = TABLE1[r][c];
                let rel = (model - paper).abs() / paper;
                assert!(
                    rel < 0.25,
                    "area({nt}x{ns}) = {model:.4} vs paper {paper:.4} ({:.0}% off)",
                    rel * 100.0
                );
            }
        }
    }

    #[test]
    fn area_is_monotone_in_entries() {
        let tech = Technology::frv_0130();
        let mut last = 0.0;
        for ns in [4u32, 8, 16, 32] {
            let a = mab_area_mm2(MabShape::frv(2, ns), tech);
            assert!(a > last);
            last = a;
        }
        assert!(
            mab_area_mm2(MabShape::frv(2, 8), tech) > mab_area_mm2(MabShape::frv(1, 8), tech)
        );
    }

    #[test]
    fn paper_overhead_percentages_hold() {
        let tech = Technology::frv_0130();
        let cache = cache_area_mm2(CacheShape::frv(), tech);
        let d = mab_area_mm2(MabShape::frv(2, 8), tech) / cache * 100.0;
        assert!((2.0..4.5).contains(&d), "D-MAB overhead ~3%, got {d:.2}%");
        let i16 = mab_area_mm2(MabShape::frv(2, 16), tech) / cache * 100.0;
        assert!((5.5..9.5).contains(&i16), "2x16 overhead ~7.5%, got {i16:.2}%");
        let i32_ = mab_area_mm2(MabShape::frv(2, 32), tech) / cache * 100.0;
        assert!(
            (20.0..36.0).contains(&i32_),
            "2x32 overhead ~27.5%, got {i32_:.2}%"
        );
    }

    #[test]
    fn smaller_node_shrinks_area_quadratically() {
        let big = mab_area_mm2(MabShape::frv(2, 8), Technology::frv_0130());
        let small = mab_area_mm2(
            MabShape::frv(2, 8),
            Technology {
                feature_nm: 65,
                ..Technology::frv_0130()
            },
        );
        assert!((small / big - 0.25).abs() < 1e-9);
    }
}
