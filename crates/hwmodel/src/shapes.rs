use serde::{Deserialize, Serialize};

/// Structural description of a MAB for the hardware models, decoupled from
/// `waymem-core`'s behavioural `MabConfig` so this crate stays dependency
/// free (the simulator converts between the two).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MabShape {
    /// Number of tag rows (`N_t`).
    pub tag_entries: u32,
    /// Number of set-index columns (`N_s`).
    pub set_entries: u32,
    /// Bits per tag entry including the 2-bit cflag (20 for FR-V).
    pub tag_entry_bits: u32,
    /// Bits per set-index entry (9 for FR-V).
    pub set_entry_bits: u32,
    /// Bits per (row, column) pair: vflag + way number (2 for 2-way).
    pub pair_bits: u32,
    /// Width of the narrow adder (offset + index bits; 14 for FR-V).
    pub adder_bits: u32,
}

impl MabShape {
    /// The paper's geometry (18-bit tag + cflag, 9-bit index, 14-bit adder,
    /// 2-way pairs) with the given entry counts.
    #[must_use]
    pub fn frv(tag_entries: u32, set_entries: u32) -> Self {
        Self {
            tag_entries,
            set_entries,
            tag_entry_bits: 20,
            set_entry_bits: 9,
            pair_bits: 2,
            adder_bits: 14,
        }
    }

    /// Storage bits in entry registers (tags + indices, excluding the
    /// pair matrix).
    #[must_use]
    pub fn entry_bits(&self) -> u32 {
        self.tag_entries * self.tag_entry_bits + self.set_entries * self.set_entry_bits
    }

    /// Bits in the vflag/way matrix.
    #[must_use]
    pub fn matrix_bits(&self) -> u32 {
        self.tag_entries * self.set_entries * self.pair_bits
    }

    /// All storage bits.
    #[must_use]
    pub fn total_bits(&self) -> u32 {
        self.entry_bits() + self.matrix_bits()
    }

    /// Comparator bits: every stored tag and index is compared in parallel.
    #[must_use]
    pub fn comparator_bits(&self) -> u32 {
        self.entry_bits()
    }
}

/// Structural description of one cache for the energy/area models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheShape {
    /// Number of sets (SRAM rows).
    pub sets: u32,
    /// Associativity.
    pub ways: u32,
    /// Line size in bytes.
    pub line_bytes: u32,
    /// Tag width in bits.
    pub tag_bits: u32,
}

impl CacheShape {
    /// The paper's 32 kB 2-way cache: 512 sets × 32-byte lines, 18-bit tags.
    #[must_use]
    pub fn frv() -> Self {
        Self {
            sets: 512,
            ways: 2,
            line_bytes: 32,
            tag_bits: 18,
        }
    }

    /// Data bits read per way activation (one line).
    #[must_use]
    pub fn way_read_bits(&self) -> u32 {
        self.line_bytes * 8
    }

    /// Bits read per tag-array activation (tag + valid).
    #[must_use]
    pub fn tag_read_bits(&self) -> u32 {
        self.tag_bits + 1
    }

    /// Total data capacity in bytes.
    #[must_use]
    pub fn capacity_bytes(&self) -> u64 {
        u64::from(self.sets) * u64::from(self.ways) * u64::from(self.line_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frv_mab_shape_bit_counts() {
        let s = MabShape::frv(2, 8);
        assert_eq!(s.entry_bits(), 2 * 20 + 8 * 9);
        assert_eq!(s.matrix_bits(), 32);
        assert_eq!(s.total_bits(), 144);
        assert_eq!(s.comparator_bits(), 112);
    }

    #[test]
    fn frv_cache_shape() {
        let c = CacheShape::frv();
        assert_eq!(c.capacity_bytes(), 32 * 1024);
        assert_eq!(c.way_read_bits(), 256);
        assert_eq!(c.tag_read_bits(), 19);
    }
}
