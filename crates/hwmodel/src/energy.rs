//! Per-access SRAM energies and the paper's Eq. (1) power composition:
//!
//! ```text
//! P_cache = E_way · N_way + E_tag · N_tag + P_MAB            (1)
//! ```
//!
//! where `N_way`/`N_tag` are activations *per second*. The paper measured
//! `E_way` and `E_tag` with SPICE on the FR-V's arrays; here they come from
//! a first-order bitline/sense-amp model calibrated so the composed powers
//! land in the range of Figures 5 and 7.

use serde::{Deserialize, Serialize};

use crate::{CacheShape, MabPower, Technology};

/// Per-activation energies for one cache's arrays and its auxiliary
/// buffers, in nanojoules.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheEnergies {
    /// Energy of one data-way read/write activation (whole line width).
    pub way_nj: f64,
    /// Energy of one tag-array activation.
    pub tag_nj: f64,
    /// Energy of probing a small register buffer (set buffer / line
    /// buffer) once.
    pub buffer_probe_nj: f64,
}

/// Bitline energy per cell on the accessed columns: C_bl·V·V_swing with
/// C_bl ≈ rows · 2 fF. Expressed per (row, bit) in nJ at 1.3 V.
const E_BITLINE_PER_ROW_BIT: f64 = 2.0e-15 * 1.3 * 0.25 * 1e9; // nJ
/// Sense amp + output driver energy per bit, nJ (0.09 pJ).
const E_SENSE_PER_BIT: f64 = 0.9e-13 * 1e9;
/// Decoder + wordline energy per activation, nJ.
const E_DECODE: f64 = 0.012;
/// Register-buffer probe energy per bit, nJ.
const E_BUF_BIT: f64 = 4.0e-5;

/// Computes the per-activation energies of `shape`'s arrays.
///
/// For the FR-V cache this yields ≈ 0.15 nJ per way and ≈ 0.02 nJ per tag
/// array — the ~8:1 ratio that makes way activations dominate Figures 5
/// and 7, with tag elimination still clearly visible.
///
/// ```
/// use waymem_hwmodel::{cache_energies, CacheShape, Technology};
///
/// let e = cache_energies(CacheShape::frv(), Technology::frv_0130());
/// assert!(e.way_nj > 5.0 * e.tag_nj);
/// ```
#[must_use]
pub fn cache_energies(shape: CacheShape, tech: Technology) -> CacheEnergies {
    let ref_tech = Technology::frv_0130();
    let v_scale = (tech.vdd / ref_tech.vdd).powi(2) * tech.scale_from_130();
    let rows = f64::from(shape.sets);
    let way_bits = f64::from(shape.way_read_bits());
    let tag_bits = f64::from(shape.tag_read_bits());
    let array = |bits: f64| -> f64 {
        (rows * bits * E_BITLINE_PER_ROW_BIT + bits * E_SENSE_PER_BIT + E_DECODE) * v_scale
    };
    CacheEnergies {
        way_nj: array(way_bits),
        tag_nj: array(tag_bits),
        buffer_probe_nj: (tag_bits + way_bits / 8.0) * E_BUF_BIT * v_scale,
    }
}

/// Activation counts over a run, paired with the cycle count that defines
/// elapsed time at the technology's clock.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EnergyCounts {
    /// Data-way activations (reads + store writes + fill writes).
    pub way_reads: u64,
    /// Tag-array activations.
    pub tag_reads: u64,
    /// Auxiliary buffer probes (set buffer / line buffer), if any.
    pub buffer_probes: u64,
    /// MAB probes (for utilization), if any.
    pub mab_lookups: u64,
    /// Elapsed cycles (instructions at CPI 1).
    pub cycles: u64,
}

/// Average power decomposition of one cache under one scheme, mW — the
/// stacked bars of Figures 5 and 7.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PowerBreakdown {
    /// Data-way array power, mW.
    pub data_mw: f64,
    /// Tag array power, mW.
    pub tag_mw: f64,
    /// MAB power (zero for schemes without a MAB), mW.
    pub mab_mw: f64,
    /// Auxiliary buffer power (set/line buffer schemes), mW.
    pub buffer_mw: f64,
}

impl PowerBreakdown {
    /// Total power, mW.
    #[must_use]
    pub fn total_mw(&self) -> f64 {
        self.data_mw + self.tag_mw + self.mab_mw + self.buffer_mw
    }

    /// Applies Eq. (1): converts activation counts into average power at
    /// the technology's operating clock. `mab` supplies the MAB's
    /// active/sleep power when the scheme has one; its utilization is
    /// `mab_lookups / cycles`.
    ///
    /// Returns an all-zero breakdown when `counts.cycles` is zero.
    #[must_use]
    pub fn from_counts(
        counts: EnergyCounts,
        energies: CacheEnergies,
        mab: Option<MabPower>,
        tech: Technology,
    ) -> Self {
        if counts.cycles == 0 {
            return Self::default();
        }
        let seconds = counts.cycles as f64 / tech.freq_hz;
        // nJ / s = nW; divide by 1e6 for mW.
        let to_mw = |nj: f64| nj / seconds / 1.0e6;
        let utilization = (counts.mab_lookups as f64 / counts.cycles as f64).min(1.0);
        Self {
            data_mw: to_mw(counts.way_reads as f64 * energies.way_nj),
            tag_mw: to_mw(counts.tag_reads as f64 * energies.tag_nj),
            mab_mw: mab.map_or(0.0, |p| p.at_utilization(utilization)),
            buffer_mw: to_mw(counts.buffer_probes as f64 * energies.buffer_probe_nj),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{mab_power_mw, MabShape};

    #[test]
    fn frv_energies_in_expected_range() {
        let e = cache_energies(CacheShape::frv(), Technology::frv_0130());
        assert!(
            (0.10..0.25).contains(&e.way_nj),
            "way energy {:.3} nJ",
            e.way_nj
        );
        assert!(
            (0.010..0.035).contains(&e.tag_nj),
            "tag energy {:.4} nJ",
            e.tag_nj
        );
        assert!(e.buffer_probe_nj < 0.1 * e.tag_nj * 10.0);
        assert!(e.buffer_probe_nj < e.tag_nj);
    }

    #[test]
    fn original_dcache_power_lands_near_figure5() {
        // Figure 5's "original" bars sit around 20-35 mW. Compose Eq. (1)
        // with representative counts: 100M cycles, ~28% D-accesses,
        // 2 tags + ~1.7 ways per access.
        let e = cache_energies(CacheShape::frv(), Technology::frv_0130());
        let accesses = 28_000_000u64;
        let counts = EnergyCounts {
            way_reads: (accesses as f64 * 1.7) as u64,
            tag_reads: accesses * 2,
            buffer_probes: 0,
            mab_lookups: 0,
            cycles: 100_000_000,
        };
        let p = PowerBreakdown::from_counts(counts, e, None, Technology::frv_0130());
        assert!(
            (15.0..45.0).contains(&p.total_mw()),
            "original D-cache ≈ 25-35 mW, got {:.1}",
            p.total_mw()
        );
        assert!(p.data_mw > p.tag_mw, "way energy dominates");
    }

    #[test]
    fn eq1_composes_mab_power() {
        let e = cache_energies(CacheShape::frv(), Technology::frv_0130());
        let mab = mab_power_mw(MabShape::frv(2, 8), Technology::frv_0130());
        let counts = EnergyCounts {
            way_reads: 30_000_000,
            tag_reads: 5_000_000,
            buffer_probes: 0,
            mab_lookups: 28_000_000,
            cycles: 100_000_000,
        };
        let p = PowerBreakdown::from_counts(counts, e, Some(mab), Technology::frv_0130());
        let util = 0.28;
        let expect_mab = mab.active_mw * util + mab.sleep_mw * (1.0 - util);
        assert!((p.mab_mw - expect_mab).abs() < 1e-9);
        assert!(p.total_mw() > p.data_mw);
    }

    #[test]
    fn zero_cycles_yields_zero_power() {
        let e = cache_energies(CacheShape::frv(), Technology::frv_0130());
        let p = PowerBreakdown::from_counts(
            EnergyCounts::default(),
            e,
            None,
            Technology::frv_0130(),
        );
        assert_eq!(p.total_mw(), 0.0);
    }

    #[test]
    fn buffer_probe_energy_much_cheaper_than_arrays() {
        // The whole premise of set/line buffers and the MAB: a handful of
        // register bits cost far less than an SRAM array activation.
        let e = cache_energies(CacheShape::frv(), Technology::frv_0130());
        assert!(e.buffer_probe_nj * 10.0 < e.way_nj);
    }
}
